//! End-to-end integration tests across the whole stack: the paper's
//! headline claims, asserted at test-friendly scale on the real machine
//! presets.

use managed_io::adios::{run, AdaptiveOpts, DataSpec, Interference, Method, RunSpec};
use managed_io::iostats::Summary;
use managed_io::simcore::units::MIB;
use managed_io::storesim::params::{jaguar, testbed, xtp, xtp_with_competing_ior};
use managed_io::workloads::campaign::{mean_write_time_std, sample_results};
use managed_io::workloads::ior::aggregate_bandwidths;
use managed_io::workloads::{IorConfig, Pixie3dConfig, Xgc1Config};

/// §II-1: internal interference — per-writer bandwidth collapses as
/// writers per target grow; aggregate eventually declines for large
/// writes.
#[test]
fn internal_interference_shape() {
    let machine = jaguar();
    let size = 128 * MIB;
    let agg_of = |writers: usize| {
        let cfg = IorConfig {
            writers,
            bytes_per_writer: size,
            osts: 128,
        };
        let rs = cfg.run_samples(&machine, &Interference::None, 3, 42);
        let agg = Summary::of(&aggregate_bandwidths(&rs)).mean;
        let per: f64 = rs
            .iter()
            .map(|r| {
                let b = r.per_writer_bandwidths();
                b.iter().sum::<f64>() / b.len() as f64
            })
            .sum::<f64>()
            / rs.len() as f64;
        (agg, per)
    };
    let (_, per_1x) = agg_of(128); // 1 writer per OST
    let (agg_4x, per_4x) = agg_of(512); // 4 per OST
    let (agg_16x, per_16x) = agg_of(2048); // 16 per OST
    assert!(per_1x > 2.0 * per_4x, "per-writer collapse 1x->4x");
    assert!(per_4x > 2.0 * per_16x, "per-writer collapse 4x->16x");
    assert!(
        agg_16x < agg_4x * 1.05,
        "aggregate must not keep scaling past 4 writers/OST: {agg_4x} -> {agg_16x}"
    );
}

/// §II-2 / Table I: external interference variability bands.
#[test]
fn external_interference_variability_bands() {
    let cfg = IorConfig {
        writers: 256,
        bytes_per_writer: 128 * MIB,
        osts: 256,
    };
    let rs = cfg.run_samples(&jaguar(), &Interference::None, 25, 7);
    let cv = Summary::of(&aggregate_bandwidths(&rs)).cv();
    assert!(
        (0.25..0.80).contains(&cv),
        "Jaguar CV should be in the paper's busy-production band: {cv}"
    );

    let quiet_cfg = IorConfig {
        writers: 80,
        bytes_per_writer: 128 * MIB,
        osts: 40,
    };
    let quiet = quiet_cfg.run_samples(&xtp(), &Interference::None, 25, 9);
    let quiet_cv = Summary::of(&aggregate_bandwidths(&quiet)).cv();
    assert!(quiet_cv < 0.15, "quiet XTP CV should be small: {quiet_cv}");

    let busy = quiet_cfg.run_samples(&xtp_with_competing_ior(), &Interference::None, 25, 11);
    let busy_cv = Summary::of(&aggregate_bandwidths(&busy)).cv();
    assert!(
        busy_cv > 2.0 * quiet_cv,
        "a competing job must inflate XTP variability: {quiet_cv} -> {busy_cv}"
    );
}

/// §II-2: imbalance factors are typically > 1 on a busy machine and vary
/// across probes (the 3.44-vs-1.18 phenomenon).
#[test]
fn imbalance_factors_are_transient() {
    let cfg = IorConfig {
        writers: 256,
        bytes_per_writer: 128 * MIB,
        osts: 256,
    };
    let rs = cfg.run_samples(&jaguar(), &Interference::None, 20, 13);
    let factors: Vec<f64> = rs.iter().map(|r| r.imbalance_factor()).collect();
    let max = factors.iter().cloned().fold(0.0, f64::max);
    let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max > 2.0, "some probe should be strongly imbalanced: {max}");
    assert!(min < 1.8, "some probe should be nearly balanced: {min}");
}

/// §IV-A/B: the adaptive method beats the MPI-IO baseline at scale
/// (procs ≫ targets) for large data, both base and interference.
#[test]
fn adaptive_beats_mpiio_at_scale() {
    let machine = jaguar();
    for interference in [Interference::None, Interference::paper_default()] {
        let mpi = sample_results(
            &machine,
            2048,
            128 * MIB,
            &Method::MpiIo { stripe_count: 160 },
            &interference,
            3,
            1000,
        );
        let adaptive = sample_results(
            &machine,
            2048,
            128 * MIB,
            &Method::Adaptive {
                targets: 512,
                opts: AdaptiveOpts::default(),
            },
            &interference,
            3,
            1000,
        );
        let m = Summary::of(&mpi.iter().map(|r| r.aggregate_bandwidth()).collect::<Vec<_>>());
        let a = Summary::of(
            &adaptive
                .iter()
                .map(|r| r.aggregate_bandwidth())
                .collect::<Vec<_>>(),
        );
        assert!(
            a.mean > 1.5 * m.mean,
            "adaptive should clearly win at 16 writers/target: MPI {} vs adaptive {}",
            m.mean,
            a.mean
        );
    }
}

/// Fig. 7: adaptive reduces per-writer write-time variability once caches
/// are taxed.
#[test]
fn adaptive_reduces_write_time_variability() {
    let machine = jaguar();
    let mpi = sample_results(
        &machine,
        2048,
        128 * MIB,
        &Method::MpiIo { stripe_count: 160 },
        &Interference::None,
        3,
        2000,
    );
    let adaptive = sample_results(
        &machine,
        2048,
        128 * MIB,
        &Method::Adaptive {
            targets: 512,
            opts: AdaptiveOpts::default(),
        },
        &Interference::None,
        3,
        2000,
    );
    let m = mean_write_time_std(&mpi);
    let a = mean_write_time_std(&adaptive);
    assert!(
        a < m,
        "adaptive write-time std {a} should undercut MPI {m} once caches are taxed"
    );
}

/// Work shifting engages exactly when there is work to shift and a reason
/// to shift it.
#[test]
fn adaptive_writes_scale_with_imbalance() {
    let machine = jaguar();
    let rs = sample_results(
        &machine,
        1024,
        128 * MIB,
        &Method::Adaptive {
            targets: 256,
            opts: AdaptiveOpts::default(),
        },
        &Interference::paper_default(),
        3,
        3000,
    );
    let total_adaptive: usize = rs.iter().map(|r| r.adaptive_writes).sum();
    assert!(
        total_adaptive > 0,
        "interference must trigger work shifting"
    );
}

/// Full-stack real-bytes path: Pixie3D blocks written adaptively, read
/// back through the global index, bit-exact.
#[test]
fn pixie3d_real_bytes_roundtrip() {
    let cfg = Pixie3dConfig { cube: 6, nprocs: 8 };
    let mut rng = managed_io::simcore::Rng::new(5);
    let blocks: Vec<_> = (0..8).map(|r| cfg.blocks_of(r, &mut rng)).collect();
    let expected_rho: Vec<Vec<f64>> = blocks.iter().map(|b| b[0].as_f64()).collect();

    let out = run(RunSpec {
        machine: testbed(),
        nprocs: 8,
        data: DataSpec::Real(blocks),
        method: Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 21,
    });
    let gidx = out.global_index.expect("global index");
    let files = out.subfiles.expect("subfiles");
    let global = managed_io::bpfmt::read_global_f64(&gidx, &files, "rho", 0).expect("read");
    // Verify one block's values survive exactly: locate rank 3's block.
    let (fname, entry) = gidx
        .find("rho")
        .find(|(_, e)| e.rank == 3)
        .expect("rank 3 block");
    let vals = managed_io::bpfmt::read_f64(files.get(fname).expect("subfile"), entry).expect("block");
    assert_eq!(vals, expected_rho[3]);
    assert_eq!(global.len(), cfg.global_dims().iter().product::<u64>() as usize);
    // All eight Pixie3D fields present for all eight ranks.
    for field in managed_io::workloads::pixie3d::FIELDS {
        assert_eq!(gidx.find(field).count(), 8, "field {field}");
    }
}

/// XGC1 real-bytes roundtrip through the same machinery.
#[test]
fn xgc1_real_bytes_roundtrip() {
    let cfg = Xgc1Config {
        particles_per_proc: 50,
        nprocs: 6,
    };
    let mut rng = managed_io::simcore::Rng::new(6);
    let blocks: Vec<_> = (0..6).map(|r| cfg.blocks_of(r, &mut rng)).collect();
    let out = run(RunSpec {
        machine: testbed(),
        nprocs: 6,
        data: DataSpec::Real(blocks),
        method: Method::Adaptive {
            targets: 3,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 23,
    });
    let gidx = out.global_index.expect("global index");
    let files = out.subfiles.expect("subfiles");
    let w1 = managed_io::bpfmt::read_global_f64(&gidx, &files, "w1", 0).expect("read w1");
    assert_eq!(w1.len(), 300);
    assert!(w1.iter().all(|v| v.is_finite()));
}

/// The Lustre stripe-limit substrate fact the MPI baseline suffers from.
#[test]
fn stripe_limit_caps_mpiio_targets() {
    let out = run(RunSpec {
        machine: jaguar(),
        nprocs: 640,
        data: DataSpec::Uniform(4 * MIB),
        method: Method::MpiIo { stripe_count: 640 },
        interference: Interference::None,
        seed: 31,
    });
    let targets: std::collections::HashSet<usize> =
        out.result.records.iter().map(|r| r.ost.0).collect();
    assert_eq!(targets.len(), 160, "Lustre 1.6 caps a single file at 160 OSTs");
}

/// Determinism across the full stack: identical seeds, identical results.
#[test]
fn full_stack_determinism() {
    let go = |seed| {
        let out = run(RunSpec {
            machine: jaguar(),
            nprocs: 512,
            data: DataSpec::Uniform(8 * MIB),
            method: Method::Adaptive {
                targets: 128,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::paper_default(),
            seed,
        });
        (
            out.result.end.as_nanos(),
            out.result.adaptive_writes,
            out.result
                .records
                .iter()
                .map(|r| r.end.as_nanos())
                .sum::<u64>(),
        )
    };
    assert_eq!(go(99), go(99));
    assert_ne!(go(99), go(100));
}

/// Full-stack silent-corruption recovery: Pixie3D blocks written with the
/// checked layout under a silent-corruption window; the verified read
/// catches the damage, a real-bytes scrub repairs it in place, and the
/// data then reads back bit-exact.
#[test]
fn corrupted_real_bytes_detected_and_repaired() {
    use managed_io::adios::{repair_subfiles, run_with_faults, FaultConfig};
    use managed_io::bpfmt::{read_global_f64_verified, IntegrityError, IntegrityOpts};
    use managed_io::storesim::FaultScript;

    let cfg = Pixie3dConfig { cube: 6, nprocs: 8 };
    let mut rng = managed_io::simcore::Rng::new(13);
    let blocks: Vec<_> = (0..8).map(|r| cfg.blocks_of(r, &mut rng)).collect();
    let expected_rho: Vec<Vec<f64>> = blocks.iter().map(|b| b[0].as_f64()).collect();

    let out = run_with_faults(
        RunSpec {
            machine: testbed(),
            nprocs: 8,
            data: DataSpec::Real(blocks.clone()),
            method: Method::Adaptive {
                targets: 4,
                opts: AdaptiveOpts {
                    integrity: IntegrityOpts::on(),
                    ..Default::default()
                },
            },
            interference: Interference::None,
            seed: 27,
        },
        FaultConfig {
            storage: FaultScript::none()
                .silent_corruption(0.0, 0, None, 1.0)
                .silent_corruption(0.0, 1, None, 1.0),
            ..Default::default()
        },
    );
    assert!(out.integrity.corrupt_records > 0, "script must bite");
    let gidx = out.global_index.expect("global index");
    let mut files = out.subfiles.expect("subfiles");

    // The damage is invisible to the unverified read but loud to the
    // verified one.
    assert!(managed_io::bpfmt::read_global_f64(&gidx, &files, "rho", 0).is_ok());
    let damaged = managed_io::workloads::pixie3d::FIELDS
        .iter()
        .filter(|f| {
            matches!(
                read_global_f64_verified(&gidx, &files, f, 0),
                Err(IntegrityError::BadBlockCrc { .. })
            )
        })
        .count();
    assert!(damaged > 0, "verified read must flag the flipped payloads");

    // Online scrub: re-encode damaged PGs from the still-resident blocks.
    let summary = repair_subfiles(&mut files, &blocks, IntegrityOpts::on());
    assert_eq!(summary.scanned, 8, "one PG per rank");
    assert!(summary.repaired > 0);
    assert_eq!(summary.unrepaired, 0, "all PGs repairable from source");

    // After repair every field verifies, bit-exact.
    for field in managed_io::workloads::pixie3d::FIELDS {
        read_global_f64_verified(&gidx, &files, field, 0).expect(field);
    }
    for (rank, want) in expected_rho.iter().enumerate() {
        let (fname, entry) = gidx
            .find("rho")
            .find(|(_, e)| e.rank == rank as u32)
            .expect("block");
        let vals = managed_io::bpfmt::read_f64_verified(files.get(fname).expect("subfile"), entry)
            .expect("verified block");
        assert_eq!(&vals, want);
    }
}
