//! Differential suite for the protocol-lookahead coupled driver.
//!
//! The lookahead loop (`Simulation::run_lookahead`) bulk-drains storage
//! across `min(next cluster event, deadline)` macro-windows instead of
//! stepping one event at a time. Its contract is byte-identity to the
//! stepwise reference loop: same completion stream (every record field),
//! same protocol statistics, same corruption oracle and integrity
//! outcome — at any shard-thread count, clean and under every fault
//! family. These tests pin that contract under both the virtual-time
//! engine (default) and the reference settle-loop engine
//! (`--features clustersim/baseline-engine`).

use managed_io::adios::{
    AdaptiveOpts, DataSpec, FaultConfig, Interference, Method, NetFaults, RunBase, RunOutput,
    RunScratch, RunSpec,
};
use managed_io::minijson::{json, Value};
use managed_io::simcore::units::MIB;
use managed_io::storesim::fault::FaultScript;
use managed_io::storesim::params::testbed;

const SEED: u64 = 0xC0_FFEE;

/// Everything a coupled run produces that the driver loop could
/// plausibly perturb: the full completion stream (every record field),
/// the protocol counters, the corruption oracle and the integrity
/// outcome. Byte-exact, not approximate.
fn artifact(outs: &[RunOutput]) -> String {
    let rows: Vec<Value> = outs
        .iter()
        .map(|o| {
            let records: Vec<Value> = o
                .result
                .records
                .iter()
                .map(|w| {
                    json!({
                        "rank": w.rank,
                        "bytes": w.bytes,
                        "start_ns": w.start.as_nanos(),
                        "end_ns": w.end.as_nanos(),
                        "ost": w.ost.0,
                        "file": w.file.0,
                        "offset": w.offset,
                        "adaptive": w.adaptive,
                    })
                })
                .collect();
            json!({
                "total_bytes": o.result.total_bytes,
                "full_span": o.result.full_span,
                "records": Value::Arr(records),
                "protocol": format!("{:?}", o.protocol),
                "oracle": format!("{:?}", o.oracle),
                "integrity": format!("{:?}", o.integrity),
                "outcome": format!("{:?}", o.outcome),
                "errors": format!("{:?}", o.errors),
            })
        })
        .collect();
    format!("{}", Value::Arr(rows))
}

/// The fault families of the paper's variability taxonomy, one scenario
/// each: interference dips (brownout), a persistently slow target
/// (limping), a multi-target failure domain (correlated loss with
/// recovery), and a client death mid-run (rank kill — exercises the
/// evaporation path).
fn scenarios() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("clean", FaultConfig::none()),
        (
            "brownout",
            FaultConfig {
                storage: FaultScript::none().brownout(0.3, 1, 0.25, 1.5),
                ..FaultConfig::none()
            },
        ),
        (
            "limping",
            FaultConfig {
                storage: FaultScript::none().limping(0.2, 2, 0.2),
                ..FaultConfig::none()
            },
        ),
        (
            "correlated-loss",
            FaultConfig {
                storage: FaultScript::none().correlated_loss(0.5, 1, 3, Some(2.0)),
                ..FaultConfig::none()
            },
        ),
        (
            "rank-kill",
            FaultConfig {
                kills: vec![(0.4, 7)],
                ..FaultConfig::none()
            },
        ),
    ]
}

fn adaptive_base() -> RunBase {
    RunBase::prepare(RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::paper_default(),
        seed: 0,
    })
}

/// Two warm seeds through one scratch pinned to (`lookahead`, `shards`).
fn run_matrix(base: &RunBase, lookahead: bool, shards: usize, faults: &FaultConfig) -> String {
    let mut scratch = RunScratch::with_shard_threads(shards);
    scratch.set_lookahead(lookahead);
    let outs: Vec<RunOutput> = (0..2)
        .map(|i| base.run_seed_scratch(SEED + i, faults, &mut scratch))
        .collect();
    artifact(&outs)
}

/// The tentpole contract: for every fault family, the lookahead driver
/// at 1, 2 and 8 shard threads produces artifacts byte-identical to the
/// stepwise serial reference.
#[test]
fn lookahead_matches_stepwise_across_shards_and_fault_families() {
    let base = adaptive_base();
    for (name, faults) in scenarios() {
        let reference = run_matrix(&base, false, 1, &faults);
        assert!(!reference.is_empty());
        for shards in [1usize, 2, 8] {
            assert_eq!(
                reference,
                run_matrix(&base, true, shards, &faults),
                "{name}: lookahead at {shards} shard threads changed the artifact"
            );
        }
        // The stepwise loop itself must also be shard-invariant (the
        // PR-9 pin, re-asserted through the same matrix plumbing).
        assert_eq!(
            reference,
            run_matrix(&base, false, 8, &faults),
            "{name}: stepwise at 8 shard threads changed the artifact"
        );
    }
}

/// Lookahead under a lossy control network: message duplication and
/// delay reshuffle the cluster-event timeline, so the driver's
/// storage-first tie rule and same-round cluster dispatch get exercised
/// on a timeline dense with coincidences.
#[test]
fn lookahead_matches_stepwise_under_network_faults() {
    let base = adaptive_base();
    let faults = FaultConfig {
        storage: FaultScript::random(0xD05_FA17, 6, 2.0, 3),
        network: Some(NetFaults {
            dup_p: 0.15,
            delay_p: 0.15,
            delay_mean_secs: 0.03,
        }),
        kills: vec![(0.8, 9)],
    };
    let reference = run_matrix(&base, false, 1, &faults);
    for shards in [1usize, 2, 8] {
        assert_eq!(
            reference,
            run_matrix(&base, true, shards, &faults),
            "lookahead at {shards} shard threads diverged under the fault cocktail"
        );
    }
}

/// The other two transport methods run through the same driver loops;
/// pin them too (serial shards — the method axis is what matters here).
#[test]
fn lookahead_matches_stepwise_for_posix_and_mpiio() {
    for (name, method) in [
        ("posix", Method::Posix { targets: 6 }),
        ("mpiio", Method::MpiIo { stripe_count: 4 }),
    ] {
        let base = RunBase::prepare(RunSpec {
            machine: testbed(),
            nprocs: 16,
            data: DataSpec::Uniform(4 * MIB),
            method,
            interference: Interference::paper_default(),
            seed: 0,
        });
        let faults = FaultConfig {
            storage: FaultScript::none().brownout(0.1, 0, 0.3, 1.0),
            ..FaultConfig::none()
        };
        let reference = run_matrix(&base, false, 1, &faults);
        for shards in [1usize, 8] {
            assert_eq!(
                reference,
                run_matrix(&base, true, shards, &faults),
                "{name}: lookahead at {shards} shard threads changed the artifact"
            );
        }
    }
}
