//! Property-based tests over the core invariants, spanning crates.
//!
//! Randomised with the workspace's own deterministic RNG
//! ([`managed_io::simcore::Rng`]) rather than an external property-test
//! framework: each property runs a fixed number of seeded cases, so
//! failures are reproducible from the printed case parameters alone.

use std::collections::HashMap;

use managed_io::adios::{run, AdaptiveOpts, DataSpec, Interference, Method, RunSpec};
use managed_io::bpfmt::{
    decode_pg, encode_pg, read_f64, read_global_f64, GlobalIndex, LocalIndex, SubfileWriter,
    VarBlock,
};
use managed_io::simcore::units::MIB;
use managed_io::simcore::{EventQueue, Rng, SimTime};
use managed_io::storesim::layout::{map_stripes, OstId};
use managed_io::storesim::params::testbed;

fn case_rng(test_tag: u64, case: u64) -> Rng {
    Rng::new(0x9e37_79b9_7f4a_7c15 ^ (test_tag << 32) ^ case)
}

/// Uniform f64 in [lo, hi).
fn uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    lo + rng.f64() * (hi - lo)
}

fn ascii_name(rng: &mut Rng, max_len: u64) -> String {
    let first = b'a' + rng.below(26) as u8;
    let mut s = String::from(first as char);
    for _ in 0..rng.below(max_len) {
        let c = match rng.below(3) {
            0 => b'a' + rng.below(26) as u8,
            1 => b'0' + rng.below(10) as u8,
            _ => b'_',
        };
        s.push(c as char);
    }
    s
}

/// The event queue is a total order: any schedule pattern pops in
/// non-decreasing time with FIFO ties.
#[test]
fn event_queue_total_order() {
    for case in 0..64 {
        let mut rng = case_rng(1, case);
        let n = 1 + rng.below(200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut count = 0;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(
                    t.as_nanos() > lt || (t.as_nanos() == lt && i > li),
                    "case {case}: order violated: ({lt},{li}) then ({},{i})",
                    t.as_nanos()
                );
            }
            last = Some((t.as_nanos(), i));
            count += 1;
        }
        assert_eq!(count, times.len(), "case {case}");
    }
}

/// Striping conserves bytes and never assigns to targets outside the
/// file's stripe list.
#[test]
fn striping_conserves_bytes() {
    for case in 0..64 {
        let mut rng = case_rng(2, case);
        let stripe = (1 + rng.below(63)) * 1024;
        let n_osts = 1 + rng.below(11) as usize;
        let offset = rng.below(10_000_000);
        let len = 1 + rng.below(50_000_000);
        let osts: Vec<OstId> = (0..n_osts).map(OstId).collect();
        let chunks = map_stripes(stripe, &osts, offset, len);
        let total: u64 = chunks.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, len, "case {case}: stripe {stripe}, {n_osts} osts");
        for &(o, b) in &chunks {
            assert!(o.0 < n_osts, "case {case}");
            assert!(b > 0, "case {case}");
        }
    }
}

/// Process groups round-trip through the wire format for arbitrary
/// variable contents.
#[test]
fn pg_roundtrip() {
    for case in 0..64 {
        let mut rng = case_rng(3, case);
        let rank = rng.below(10_000) as u32;
        let step = rng.below(100) as u32;
        let n = 1 + rng.below(127);
        let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e12, 1e12)).collect();
        let name = ascii_name(&mut rng, 12);
        let block = VarBlock::from_f64(name, vec![n], vec![0], vec![n], &vals);
        let (bytes, entries) = encode_pg(rank, step, std::slice::from_ref(&block));
        let (r, s, back) = decode_pg(&bytes).unwrap();
        assert_eq!(r, rank, "case {case}");
        assert_eq!(s, step, "case {case}");
        assert_eq!(&back[0], &block, "case {case}");
        // Index entry points exactly at the payload.
        let e = &entries[0];
        let payload = &bytes[e.file_offset as usize..(e.file_offset + e.payload_len) as usize];
        assert_eq!(payload, &block.payload[..], "case {case}");
    }
}

/// A subfile with any mix of appended process groups yields a parseable
/// index whose every entry reads back the original values.
#[test]
fn subfile_index_complete() {
    for case in 0..64 {
        let mut rng = case_rng(4, case);
        let n_blocks = 1 + rng.below(11) as usize;
        let mut w = SubfileWriter::new();
        let mut originals: Vec<(u32, Vec<f64>)> = Vec::new();
        for _ in 0..n_blocks {
            let rank = rng.below(64) as u32;
            let n = 1 + rng.below(31);
            let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e6, 1e6)).collect();
            let b = VarBlock::from_f64("v", vec![n], vec![0], vec![n], &vals);
            w.append(rank, 0, &[b]);
            originals.push((rank, vals));
        }
        let (file, _) = w.finalize();
        let idx = LocalIndex::parse(&file).unwrap();
        assert_eq!(idx.entries.len(), originals.len(), "case {case}");
        for (rank, vals) in &originals {
            // There may be several blocks from the same rank; at least one
            // must match exactly.
            let found = idx
                .entries
                .iter()
                .filter(|e| e.rank == *rank)
                .any(|e| read_f64(&file, e) == *vals);
            assert!(found, "case {case}: rank {rank} block lost");
        }
    }
}

/// Adaptive runs conserve bytes and keep per-file layouts gap-free for
/// arbitrary small configurations.
#[test]
fn adaptive_conserves_bytes_and_offsets() {
    for case in 0..24 {
        let mut rng = case_rng(5, case);
        let nprocs = 2 + rng.below(22) as usize;
        let targets = 1 + rng.below(7) as usize;
        let size_mib = 1 + rng.below(15);
        let seed = rng.below(50);
        let out = run(RunSpec {
            machine: testbed(),
            nprocs,
            data: DataSpec::Uniform(size_mib * MIB),
            method: Method::Adaptive {
                targets,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::None,
            seed,
        });
        assert_eq!(out.result.records.len(), nprocs, "case {case}");
        assert_eq!(
            out.result.total_bytes,
            nprocs as u64 * size_mib * MIB,
            "case {case}: nprocs {nprocs}, targets {targets}"
        );
        let mut by_file: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        for r in &out.result.records {
            by_file.entry(r.file.0).or_default().push((r.offset, r.bytes));
        }
        for (_, mut spans) in by_file {
            spans.sort_unstable();
            let mut at = 0u64;
            for (offset, bytes) in spans {
                assert_eq!(offset, at, "case {case}: gap/overlap in layout");
                at = offset + bytes;
            }
        }
    }
}

/// Real-bytes adaptive runs reconstruct the global array exactly, for
/// arbitrary rank/target splits.
#[test]
fn adaptive_real_roundtrip() {
    for case in 0..16 {
        let mut rng = case_rng(6, case);
        let nprocs = 2 + rng.below(8) as usize;
        let targets = 1 + rng.below(5) as usize;
        let per = 4 + rng.below(60);
        let seed = rng.below(20);
        let blocks: Vec<Vec<VarBlock>> = (0..nprocs)
            .map(|r| {
                let vals: Vec<f64> = (0..per).map(|i| (r as u64 * per + i) as f64).collect();
                vec![VarBlock::from_f64(
                    "u",
                    vec![nprocs as u64 * per],
                    vec![r as u64 * per],
                    vec![per],
                    &vals,
                )]
            })
            .collect();
        let out = run(RunSpec {
            machine: testbed(),
            nprocs,
            data: DataSpec::Real(blocks),
            method: Method::Adaptive {
                targets,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::None,
            seed,
        });
        let gidx: GlobalIndex = out.global_index.unwrap();
        let files = out.subfiles.unwrap();
        let all = read_global_f64(&gidx, &files, "u", 0).unwrap();
        let expect: Vec<f64> = (0..nprocs as u64 * per).map(|x| x as f64).collect();
        assert_eq!(all, expect, "case {case}: nprocs {nprocs}, targets {targets}");
    }
}

/// Summary statistics are scale-equivariant (sanity of the stats layer
/// under arbitrary data).
#[test]
fn summary_scale_equivariance() {
    use managed_io::iostats::Summary;
    for case in 0..64 {
        let mut rng = case_rng(7, case);
        let n = 2 + rng.below(98) as usize;
        let xs: Vec<f64> = (0..n).map(|_| uniform(&mut rng, 0.001, 1e9)).collect();
        let k = uniform(&mut rng, 0.001, 1000.0);
        let s = Summary::of(&xs);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let t = Summary::of(&scaled);
        assert!(
            (t.mean - k * s.mean).abs() <= 1e-9 * t.mean.abs().max(1.0),
            "case {case}"
        );
        assert!(
            (t.std_dev - k * s.std_dev).abs() <= 1e-6 * (t.std_dev.abs() + 1.0),
            "case {case}"
        );
        assert!((t.cv() - s.cv()).abs() < 1e-9, "case {case}");
    }
}

/// Parser robustness: arbitrary bytes never panic the format parsers —
/// they return structured errors (or, for luck-crafted valid input, a
/// parse).
#[test]
fn parsers_never_panic_on_garbage() {
    for case in 0..256 {
        let mut rng = case_rng(8, case);
        let len = rng.below(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = managed_io::bpfmt::LocalIndex::parse(&bytes);
        let _ = managed_io::bpfmt::GlobalIndex::parse(&bytes);
        let _ = managed_io::bpfmt::decode_pg(&bytes);
        let _ = managed_io::bpfmt::Attributes::parse(&bytes);
    }
}

/// Truncation robustness: every prefix of a valid subfile either parses
/// (impossible for strict prefixes ending before the footer) or errors
/// cleanly.
#[test]
fn truncated_subfiles_error_cleanly() {
    for case in 0..256 {
        let mut rng = case_rng(9, case);
        let n = 1 + rng.below(15);
        let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e3, 1e3)).collect();
        let mut w = managed_io::bpfmt::SubfileWriter::new();
        w.append(0, 0, &[VarBlock::from_f64("v", vec![n], vec![0], vec![n], &vals)]);
        let (file, _) = w.finalize();
        let cut = ((file.len() as f64) * rng.f64()) as usize;
        if cut < file.len() {
            assert!(
                managed_io::bpfmt::LocalIndex::parse(&file[..cut]).is_err(),
                "case {case}: truncated at {cut}/{} parsed",
                file.len()
            );
        }
    }
}

/// Fault-hardened runs under 100 random fault scripts: every run
/// terminates, byte accounting balances exactly (written + lost ==
/// total), surviving records never collide on a file offset, and the
/// same seed reproduces the identical record set.
#[test]
fn random_fault_scripts_keep_accounting_exact() {
    use managed_io::adios::{run_with_faults, FaultConfig, NetFaults, WriteRecord};
    use managed_io::storesim::FaultScript;

    let key = |r: &WriteRecord| {
        (
            r.rank,
            r.file.0,
            r.offset,
            r.bytes,
            r.ost.0,
            r.start.as_nanos(),
            r.end.as_nanos(),
        )
    };
    let nprocs = 16usize;
    let per_rank = 8 * MIB;
    for case in 0..100 {
        let mut rng = case_rng(12, case);
        let script_seed = rng.next_u64();
        let run_seed = rng.next_u64();
        let mut faults = FaultConfig {
            storage: FaultScript::random(script_seed, 8, 8.0, 4),
            ..Default::default()
        };
        if rng.chance(0.3) {
            faults.network = Some(NetFaults {
                dup_p: uniform(&mut rng, 0.0, 0.2),
                delay_p: uniform(&mut rng, 0.0, 0.2),
                delay_mean_secs: 0.02,
            });
        }
        if rng.chance(0.25) {
            // Kill any rank but the coordinator; sub-coordinator kills
            // exercise the failover path.
            let victim = 1 + rng.below(nprocs as u64 - 1) as u32;
            faults.kills.push((uniform(&mut rng, 0.2, 2.0), victim));
        }
        let spec = || RunSpec {
            machine: testbed(),
            nprocs,
            data: DataSpec::Uniform(per_rank),
            method: Method::Adaptive {
                targets: 8,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::None,
            seed: run_seed,
        };
        let out = run_with_faults(spec(), faults.clone());
        assert_eq!(
            out.outcome.written_bytes + out.outcome.lost_bytes,
            out.outcome.total_bytes,
            "case {case}: accounting must balance, got {:?}",
            out.outcome
        );
        assert_eq!(out.outcome.total_bytes, nprocs as u64 * per_rank, "case {case}");
        let mut offsets = HashMap::new();
        for r in &out.result.records {
            let prev = offsets.insert((r.file.0, r.offset), r.rank);
            assert!(
                prev.is_none(),
                "case {case}: ranks {:?} and {} collide at file {} offset {}",
                prev,
                r.rank,
                r.file.0,
                r.offset
            );
        }
        // Same seed, same script: byte-identical records.
        let again = run_with_faults(spec(), faults);
        assert_eq!(
            out.result.records.iter().map(key).collect::<Vec<_>>(),
            again.result.records.iter().map(key).collect::<Vec<_>>(),
            "case {case}: faulted run is not reproducible"
        );
        assert_eq!(out.outcome.lost_bytes, again.outcome.lost_bytes, "case {case}");
    }
}

/// Attribute sets round-trip for arbitrary contents.
#[test]
fn attributes_roundtrip() {
    use managed_io::bpfmt::{AttrValue, Attributes};
    for case in 0..256 {
        let mut rng = case_rng(10, case);
        let n = rng.below(16);
        let mut a = Attributes::new();
        for _ in 0..n {
            let name = ascii_name(&mut rng, 11);
            a.set(name, AttrValue::F64(uniform(&mut rng, -1e9, 1e9)));
        }
        let back = Attributes::parse(&a.serialize()).unwrap();
        assert_eq!(back, a, "case {case}");
    }
}
