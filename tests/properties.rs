//! Property-based tests over the core invariants, spanning crates.

use std::collections::HashMap;

use managed_io::adios::{run, AdaptiveOpts, DataSpec, Interference, Method, RunSpec};
use managed_io::bpfmt::{
    decode_pg, encode_pg, read_f64, read_global_f64, GlobalIndex, LocalIndex, SubfileWriter,
    VarBlock,
};
use managed_io::simcore::units::MIB;
use managed_io::simcore::{EventQueue, SimTime};
use managed_io::storesim::layout::{map_stripes, OstId};
use managed_io::storesim::params::testbed;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue is a total order: any schedule pattern pops in
    /// non-decreasing time with FIFO ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut count = 0;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t.as_nanos() > lt || (t.as_nanos() == lt && i > li),
                    "order violated: ({lt},{li}) then ({},{i})", t.as_nanos());
            }
            last = Some((t.as_nanos(), i));
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Striping conserves bytes and never assigns to targets outside the
    /// file's stripe list.
    #[test]
    fn striping_conserves_bytes(
        stripe_kib in 1u64..64,
        n_osts in 1usize..12,
        offset in 0u64..10_000_000,
        len in 1u64..50_000_000,
    ) {
        let stripe = stripe_kib * 1024;
        let osts: Vec<OstId> = (0..n_osts).map(OstId).collect();
        let chunks = map_stripes(stripe, &osts, offset, len);
        let total: u64 = chunks.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(total, len);
        for &(o, b) in &chunks {
            prop_assert!(o.0 < n_osts);
            prop_assert!(b > 0);
        }
    }

    /// Process groups round-trip through the wire format for arbitrary
    /// variable contents.
    #[test]
    fn pg_roundtrip(
        rank in 0u32..10_000,
        step in 0u32..100,
        vals in prop::collection::vec(-1e12f64..1e12, 1..128),
        name in "[a-zA-Z][a-zA-Z0-9_]{0,12}",
    ) {
        let n = vals.len() as u64;
        let block = VarBlock::from_f64(name, vec![n], vec![0], vec![n], &vals);
        let (bytes, entries) = encode_pg(rank, step, std::slice::from_ref(&block));
        let (r, s, back) = decode_pg(&bytes).unwrap();
        prop_assert_eq!(r, rank);
        prop_assert_eq!(s, step);
        prop_assert_eq!(&back[0], &block);
        // Index entry points exactly at the payload.
        let e = &entries[0];
        let payload = &bytes[e.file_offset as usize..(e.file_offset + e.payload_len) as usize];
        prop_assert_eq!(payload, &block.payload[..]);
    }

    /// A subfile with any mix of appended process groups yields a
    /// parseable index whose every entry reads back the original values.
    #[test]
    fn subfile_index_complete(
        blocks in prop::collection::vec(
            (0u32..64, prop::collection::vec(-1e6f64..1e6, 1..32)),
            1..12,
        ),
    ) {
        let mut w = SubfileWriter::new();
        let mut originals: Vec<(u32, Vec<f64>)> = Vec::new();
        for (rank, vals) in &blocks {
            let n = vals.len() as u64;
            let b = VarBlock::from_f64("v", vec![n], vec![0], vec![n], vals);
            w.append(*rank, 0, &[b]);
            originals.push((*rank, vals.clone()));
        }
        let (file, _) = w.finalize();
        let idx = LocalIndex::parse(&file).unwrap();
        prop_assert_eq!(idx.entries.len(), originals.len());
        for (rank, vals) in &originals {
            // There may be several blocks from the same rank; at least one
            // must match exactly.
            let found = idx.entries.iter()
                .filter(|e| e.rank == *rank)
                .any(|e| read_f64(&file, e) == *vals);
            prop_assert!(found, "rank {rank} block lost");
        }
    }

    /// Adaptive runs conserve bytes and keep per-file layouts gap-free
    /// for arbitrary small configurations.
    #[test]
    fn adaptive_conserves_bytes_and_offsets(
        nprocs in 2usize..24,
        targets in 1usize..8,
        size_mib in 1u64..16,
        seed in 0u64..50,
    ) {
        let out = run(RunSpec {
            machine: testbed(),
            nprocs,
            data: DataSpec::Uniform(size_mib * MIB),
            method: Method::Adaptive { targets, opts: AdaptiveOpts::default() },
            interference: Interference::None,
            seed,
        });
        prop_assert_eq!(out.result.records.len(), nprocs);
        prop_assert_eq!(out.result.total_bytes, nprocs as u64 * size_mib * MIB);
        let mut by_file: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        for r in &out.result.records {
            by_file.entry(r.file.0).or_default().push((r.offset, r.bytes));
        }
        for (_, mut spans) in by_file {
            spans.sort_unstable();
            let mut at = 0u64;
            for (offset, bytes) in spans {
                prop_assert_eq!(offset, at, "gap/overlap in layout");
                at = offset + bytes;
            }
        }
    }

    /// Real-bytes adaptive runs reconstruct the global array exactly, for
    /// arbitrary rank/target splits.
    #[test]
    fn adaptive_real_roundtrip(
        nprocs in 2usize..10,
        targets in 1usize..6,
        per in 4u64..64,
        seed in 0u64..20,
    ) {
        let blocks: Vec<Vec<VarBlock>> = (0..nprocs).map(|r| {
            let vals: Vec<f64> = (0..per).map(|i| (r as u64 * per + i) as f64).collect();
            vec![VarBlock::from_f64(
                "u",
                vec![nprocs as u64 * per],
                vec![r as u64 * per],
                vec![per],
                &vals,
            )]
        }).collect();
        let out = run(RunSpec {
            machine: testbed(),
            nprocs,
            data: DataSpec::Real(blocks),
            method: Method::Adaptive { targets, opts: AdaptiveOpts::default() },
            interference: Interference::None,
            seed,
        });
        let gidx: GlobalIndex = out.global_index.unwrap();
        let files = out.subfiles.unwrap();
        let all = read_global_f64(&gidx, &files, "u", 0).unwrap();
        let expect: Vec<f64> = (0..nprocs as u64 * per).map(|x| x as f64).collect();
        prop_assert_eq!(all, expect);
    }

    /// Summary statistics are scale-equivariant (sanity of the stats
    /// layer under arbitrary data).
    #[test]
    fn summary_scale_equivariance(
        xs in prop::collection::vec(0.001f64..1e9, 2..100),
        k in 0.001f64..1000.0,
    ) {
        use managed_io::iostats::Summary;
        let s = Summary::of(&xs);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let t = Summary::of(&scaled);
        prop_assert!((t.mean - k * s.mean).abs() <= 1e-9 * t.mean.abs().max(1.0));
        prop_assert!((t.std_dev - k * s.std_dev).abs() <= 1e-6 * (t.std_dev.abs() + 1.0));
        prop_assert!((t.cv() - s.cv()).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Parser robustness: arbitrary bytes never panic the format parsers —
    /// they return structured errors (or, for luck-crafted valid input, a
    /// parse).
    #[test]
    fn parsers_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = managed_io::bpfmt::LocalIndex::parse(&bytes);
        let _ = managed_io::bpfmt::GlobalIndex::parse(&bytes);
        let _ = managed_io::bpfmt::decode_pg(&bytes);
        let _ = managed_io::bpfmt::Attributes::parse(&bytes);
    }

    /// Truncation robustness: every prefix of a valid subfile either
    /// parses (impossible for strict prefixes ending before the footer)
    /// or errors cleanly.
    #[test]
    fn truncated_subfiles_error_cleanly(
        vals in prop::collection::vec(-1e3f64..1e3, 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let n = vals.len() as u64;
        let mut w = managed_io::bpfmt::SubfileWriter::new();
        w.append(0, 0, &[VarBlock::from_f64("v", vec![n], vec![0], vec![n], &vals)]);
        let (file, _) = w.finalize();
        let cut = ((file.len() as f64) * cut_frac) as usize;
        if cut < file.len() {
            prop_assert!(managed_io::bpfmt::LocalIndex::parse(&file[..cut]).is_err());
        }
    }

    /// Attribute sets round-trip for arbitrary contents.
    #[test]
    fn attributes_roundtrip(
        entries in prop::collection::vec(
            ("[a-z]{1,12}", -1e9f64..1e9),
            0..16,
        ),
    ) {
        use managed_io::bpfmt::{AttrValue, Attributes};
        let mut a = Attributes::new();
        for (name, v) in &entries {
            a.set(name.clone(), AttrValue::F64(*v));
        }
        let back = Attributes::parse(&a.serialize()).unwrap();
        prop_assert_eq!(back, a);
    }
}
