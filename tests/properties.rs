//! Property-based tests over the core invariants, spanning crates.
//!
//! Randomised with the workspace's own deterministic RNG
//! ([`managed_io::simcore::Rng`]) rather than an external property-test
//! framework: each property runs a fixed number of seeded cases, so
//! failures are reproducible from the printed case parameters alone.

use std::collections::HashMap;

use managed_io::adios::{run, AdaptiveOpts, DataSpec, Interference, Method, RunSpec};
use managed_io::bpfmt::{
    decode_pg, encode_pg, read_f64, read_global_f64, GlobalIndex, LocalIndex, SubfileWriter,
    VarBlock,
};
use managed_io::simcore::units::MIB;
use managed_io::simcore::{EventQueue, Rng, SimTime};
use managed_io::storesim::layout::{map_stripes, OstId};
use managed_io::storesim::params::testbed;

fn case_rng(test_tag: u64, case: u64) -> Rng {
    Rng::new(0x9e37_79b9_7f4a_7c15 ^ (test_tag << 32) ^ case)
}

/// Uniform f64 in [lo, hi).
fn uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    lo + rng.f64() * (hi - lo)
}

fn ascii_name(rng: &mut Rng, max_len: u64) -> String {
    let first = b'a' + rng.below(26) as u8;
    let mut s = String::from(first as char);
    for _ in 0..rng.below(max_len) {
        let c = match rng.below(3) {
            0 => b'a' + rng.below(26) as u8,
            1 => b'0' + rng.below(10) as u8,
            _ => b'_',
        };
        s.push(c as char);
    }
    s
}

/// The event queue is a total order: any schedule pattern pops in
/// non-decreasing time with FIFO ties.
#[test]
fn event_queue_total_order() {
    for case in 0..64 {
        let mut rng = case_rng(1, case);
        let n = 1 + rng.below(200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut count = 0;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(
                    t.as_nanos() > lt || (t.as_nanos() == lt && i > li),
                    "case {case}: order violated: ({lt},{li}) then ({},{i})",
                    t.as_nanos()
                );
            }
            last = Some((t.as_nanos(), i));
            count += 1;
        }
        assert_eq!(count, times.len(), "case {case}");
    }
}

/// Striping conserves bytes and never assigns to targets outside the
/// file's stripe list.
#[test]
fn striping_conserves_bytes() {
    for case in 0..64 {
        let mut rng = case_rng(2, case);
        let stripe = (1 + rng.below(63)) * 1024;
        let n_osts = 1 + rng.below(11) as usize;
        let offset = rng.below(10_000_000);
        let len = 1 + rng.below(50_000_000);
        let osts: Vec<OstId> = (0..n_osts).map(OstId).collect();
        let chunks = map_stripes(stripe, &osts, offset, len);
        let total: u64 = chunks.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, len, "case {case}: stripe {stripe}, {n_osts} osts");
        for &(o, b) in &chunks {
            assert!(o.0 < n_osts, "case {case}");
            assert!(b > 0, "case {case}");
        }
    }
}

/// Process groups round-trip through the wire format for arbitrary
/// variable contents.
#[test]
fn pg_roundtrip() {
    for case in 0..64 {
        let mut rng = case_rng(3, case);
        let rank = rng.below(10_000) as u32;
        let step = rng.below(100) as u32;
        let n = 1 + rng.below(127);
        let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e12, 1e12)).collect();
        let name = ascii_name(&mut rng, 12);
        let block = VarBlock::from_f64(name, vec![n], vec![0], vec![n], &vals);
        let (bytes, entries) = encode_pg(rank, step, std::slice::from_ref(&block));
        let (r, s, back) = decode_pg(&bytes).unwrap();
        assert_eq!(r, rank, "case {case}");
        assert_eq!(s, step, "case {case}");
        assert_eq!(&back[0], &block, "case {case}");
        // Index entry points exactly at the payload.
        let e = &entries[0];
        let payload = &bytes[e.file_offset as usize..(e.file_offset + e.payload_len) as usize];
        assert_eq!(payload, &block.payload[..], "case {case}");
    }
}

/// A subfile with any mix of appended process groups yields a parseable
/// index whose every entry reads back the original values.
#[test]
fn subfile_index_complete() {
    for case in 0..64 {
        let mut rng = case_rng(4, case);
        let n_blocks = 1 + rng.below(11) as usize;
        let mut w = SubfileWriter::new();
        let mut originals: Vec<(u32, Vec<f64>)> = Vec::new();
        for _ in 0..n_blocks {
            let rank = rng.below(64) as u32;
            let n = 1 + rng.below(31);
            let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e6, 1e6)).collect();
            let b = VarBlock::from_f64("v", vec![n], vec![0], vec![n], &vals);
            w.append(rank, 0, &[b]);
            originals.push((rank, vals));
        }
        let (file, _) = w.finalize();
        let idx = LocalIndex::parse(&file).unwrap();
        assert_eq!(idx.entries.len(), originals.len(), "case {case}");
        for (rank, vals) in &originals {
            // There may be several blocks from the same rank; at least one
            // must match exactly.
            let found = idx
                .entries
                .iter()
                .filter(|e| e.rank == *rank)
                .any(|e| read_f64(&file, e).unwrap() == *vals);
            assert!(found, "case {case}: rank {rank} block lost");
        }
    }
}

/// Adaptive runs conserve bytes and keep per-file layouts gap-free for
/// arbitrary small configurations.
#[test]
fn adaptive_conserves_bytes_and_offsets() {
    for case in 0..24 {
        let mut rng = case_rng(5, case);
        let nprocs = 2 + rng.below(22) as usize;
        let targets = 1 + rng.below(7) as usize;
        let size_mib = 1 + rng.below(15);
        let seed = rng.below(50);
        let out = run(RunSpec {
            machine: testbed(),
            nprocs,
            data: DataSpec::Uniform(size_mib * MIB),
            method: Method::Adaptive {
                targets,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::None,
            seed,
        });
        assert_eq!(out.result.records.len(), nprocs, "case {case}");
        assert_eq!(
            out.result.total_bytes,
            nprocs as u64 * size_mib * MIB,
            "case {case}: nprocs {nprocs}, targets {targets}"
        );
        let mut by_file: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        for r in &out.result.records {
            by_file.entry(r.file.0).or_default().push((r.offset, r.bytes));
        }
        for (_, mut spans) in by_file {
            spans.sort_unstable();
            let mut at = 0u64;
            for (offset, bytes) in spans {
                assert_eq!(offset, at, "case {case}: gap/overlap in layout");
                at = offset + bytes;
            }
        }
    }
}

/// Real-bytes adaptive runs reconstruct the global array exactly, for
/// arbitrary rank/target splits.
#[test]
fn adaptive_real_roundtrip() {
    for case in 0..16 {
        let mut rng = case_rng(6, case);
        let nprocs = 2 + rng.below(8) as usize;
        let targets = 1 + rng.below(5) as usize;
        let per = 4 + rng.below(60);
        let seed = rng.below(20);
        let blocks: Vec<Vec<VarBlock>> = (0..nprocs)
            .map(|r| {
                let vals: Vec<f64> = (0..per).map(|i| (r as u64 * per + i) as f64).collect();
                vec![VarBlock::from_f64(
                    "u",
                    vec![nprocs as u64 * per],
                    vec![r as u64 * per],
                    vec![per],
                    &vals,
                )]
            })
            .collect();
        let out = run(RunSpec {
            machine: testbed(),
            nprocs,
            data: DataSpec::Real(blocks),
            method: Method::Adaptive {
                targets,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::None,
            seed,
        });
        let gidx: GlobalIndex = out.global_index.unwrap();
        let files = out.subfiles.unwrap();
        let all = read_global_f64(&gidx, &files, "u", 0).unwrap();
        let expect: Vec<f64> = (0..nprocs as u64 * per).map(|x| x as f64).collect();
        assert_eq!(all, expect, "case {case}: nprocs {nprocs}, targets {targets}");
    }
}

/// Summary statistics are scale-equivariant (sanity of the stats layer
/// under arbitrary data).
#[test]
fn summary_scale_equivariance() {
    use managed_io::iostats::Summary;
    for case in 0..64 {
        let mut rng = case_rng(7, case);
        let n = 2 + rng.below(98) as usize;
        let xs: Vec<f64> = (0..n).map(|_| uniform(&mut rng, 0.001, 1e9)).collect();
        let k = uniform(&mut rng, 0.001, 1000.0);
        let s = Summary::of(&xs);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let t = Summary::of(&scaled);
        assert!(
            (t.mean - k * s.mean).abs() <= 1e-9 * t.mean.abs().max(1.0),
            "case {case}"
        );
        assert!(
            (t.std_dev - k * s.std_dev).abs() <= 1e-6 * (t.std_dev.abs() + 1.0),
            "case {case}"
        );
        assert!((t.cv() - s.cv()).abs() < 1e-9, "case {case}");
    }
}

/// Parser robustness: arbitrary bytes never panic the format parsers —
/// they return structured errors (or, for luck-crafted valid input, a
/// parse).
#[test]
fn parsers_never_panic_on_garbage() {
    for case in 0..256 {
        let mut rng = case_rng(8, case);
        let len = rng.below(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = managed_io::bpfmt::LocalIndex::parse(&bytes);
        let _ = managed_io::bpfmt::GlobalIndex::parse(&bytes);
        let _ = managed_io::bpfmt::decode_pg(&bytes);
        let _ = managed_io::bpfmt::Attributes::parse(&bytes);
    }
}

/// Truncation robustness: every prefix of a valid subfile either parses
/// (impossible for strict prefixes ending before the footer) or errors
/// cleanly.
#[test]
fn truncated_subfiles_error_cleanly() {
    for case in 0..256 {
        let mut rng = case_rng(9, case);
        let n = 1 + rng.below(15);
        let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e3, 1e3)).collect();
        let mut w = managed_io::bpfmt::SubfileWriter::new();
        w.append(0, 0, &[VarBlock::from_f64("v", vec![n], vec![0], vec![n], &vals)]);
        let (file, _) = w.finalize();
        let cut = ((file.len() as f64) * rng.f64()) as usize;
        if cut < file.len() {
            assert!(
                managed_io::bpfmt::LocalIndex::parse(&file[..cut]).is_err(),
                "case {case}: truncated at {cut}/{} parsed",
                file.len()
            );
        }
    }
}

/// Fault-hardened runs under 100 random fault scripts: every run
/// terminates, byte accounting balances exactly (written + lost ==
/// total), surviving records never collide on a file offset, and the
/// same seed reproduces the identical record set.
#[test]
fn random_fault_scripts_keep_accounting_exact() {
    use managed_io::adios::{run_with_faults, FaultConfig, NetFaults, WriteRecord};
    use managed_io::storesim::FaultScript;

    let key = |r: &WriteRecord| {
        (
            r.rank,
            r.file.0,
            r.offset,
            r.bytes,
            r.ost.0,
            r.start.as_nanos(),
            r.end.as_nanos(),
        )
    };
    let nprocs = 16usize;
    let per_rank = 8 * MIB;
    for case in 0..100 {
        let mut rng = case_rng(12, case);
        let script_seed = rng.next_u64();
        let run_seed = rng.next_u64();
        let mut faults = FaultConfig {
            storage: FaultScript::random(script_seed, 8, 8.0, 4),
            ..Default::default()
        };
        if rng.chance(0.3) {
            faults.network = Some(NetFaults {
                dup_p: uniform(&mut rng, 0.0, 0.2),
                delay_p: uniform(&mut rng, 0.0, 0.2),
                delay_mean_secs: 0.02,
            });
        }
        if rng.chance(0.25) {
            // Kill any rank but the coordinator; sub-coordinator kills
            // exercise the failover path.
            let victim = 1 + rng.below(nprocs as u64 - 1) as u32;
            faults.kills.push((uniform(&mut rng, 0.2, 2.0), victim));
        }
        let spec = || RunSpec {
            machine: testbed(),
            nprocs,
            data: DataSpec::Uniform(per_rank),
            method: Method::Adaptive {
                targets: 8,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::None,
            seed: run_seed,
        };
        let out = run_with_faults(spec(), faults.clone());
        assert_eq!(
            out.outcome.written_bytes + out.outcome.lost_bytes,
            out.outcome.total_bytes,
            "case {case}: accounting must balance, got {:?}",
            out.outcome
        );
        assert_eq!(out.outcome.total_bytes, nprocs as u64 * per_rank, "case {case}");
        let mut offsets = HashMap::new();
        for r in &out.result.records {
            let prev = offsets.insert((r.file.0, r.offset), r.rank);
            assert!(
                prev.is_none(),
                "case {case}: ranks {:?} and {} collide at file {} offset {}",
                prev,
                r.rank,
                r.file.0,
                r.offset
            );
        }
        // Same seed, same script: byte-identical records.
        let again = run_with_faults(spec(), faults);
        assert_eq!(
            out.result.records.iter().map(key).collect::<Vec<_>>(),
            again.result.records.iter().map(key).collect::<Vec<_>>(),
            "case {case}: faulted run is not reproducible"
        );
        assert_eq!(out.outcome.lost_bytes, again.outcome.lost_bytes, "case {case}");
    }
}

/// Draw one latency-like sample from a case-chosen distribution family
/// (uniform, bimodal, exponential) — the shapes the straggler detector's
/// estimators actually see.
fn latency_sample(rng: &mut Rng, family: u64) -> f64 {
    match family {
        0 => uniform(rng, 0.1, 2.0),
        1 => {
            // Bimodal: mostly healthy, a slow mode an order up.
            if rng.chance(0.8) {
                uniform(rng, 0.5, 1.5)
            } else {
                uniform(rng, 8.0, 16.0)
            }
        }
        _ => -(1.0 - rng.f64()).ln() * 2.0, // exponential, mean 2
    }
}

/// The P² sketch agrees with the exact percentile on 1000-sample streams
/// across distribution shapes and target quantiles, to within a tenth of
/// the sample spread.
#[test]
fn p2_tracks_exact_quantiles_on_long_streams() {
    use managed_io::iostats::{quantile, P2Quantile};
    for case in 0..48 {
        let mut rng = case_rng(16, case);
        let family = case % 3;
        let q = [0.5, 0.9, 0.99][(case / 3) as usize % 3];
        let xs: Vec<f64> = (0..1000).map(|_| latency_sample(&mut rng, family)).collect();
        let mut p2 = P2Quantile::new(q);
        for &x in &xs {
            p2.observe(x);
        }
        let exact = quantile(&xs, q);
        let spread = quantile(&xs, 1.0) - quantile(&xs, 0.0);
        assert!(
            (p2.value() - exact).abs() <= 0.10 * spread,
            "case {case}: family {family} q {q}: P² {} vs exact {exact} (spread {spread})",
            p2.value()
        );
        assert_eq!(p2.count(), 1000, "case {case}");
    }
}

/// EWMA merge is exactly commutative (bit-identical both ways), count
/// additive, and bounded by the merged parts.
#[test]
fn ewma_merge_is_commutative_and_bounded() {
    use managed_io::iostats::Ewma;
    for case in 0..64 {
        let mut rng = case_rng(17, case);
        let alpha = uniform(&mut rng, 0.05, 1.0);
        let family = case % 3;
        let (mut a, mut b) = (Ewma::new(alpha), Ewma::new(alpha));
        for _ in 0..rng.below(200) {
            a.observe(latency_sample(&mut rng, family));
        }
        for _ in 0..1 + rng.below(200) {
            b.observe(latency_sample(&mut rng, family));
        }
        let (mut ab, mut ba) = (a, b);
        ab.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.value().to_bits(), ba.value().to_bits(), "case {case}");
        assert_eq!(ab.count(), a.count() + b.count(), "case {case}");
        let (lo, hi) = if a.count() == 0 {
            (b.value(), b.value())
        } else {
            (a.value().min(b.value()), a.value().max(b.value()))
        };
        assert!(
            ab.value() >= lo - 1e-12 && ab.value() <= hi + 1e-12,
            "case {case}: merged {} outside [{lo}, {hi}]",
            ab.value()
        );
    }
}

/// P² estimators built over arbitrary splits of one stream merge — in
/// any order — to within tolerance of the exact quantile of the whole
/// stream (the digest path: per-SC sketches folded at the coordinator).
#[test]
fn p2_merge_is_order_independent_within_tolerance() {
    use managed_io::iostats::{quantile, P2Quantile};
    for case in 0..48 {
        let mut rng = case_rng(18, case);
        let family = case % 3;
        let q = [0.5, 0.9][(case / 3) as usize % 2];
        let xs: Vec<f64> = (0..1000).map(|_| latency_sample(&mut rng, family)).collect();
        let parts = 2 + rng.below(7) as usize;
        let mut sketches: Vec<P2Quantile> = (0..parts).map(|_| P2Quantile::new(q)).collect();
        for (i, &x) in xs.iter().enumerate() {
            sketches[i % parts].observe(x);
        }
        let mut fwd = P2Quantile::new(q);
        for s in &sketches {
            fwd.merge(s);
        }
        let mut rev = P2Quantile::new(q);
        for s in sketches.iter().rev() {
            rev.merge(s);
        }
        let exact = quantile(&xs, q);
        let spread = quantile(&xs, 1.0) - quantile(&xs, 0.0);
        for (label, m) in [("fwd", &fwd), ("rev", &rev)] {
            assert_eq!(m.count(), 1000, "case {case} {label}");
            assert!(
                (m.value() - exact).abs() <= 0.15 * spread,
                "case {case} {label}: {parts}-way merge {} vs exact {exact}",
                m.value()
            );
        }
        assert!(
            (fwd.value() - rev.value()).abs() <= 0.10 * spread,
            "case {case}: merge order moved the estimate too far"
        );
    }
}

/// Both streaming estimators shrug off hostile samples: empty streams
/// report 0.0, non-finite samples are ignored without perturbing the
/// state, and a NaN-riddled stream equals its finite-only counterpart.
#[test]
fn stream_estimators_ignore_nonfinite_and_empty() {
    use managed_io::iostats::{Ewma, P2Quantile};
    let empty_e = Ewma::new(0.25);
    let empty_p = P2Quantile::new(0.9);
    assert_eq!(empty_e.value(), 0.0);
    assert_eq!(empty_p.value(), 0.0);
    assert_eq!(empty_e.count(), 0);
    assert_eq!(empty_p.count(), 0);
    for case in 0..32 {
        let mut rng = case_rng(19, case);
        let family = case % 3;
        let xs: Vec<f64> = (0..200).map(|_| latency_sample(&mut rng, family)).collect();
        let (mut clean_e, mut dirty_e) = (Ewma::new(0.25), Ewma::new(0.25));
        let (mut clean_p, mut dirty_p) = (P2Quantile::new(0.9), P2Quantile::new(0.9));
        for (i, &x) in xs.iter().enumerate() {
            clean_e.observe(x);
            clean_p.observe(x);
            dirty_e.observe(x);
            dirty_p.observe(x);
            let poison = match i % 4 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => continue,
            };
            dirty_e.observe(poison);
            dirty_p.observe(poison);
        }
        assert_eq!(clean_e.value().to_bits(), dirty_e.value().to_bits(), "case {case}");
        assert_eq!(clean_p.value().to_bits(), dirty_p.value().to_bits(), "case {case}");
        assert_eq!(clean_e.count(), dirty_e.count(), "case {case}");
        assert_eq!(clean_p.count(), dirty_p.count(), "case {case}");
        assert!(clean_p.value().is_finite(), "case {case}");
    }
}

/// Attribute sets round-trip for arbitrary contents.
#[test]
fn attributes_roundtrip() {
    use managed_io::bpfmt::{AttrValue, Attributes};
    for case in 0..256 {
        let mut rng = case_rng(10, case);
        let n = rng.below(16);
        let mut a = Attributes::new();
        for _ in 0..n {
            let name = ascii_name(&mut rng, 11);
            a.set(name, AttrValue::F64(uniform(&mut rng, -1e9, 1e9)));
        }
        let back = Attributes::parse(&a.serialize()).unwrap();
        assert_eq!(back, a, "case {case}");
    }
}

/// Checked-layout subfiles survive arbitrary truncation honestly: the
/// verified parse either returns the exact index or a structured error,
/// and the forward-scan recovery reconstructs exactly the process groups
/// wholly inside the surviving prefix — never a silently wrong index.
#[test]
fn torn_tail_recovery_is_exact_or_loud() {
    use managed_io::bpfmt::{recover_index, IntegrityError, IntegrityOpts};

    for case in 0..100 {
        let mut rng = case_rng(13, case);
        // Random PG layout in the checked format.
        let n_pgs = 1 + rng.below(6) as usize;
        let mut w = managed_io::bpfmt::SubfileWriter::with_integrity(IntegrityOpts::on());
        let mut pg_ends: Vec<usize> = Vec::new();
        for p in 0..n_pgs {
            let n = 1 + rng.below(24);
            let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e6, 1e6)).collect();
            let b = VarBlock::from_f64(ascii_name(&mut rng, 6), vec![n], vec![0], vec![n], &vals);
            w.append(p as u32, 0, &[b]);
            pg_ends.push(w.data_len() as usize);
        }
        let (file, index) = w.finalize();
        // Truncation point anywhere in the file (including no cut).
        let cut = rng.below(file.len() as u64 + 1) as usize;
        let torn = &file[..cut];

        if cut == file.len() {
            let parsed = LocalIndex::parse_verified(&file).unwrap();
            assert_eq!(parsed, index, "case {case}: intact verified parse");
            let recovered = recover_index(&file).unwrap();
            assert_eq!(recovered.entries.len(), index.entries.len(), "case {case}");
            continue;
        }
        // A torn file must never produce a *different* index silently.
        if let Ok(parsed) = LocalIndex::parse_verified(torn) {
            assert_eq!(parsed, index, "case {case}: torn parse returned wrong index");
        }
        match recover_index(torn) {
            Ok(recovered) => {
                // Exactly the PGs wholly inside the prefix.
                let whole = pg_ends.iter().filter(|&&e| e <= cut).count();
                let expect: usize = index
                    .entries
                    .iter()
                    .filter(|e| {
                        pg_ends
                            .iter()
                            .position(|&end| (e.file_offset as usize) < end)
                            .map(|p| pg_ends[p] <= cut)
                            .unwrap_or(false)
                    })
                    .count();
                assert_eq!(
                    recovered.entries.len(),
                    expect,
                    "case {case}: cut {cut}, {whole} whole PGs"
                );
                for e in &recovered.entries {
                    assert!(
                        index
                            .entries
                            .iter()
                            .any(|o| o.rank == e.rank
                                && o.file_offset == e.file_offset
                                && o.payload_len == e.payload_len),
                        "case {case}: recovered entry not in the real index"
                    );
                }
            }
            Err(IntegrityError::TruncatedPg { .. }) => {} // loud and honest
            Err(other) => panic!("case {case}: unexpected recovery error {other}"),
        }
    }
}

/// The bpfmt readers never panic on hostile input: random bytes, bit
/// flips and truncations of valid files all come back as structured
/// errors (or valid parses), for every entry point.
#[test]
fn malformed_input_never_panics() {
    use managed_io::bpfmt::{read_f64_verified, recover_index, GlobalIndex as G, IntegrityOpts};

    for case in 0..150 {
        let mut rng = case_rng(14, case);
        let buf: Vec<u8> = match case % 3 {
            // Pure noise.
            0 => {
                let n = rng.below(600) as usize;
                (0..n).map(|_| rng.below(256) as u8).collect()
            }
            // A valid (possibly checked) subfile with random mutations.
            1 => {
                let checked = rng.chance(0.5);
                let opts = if checked { IntegrityOpts::on() } else { IntegrityOpts::off() };
                let mut w = managed_io::bpfmt::SubfileWriter::with_integrity(opts);
                for p in 0..(1 + rng.below(4)) {
                    let n = 1 + rng.below(16);
                    let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e3, 1e3)).collect();
                    let b = VarBlock::from_f64("v", vec![n], vec![0], vec![n], &vals);
                    w.append(p as u32, 0, &[b]);
                }
                let (mut file, _) = w.finalize();
                for _ in 0..(1 + rng.below(8)) {
                    let at = rng.below(file.len() as u64) as usize;
                    file[at] ^= 1 << rng.below(8);
                }
                file
            }
            // A valid subfile truncated at a random point.
            _ => {
                let mut w = managed_io::bpfmt::SubfileWriter::with_integrity(IntegrityOpts::on());
                let n = 1 + rng.below(16);
                let vals: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1e3, 1e3)).collect();
                w.append(0, 0, &[VarBlock::from_f64("v", vec![n], vec![0], vec![n], &vals)]);
                let (file, _) = w.finalize();
                let cut = rng.below(file.len() as u64) as usize;
                file[..cut].to_vec()
            }
        };
        // Every entry point must return, not panic.
        let _ = decode_pg(&buf);
        let _ = managed_io::bpfmt::decode_pg_verified(&buf);
        let _ = managed_io::bpfmt::probe_pg(&buf, 0, true);
        let _ = G::parse(&buf);
        let _ = G::parse_verified(&buf);
        if let Ok(idx) = LocalIndex::parse(&buf) {
            for e in idx.entries.iter().take(4) {
                let _ = read_f64(&buf, e);
                let _ = read_f64_verified(&buf, e);
            }
        }
        let _ = LocalIndex::parse_verified(&buf);
        let _ = recover_index(&buf);
    }
}

/// No silent bad reads, ever: for arbitrary corruption-bearing fault
/// scripts, every surviving block the oracle flags is surfaced by the
/// run's integrity accounting AND ends the scrub pass repaired or loudly
/// reported — and the scrub's counters partition the records exactly.
#[test]
fn scrub_leaves_no_silent_corruption() {
    use managed_io::adios::{
        run_scrub, run_with_faults, BlockFate, FaultConfig, FaultTolerance, SimError,
    };
    use managed_io::storesim::FaultScript;

    let nprocs = 12usize;
    let per_rank = 4 * MIB;
    for case in 0..100 {
        let mut rng = case_rng(15, case);
        let script_seed = rng.next_u64();
        let run_seed = rng.next_u64();
        let faults = FaultConfig {
            storage: FaultScript::random_with_integrity(script_seed, 8, 8.0, 4),
            ..Default::default()
        };
        let out = run_with_faults(
            RunSpec {
                machine: testbed(),
                nprocs,
                data: DataSpec::Uniform(per_rank),
                method: Method::Adaptive {
                    targets: 6,
                    opts: AdaptiveOpts::default(),
                },
                interference: Interference::None,
                seed: run_seed,
            },
            faults.clone(),
        );
        // (1) The run's own accounting surfaces every oracle-flagged
        // surviving record as a DataCorrupted error.
        let flagged: Vec<_> = out
            .result
            .records
            .iter()
            .filter(|r| out.oracle.write_corrupted(r.ost, r.end))
            .collect();
        let reported = out
            .errors
            .iter()
            .filter(|e| matches!(e, SimError::DataCorrupted { .. }))
            .count();
        assert!(
            reported >= out.integrity.corrupt_records,
            "case {case}: corrupt records missing from errors"
        );
        assert!(
            out.integrity.corrupt_records <= flagged.len(),
            "case {case}: more corrupt records than flagged writes"
        );
        if out.result.records.is_empty() {
            continue; // nothing survived to scrub
        }
        // (2) Scrub every record: counters partition the blocks by
        // construction, and no flagged block passes as Verified.
        let report = run_scrub(
            &testbed(),
            &out.result.records,
            &out.oracle,
            4,
            FaultTolerance::enabled(),
            run_seed ^ 0x5C12_0B11,
        );
        assert_eq!(
            report.outcome.total(),
            out.result.records.len(),
            "case {case}: scrub counters must partition the records"
        );
        assert_eq!(report.fates.len(), out.result.records.len(), "case {case}");
        for (i, r) in out.result.records.iter().enumerate() {
            if out.oracle.write_corrupted(r.ost, r.end) {
                assert_ne!(
                    report.fates[i],
                    BlockFate::Verified,
                    "case {case}: corrupt block {i} passed verification silently"
                );
            }
        }
        // (3) Unrepaired damage is loud.
        let unrepaired = report
            .fates
            .iter()
            .filter(|f| **f == BlockFate::Unrepairable)
            .count();
        let loud = report
            .errors
            .iter()
            .filter(|e| matches!(e, SimError::DataCorrupted { .. }))
            .count();
        assert_eq!(unrepaired, loud, "case {case}: every unrepaired block reported");
    }
}

/// EC round-trip totality: for random geometries and payloads, the
/// original payload is recoverable from *every* k-subset of shards —
/// not just the systematic prefix — and through the checksummed shard-PG
/// framing.
#[test]
fn ec_roundtrips_from_every_k_subset() {
    use managed_io::bpfmt::{decode_shard_pg, encode_shard_pg, RsCode, ShardMeta};

    for case in 0..40 {
        let mut rng = case_rng(20, case);
        let k = 1 + rng.below(6) as usize;
        let m = 1 + rng.below(3) as usize;
        let n = k + m;
        let len = 1 + rng.below(4096) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let code = RsCode::new(k, m).expect("valid geometry");
        let shards = code.encode(&payload);
        // Frame every shard through the checked PG envelope and back.
        let pgs: Vec<Vec<u8>> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let meta = ShardMeta {
                    index: i as u32,
                    k: k as u32,
                    m: m as u32,
                    shard_len: s.len() as u64,
                    payload_len: len as u64,
                };
                encode_shard_pg(0, 0, meta, s)
            })
            .collect();
        // Every k-subset of the n shards (n ≤ 9 here, so exhaustive).
        let masks = (0..1u64 << n).filter(|mask| mask.count_ones() as usize == k);
        for mask in masks {
            let mut have: Vec<Option<Vec<u8>>> = (0..n)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        let (_, _, meta, shard) =
                            decode_shard_pg(&pgs[i]).expect("framed shard decodes");
                        assert_eq!(meta.index, i as u32);
                        Some(shard)
                    } else {
                        None
                    }
                })
                .collect();
            code.reconstruct(&mut have).unwrap_or_else(|e| {
                panic!("case {case}: k={k} m={m} mask={mask:b}: {e}")
            });
            let out = code
                .decode_payload(&have, len)
                .expect("payload decodes after reconstruct");
            assert_eq!(out, payload, "case {case}: k={k} m={m} mask={mask:b}");
        }
    }
}

/// Fuzzed shard envelopes: bit-flipped, truncated, or pure-noise shard
/// PGs must never panic — decoding returns a structured error or (for a
/// surviving checksum) the original bytes, never garbage.
#[test]
fn mangled_shard_pgs_never_panic_or_lie() {
    use managed_io::bpfmt::{decode_shard_pg, encode_shard_pg, ShardMeta};

    for case in 0..200 {
        let mut rng = case_rng(21, case);
        let buf: Vec<u8> = match case % 3 {
            // Pure noise.
            0 => {
                let n = rng.below(800) as usize;
                (0..n).map(|_| rng.below(256) as u8).collect()
            }
            // A valid shard PG with random bit flips.
            1 => {
                let len = 1 + rng.below(2048) as usize;
                let shard: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                let meta = ShardMeta {
                    index: rng.below(6) as u32,
                    k: 4,
                    m: 2,
                    shard_len: len as u64,
                    payload_len: (len * 4) as u64,
                };
                let mut pg = encode_shard_pg(rng.below(8) as u32, 0, meta, &shard);
                for _ in 0..(1 + rng.below(8)) {
                    let at = rng.below(pg.len() as u64) as usize;
                    pg[at] ^= 1 << rng.below(8);
                }
                pg
            }
            // A valid shard PG truncated at a random point.
            _ => {
                let len = 1 + rng.below(2048) as usize;
                let shard: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                let meta = ShardMeta {
                    index: rng.below(2) as u32,
                    k: 1,
                    m: 1,
                    shard_len: len as u64,
                    payload_len: len as u64,
                };
                let pg = encode_shard_pg(0, 0, meta, &shard);
                let cut = rng.below(pg.len() as u64) as usize;
                pg[..cut].to_vec()
            }
        };
        // Must return, not panic; a success must carry a self-consistent
        // envelope (the CRC layer caught everything else).
        if let Ok((_, _, meta, shard)) = decode_shard_pg(&buf) {
            assert_eq!(shard.len() as u64, meta.shard_len);
            assert!(meta.index < meta.k + meta.m);
        }
    }
}

/// Loss beyond the parity budget is loud and structured: for every
/// geometry, erasing more than `m` shards makes reconstruction fail
/// with `Unrecoverable { have, need }` — exact counts, no panic, no
/// partial output.
#[test]
fn ec_overbudget_loss_is_structured_unrecoverable() {
    use managed_io::bpfmt::{EcError, RsCode};

    for case in 0..60 {
        let mut rng = case_rng(22, case);
        let k = 1 + rng.below(6) as usize;
        let m = 1 + rng.below(3) as usize;
        let n = k + m;
        let len = 1 + rng.below(2048) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let code = RsCode::new(k, m).expect("valid geometry");
        let shards = code.encode(&payload);
        // Erase a uniformly random number of shards strictly above m.
        let losses = m + 1 + rng.below((n - m) as u64) as usize;
        let mut have: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let mut erased = 0usize;
        while erased < losses {
            let at = rng.below(n as u64) as usize;
            if have[at].is_some() {
                have[at] = None;
                erased += 1;
            }
        }
        let before: Vec<bool> = have.iter().map(Option::is_some).collect();
        match code.reconstruct(&mut have) {
            Err(EcError::Unrecoverable { have: h, need }) => {
                assert_eq!(h, n - losses, "case {case}: surviving count is exact");
                assert_eq!(need, k, "case {case}");
            }
            other => panic!("case {case}: k={k} m={m} losses={losses}: {other:?}"),
        }
        // No partial output: the shard set is untouched on failure.
        let after: Vec<bool> = have.iter().map(Option::is_some).collect();
        assert_eq!(before, after, "case {case}: failed reconstruct must not mutate");
    }
}
