//! Determinism of the parallel replicate runner: campaign results for a
//! given seed must be byte-identical whether replicates run serially
//! (`MANAGED_IO_THREADS=1`) or fanned out across worker threads. The
//! merge is in seed order and each replicate owns its RNG, so thread
//! scheduling must never leak into artifacts.

use managed_io::adios::{
    run, run_with_faults, AdaptiveOpts, DataSpec, FaultConfig, Interference, Method, NetFaults,
    OutputResult, RunSpec,
};
use managed_io::iostats::Summary;
use managed_io::minijson::{json, Value};
use managed_io::simcore::par::{par_map_threads, THREADS_ENV};
use managed_io::simcore::units::MIB;
use managed_io::storesim::params::testbed;
use managed_io::workloads::campaign::{bandwidth_summary, mean_write_time_std, sample_results};

const SEED: u64 = 0xD15EA5E;

fn replicate(seed: u64) -> OutputResult {
    run(RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::Uniform(4 * MIB),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed,
    })
    .result
}

/// Serialize everything an artifact row could carry — every record field
/// and the derived summaries — so the comparison is byte-exact, not
/// approximate.
fn artifact(results: &[OutputResult]) -> String {
    let rows: Vec<Value> = results
        .iter()
        .map(|r| {
            let records: Vec<Value> = r
                .records
                .iter()
                .map(|w| {
                    json!({
                        "rank": w.rank,
                        "bytes": w.bytes,
                        "start_ns": w.start.as_nanos(),
                        "end_ns": w.end.as_nanos(),
                        "ost": w.ost.0,
                        "file": w.file.0,
                        "offset": w.offset,
                        "adaptive": w.adaptive,
                    })
                })
                .collect();
            json!({
                "total_bytes": r.total_bytes,
                "adaptive_writes": r.adaptive_writes,
                "write_time_summary": Summary::of(&r.per_writer_times()).to_json(),
                "records": Value::Arr(records),
            })
        })
        .collect();
    format!(
        "{}",
        json!({
            "bandwidth": bandwidth_summary(results).to_json(),
            "write_time_std": mean_write_time_std(results),
            "samples": Value::Arr(rows),
        })
    )
}

/// Core property: explicit 1-thread and 4-thread fan-outs of the same
/// seeded replicates produce byte-identical artifacts.
#[test]
fn parallel_replicates_match_serial_bytes() {
    let seeds: Vec<u64> = (0..6).map(|i| SEED + i).collect();
    let serial = par_map_threads(1, seeds.clone(), replicate);
    let parallel = par_map_threads(4, seeds, replicate);
    let (a, b) = (artifact(&serial), artifact(&parallel));
    assert!(!a.is_empty());
    assert_eq!(a, b, "thread count leaked into campaign artifacts");
}

/// A replicate under a full fault cocktail: a per-seed random storage
/// script, lossy control network, and a mid-run rank kill. The run may
/// lose bytes — what must not vary is anything at all.
fn replicate_faulted(seed: u64) -> OutputResult {
    let faults = FaultConfig {
        storage: managed_io::storesim::FaultScript::random(seed ^ 0x0BAD_F00D, 6, 2.0, 3),
        network: Some(NetFaults {
            dup_p: 0.15,
            delay_p: 0.15,
            delay_mean_secs: 0.03,
        }),
        kills: vec![(0.8, 9)],
    };
    run_with_faults(
        RunSpec {
            machine: testbed(),
            nprocs: 24,
            data: DataSpec::Uniform(32 * MIB),
            method: Method::Adaptive {
                targets: 6,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::None,
            seed,
        },
        faults,
    )
    .result
}

/// Fault injection must not break replicate determinism: the fault RNG
/// streams are seeded per replicate, so faulted campaigns fan out across
/// threads with byte-identical artifacts too.
#[test]
fn faulted_replicates_match_serial_bytes() {
    let seeds: Vec<u64> = (0..4).map(|i| SEED ^ (0xF << 8) ^ i).collect();
    let serial = par_map_threads(1, seeds.clone(), replicate_faulted);
    let parallel = par_map_threads(4, seeds, replicate_faulted);
    let (a, b) = (artifact(&serial), artifact(&parallel));
    assert!(!a.is_empty());
    assert_eq!(a, b, "thread count leaked into faulted campaign artifacts");
}

/// Opting out of the checked layout is the pre-integrity behaviour,
/// exactly: `IntegrityOpts::off()` (also the default) produces artifacts
/// byte-identical to default opts, and with Real data the materialised
/// subfile bytes are identical too — the integrity feature costs nothing
/// unless switched on.
#[test]
fn integrity_off_is_byte_identical_to_default() {
    use managed_io::bpfmt::IntegrityOpts;
    use managed_io::workloads::pixie3d::Pixie3dConfig;
    let cfg = Pixie3dConfig { cube: 5, nprocs: 16 };
    let mut rng = managed_io::simcore::Rng::new(77);
    let blocks: Vec<_> = (0..16).map(|r| cfg.blocks_of(r, &mut rng)).collect();
    let spec = |integrity| RunSpec {
        machine: testbed(),
        nprocs: 16,
        data: DataSpec::Real(blocks.clone()),
        method: Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts {
                integrity,
                ..Default::default()
            },
        },
        interference: Interference::None,
        seed: SEED ^ 0x1F,
    };
    let base = run(spec(IntegrityOpts::default()));
    let off = run(spec(IntegrityOpts::off()));
    assert_eq!(
        artifact(std::slice::from_ref(&base.result)),
        artifact(std::slice::from_ref(&off.result)),
        "IntegrityOpts::off() changed the timeline"
    );
    let (base_files, off_files) = (base.subfiles.unwrap(), off.subfiles.unwrap());
    assert_eq!(base_files.len(), off_files.len());
    for (name, bytes) in &base_files {
        assert_eq!(Some(bytes), off_files.get(name), "subfile {name} differs");
    }
    // Switching integrity ON must also be deterministic, and visibly
    // different (checksummed layout is larger on the wire).
    let on1 = run(spec(IntegrityOpts::on()));
    let on2 = run(spec(IntegrityOpts::on()));
    assert_eq!(
        artifact(std::slice::from_ref(&on1.result)),
        artifact(std::slice::from_ref(&on2.result))
    );
    assert!(on1.result.total_bytes > base.result.total_bytes);
}

/// A disabled control loop is free, exactly: however aggressive the
/// knobs, `enabled: false` produces artifacts byte-identical to default
/// opts — no timers, no control messages, no tuner. And the enabled
/// loop is itself deterministic run-to-run.
#[test]
fn control_off_is_byte_identical_to_default() {
    use managed_io::adios::ControlOpts;
    let spec = |control| RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts {
                control,
                ..Default::default()
            },
        },
        interference: Interference::None,
        seed: SEED ^ 0x3F,
    };
    let aggressive_but_off = ControlOpts {
        enabled: false,
        epoch_secs: 0.1,
        straggler_factor: 1.1,
        min_samples: 1,
        spec_deadline_factor: 1.1,
        max_queue_depth: 16,
        ..ControlOpts::default()
    };
    let base = run(spec(ControlOpts::default()));
    let off = run(spec(aggressive_but_off));
    assert_eq!(
        artifact(std::slice::from_ref(&base.result)),
        artifact(std::slice::from_ref(&off.result)),
        "a disabled control loop changed the timeline"
    );
    let on1 = run(spec(ControlOpts::enabled()));
    let on2 = run(spec(ControlOpts::enabled()));
    assert_eq!(
        artifact(std::slice::from_ref(&on1.result)),
        artifact(std::slice::from_ref(&on2.result)),
        "the enabled control loop is nondeterministic"
    );
}

/// A silent-corruption-only fault script never perturbs the timeline:
/// the corruption RNG is an isolated stream and corruption windows
/// schedule no queue events, so the dirty run's records are
/// byte-identical to the clean run's — only the oracle differs.
#[test]
fn silent_corruption_leaves_timeline_identical() {
    let spec = || RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: SEED ^ 0x2F,
    };
    let clean = run(spec());
    let dirty = run_with_faults(
        spec(),
        FaultConfig {
            storage: managed_io::storesim::FaultScript::none()
                .silent_corruption(0.0, 0, None, 0.5)
                .silent_corruption(1.0, 3, Some(60.0), 1.0),
            ..Default::default()
        },
    );
    assert!(
        dirty.integrity.corrupt_records > 0,
        "the script must actually corrupt something"
    );
    assert_eq!(
        artifact(std::slice::from_ref(&clean.result)),
        artifact(std::slice::from_ref(&dirty.result)),
        "silent corruption leaked into the timeline"
    );
}

/// The shared-prefix sweep path: `RunBase::prepare` once + parallel
/// `run_seed_sweep` must be byte-identical to independent one-shot
/// `run()` calls per seed — including the materialised subfile bytes of
/// a real-data integrity-enabled run, the strictest artifact we have.
#[test]
fn run_base_sweep_matches_one_shot_runs() {
    use managed_io::adios::RunBase;
    use managed_io::bpfmt::IntegrityOpts;
    use managed_io::workloads::pixie3d::Pixie3dConfig;
    let cfg = Pixie3dConfig { cube: 5, nprocs: 16 };
    let mut rng = managed_io::simcore::Rng::new(91);
    let blocks: Vec<_> = (0..16).map(|r| cfg.blocks_of(r, &mut rng)).collect();
    let spec = |seed| RunSpec {
        machine: testbed(),
        nprocs: 16,
        data: DataSpec::Real(blocks.clone()),
        method: Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts {
                integrity: IntegrityOpts::on(),
                ..Default::default()
            },
        },
        interference: Interference::None,
        seed,
    };
    let seeds: Vec<u64> = (0..4).map(|i| SEED ^ 0x5EED ^ i).collect();
    let base = RunBase::prepare(spec(0));
    let swept = base.run_seed_sweep(&seeds);
    for (seed, shared) in seeds.iter().zip(&swept) {
        let solo = run(spec(*seed));
        assert_eq!(
            artifact(std::slice::from_ref(&solo.result)),
            artifact(std::slice::from_ref(&shared.result)),
            "shared-prefix sweep changed the timeline for seed {seed:#x}"
        );
        let (a, b) = (solo.subfiles.unwrap(), shared.subfiles.as_ref().unwrap());
        assert_eq!(a.len(), b.len());
        for (name, bytes) in &a {
            assert_eq!(Some(bytes), b.get(name), "subfile {name} differs");
        }
    }
}

/// The faulted sweep path: one fault config fanned across seeds through
/// `run_seed_sweep_with_faults` matches per-seed `run_with_faults`.
#[test]
fn run_base_faulted_sweep_matches_one_shot_runs() {
    use managed_io::adios::RunBase;
    let faults = FaultConfig {
        storage: managed_io::storesim::FaultScript::random(0x0BAD_F00D, 6, 2.0, 3),
        network: Some(NetFaults {
            dup_p: 0.1,
            delay_p: 0.1,
            delay_mean_secs: 0.02,
        }),
        kills: vec![(0.9, 5)],
    };
    let spec = |seed| RunSpec {
        machine: testbed(),
        nprocs: 16,
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed,
    };
    let seeds: Vec<u64> = (0..3).map(|i| SEED ^ 0xFA17 ^ i).collect();
    let base = RunBase::prepare(spec(0));
    let swept = base.run_seed_sweep_with_faults(&seeds, &faults);
    let solo: Vec<OutputResult> = seeds
        .iter()
        .map(|&s| run_with_faults(spec(s), faults.clone()).result)
        .collect();
    let shared: Vec<OutputResult> = swept.into_iter().map(|o| o.result).collect();
    assert_eq!(
        artifact(&solo),
        artifact(&shared),
        "shared-prefix faulted sweep diverged from one-shot runs"
    );
}

/// The env-driven path (`MANAGED_IO_THREADS`) that the fig1/fig7 and
/// campaign harnesses use: summaries are byte-identical under 1 vs 4
/// worker threads. This is the only test in this binary that touches the
/// env var, so there is no cross-test race.
#[test]
fn campaign_summaries_identical_across_thread_counts() {
    let run_campaign = || {
        let rs = sample_results(
            &testbed(),
            16,
            2 * MIB,
            &Method::Adaptive {
                targets: 4,
                opts: AdaptiveOpts::default(),
            },
            &Interference::None,
            5,
            SEED,
        );
        artifact(&rs)
    };
    std::env::set_var(THREADS_ENV, "1");
    let serial = run_campaign();
    std::env::set_var(THREADS_ENV, "4");
    let parallel = run_campaign();
    std::env::remove_var(THREADS_ENV);
    assert_eq!(serial, parallel, "MANAGED_IO_THREADS changed the artifact");
}

/// The tentpole contract of in-run sharding: a replicate advanced with
/// 1, 2 or 8 shard threads produces byte-identical artifacts. The shard
/// pool only changes which thread drains which lane heap — the drained
/// events, the deterministic `(time, target, submission)` harvest merge
/// and every downstream stat are invariant.
#[test]
fn sharded_replicates_match_serial_bytes() {
    use managed_io::adios::{RunBase, RunScratch};
    let base = RunBase::prepare(RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::Uniform(4 * MIB),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::paper_default(),
        seed: 0,
    });
    let faults = FaultConfig::none();
    let run_at = |shards: usize| {
        let mut scratch = RunScratch::with_shard_threads(shards);
        let results: Vec<OutputResult> = (0..3)
            .map(|i| {
                base.run_seed_scratch(SEED ^ 0x54AD ^ i, &faults, &mut scratch)
                    .result
            })
            .collect();
        artifact(&results)
    };
    let serial = run_at(1);
    assert!(!serial.is_empty());
    for shards in [2usize, 8] {
        assert_eq!(
            serial,
            run_at(shards),
            "{shards} shard threads changed the artifact"
        );
    }
}

/// Sharded advancement under a full fault cocktail (random storage
/// script, lossy network, mid-run rank kill): faults are global decision
/// points and shard cleanly, so the byte-identity contract holds on
/// damaged timelines too.
#[test]
fn sharded_faulted_replicates_match_serial_bytes() {
    use managed_io::adios::{RunBase, RunScratch};
    let base = RunBase::prepare(RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::Uniform(32 * MIB),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 0,
    });
    let faults = FaultConfig {
        storage: managed_io::storesim::FaultScript::random(0x5EED_FA17, 6, 2.0, 3),
        network: Some(NetFaults {
            dup_p: 0.15,
            delay_p: 0.15,
            delay_mean_secs: 0.03,
        }),
        kills: vec![(0.8, 9)],
    };
    let run_at = |shards: usize| {
        let mut scratch = RunScratch::with_shard_threads(shards);
        let results: Vec<OutputResult> = (0..2)
            .map(|i| {
                base.run_seed_scratch(SEED ^ 0xFA57 ^ i, &faults, &mut scratch)
                    .result
            })
            .collect();
        artifact(&results)
    };
    let serial = run_at(1);
    assert!(!serial.is_empty());
    for shards in [2usize, 8] {
        assert_eq!(
            serial,
            run_at(shards),
            "{shards} shard threads changed the faulted artifact"
        );
    }
}

/// The coupled lookahead pin: sharded macro-window drains through the
/// lookahead driver produce artifacts byte-identical to the stepwise
/// serial reference, on a faulted timeline. The full per-family matrix
/// lives in `tests/coupled_lookahead.rs`; this is the campaign-level
/// cross-check riding next to the in-run sharding pins above.
#[test]
fn lookahead_sharded_replicates_match_stepwise_serial_bytes() {
    use managed_io::adios::{RunBase, RunScratch};
    let base = RunBase::prepare(RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::Uniform(32 * MIB),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 0,
    });
    let faults = FaultConfig {
        storage: managed_io::storesim::FaultScript::random(0x1_00CA_4EAD, 6, 2.0, 3),
        network: Some(NetFaults {
            dup_p: 0.15,
            delay_p: 0.15,
            delay_mean_secs: 0.03,
        }),
        kills: vec![(0.8, 9)],
    };
    let run_at = |lookahead: bool, shards: usize| {
        let mut scratch = RunScratch::with_shard_threads(shards);
        scratch.set_lookahead(lookahead);
        let results: Vec<OutputResult> = (0..2)
            .map(|i| {
                base.run_seed_scratch(SEED ^ 0x10CA ^ i, &faults, &mut scratch)
                    .result
            })
            .collect();
        artifact(&results)
    };
    let reference = run_at(false, 1);
    assert!(!reference.is_empty());
    for shards in [1usize, 2, 8] {
        assert_eq!(
            reference,
            run_at(true, shards),
            "lookahead at {shards} shard threads changed the faulted artifact"
        );
    }
}

/// A disabled redundancy plane is free, exactly: however aggressive the
/// knobs, `enabled: false` delegates verbatim to the plain faulted run —
/// no shard campaign, no extra RNG draws, byte-identical artifacts. And
/// the enabled plane is itself deterministic run-to-run.
#[test]
fn redundancy_off_is_byte_identical_to_default() {
    use managed_io::adios::redundancy::RedundancyOpts;
    use managed_io::adios::run_with_redundancy;
    use managed_io::bpfmt::RedundancyPolicy;
    use managed_io::storesim::fault::{FailMode, FaultScript};

    let spec = || RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: SEED ^ 0xEC,
    };
    let faults = || FaultConfig {
        storage: FaultScript::none().fail_ost(1.0, 2, FailMode::Error, None),
        ..FaultConfig::none()
    };
    let aggressive_but_off = RedundancyOpts {
        enabled: false,
        policy: RedundancyPolicy::Ec { k: 8, m: 2 },
        rebuild: true,
        avoid_osts: vec![0, 1],
        rebuild_workers: 16,
        ..RedundancyOpts::off()
    };
    let base = run_with_faults(spec(), faults());
    let (off, off_report) = run_with_redundancy(spec(), faults(), &aggressive_but_off);
    assert!(off_report.is_none(), "a disabled plane must not run a campaign");
    assert_eq!(
        artifact(std::slice::from_ref(&base.result)),
        artifact(std::slice::from_ref(&off.result)),
        "a disabled redundancy plane changed the timeline"
    );
    let on_opts = RedundancyOpts::with_policy(RedundancyPolicy::Ec { k: 4, m: 2 });
    let (on1, rep1) = run_with_redundancy(spec(), faults(), &on_opts);
    let (on2, rep2) = run_with_redundancy(spec(), faults(), &on_opts);
    assert_eq!(
        artifact(std::slice::from_ref(&on1.result)),
        artifact(std::slice::from_ref(&on2.result)),
        "the base run must not feel the shard plane"
    );
    assert_eq!(
        artifact(std::slice::from_ref(&base.result)),
        artifact(std::slice::from_ref(&on1.result)),
        "the shard plane must ride alongside, not perturb, the base run"
    );
    assert_eq!(
        format!("{:?}", rep1.expect("enabled plane reports")),
        format!("{:?}", rep2.expect("enabled plane reports")),
        "the shard campaign is nondeterministic"
    );
}
