//! Allocation regression guard for the PG encode fast path.
//!
//! A counting global allocator wraps `System`; after a warmup encode has
//! interned the variable names and grown the scratch buffers to their
//! steady-state size, re-encoding the same process group must hit the
//! allocator zero times. This is the contract `EncodeScratch` exists
//! for — a per-step writer loop that stops paying the allocator.
//!
//! This file deliberately holds a single test: the counter is global, so
//! a concurrently running sibling test would perturb the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bpfmt::{encode_pg_opts, EncodeScratch, IntegrityOpts, VarBlock};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn steady_state_blocks() -> Vec<VarBlock> {
    // A realistic restart-dump shape: a few multi-dimensional variables
    // of different sizes, same layout every step.
    let var = |name: &str, n: usize| {
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        VarBlock::from_f64(name, vec![4, n as u64], vec![0, 0], vec![1, n as u64], &vals)
    };
    vec![var("psi", 512), var("density", 256), var("b_field", 1024)]
}

#[test]
fn steady_state_pg_encode_allocates_nothing() {
    let blocks = steady_state_blocks();
    let mut scratch = EncodeScratch::new();
    for integrity in [IntegrityOpts::off(), IntegrityOpts::on()] {
        // Warmup: interns names, grows the wire buffer and entry vec to
        // this PG's steady-state capacity.
        let (warm_bytes, warm_entries) = scratch.encode_pg(3, 0, &blocks, integrity);
        let (want_bytes, want_entries) = (warm_bytes.to_vec(), warm_entries.len());

        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for step in 1..=100u32 {
            let (bytes, entries) = scratch.encode_pg(3, step, &blocks, integrity);
            assert_eq!(bytes.len(), want_bytes.len());
            assert_eq!(entries.len(), want_entries);
        }
        let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        assert_eq!(
            allocs, 0,
            "steady-state encode_pg allocated {allocs} times over 100 steps \
             (integrity checked={})",
            integrity.enabled
        );

        // Sanity outside the counted window: the scratch path still
        // produces exactly the bytes of the allocating one-shot encoder.
        let (bytes, entries) = scratch.encode_pg(3, 0, &blocks, integrity);
        let (fresh_bytes, fresh_entries) = encode_pg_opts(3, 0, &blocks, integrity);
        assert_eq!(bytes, &fresh_bytes[..]);
        assert_eq!(entries, &fresh_entries[..]);
    }
}
