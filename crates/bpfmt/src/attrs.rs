//! Attributes: small named metadata values attached to an output step —
//! the BP format's second self-description channel next to variables
//! (units, physical time, code version, run configuration).

use crate::wire::{WireError, WireReader, WireWriter};

/// Magic opening a serialized attribute set.
pub const ATTR_MAGIC: u32 = 0x4250_4154; // "BPAT"

/// An attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// UTF-8 string.
    Str(String),
    /// 64-bit integer.
    I64(i64),
    /// Double.
    F64(f64),
    /// Vector of doubles (e.g. axis coordinates).
    F64Vec(Vec<f64>),
}

impl AttrValue {
    fn tag(&self) -> u8 {
        match self {
            AttrValue::Str(_) => 0,
            AttrValue::I64(_) => 1,
            AttrValue::F64(_) => 2,
            AttrValue::F64Vec(_) => 3,
        }
    }
}

/// A named attribute set, preserving insertion order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Attributes {
    entries: Vec<(String, AttrValue)>,
}

impl Attributes {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace an attribute.
    pub fn set(&mut self, name: impl Into<String>, value: AttrValue) -> &mut Self {
        let name = name.into();
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 = value;
        } else {
            self.entries.push((name, value));
        }
        self
    }

    /// Look up an attribute.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Serialize.
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(ATTR_MAGIC);
        w.u32(self.entries.len() as u32);
        for (name, value) in &self.entries {
            w.str(name);
            w.u8(value.tag());
            match value {
                AttrValue::Str(s) => w.str(s),
                AttrValue::I64(v) => w.u64(*v as u64),
                AttrValue::F64(v) => w.f64(*v),
                AttrValue::F64Vec(vs) => {
                    w.u32(vs.len() as u32);
                    for v in vs {
                        w.f64(*v);
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Parse a serialized attribute set.
    pub fn parse(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let magic = r.u32()?;
        if magic != ATTR_MAGIC {
            return Err(WireError::BadMagic {
                expected: ATTR_MAGIC as u64,
                found: magic as u64,
            });
        }
        let n = r.u32()? as usize;
        let mut out = Attributes::new();
        for _ in 0..n {
            let name = r.str()?;
            let value = match r.u8()? {
                0 => AttrValue::Str(r.str()?),
                1 => AttrValue::I64(r.u64()? as i64),
                2 => AttrValue::F64(r.f64()?),
                3 => {
                    let k = r.u32()? as usize;
                    let mut vs = Vec::with_capacity(k.min(1 << 20));
                    for _ in 0..k {
                        vs.push(r.f64()?);
                    }
                    AttrValue::F64Vec(vs)
                }
                other => return Err(WireError::BadEnum(other)),
            };
            out.entries.push((name, value));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Attributes {
        let mut a = Attributes::new();
        a.set("code", AttrValue::Str("pixie3d".into()))
            .set("step", AttrValue::I64(42))
            .set("time", AttrValue::F64(1.5e-3))
            .set("zaxis", AttrValue::F64Vec(vec![0.0, 0.5, 1.0]));
        a
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let back = Attributes::parse(&a.serialize()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn get_and_replace() {
        let mut a = sample();
        assert_eq!(a.get("step"), Some(&AttrValue::I64(42)));
        a.set("step", AttrValue::I64(43));
        assert_eq!(a.get("step"), Some(&AttrValue::I64(43)));
        assert_eq!(a.len(), 4, "replace does not duplicate");
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn insertion_order_preserved() {
        let a = sample();
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["code", "step", "time", "zaxis"]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().serialize();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Attributes::parse(&bytes),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn bad_tag_rejected() {
        let mut a = Attributes::new();
        a.set("x", AttrValue::I64(1));
        let mut bytes = a.serialize();
        // Corrupt the type tag (follows magic(4) + count(4) + "x"(2+1)).
        bytes[11] = 99;
        assert!(matches!(
            Attributes::parse(&bytes),
            Err(WireError::BadEnum(99))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().serialize();
        for cut in [3, 9, bytes.len() - 1] {
            assert!(Attributes::parse(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_set_roundtrips() {
        let a = Attributes::new();
        assert!(a.is_empty());
        assert_eq!(Attributes::parse(&a.serialize()).unwrap(), a);
    }

    #[test]
    fn negative_integers_survive() {
        let mut a = Attributes::new();
        a.set("v", AttrValue::I64(-12345));
        let back = Attributes::parse(&a.serialize()).unwrap();
        assert_eq!(back.get("v"), Some(&AttrValue::I64(-12345)));
    }
}
