//! Data characteristics: the per-block statistics the BP format embeds in
//! its indices.
//!
//! The paper (§III-3) relies on these to make the interim
//! search-instead-of-global-index workable: "the inclusion of the data
//! characteristics aid this search by enabling quickly searching for both
//! the content as well as the logical location of the data of interest."
//! We record min / max / count / sum (sum enables mean queries without
//! touching payloads).

use crate::wire::{WireError, WireReader, WireWriter};

/// Element types a variable payload can carry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DType {
    /// IEEE-754 double precision (the paper's codes write doubles).
    F64,
    /// 64-bit signed integer.
    I64,
    /// Raw bytes (opaque payloads; characteristics carry count only).
    U8,
}

impl DType {
    /// Element size in bytes.
    pub fn size(self) -> u64 {
        match self {
            DType::F64 | DType::I64 => 8,
            DType::U8 => 1,
        }
    }

    /// Wire discriminant.
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            DType::F64 => 0,
            DType::I64 => 1,
            DType::U8 => 2,
        }
    }

    pub(crate) fn from_wire(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(DType::F64),
            1 => Ok(DType::I64),
            2 => Ok(DType::U8),
            other => Err(WireError::BadEnum(other)),
        }
    }
}

/// Min/max/count/sum statistics of one variable block.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Characteristics {
    /// Smallest element (`NaN` when not applicable, e.g. raw bytes or an
    /// empty block).
    pub min: f64,
    /// Largest element (`NaN` when not applicable).
    pub max: f64,
    /// Element count.
    pub count: u64,
    /// Sum of elements (`NaN` when not applicable).
    pub sum: f64,
}

impl Characteristics {
    /// Characteristics of an empty/opaque block.
    pub fn opaque(count: u64) -> Self {
        Characteristics {
            min: f64::NAN,
            max: f64::NAN,
            count,
            sum: f64::NAN,
        }
    }

    /// Compute from a slice of doubles.
    pub fn of_f64(data: &[f64]) -> Self {
        if data.is_empty() {
            return Self::opaque(0);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in data {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        Characteristics {
            min,
            max,
            count: data.len() as u64,
            sum,
        }
    }

    /// Compute from a slice of i64 (statistics widen to f64).
    pub fn of_i64(data: &[i64]) -> Self {
        if data.is_empty() {
            return Self::opaque(0);
        }
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        let mut sum = 0.0;
        for &x in data {
            min = min.min(x);
            max = max.max(x);
            sum += x as f64;
        }
        Characteristics {
            min: min as f64,
            max: max as f64,
            count: data.len() as u64,
            sum,
        }
    }

    /// Compute from a raw payload interpreted as `dtype`.
    ///
    /// Panics if the payload length is not a multiple of the element size
    /// (a corrupt write; callers control payloads).
    pub fn of_payload(dtype: DType, payload: &[u8]) -> Self {
        let es = dtype.size() as usize;
        assert_eq!(
            payload.len() % es,
            0,
            "payload length {} not a multiple of element size {es}",
            payload.len()
        );
        // Fold straight over the wire bytes — same accumulation order as
        // `of_f64`/`of_i64` over a decoded slice, so the statistics are
        // bit-identical, without materialising a temporary vector (this
        // runs once per block on the encode fast path).
        match dtype {
            DType::U8 => Self::opaque(payload.len() as u64),
            DType::F64 => {
                if payload.is_empty() {
                    return Self::opaque(0);
                }
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut sum = 0.0;
                for c in payload.chunks_exact(8) {
                    let x = f64::from_le_bytes(c.try_into().expect("len 8"));
                    min = min.min(x);
                    max = max.max(x);
                    sum += x;
                }
                Characteristics {
                    min,
                    max,
                    count: (payload.len() / 8) as u64,
                    sum,
                }
            }
            DType::I64 => {
                if payload.is_empty() {
                    return Self::opaque(0);
                }
                let mut min = i64::MAX;
                let mut max = i64::MIN;
                let mut sum = 0.0;
                for c in payload.chunks_exact(8) {
                    let x = i64::from_le_bytes(c.try_into().expect("len 8"));
                    min = min.min(x);
                    max = max.max(x);
                    sum += x as f64;
                }
                Characteristics {
                    min: min as f64,
                    max: max as f64,
                    count: (payload.len() / 8) as u64,
                    sum,
                }
            }
        }
    }

    /// Mean of the block, if defined.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 || self.sum.is_nan() {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Merge with another block's characteristics (for global summaries).
    pub fn merge(&self, other: &Characteristics) -> Characteristics {
        let pick = |a: f64, b: f64, f: fn(f64, f64) -> f64| {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => f64::NAN,
                (true, false) => b,
                (false, true) => a,
                (false, false) => f(a, b),
            }
        };
        Characteristics {
            min: pick(self.min, other.min, f64::min),
            max: pick(self.max, other.max, f64::max),
            count: self.count + other.count,
            sum: pick(self.sum, other.sum, |a, b| a + b),
        }
    }

    /// True if `[min, max]` overlaps `[lo, hi]` — the characteristics-based
    /// content query used by the interim index search.
    pub fn may_contain_range(&self, lo: f64, hi: f64) -> bool {
        if self.min.is_nan() || self.max.is_nan() {
            // Opaque blocks cannot rule anything out.
            return self.count > 0;
        }
        self.min <= hi && self.max >= lo
    }

    pub(crate) fn write(&self, w: &mut WireWriter) {
        w.f64(self.min);
        w.f64(self.max);
        w.u64(self.count);
        w.f64(self.sum);
    }

    pub(crate) fn read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Characteristics {
            min: r.f64()?,
            max: r.f64()?,
            count: r.u64()?,
            sum: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireReader, WireWriter};

    #[test]
    fn f64_stats() {
        let c = Characteristics::of_f64(&[3.0, -1.0, 2.0]);
        assert_eq!(c.min, -1.0);
        assert_eq!(c.max, 3.0);
        assert_eq!(c.count, 3);
        assert_eq!(c.sum, 4.0);
        assert_eq!(c.mean(), Some(4.0 / 3.0));
    }

    #[test]
    fn i64_stats() {
        let c = Characteristics::of_i64(&[10, -5, 0]);
        assert_eq!(c.min, -5.0);
        assert_eq!(c.max, 10.0);
        assert_eq!(c.count, 3);
    }

    #[test]
    fn empty_is_opaque() {
        let c = Characteristics::of_f64(&[]);
        assert!(c.min.is_nan());
        assert_eq!(c.count, 0);
        assert_eq!(c.mean(), None);
    }

    #[test]
    fn payload_interpretation_matches_direct() {
        let vals = [1.5f64, -2.5, 100.0];
        let mut payload = Vec::new();
        for v in &vals {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let c = Characteristics::of_payload(DType::F64, &payload);
        assert_eq!(c, Characteristics::of_f64(&vals));
    }

    #[test]
    fn u8_payload_is_opaque_with_count() {
        let c = Characteristics::of_payload(DType::U8, &[1, 2, 3, 4]);
        assert_eq!(c.count, 4);
        assert!(c.min.is_nan());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_payload_panics() {
        Characteristics::of_payload(DType::F64, &[0u8; 7]);
    }

    #[test]
    fn merge_combines() {
        let a = Characteristics::of_f64(&[1.0, 2.0]);
        let b = Characteristics::of_f64(&[-3.0, 5.0]);
        let m = a.merge(&b);
        assert_eq!(m.min, -3.0);
        assert_eq!(m.max, 5.0);
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, 5.0);
    }

    #[test]
    fn merge_with_opaque_keeps_stats() {
        let a = Characteristics::of_f64(&[1.0]);
        let b = Characteristics::opaque(10);
        let m = a.merge(&b);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.count, 11);
    }

    #[test]
    fn range_query_semantics() {
        let c = Characteristics::of_f64(&[2.0, 8.0]);
        assert!(c.may_contain_range(7.0, 9.0));
        assert!(c.may_contain_range(0.0, 2.0));
        assert!(!c.may_contain_range(8.1, 100.0));
        assert!(!c.may_contain_range(-5.0, 1.9));
        // Opaque can't be excluded.
        assert!(Characteristics::opaque(5).may_contain_range(0.0, 1.0));
        assert!(!Characteristics::opaque(0).may_contain_range(0.0, 1.0));
    }

    #[test]
    fn wire_roundtrip() {
        let c = Characteristics::of_f64(&[1.0, 2.0, 3.0]);
        let mut w = WireWriter::new();
        c.write(&mut w);
        let buf = w.into_bytes();
        let back = Characteristics::read(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn dtype_wire_roundtrip() {
        for d in [DType::F64, DType::I64, DType::U8] {
            assert_eq!(DType::from_wire(d.to_wire()).unwrap(), d);
        }
        assert!(DType::from_wire(9).is_err());
    }
}
