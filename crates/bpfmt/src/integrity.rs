//! End-to-end data integrity: checksums, knobs and structured errors.
//!
//! The BP format was designed to survive the *quiet* failure modes of
//! petascale storage — silent corruption and torn tails — through
//! redundant per-process-group metadata and a recoverable footer index
//! (paper §III). This module supplies the pieces the rest of the crate
//! builds that story from:
//!
//! * [`crc64`] — a dependency-free CRC-64/XZ (ECMA-182 polynomial,
//!   reflected), used for every checksum in the checked ("v2") format.
//! * [`IntegrityOpts`] — the knob selecting between the legacy layout
//!   (byte-identical to the pre-integrity format) and the checked layout
//!   with per-payload CRCs, a per-PG header CRC and a checksummed footer
//!   with a duplicated mini-footer.
//! * [`IntegrityError`] — the structured error every reader-side path
//!   returns instead of panicking: bad checksums, torn tails, truncated
//!   process groups, out-of-bounds index entries.

use crate::chars::DType;
use crate::wire::WireError;

/// CRC-64/XZ generator polynomial, reflected form (ECMA-182).
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn build_crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = build_crc64_table();

/// CRC-64/XZ of a byte slice (init `!0`, reflected, final xor `!0`).
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Integrity knobs for the writer side. With `enabled == false` (the
/// default and [`IntegrityOpts::off`]) every encoder produces the legacy
/// layout byte-for-byte, so existing outputs, sizes and simulated
/// timelines are unchanged; with [`IntegrityOpts::on`] process groups and
/// index tails carry CRC64 checksums and the recoverable footer pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityOpts {
    /// Master switch for the checked format.
    pub enabled: bool,
}

impl IntegrityOpts {
    /// Legacy layout, no checksums (the default).
    pub fn off() -> Self {
        IntegrityOpts { enabled: false }
    }

    /// Checked layout: per-payload CRC64, PG header CRC, checksummed
    /// footer + duplicated mini-footer.
    pub fn on() -> Self {
        IntegrityOpts { enabled: true }
    }
}

/// A structured integrity failure from a reader-side path. Every decoding
/// or read function in this crate returns one of these instead of
/// panicking on malformed, truncated or corrupted input.
#[derive(Clone, Debug, PartialEq)]
pub enum IntegrityError {
    /// A low-level wire decoding failure (truncation, bad magic, …).
    Wire(WireError),
    /// A variable block's payload does not match its stored CRC.
    BadBlockCrc {
        /// Variable name (empty when unknown).
        var: String,
        /// Originating writer rank.
        rank: u32,
        /// CRC stored in the file/index.
        stored: u64,
        /// CRC recomputed from the payload bytes.
        computed: u64,
    },
    /// A process-group header failed its CRC — the PG start is corrupt.
    BadPgHeader {
        /// Byte offset of the PG within the scanned buffer.
        at: u64,
    },
    /// The footer / mini-footer pair is unreadable or inconsistent: the
    /// subfile tail was torn.
    TornFooter,
    /// The serialized index region does not match its footer CRC.
    BadIndexCrc {
        /// CRC stored in the footer.
        stored: u64,
        /// CRC recomputed over the index bytes.
        computed: u64,
    },
    /// A process group is cut short (truncated mid-header or mid-payload)
    /// at the given offset; forward-scan recovery cannot continue past it.
    TruncatedPg {
        /// Byte offset of the torn PG within the scanned buffer.
        at: u64,
    },
    /// An index entry points outside the subfile bytes.
    BlockOutOfBounds {
        /// Variable name.
        var: String,
        /// Claimed payload offset.
        offset: u64,
        /// Claimed payload length.
        len: u64,
        /// Actual subfile length.
        file_len: u64,
    },
    /// A typed read was attempted on a block of a different dtype.
    WrongDtype {
        /// Variable name.
        var: String,
        /// The dtype the caller asked for.
        expected: DType,
        /// The dtype the block actually holds.
        found: DType,
    },
    /// The variable has no blocks at the requested step.
    MissingVar {
        /// Variable name.
        var: String,
        /// Requested output step.
        step: u32,
    },
    /// A subfile named by the index is absent from the source.
    MissingSubfile {
        /// Subfile name.
        name: String,
    },
    /// A block's dimensionality is unsupported or inconsistent with its
    /// global array (offsets/extents outside the global dims).
    BadDims {
        /// Variable name.
        var: String,
        /// Dimension count observed.
        dims: usize,
    },
}

impl From<WireError> for IntegrityError {
    fn from(e: WireError) -> Self {
        IntegrityError::Wire(e)
    }
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::Wire(e) => write!(f, "wire decode failed: {e:?}"),
            IntegrityError::BadBlockCrc {
                var,
                rank,
                stored,
                computed,
            } => write!(
                f,
                "payload CRC mismatch for var {var:?} (rank {rank}): stored {stored:#018x}, computed {computed:#018x}"
            ),
            IntegrityError::BadPgHeader { at } => {
                write!(f, "process-group header CRC mismatch at offset {at}")
            }
            IntegrityError::TornFooter => write!(f, "subfile tail torn: footer/mini-footer unreadable"),
            IntegrityError::BadIndexCrc { stored, computed } => write!(
                f,
                "index CRC mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            IntegrityError::TruncatedPg { at } => {
                write!(f, "process group truncated at offset {at}")
            }
            IntegrityError::BlockOutOfBounds {
                var,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "block of var {var:?} at [{offset}, {offset}+{len}) exceeds subfile of {file_len} bytes"
            ),
            IntegrityError::WrongDtype {
                var,
                expected,
                found,
            } => write!(f, "var {var:?} is {found:?}, requested {expected:?}"),
            IntegrityError::MissingVar { var, step } => {
                write!(f, "no blocks of var {var:?} at step {step}")
            }
            IntegrityError::MissingSubfile { name } => {
                write!(f, "subfile {name:?} missing from source")
            }
            IntegrityError::BadDims { var, dims } => {
                write!(f, "var {var:?} has unsupported/inconsistent dims ({dims})")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_check_vector() {
        // CRC-64/XZ reference vector.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn crc64_detects_single_bit_flips() {
        let data = vec![0xA5u8; 256];
        let base = crc64(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc64(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn opts_default_is_off() {
        assert_eq!(IntegrityOpts::default(), IntegrityOpts::off());
        assert!(!IntegrityOpts::off().enabled);
        assert!(IntegrityOpts::on().enabled);
    }

    #[test]
    fn errors_display_compactly() {
        let e = IntegrityError::BadBlockCrc {
            var: "rho".into(),
            rank: 3,
            stored: 1,
            computed: 2,
        };
        assert!(format!("{e}").contains("rho"));
        assert!(format!("{}", IntegrityError::TornFooter).contains("torn"));
        let w: IntegrityError = WireError::Truncated { need: 8, have: 0 }.into();
        assert!(matches!(w, IntegrityError::Wire(_)));
    }
}
