//! End-to-end data integrity: checksums, knobs and structured errors.
//!
//! The BP format was designed to survive the *quiet* failure modes of
//! petascale storage — silent corruption and torn tails — through
//! redundant per-process-group metadata and a recoverable footer index
//! (paper §III). This module supplies the pieces the rest of the crate
//! builds that story from:
//!
//! * [`crc64`] — a dependency-free CRC-64/XZ (ECMA-182 polynomial,
//!   reflected), used for every checksum in the checked ("v2") format.
//! * [`IntegrityOpts`] — the knob selecting between the legacy layout
//!   (byte-identical to the pre-integrity format) and the checked layout
//!   with per-payload CRCs, a per-PG header CRC and a checksummed footer
//!   with a duplicated mini-footer.
//! * [`IntegrityError`] — the structured error every reader-side path
//!   returns instead of panicking: bad checksums, torn tails, truncated
//!   process groups, out-of-bounds index entries.

use crate::chars::DType;
use crate::wire::WireError;

/// CRC-64/XZ generator polynomial, reflected form (ECMA-182).
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn build_crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Slicing tables: `CRC64_TABLES[0]` is the classic byte-at-a-time
/// table; `CRC64_TABLES[j][b]` is the CRC contribution of byte `b` seen
/// `j` positions before the end of a group, so sixteen lookups fold two
/// whole u64s of input per hot-loop iteration (the tail falls back to
/// one-u64 groups, then single bytes).
const fn build_crc64_tables() -> [[u64; 256]; 16] {
    let t0 = build_crc64_table();
    let mut tables = [[0u64; 256]; 16];
    tables[0] = t0;
    let mut j = 1;
    while j < 16 {
        let mut b = 0;
        while b < 256 {
            let prev = tables[j - 1][b];
            tables[j][b] = t0[(prev & 0xFF) as usize] ^ (prev >> 8);
            b += 1;
        }
        j += 1;
    }
    tables
}

static CRC64_TABLES: [[u64; 256]; 16] = build_crc64_tables();

/// Fold one byte into a running (pre-inverted) CRC state.
#[inline(always)]
fn step_byte(crc: u64, b: u8) -> u64 {
    CRC64_TABLES[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8)
}

/// Fold bytes into a running (pre-inverted) CRC state, eight at a time.
#[inline]
fn update_state(mut crc: u64, bytes: &[u8]) -> u64 {
    // Hot loop: 16 input bytes per iteration. Only the first u64 carries
    // the running crc, so the two halves index disjoint table banks and
    // the sixteen loads are independent — the serial dependency is one
    // XOR tree per 16 bytes.
    let mut chunks16 = bytes.chunks_exact(16);
    for chunk in &mut chunks16 {
        let a = crc ^ u64::from_le_bytes(chunk[0..8].try_into().expect("len 8"));
        let b = u64::from_le_bytes(chunk[8..16].try_into().expect("len 8"));
        crc = CRC64_TABLES[15][(a & 0xFF) as usize]
            ^ CRC64_TABLES[14][((a >> 8) & 0xFF) as usize]
            ^ CRC64_TABLES[13][((a >> 16) & 0xFF) as usize]
            ^ CRC64_TABLES[12][((a >> 24) & 0xFF) as usize]
            ^ CRC64_TABLES[11][((a >> 32) & 0xFF) as usize]
            ^ CRC64_TABLES[10][((a >> 40) & 0xFF) as usize]
            ^ CRC64_TABLES[9][((a >> 48) & 0xFF) as usize]
            ^ CRC64_TABLES[8][((a >> 56) & 0xFF) as usize]
            ^ CRC64_TABLES[7][(b & 0xFF) as usize]
            ^ CRC64_TABLES[6][((b >> 8) & 0xFF) as usize]
            ^ CRC64_TABLES[5][((b >> 16) & 0xFF) as usize]
            ^ CRC64_TABLES[4][((b >> 24) & 0xFF) as usize]
            ^ CRC64_TABLES[3][((b >> 32) & 0xFF) as usize]
            ^ CRC64_TABLES[2][((b >> 40) & 0xFF) as usize]
            ^ CRC64_TABLES[1][((b >> 48) & 0xFF) as usize]
            ^ CRC64_TABLES[0][((b >> 56) & 0xFF) as usize];
    }
    let mut rest = chunks16.remainder();
    if rest.len() >= 8 {
        let x = crc ^ u64::from_le_bytes(rest[0..8].try_into().expect("len 8"));
        crc = CRC64_TABLES[7][(x & 0xFF) as usize]
            ^ CRC64_TABLES[6][((x >> 8) & 0xFF) as usize]
            ^ CRC64_TABLES[5][((x >> 16) & 0xFF) as usize]
            ^ CRC64_TABLES[4][((x >> 24) & 0xFF) as usize]
            ^ CRC64_TABLES[3][((x >> 32) & 0xFF) as usize]
            ^ CRC64_TABLES[2][((x >> 40) & 0xFF) as usize]
            ^ CRC64_TABLES[1][((x >> 48) & 0xFF) as usize]
            ^ CRC64_TABLES[0][((x >> 56) & 0xFF) as usize];
        rest = &rest[8..];
    }
    for &b in rest {
        crc = step_byte(crc, b);
    }
    crc
}

/// CRC-64/XZ of a byte slice (init `!0`, reflected, final xor `!0`).
/// Sliced table lookup: the hot loop folds sixteen input bytes per
/// iteration through sixteen compile-time tables; byte-identical to
/// [`crc64_bytewise`].
pub fn crc64(bytes: &[u8]) -> u64 {
    !update_state(!0u64, bytes)
}

/// Reference byte-at-a-time CRC-64/XZ. Kept as the differential-testing
/// baseline for [`crc64`] and as the "before" side of the data-plane
/// bench; not used on any hot path.
pub fn crc64_bytewise(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = step_byte(crc, b);
    }
    !crc
}

/// Streaming CRC-64/XZ hasher: feed a buffer in arbitrary chunks and get
/// the same digest [`crc64`] produces over their concatenation, so callers
/// that assemble a region piecewise (writer, recovery scan, scrub
/// re-encode) never have to re-slice or copy it into one buffer first.
#[derive(Clone, Copy, Debug)]
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    /// Fresh hasher (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc64 { state: !0u64 }
    }

    /// Fold more bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = update_state(self.state, bytes);
    }

    /// Digest of everything fed so far. Does not consume the hasher: more
    /// `update` calls continue the same stream.
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Crc64::new()
    }
}

/// Integrity knobs for the writer side. With `enabled == false` (the
/// default and [`IntegrityOpts::off`]) every encoder produces the legacy
/// layout byte-for-byte, so existing outputs, sizes and simulated
/// timelines are unchanged; with [`IntegrityOpts::on`] process groups and
/// index tails carry CRC64 checksums and the recoverable footer pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityOpts {
    /// Master switch for the checked format.
    pub enabled: bool,
}

impl IntegrityOpts {
    /// Legacy layout, no checksums (the default).
    pub fn off() -> Self {
        IntegrityOpts { enabled: false }
    }

    /// Checked layout: per-payload CRC64, PG header CRC, checksummed
    /// footer + duplicated mini-footer.
    pub fn on() -> Self {
        IntegrityOpts { enabled: true }
    }
}

/// A structured integrity failure from a reader-side path. Every decoding
/// or read function in this crate returns one of these instead of
/// panicking on malformed, truncated or corrupted input.
#[derive(Clone, Debug, PartialEq)]
pub enum IntegrityError {
    /// A low-level wire decoding failure (truncation, bad magic, …).
    Wire(WireError),
    /// A variable block's payload does not match its stored CRC.
    BadBlockCrc {
        /// Variable name (empty when unknown).
        var: String,
        /// Originating writer rank.
        rank: u32,
        /// CRC stored in the file/index.
        stored: u64,
        /// CRC recomputed from the payload bytes.
        computed: u64,
    },
    /// A process-group header failed its CRC — the PG start is corrupt.
    BadPgHeader {
        /// Byte offset of the PG within the scanned buffer.
        at: u64,
    },
    /// The footer / mini-footer pair is unreadable or inconsistent: the
    /// subfile tail was torn.
    TornFooter,
    /// The serialized index region does not match its footer CRC.
    BadIndexCrc {
        /// CRC stored in the footer.
        stored: u64,
        /// CRC recomputed over the index bytes.
        computed: u64,
    },
    /// A process group is cut short (truncated mid-header or mid-payload)
    /// at the given offset; forward-scan recovery cannot continue past it.
    TruncatedPg {
        /// Byte offset of the torn PG within the scanned buffer.
        at: u64,
    },
    /// An index entry points outside the subfile bytes.
    BlockOutOfBounds {
        /// Variable name.
        var: String,
        /// Claimed payload offset.
        offset: u64,
        /// Claimed payload length.
        len: u64,
        /// Actual subfile length.
        file_len: u64,
    },
    /// A typed read was attempted on a block of a different dtype.
    WrongDtype {
        /// Variable name.
        var: String,
        /// The dtype the caller asked for.
        expected: DType,
        /// The dtype the block actually holds.
        found: DType,
    },
    /// The variable has no blocks at the requested step.
    MissingVar {
        /// Variable name.
        var: String,
        /// Requested output step.
        step: u32,
    },
    /// A subfile named by the index is absent from the source.
    MissingSubfile {
        /// Subfile name.
        name: String,
    },
    /// A block's dimensionality is unsupported or inconsistent with its
    /// global array (offsets/extents outside the global dims).
    BadDims {
        /// Variable name.
        var: String,
        /// Dimension count observed.
        dims: usize,
    },
}

impl From<WireError> for IntegrityError {
    fn from(e: WireError) -> Self {
        IntegrityError::Wire(e)
    }
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::Wire(e) => write!(f, "wire decode failed: {e:?}"),
            IntegrityError::BadBlockCrc {
                var,
                rank,
                stored,
                computed,
            } => write!(
                f,
                "payload CRC mismatch for var {var:?} (rank {rank}): stored {stored:#018x}, computed {computed:#018x}"
            ),
            IntegrityError::BadPgHeader { at } => {
                write!(f, "process-group header CRC mismatch at offset {at}")
            }
            IntegrityError::TornFooter => write!(f, "subfile tail torn: footer/mini-footer unreadable"),
            IntegrityError::BadIndexCrc { stored, computed } => write!(
                f,
                "index CRC mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            IntegrityError::TruncatedPg { at } => {
                write!(f, "process group truncated at offset {at}")
            }
            IntegrityError::BlockOutOfBounds {
                var,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "block of var {var:?} at [{offset}, {offset}+{len}) exceeds subfile of {file_len} bytes"
            ),
            IntegrityError::WrongDtype {
                var,
                expected,
                found,
            } => write!(f, "var {var:?} is {found:?}, requested {expected:?}"),
            IntegrityError::MissingVar { var, step } => {
                write!(f, "no blocks of var {var:?} at step {step}")
            }
            IntegrityError::MissingSubfile { name } => {
                write!(f, "subfile {name:?} missing from source")
            }
            IntegrityError::BadDims { var, dims } => {
                write!(f, "var {var:?} has unsupported/inconsistent dims ({dims})")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_check_vector() {
        // CRC-64/XZ reference vector, against both implementations.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
        assert_eq!(crc64_bytewise(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64_bytewise(b""), 0);
    }

    /// Tiny deterministic RNG for the differential sweeps (xorshift64*).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn crc64_differential_slice_by_8_matches_bytewise() {
        let mut rng = Rng(0x5EED_C4C6_4444);
        // Every length in 0..=64 catches head/tail handling around the
        // 8-byte groups; a spread of larger lengths catches the main loop.
        let mut lengths: Vec<usize> = (0..=64).collect();
        lengths.extend([100, 255, 256, 257, 1000, 4096, 4099, 65_536 + 7]);
        for len in lengths {
            let data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            assert_eq!(
                crc64(&data),
                crc64_bytewise(&data),
                "len {len}: slice-by-8 diverged from bytewise reference"
            );
            // Misaligned views of the same buffer must agree too — the
            // fast path may not assume the slice starts on a boundary.
            for skip in 1..8.min(len) {
                assert_eq!(
                    crc64(&data[skip..]),
                    crc64_bytewise(&data[skip..]),
                    "len {len} skip {skip}"
                );
            }
        }
    }

    #[test]
    fn crc64_streaming_matches_one_shot_over_random_splits() {
        let mut rng = Rng(0xB10C_CAFE);
        for len in [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000, 4097] {
            let data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            let want = crc64(&data);
            // Chunked feeds, including empty chunks and 1..16-byte pieces.
            for round in 0..8 {
                let mut h = Crc64::new();
                let mut at = 0usize;
                while at < len {
                    let take = match round {
                        0 => 1,
                        1 => (rng.next() as usize % 16) + 1,
                        2 => 8,
                        _ => (rng.next() as usize % 37).min(len - at).max(1),
                    }
                    .min(len - at);
                    h.update(&data[at..at + take]);
                    if round == 3 {
                        h.update(&[]); // empty updates are no-ops
                    }
                    at += take;
                }
                assert_eq!(h.finish(), want, "len {len} round {round}");
            }
            assert_eq!(Crc64::default().finish(), 0);
        }
    }

    #[test]
    fn crc64_detects_single_bit_flips() {
        let data = vec![0xA5u8; 256];
        let base = crc64(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc64(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn opts_default_is_off() {
        assert_eq!(IntegrityOpts::default(), IntegrityOpts::off());
        assert!(!IntegrityOpts::off().enabled);
        assert!(IntegrityOpts::on().enabled);
    }

    #[test]
    fn errors_display_compactly() {
        let e = IntegrityError::BadBlockCrc {
            var: "rho".into(),
            rank: 3,
            stored: 1,
            computed: 2,
        };
        assert!(format!("{e}").contains("rho"));
        assert!(format!("{}", IntegrityError::TornFooter).contains("torn"));
        let w: IntegrityError = WireError::Truncated { need: 8, have: 0 }.into();
        assert!(matches!(w, IntegrityError::Wire(_)));
    }
}
