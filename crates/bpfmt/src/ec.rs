//! Erasure coding: GF(2^8) Reed–Solomon `k+m` codes over PG payload
//! extents, plus the tiered [`RedundancyPolicy`] selecting between no
//! redundancy, full replication, and erasure coding per object.
//!
//! The layout is *systematic*: the first `k` shards are contiguous slices
//! of the original payload (the last one zero-padded), so a clean read
//! never decodes anything — it concatenates the data shards and truncates.
//! The `m` parity shards are linear combinations of the data shards under
//! a Vandermonde-derived generator matrix whose top `k×k` block is the
//! identity; any `k` of the `k+m` shards suffice to reconstruct the rest.
//!
//! Shards travel inside checksummed [`PG_MAGIC2`](crate::pg::PG_MAGIC2)
//! process groups ([`encode_shard_pg`] / [`decode_shard_pg`]): a tiny
//! metadata block plus one opaque `U8` payload block, both CRC-64
//! protected, so a corrupted or torn shard surfaces as a structured
//! [`EcError::BadShardPg`] instead of garbage entering the decoder.

use crate::chars::DType;
use crate::integrity::{IntegrityError, IntegrityOpts};
use crate::intern::{Dims, VarName};
use crate::pg::{decode_pg_verified, encode_pg_opts, EncodeScratch, VarBlock};

// ---------------------------------------------------------------------------
// GF(2^8) arithmetic
// ---------------------------------------------------------------------------

/// The AES/QR-code field polynomial x^8 + x^4 + x^3 + x^2 + 1.
const GF_POLY: u16 = 0x11D;

/// exp table doubled to 512 entries so `mul` skips the mod-255 reduction.
const fn build_gf_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= GF_POLY;
        }
        i += 1;
    }
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

static GF_TABLES: ([u8; 512], [u8; 256]) = build_gf_tables();

#[inline]
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let (exp, log) = (&GF_TABLES.0, &GF_TABLES.1);
    exp[log[a as usize] as usize + log[b as usize] as usize]
}

#[inline]
fn gf_inv(a: u8) -> u8 {
    debug_assert!(a != 0, "inverse of 0 in GF(256)");
    let (exp, log) = (&GF_TABLES.0, &GF_TABLES.1);
    exp[255 - log[a as usize] as usize]
}

/// x^p for p < 256 (enough for Vandermonde rows up to k=255).
fn gf_pow(x: u8, p: usize) -> u8 {
    if p == 0 {
        return 1;
    }
    if x == 0 {
        return 0;
    }
    let (exp, log) = (&GF_TABLES.0, &GF_TABLES.1);
    exp[(log[x as usize] as usize * p) % 255]
}

/// Invert a k×k row-major matrix over GF(256) by Gauss–Jordan.
/// Returns `None` when singular (cannot happen for the Vandermonde-derived
/// submatrices we feed it, but the decoder stays total anyway).
fn gf_invert(mat: &[u8], k: usize) -> Option<Vec<u8>> {
    debug_assert_eq!(mat.len(), k * k);
    // Augmented [mat | I].
    let w = 2 * k;
    let mut aug = vec![0u8; k * w];
    for r in 0..k {
        aug[r * w..r * w + k].copy_from_slice(&mat[r * k..(r + 1) * k]);
        aug[r * w + k + r] = 1;
    }
    for col in 0..k {
        // Find a pivot.
        let pivot = (col..k).find(|&r| aug[r * w + col] != 0)?;
        if pivot != col {
            for c in 0..w {
                aug.swap(pivot * w + c, col * w + c);
            }
        }
        let inv = gf_inv(aug[col * w + col]);
        for c in 0..w {
            aug[col * w + c] = gf_mul(aug[col * w + c], inv);
        }
        for r in 0..k {
            if r == col {
                continue;
            }
            let f = aug[r * w + col];
            if f == 0 {
                continue;
            }
            for c in 0..w {
                aug[r * w + c] ^= gf_mul(f, aug[col * w + c]);
            }
        }
    }
    let mut out = vec![0u8; k * k];
    for r in 0..k {
        out[r * k..(r + 1) * k].copy_from_slice(&aug[r * w + k..r * w + 2 * k]);
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Structured erasure-coding failures. Decoding never panics and never
/// silently returns garbage: too few survivors is [`EcError::Unrecoverable`],
/// a malformed or corrupted shard PG is [`EcError::BadShardPg`] /
/// [`EcError::NotAShardPg`].
#[derive(Clone, Debug, PartialEq)]
pub enum EcError {
    /// Fewer than `need` shards survive; reconstruction is impossible.
    Unrecoverable {
        /// Surviving shard count.
        have: usize,
        /// Minimum shards required (`k` for `Ec`, 1 otherwise).
        need: usize,
    },
    /// Invalid code parameters (`k = 0`, `m = 0`, `k + m > 255`, or a
    /// replica count < 2).
    BadParams {
        /// Requested data-shard count (or replica count).
        k: usize,
        /// Requested parity-shard count.
        m: usize,
    },
    /// A shard's byte length disagrees with its siblings.
    ShardLenMismatch {
        /// Shard index with the deviant length.
        index: usize,
        /// Its length.
        len: usize,
        /// The length established by the first surviving shard.
        expected: usize,
    },
    /// A shard index is out of range for the code.
    BadShardIndex {
        /// The offending index.
        index: usize,
        /// Total shard count `k + m`.
        total: usize,
    },
    /// A shard PG failed wire or checksum verification.
    BadShardPg(IntegrityError),
    /// The bytes decoded as a valid PG but do not carry shard framing
    /// (wrong block names, bad metadata length, inconsistent lengths).
    NotAShardPg,
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::Unrecoverable { have, need } => {
                write!(f, "unrecoverable: {have} shards survive, {need} needed")
            }
            EcError::BadParams { k, m } => write!(f, "bad code parameters k={k} m={m}"),
            EcError::ShardLenMismatch {
                index,
                len,
                expected,
            } => write!(f, "shard {index} has {len} bytes, expected {expected}"),
            EcError::BadShardIndex { index, total } => {
                write!(f, "shard index {index} out of range for {total} shards")
            }
            EcError::BadShardPg(e) => write!(f, "shard PG failed verification: {e}"),
            EcError::NotAShardPg => write!(f, "PG does not carry shard framing"),
        }
    }
}

impl std::error::Error for EcError {}

// ---------------------------------------------------------------------------
// RedundancyPolicy
// ---------------------------------------------------------------------------

/// Per-object durability tier: how one PG payload is materialized across
/// storage targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RedundancyPolicy {
    /// Single copy; any destroyed-data fault on its OST loses the extent.
    #[default]
    None,
    /// `n ≥ 2` full copies on distinct OSTs; tolerates `n - 1` losses at
    /// `n×` storage and rewrite cost.
    Replicate(u8),
    /// `k` data + `m` parity shards on distinct OSTs; tolerates any `m`
    /// losses at `(k+m)/k×` storage and per-shard rewrite cost.
    Ec {
        /// Data shards.
        k: u8,
        /// Parity shards.
        m: u8,
    },
}

impl RedundancyPolicy {
    /// Validate parameters: `Replicate(n)` needs `n ≥ 2`; `Ec{k,m}` needs
    /// `k ≥ 1`, `m ≥ 1`, `k + m ≤ 255`.
    pub fn validate(&self) -> Result<(), EcError> {
        match *self {
            RedundancyPolicy::None => Ok(()),
            RedundancyPolicy::Replicate(n) if n >= 2 => Ok(()),
            RedundancyPolicy::Replicate(n) => Err(EcError::BadParams {
                k: n as usize,
                m: 0,
            }),
            RedundancyPolicy::Ec { k, m } if k >= 1 && m >= 1 => Ok(()),
            RedundancyPolicy::Ec { k, m } => Err(EcError::BadParams {
                k: k as usize,
                m: m as usize,
            }),
        }
    }

    /// Total shards materialized per object (1, `n`, or `k + m`).
    pub fn shard_count(&self) -> usize {
        match *self {
            RedundancyPolicy::None => 1,
            RedundancyPolicy::Replicate(n) => n as usize,
            RedundancyPolicy::Ec { k, m } => k as usize + m as usize,
        }
    }

    /// Shards needed to read the payload back (1, 1, or `k`).
    pub fn data_shards(&self) -> usize {
        match *self {
            RedundancyPolicy::None | RedundancyPolicy::Replicate(_) => 1,
            RedundancyPolicy::Ec { k, .. } => k as usize,
        }
    }

    /// Shard losses the policy survives (0, `n - 1`, or `m`).
    pub fn tolerates(&self) -> usize {
        self.shard_count() - self.data_shards()
    }

    /// Bytes stored per payload byte (1, `n`, or `(k+m)/k`).
    pub fn storage_overhead(&self) -> f64 {
        self.shard_count() as f64 / self.data_shards() as f64
    }

    /// Short stable label for bench artifacts (`none`, `rep2`, `ec8+2`).
    pub fn label(&self) -> String {
        match *self {
            RedundancyPolicy::None => "none".to_string(),
            RedundancyPolicy::Replicate(n) => format!("rep{n}"),
            RedundancyPolicy::Ec { k, m } => format!("ec{k}+{m}"),
        }
    }

    /// Bytes each shard carries for a payload of `len` bytes (`None` and
    /// `Replicate` shards carry the whole payload; `Ec` shards carry
    /// `ceil(len / k)`).
    pub fn shard_len(&self, len: usize) -> usize {
        match *self {
            RedundancyPolicy::None | RedundancyPolicy::Replicate(_) => len,
            RedundancyPolicy::Ec { k, .. } => len.div_ceil(k as usize),
        }
    }

    /// Materialize a payload under this policy: the per-shard byte
    /// vectors, index-aligned with the policy's placement order (data
    /// shards first for `Ec`).
    pub fn shards_of_payload(&self, payload: &[u8]) -> Result<Vec<Vec<u8>>, EcError> {
        self.validate()?;
        match *self {
            RedundancyPolicy::None => Ok(vec![payload.to_vec()]),
            RedundancyPolicy::Replicate(n) => Ok(vec![payload.to_vec(); n as usize]),
            RedundancyPolicy::Ec { k, m } => {
                Ok(RsCode::new(k as usize, m as usize)?.encode(payload))
            }
        }
    }

    /// Recover the original payload from surviving shards (index-aligned
    /// with [`RedundancyPolicy::shards_of_payload`]; `None` = lost).
    /// `payload_len` truncates the final padding.
    pub fn payload_of_shards(
        &self,
        shards: &[Option<Vec<u8>>],
        payload_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        self.validate()?;
        match *self {
            RedundancyPolicy::None | RedundancyPolicy::Replicate(_) => {
                let survivor = shards.iter().flatten().next().ok_or({
                    EcError::Unrecoverable { have: 0, need: 1 }
                })?;
                let mut out = survivor.clone();
                out.truncate(payload_len);
                Ok(out)
            }
            RedundancyPolicy::Ec { k, m } => {
                RsCode::new(k as usize, m as usize)?.decode_payload(shards, payload_len)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reed–Solomon code
// ---------------------------------------------------------------------------

/// A systematic `k+m` Reed–Solomon code over GF(2^8).
///
/// The generator matrix is the `(k+m)×k` Vandermonde matrix over the
/// distinct points `0..k+m`, column-reduced so its top `k×k` block is the
/// identity — data shards are verbatim payload slices, and any `k` rows
/// remain linearly independent, so any `k` surviving shards reconstruct
/// the rest.
#[derive(Clone, Debug)]
pub struct RsCode {
    k: usize,
    m: usize,
    /// `m×k` parity rows of the reduced generator matrix, row-major.
    parity: Vec<u8>,
}

impl RsCode {
    /// Build the code for `k` data and `m` parity shards.
    pub fn new(k: usize, m: usize) -> Result<Self, EcError> {
        if k == 0 || m == 0 || k + m > 255 {
            return Err(EcError::BadParams { k, m });
        }
        let n = k + m;
        // Vandermonde over points 0..n: row i = [i^0, i^1, .., i^(k-1)].
        let mut vand = vec![0u8; n * k];
        for (i, row) in vand.chunks_exact_mut(k).enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = gf_pow(i as u8, j);
            }
        }
        // Column-reduce: G = V · top⁻¹ makes the top k×k an identity while
        // preserving the any-k-rows-invertible property.
        let top_inv = gf_invert(&vand[..k * k], k).expect("Vandermonde top block is invertible");
        let mut parity = vec![0u8; m * k];
        for i in 0..m {
            let vrow = &vand[(k + i) * k..(k + i + 1) * k];
            for j in 0..k {
                let mut acc = 0u8;
                for (t, &v) in vrow.iter().enumerate() {
                    acc ^= gf_mul(v, top_inv[t * k + j]);
                }
                parity[i * k + j] = acc;
            }
        }
        Ok(RsCode { k, m, parity })
    }

    /// Data shard count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total shard count `k + m`.
    pub fn total(&self) -> usize {
        self.k + self.m
    }

    /// Shard length for a payload of `len` bytes: `ceil(len / k)`, with a
    /// 1-byte floor so zero-length payloads still carry decodable parity.
    pub fn shard_len(&self, len: usize) -> usize {
        len.div_ceil(self.k).max(1)
    }

    /// Split `payload` into `k` systematic data shards (the last one
    /// zero-padded to the shard length) and compute `m` parity shards.
    /// Returns `k + m` equal-length vectors, data first.
    pub fn encode(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let slen = self.shard_len(payload.len());
        let mut shards = Vec::with_capacity(self.total());
        for j in 0..self.k {
            let start = (j * slen).min(payload.len());
            let end = ((j + 1) * slen).min(payload.len());
            let mut s = payload[start..end].to_vec();
            s.resize(slen, 0);
            shards.push(s);
        }
        for i in 0..self.m {
            let row = &self.parity[i * self.k..(i + 1) * self.k];
            let mut p = vec![0u8; slen];
            for (j, &coef) in row.iter().enumerate() {
                if coef == 0 {
                    continue;
                }
                for (b, pb) in shards[j].iter().zip(p.iter_mut()) {
                    *pb ^= gf_mul(coef, *b);
                }
            }
            shards.push(p);
        }
        shards
    }

    /// Full generator row for shard `idx`: `e_idx` for data shards, the
    /// parity row otherwise.
    fn row(&self, idx: usize) -> Vec<u8> {
        let mut r = vec![0u8; self.k];
        if idx < self.k {
            r[idx] = 1;
        } else {
            r.copy_from_slice(&self.parity[(idx - self.k) * self.k..(idx - self.k + 1) * self.k]);
        }
        r
    }

    /// Reconstruct every missing shard in place from any `k` survivors.
    ///
    /// `shards` must have exactly `k + m` slots, `None` marking losses.
    /// On success all slots are `Some` with equal lengths. Errors are
    /// structured: fewer than `k` survivors → [`EcError::Unrecoverable`],
    /// survivor length disagreement → [`EcError::ShardLenMismatch`].
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        if shards.len() != self.total() {
            return Err(EcError::BadShardIndex {
                index: shards.len(),
                total: self.total(),
            });
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(EcError::Unrecoverable {
                have: present.len(),
                need: self.k,
            });
        }
        let slen = shards[present[0]].as_ref().expect("present").len();
        for &i in &present {
            let l = shards[i].as_ref().expect("present").len();
            if l != slen {
                return Err(EcError::ShardLenMismatch {
                    index: i,
                    len: l,
                    expected: slen,
                });
            }
        }
        if present.len() == shards.len() {
            return Ok(());
        }
        // Solve data = M⁻¹ · survivors, where M stacks the generator rows
        // of the first k survivors.
        let chosen = &present[..self.k];
        let mut mat = vec![0u8; self.k * self.k];
        for (r, &idx) in chosen.iter().enumerate() {
            mat[r * self.k..(r + 1) * self.k].copy_from_slice(&self.row(idx));
        }
        let inv = gf_invert(&mat, self.k).ok_or(EcError::Unrecoverable {
            have: present.len(),
            need: self.k,
        })?;
        let mut data = vec![vec![0u8; slen]; self.k];
        for (j, drow) in data.iter_mut().enumerate() {
            for (r, &idx) in chosen.iter().enumerate() {
                let coef = inv[j * self.k + r];
                if coef == 0 {
                    continue;
                }
                let src = shards[idx].as_ref().expect("chosen survivor");
                for (b, db) in src.iter().zip(drow.iter_mut()) {
                    *db ^= gf_mul(coef, *b);
                }
            }
        }
        // Fill missing data shards verbatim, recompute missing parity.
        for idx in 0..shards.len() {
            if shards[idx].is_some() {
                continue;
            }
            if idx < self.k {
                shards[idx] = Some(data[idx].clone());
            } else {
                let row = &self.parity[(idx - self.k) * self.k..(idx - self.k + 1) * self.k];
                let mut p = vec![0u8; slen];
                for (j, &coef) in row.iter().enumerate() {
                    if coef == 0 {
                        continue;
                    }
                    for (b, pb) in data[j].iter().zip(p.iter_mut()) {
                        *pb ^= gf_mul(coef, *b);
                    }
                }
                shards[idx] = Some(p);
            }
        }
        Ok(())
    }

    /// Recover the original payload (clean path: concatenate the `k` data
    /// shards; degraded path: reconstruct first). `payload_len` strips the
    /// final shard's zero padding.
    pub fn decode_payload(
        &self,
        shards: &[Option<Vec<u8>>],
        payload_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        let mut work: Vec<Option<Vec<u8>>> = shards.to_vec();
        self.reconstruct(&mut work)?;
        let mut out = Vec::with_capacity(payload_len);
        for s in work.iter().take(self.k) {
            out.extend_from_slice(s.as_ref().expect("reconstructed"));
        }
        out.truncate(payload_len);
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Shard PG framing
// ---------------------------------------------------------------------------

/// Variable name carrying shard metadata inside a shard PG.
pub const SHARD_META_VAR: &str = "__ec/meta";
/// Variable name carrying the opaque shard bytes inside a shard PG.
pub const SHARD_DATA_VAR: &str = "__ec/shard";

const SHARD_META_LEN: usize = 28;

/// Self-describing identity of one shard, embedded in its PG so a rebuild
/// can re-derive code parameters from any surviving shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard index in `0..k+m` (for `Replicate`, the copy index in `0..n`).
    pub index: u32,
    /// Data shard count (`k`; for `Replicate(n)` this is 1).
    pub k: u32,
    /// Parity / extra-copy count (`m`; for `Replicate(n)` this is `n-1`).
    pub m: u32,
    /// Bytes in this shard.
    pub shard_len: u64,
    /// Bytes in the original payload (strips the final shard's padding).
    pub payload_len: u64,
}

impl ShardMeta {
    fn to_payload(self) -> Vec<u8> {
        let mut p = Vec::with_capacity(SHARD_META_LEN);
        p.extend_from_slice(&self.index.to_le_bytes());
        p.extend_from_slice(&self.k.to_le_bytes());
        p.extend_from_slice(&self.m.to_le_bytes());
        p.extend_from_slice(&self.shard_len.to_le_bytes());
        p.extend_from_slice(&self.payload_len.to_le_bytes());
        p
    }

    fn from_payload(p: &[u8]) -> Option<Self> {
        if p.len() != SHARD_META_LEN {
            return None;
        }
        Some(ShardMeta {
            index: u32::from_le_bytes(p[0..4].try_into().ok()?),
            k: u32::from_le_bytes(p[4..8].try_into().ok()?),
            m: u32::from_le_bytes(p[8..12].try_into().ok()?),
            shard_len: u64::from_le_bytes(p[12..20].try_into().ok()?),
            payload_len: u64::from_le_bytes(p[20..28].try_into().ok()?),
        })
    }

    /// The policy this shard belongs to.
    pub fn policy(&self) -> RedundancyPolicy {
        if self.k == 1 && self.m == 0 {
            RedundancyPolicy::None
        } else if self.k == 1 {
            RedundancyPolicy::Replicate((1 + self.m) as u8)
        } else {
            RedundancyPolicy::Ec {
                k: self.k as u8,
                m: self.m as u8,
            }
        }
    }
}

/// Shard-metadata (k, m) encoding for a policy.
pub fn shard_meta_params(policy: RedundancyPolicy) -> (u32, u32) {
    match policy {
        RedundancyPolicy::None => (1, 0),
        RedundancyPolicy::Replicate(n) => (1, n as u32 - 1),
        RedundancyPolicy::Ec { k, m } => (k as u32, m as u32),
    }
}

fn shard_blocks(meta: ShardMeta, shard: &[u8]) -> [VarBlock; 2] {
    let n = meta.k + meta.m;
    [
        VarBlock {
            name: VarName::intern(SHARD_META_VAR),
            dtype: DType::U8,
            global_dims: Dims::from(vec![n as u64, SHARD_META_LEN as u64]),
            offsets: Dims::from(vec![meta.index as u64, 0]),
            local_dims: Dims::from(vec![1, SHARD_META_LEN as u64]),
            payload: meta.to_payload(),
        },
        VarBlock {
            name: VarName::intern(SHARD_DATA_VAR),
            dtype: DType::U8,
            global_dims: Dims::from(vec![n as u64, meta.shard_len]),
            offsets: Dims::from(vec![meta.index as u64, 0]),
            local_dims: Dims::from(vec![1, meta.shard_len]),
            payload: shard.to_vec(),
        },
    ]
}

/// Frame one shard as a checksummed `PG_MAGIC2` process group: a metadata
/// block plus the opaque shard bytes, both CRC-64 protected. `rank` and
/// `step` identify the source PG the shard protects.
pub fn encode_shard_pg(rank: u32, step: u32, meta: ShardMeta, shard: &[u8]) -> Vec<u8> {
    debug_assert_eq!(meta.shard_len as usize, shard.len());
    encode_pg_opts(rank, step, &shard_blocks(meta, shard), IntegrityOpts::on()).0
}

/// [`encode_shard_pg`] through a reusable [`EncodeScratch`] — the rebuild
/// fast path re-encodes reconstructed shards without fresh allocations.
pub fn encode_shard_pg_scratch<'a>(
    scratch: &'a mut EncodeScratch,
    rank: u32,
    step: u32,
    meta: ShardMeta,
    shard: &[u8],
) -> &'a [u8] {
    debug_assert_eq!(meta.shard_len as usize, shard.len());
    let blocks = shard_blocks(meta, shard);
    scratch.encode_pg(rank, step, &blocks, IntegrityOpts::on()).0
}

/// Verify and unframe a shard PG: returns the PG identity (`rank`,
/// `step`), the shard metadata, and the shard bytes. Wire or checksum
/// damage is [`EcError::BadShardPg`]; structurally valid PGs that are not
/// shard frames are [`EcError::NotAShardPg`]. Never panics on arbitrary
/// input.
pub fn decode_shard_pg(bytes: &[u8]) -> Result<(u32, u32, ShardMeta, Vec<u8>), EcError> {
    let (rank, step, blocks) = decode_pg_verified(bytes).map_err(EcError::BadShardPg)?;
    if blocks.len() != 2 {
        return Err(EcError::NotAShardPg);
    }
    let meta_block = &blocks[0];
    let data_block = &blocks[1];
    if meta_block.name.as_str() != SHARD_META_VAR || data_block.name.as_str() != SHARD_DATA_VAR {
        return Err(EcError::NotAShardPg);
    }
    let meta = ShardMeta::from_payload(&meta_block.payload).ok_or(EcError::NotAShardPg)?;
    if meta.shard_len as usize != data_block.payload.len() {
        return Err(EcError::NotAShardPg);
    }
    let total = (meta.k + meta.m) as usize;
    if meta.index as usize >= total {
        return Err(EcError::NotAShardPg);
    }
    let shard = blocks.into_iter().nth(1).expect("2 blocks").payload;
    Ok((rank, step, meta, shard))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn gf_field_axioms() {
        // Multiplicative inverses and distributivity on a sample grid.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
        for a in [1u8, 2, 3, 7, 29, 131, 255] {
            for b in [0u8, 1, 2, 5, 97, 200, 255] {
                for c in [1u8, 4, 88, 254] {
                    assert_eq!(
                        gf_mul(a, b ^ c),
                        gf_mul(a, b) ^ gf_mul(a, c),
                        "a={a} b={b} c={c}"
                    );
                }
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
            }
        }
        assert_eq!(gf_pow(2, 8), 0x1D, "x^8 reduces by the field polynomial");
    }

    #[test]
    fn matrix_inverse_roundtrip() {
        let k = 4;
        // Vandermonde over distinct points 2, 3, 4, 5: provably invertible.
        let mut mat = vec![0u8; 16];
        for (r, &x) in [2u8, 3, 4, 5].iter().enumerate() {
            for c in 0..k {
                mat[r * k + c] = gf_pow(x, c);
            }
        }
        let inv = gf_invert(&mat, k).expect("invertible");
        // mat · inv = I
        for r in 0..k {
            for c in 0..k {
                let mut acc = 0u8;
                for t in 0..k {
                    acc ^= gf_mul(mat[r * k + t], inv[t * k + c]);
                }
                assert_eq!(acc, u8::from(r == c), "({r},{c})");
            }
        }
        // Singular matrix is refused, not mis-inverted.
        assert!(gf_invert(&[1, 2, 2, 4], 2).is_none());
    }

    #[test]
    fn systematic_layout_is_verbatim_payload() {
        let code = RsCode::new(4, 2).unwrap();
        let p = payload(401, 7);
        let shards = code.encode(&p);
        assert_eq!(shards.len(), 6);
        let slen = code.shard_len(p.len());
        let mut concat = Vec::new();
        for s in &shards[..4] {
            assert_eq!(s.len(), slen);
            concat.extend_from_slice(s);
        }
        concat.truncate(p.len());
        assert_eq!(concat, p, "clean read is concatenation, no decode");
    }

    #[test]
    fn reconstructs_from_any_k_subset() {
        let code = RsCode::new(4, 2).unwrap();
        let p = payload(257, 3);
        let full = code.encode(&p);
        let n = code.total();
        // Every way of keeping exactly k shards.
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != code.k() {
                continue;
            }
            let mut shards: Vec<Option<Vec<u8>>> = (0..n)
                .map(|i| (mask >> i & 1 == 1).then(|| full[i].clone()))
                .collect();
            code.reconstruct(&mut shards).expect("k survivors suffice");
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &full[i], "mask={mask:06b} shard {i}");
            }
            assert_eq!(code.decode_payload(&shards, p.len()).unwrap(), p);
        }
    }

    #[test]
    fn more_than_m_losses_is_structured_unrecoverable() {
        let code = RsCode::new(3, 2).unwrap();
        let full = code.encode(&payload(100, 1));
        let mut shards: Vec<Option<Vec<u8>>> = full.into_iter().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[4] = None; // 3 losses > m=2
        assert_eq!(
            code.reconstruct(&mut shards),
            Err(EcError::Unrecoverable { have: 2, need: 3 })
        );
    }

    #[test]
    fn shard_length_disagreement_is_loud() {
        let code = RsCode::new(2, 1).unwrap();
        let full = code.encode(&payload(64, 9));
        let mut shards: Vec<Option<Vec<u8>>> = full.into_iter().map(Some).collect();
        shards[1].as_mut().unwrap().push(0xAA);
        shards[2] = None;
        assert!(matches!(
            code.reconstruct(&mut shards),
            Err(EcError::ShardLenMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn empty_and_tiny_payloads_roundtrip() {
        for len in [0usize, 1, 2, 3, 7, 8] {
            let code = RsCode::new(8, 2).unwrap();
            let p = payload(len, len as u64 + 11);
            let full = code.encode(&p);
            let mut shards: Vec<Option<Vec<u8>>> = full.into_iter().map(Some).collect();
            shards[0] = None;
            shards[9] = None;
            assert_eq!(
                code.decode_payload(&shards, p.len()).unwrap(),
                p,
                "len={len}"
            );
        }
    }

    #[test]
    fn policy_validation_and_accounting() {
        assert!(RedundancyPolicy::None.validate().is_ok());
        assert!(RedundancyPolicy::Replicate(2).validate().is_ok());
        assert!(RedundancyPolicy::Replicate(1).validate().is_err());
        assert!(RedundancyPolicy::Ec { k: 8, m: 2 }.validate().is_ok());
        assert!(RedundancyPolicy::Ec { k: 0, m: 2 }.validate().is_err());
        assert!(RedundancyPolicy::Ec { k: 8, m: 0 }.validate().is_err());

        let ec = RedundancyPolicy::Ec { k: 8, m: 2 };
        assert_eq!(ec.shard_count(), 10);
        assert_eq!(ec.tolerates(), 2);
        assert!((ec.storage_overhead() - 1.25).abs() < 1e-12);
        assert_eq!(ec.label(), "ec8+2");
        let rep = RedundancyPolicy::Replicate(2);
        assert_eq!(rep.shard_count(), 2);
        assert_eq!(rep.tolerates(), 1);
        assert_eq!(rep.label(), "rep2");
        assert_eq!(RedundancyPolicy::None.label(), "none");
    }

    #[test]
    fn policy_shards_roundtrip_all_tiers() {
        let p = payload(777, 21);
        for policy in [
            RedundancyPolicy::None,
            RedundancyPolicy::Replicate(3),
            RedundancyPolicy::Ec { k: 4, m: 2 },
        ] {
            let shards = policy.shards_of_payload(&p).unwrap();
            assert_eq!(shards.len(), policy.shard_count());
            let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            // Knock out as many shards as the tier tolerates.
            for s in opt.iter_mut().take(policy.tolerates()) {
                *s = None;
            }
            assert_eq!(
                policy.payload_of_shards(&opt, p.len()).unwrap(),
                p,
                "{}",
                policy.label()
            );
        }
        // Total loss is loud for every tier.
        for policy in [RedundancyPolicy::None, RedundancyPolicy::Replicate(2)] {
            let none: Vec<Option<Vec<u8>>> = vec![None; policy.shard_count()];
            assert_eq!(
                policy.payload_of_shards(&none, p.len()),
                Err(EcError::Unrecoverable { have: 0, need: 1 })
            );
        }
    }

    #[test]
    fn shard_pg_roundtrip_and_scratch_identity() {
        let meta = ShardMeta {
            index: 3,
            k: 4,
            m: 2,
            shard_len: 128,
            payload_len: 501,
        };
        let shard = payload(128, 5);
        let pg = encode_shard_pg(9, 2, meta, &shard);
        let mut scratch = EncodeScratch::new();
        let pg2 = encode_shard_pg_scratch(&mut scratch, 9, 2, meta, &shard);
        assert_eq!(pg, pg2, "scratch path is byte-identical");
        let (rank, step, got_meta, got_shard) = decode_shard_pg(&pg).unwrap();
        assert_eq!((rank, step), (9, 2));
        assert_eq!(got_meta, meta);
        assert_eq!(got_shard, shard);
        assert_eq!(got_meta.policy(), RedundancyPolicy::Ec { k: 4, m: 2 });
    }

    #[test]
    fn shard_meta_policy_mapping() {
        for policy in [
            RedundancyPolicy::None,
            RedundancyPolicy::Replicate(2),
            RedundancyPolicy::Replicate(5),
            RedundancyPolicy::Ec { k: 8, m: 2 },
        ] {
            let (k, m) = shard_meta_params(policy);
            let meta = ShardMeta {
                index: 0,
                k,
                m,
                shard_len: 1,
                payload_len: 1,
            };
            assert_eq!(meta.policy(), policy);
        }
    }

    #[test]
    fn corrupted_shard_pg_is_loud_not_garbage() {
        let meta = ShardMeta {
            index: 0,
            k: 2,
            m: 1,
            shard_len: 64,
            payload_len: 100,
        };
        let shard = payload(64, 2);
        let pg = encode_shard_pg(0, 0, meta, &shard);
        // Flip one payload byte: CRC verification rejects it.
        let mut bad = pg.clone();
        let last = bad.len() - 10;
        bad[last] ^= 0x40;
        assert!(matches!(decode_shard_pg(&bad), Err(EcError::BadShardPg(_))));
        // Truncations are loud too.
        for cut in [0, 1, 4, pg.len() / 2, pg.len() - 1] {
            assert!(decode_shard_pg(&pg[..cut]).is_err(), "cut={cut}");
        }
        // A legitimate non-shard PG is NotAShardPg, not a panic.
        let plain = encode_pg_opts(
            0,
            0,
            &[VarBlock::from_f64("T", vec![2u64], vec![0u64], vec![2u64], &[1.0, 2.0])],
            IntegrityOpts::on(),
        )
        .0;
        assert_eq!(decode_shard_pg(&plain), Err(EcError::NotAShardPg));
    }
}
