//! Process groups: the self-describing unit one writer emits per output
//! step, mirroring ADIOS BP's process-group blocks.
//!
//! A process group (PG) carries a header (writer rank, output step) and a
//! sequence of variable blocks, each with its name, type, local/global
//! dimensions, offsets within the global array, and payload. Encoding a PG
//! also produces the index entries that will later be merged into the
//! file-local and global indices — with payload offsets *relative to the
//! PG start*, so whoever assigns the PG its position in a file (a
//! sub-coordinator, in the adaptive method) just adds the base offset.

use crate::chars::{Characteristics, DType};
use crate::index::IndexEntry;
use crate::wire::{WireError, WireReader, WireWriter};

/// Magic number opening every process group.
pub const PG_MAGIC: u32 = 0x5047_4D49; // "PGMI"

/// One variable's contribution to a process group.
#[derive(Clone, Debug, PartialEq)]
pub struct VarBlock {
    /// Variable name (e.g. `"Bx"`).
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Global array dimensions (empty for local-only arrays).
    pub global_dims: Vec<u64>,
    /// This block's offsets within the global array.
    pub offsets: Vec<u64>,
    /// This block's local dimensions.
    pub local_dims: Vec<u64>,
    /// Raw little-endian payload.
    pub payload: Vec<u8>,
}

impl VarBlock {
    /// Build an f64 block from values.
    pub fn from_f64(
        name: impl Into<String>,
        global_dims: Vec<u64>,
        offsets: Vec<u64>,
        local_dims: Vec<u64>,
        values: &[f64],
    ) -> Self {
        let expected: u64 = local_dims.iter().product();
        assert_eq!(values.len() as u64, expected, "payload/dims mismatch");
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        VarBlock {
            name: name.into(),
            dtype: DType::F64,
            global_dims,
            offsets,
            local_dims,
            payload,
        }
    }

    /// Element count of this block.
    pub fn element_count(&self) -> u64 {
        self.payload.len() as u64 / self.dtype.size()
    }

    /// Decode the payload as f64 values (panics on wrong dtype).
    pub fn as_f64(&self) -> Vec<f64> {
        assert_eq!(self.dtype, DType::F64);
        self.payload
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("len 8")))
            .collect()
    }
}

fn write_dims(w: &mut WireWriter, dims: &[u64]) {
    w.u8(dims.len() as u8);
    for &d in dims {
        w.u64(d);
    }
}

fn read_dims(r: &mut WireReader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.u8()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

/// Encode a process group. Returns the PG bytes and one [`IndexEntry`] per
/// variable, with `file_offset` relative to the start of the PG.
pub fn encode_pg(rank: u32, step: u32, blocks: &[VarBlock]) -> (Vec<u8>, Vec<IndexEntry>) {
    let mut w = WireWriter::new();
    w.u32(PG_MAGIC);
    w.u32(rank);
    w.u32(step);
    w.u32(blocks.len() as u32);
    let mut entries = Vec::with_capacity(blocks.len());
    for b in blocks {
        w.str(&b.name);
        w.u8(b.dtype.to_wire());
        write_dims(&mut w, &b.global_dims);
        write_dims(&mut w, &b.offsets);
        write_dims(&mut w, &b.local_dims);
        w.u64(b.payload.len() as u64);
        let payload_at = w.len();
        w.bytes(&b.payload);
        entries.push(IndexEntry {
            var: b.name.clone(),
            dtype: b.dtype,
            rank,
            step,
            file_offset: payload_at,
            payload_len: b.payload.len() as u64,
            global_dims: b.global_dims.clone(),
            offsets: b.offsets.clone(),
            local_dims: b.local_dims.clone(),
            chars: Characteristics::of_payload(b.dtype, &b.payload),
        });
    }
    (w.into_bytes(), entries)
}

/// Decode a process group from bytes (self-description path — readers that
/// have no index can still walk PGs).
pub fn decode_pg(buf: &[u8]) -> Result<(u32, u32, Vec<VarBlock>), WireError> {
    let mut r = WireReader::new(buf);
    let magic = r.u32()?;
    if magic != PG_MAGIC {
        return Err(WireError::BadMagic {
            expected: PG_MAGIC as u64,
            found: magic as u64,
        });
    }
    let rank = r.u32()?;
    let step = r.u32()?;
    let nvars = r.u32()? as usize;
    let mut blocks = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let name = r.str()?;
        let dtype = DType::from_wire(r.u8()?)?;
        let global_dims = read_dims(&mut r)?;
        let offsets = read_dims(&mut r)?;
        let local_dims = read_dims(&mut r)?;
        let plen = r.u64()? as usize;
        let payload = r.bytes(plen)?.to_vec();
        blocks.push(VarBlock {
            name,
            dtype,
            global_dims,
            offsets,
            local_dims,
            payload,
        });
    }
    Ok((rank, step, blocks))
}

/// Total encoded size of a PG holding the given blocks, without building
/// the bytes (writers need the size up front to request an offset from
/// their sub-coordinator).
pub fn pg_encoded_size(blocks: &[VarBlock]) -> u64 {
    let mut n = 4 + 4 + 4 + 4; // magic, rank, step, count
    for b in blocks {
        n += 2 + b.name.len() as u64; // str
        n += 1; // dtype
        n += 1 + 8 * b.global_dims.len() as u64;
        n += 1 + 8 * b.offsets.len() as u64;
        n += 1 + 8 * b.local_dims.len() as u64;
        n += 8; // payload len
        n += b.payload.len() as u64;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blocks() -> Vec<VarBlock> {
        vec![
            VarBlock::from_f64("rho", vec![8, 8], vec![0, 4], vec![4, 4], &[1.0; 16]),
            VarBlock::from_f64("vx", vec![8, 8], vec![4, 0], vec![2, 8], &[2.5; 16]),
        ]
    }

    #[test]
    fn pg_roundtrip() {
        let blocks = sample_blocks();
        let (bytes, _) = encode_pg(3, 7, &blocks);
        let (rank, step, back) = decode_pg(&bytes).unwrap();
        assert_eq!(rank, 3);
        assert_eq!(step, 7);
        assert_eq!(back, blocks);
    }

    #[test]
    fn index_entries_point_at_payloads() {
        let blocks = sample_blocks();
        let (bytes, entries) = encode_pg(0, 0, &blocks);
        assert_eq!(entries.len(), 2);
        for (e, b) in entries.iter().zip(&blocks) {
            let at = e.file_offset as usize;
            let len = e.payload_len as usize;
            assert_eq!(&bytes[at..at + len], &b.payload[..]);
        }
    }

    #[test]
    fn entries_carry_characteristics() {
        let blocks = vec![VarBlock::from_f64(
            "t",
            vec![4],
            vec![0],
            vec![4],
            &[1.0, -2.0, 3.0, 0.0],
        )];
        let (_, entries) = encode_pg(0, 0, &blocks);
        assert_eq!(entries[0].chars.min, -2.0);
        assert_eq!(entries[0].chars.max, 3.0);
        assert_eq!(entries[0].chars.count, 4);
    }

    #[test]
    fn encoded_size_matches_actual() {
        let blocks = sample_blocks();
        let (bytes, _) = encode_pg(1, 2, &blocks);
        assert_eq!(pg_encoded_size(&blocks), bytes.len() as u64);
    }

    #[test]
    fn empty_pg_roundtrips() {
        let (bytes, entries) = encode_pg(9, 1, &[]);
        assert!(entries.is_empty());
        let (rank, step, blocks) = decode_pg(&bytes).unwrap();
        assert_eq!((rank, step), (9, 1));
        assert!(blocks.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let (mut bytes, _) = encode_pg(0, 0, &[]);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_pg(&bytes),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "payload/dims mismatch")]
    fn dims_mismatch_panics() {
        VarBlock::from_f64("x", vec![4], vec![0], vec![4], &[1.0; 3]);
    }

    #[test]
    fn as_f64_roundtrip() {
        let b = VarBlock::from_f64("x", vec![3], vec![0], vec![3], &[1.0, 2.0, 3.0]);
        assert_eq!(b.as_f64(), vec![1.0, 2.0, 3.0]);
        assert_eq!(b.element_count(), 3);
    }
}
