//! Process groups: the self-describing unit one writer emits per output
//! step, mirroring ADIOS BP's process-group blocks.
//!
//! A process group (PG) carries a header (writer rank, output step) and a
//! sequence of variable blocks, each with its name, type, local/global
//! dimensions, offsets within the global array, and payload. Encoding a PG
//! also produces the index entries that will later be merged into the
//! file-local and global indices — with payload offsets *relative to the
//! PG start*, so whoever assigns the PG its position in a file (a
//! sub-coordinator, in the adaptive method) just adds the base offset.

use crate::chars::{Characteristics, DType};
use crate::index::IndexEntry;
use crate::integrity::{crc64, IntegrityError, IntegrityOpts};
use crate::intern::{Dims, VarName};
use crate::wire::{WireError, WireReader, WireWriter};

/// Magic number opening every legacy (unchecked) process group.
pub const PG_MAGIC: u32 = 0x5047_4D49; // "PGMI"

/// Magic number opening every checked ("v2") process group, which carries
/// a header CRC and a CRC64 per variable payload.
pub const PG_MAGIC2: u32 = 0x5047_4D32; // "PGM2"

/// Cap on speculative pre-allocation from untrusted wire counts; real
/// counts above this still decode, they just grow the Vec incrementally.
pub(crate) const UNTRUSTED_CAP: usize = 4096;

/// One variable's contribution to a process group.
///
/// Name and dims are reference-counted ([`VarName`] / [`Dims`]): the
/// index entries derived from a block share them instead of cloning, so
/// steady-state encoding allocates nothing per block.
#[derive(Clone, Debug, PartialEq)]
pub struct VarBlock {
    /// Variable name (e.g. `"Bx"`), interned.
    pub name: VarName,
    /// Element type.
    pub dtype: DType,
    /// Global array dimensions (empty for local-only arrays).
    pub global_dims: Dims,
    /// This block's offsets within the global array.
    pub offsets: Dims,
    /// This block's local dimensions.
    pub local_dims: Dims,
    /// Raw little-endian payload.
    pub payload: Vec<u8>,
}

impl VarBlock {
    /// Build an f64 block from values.
    pub fn from_f64(
        name: impl Into<VarName>,
        global_dims: impl Into<Dims>,
        offsets: impl Into<Dims>,
        local_dims: impl Into<Dims>,
        values: &[f64],
    ) -> Self {
        let local_dims = local_dims.into();
        let expected: u64 = local_dims.iter().product();
        assert_eq!(values.len() as u64, expected, "payload/dims mismatch");
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        VarBlock {
            name: name.into(),
            dtype: DType::F64,
            global_dims: global_dims.into(),
            offsets: offsets.into(),
            local_dims,
            payload,
        }
    }

    /// Element count of this block.
    pub fn element_count(&self) -> u64 {
        self.payload.len() as u64 / self.dtype.size()
    }

    /// Decode the payload as f64 values (panics on wrong dtype).
    pub fn as_f64(&self) -> Vec<f64> {
        assert_eq!(self.dtype, DType::F64);
        self.payload
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("len 8")))
            .collect()
    }

    /// The index entry describing this block's payload at `payload_at`
    /// (relative to the PG start) — the one place entries are built from
    /// blocks, shared by the encode and decode paths. Name and dims are
    /// refcount-shared with the block; nothing is copied.
    pub fn index_entry(
        &self,
        rank: u32,
        step: u32,
        payload_at: u64,
        payload_crc: Option<u64>,
    ) -> IndexEntry {
        IndexEntry {
            var: self.name.clone(),
            dtype: self.dtype,
            rank,
            step,
            file_offset: payload_at,
            payload_len: self.payload.len() as u64,
            payload_crc,
            global_dims: self.global_dims.clone(),
            offsets: self.offsets.clone(),
            local_dims: self.local_dims.clone(),
            chars: Characteristics::of_payload(self.dtype, &self.payload),
        }
    }
}

fn write_dims(w: &mut WireWriter, dims: &[u64]) {
    w.u8(dims.len() as u8);
    for &d in dims {
        w.u64(d);
    }
}

fn read_dims(r: &mut WireReader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.u8()? as usize;
    let mut out = Vec::with_capacity(n.min(UNTRUSTED_CAP));
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

/// Encode a process group in the legacy (unchecked) layout. Returns the PG
/// bytes and one [`IndexEntry`] per variable, with `file_offset` relative
/// to the start of the PG.
pub fn encode_pg(rank: u32, step: u32, blocks: &[VarBlock]) -> (Vec<u8>, Vec<IndexEntry>) {
    encode_pg_opts(rank, step, blocks, IntegrityOpts::off())
}

/// Encode a process group, selecting the layout via `integrity`. With
/// integrity off this is byte-identical to [`encode_pg`]; with integrity
/// on the PG opens with [`PG_MAGIC2`], adds a CRC64 of the 16 header bytes
/// and a CRC64 per variable payload (also recorded in each entry's
/// `payload_crc` so verify-on-read needs no second pass over the PG).
pub fn encode_pg_opts(
    rank: u32,
    step: u32,
    blocks: &[VarBlock],
    integrity: IntegrityOpts,
) -> (Vec<u8>, Vec<IndexEntry>) {
    let mut w = WireWriter::new();
    let mut entries = Vec::with_capacity(blocks.len());
    encode_pg_into(&mut w, &mut entries, rank, step, blocks, integrity);
    (w.into_bytes(), entries)
}

/// The one PG encoder, writing into caller-owned buffers so
/// [`EncodeScratch`] can reuse its allocations across calls.
fn encode_pg_into(
    w: &mut WireWriter,
    entries: &mut Vec<IndexEntry>,
    rank: u32,
    step: u32,
    blocks: &[VarBlock],
    integrity: IntegrityOpts,
) {
    let checked = integrity.enabled;
    let magic = if checked { PG_MAGIC2 } else { PG_MAGIC };
    w.u32(magic);
    w.u32(rank);
    w.u32(step);
    w.u32(blocks.len() as u32);
    if checked {
        w.u64(pg_header_crc(magic, rank, step, blocks.len() as u32));
    }
    entries.reserve(blocks.len());
    for b in blocks {
        w.str(&b.name);
        w.u8(b.dtype.to_wire());
        write_dims(w, &b.global_dims);
        write_dims(w, &b.offsets);
        write_dims(w, &b.local_dims);
        w.u64(b.payload.len() as u64);
        let payload_crc = if checked {
            let crc = crc64(&b.payload);
            w.u64(crc);
            Some(crc)
        } else {
            None
        };
        let payload_at = w.len();
        w.bytes(&b.payload);
        entries.push(b.index_entry(rank, step, payload_at, payload_crc));
    }
}

/// Reusable PG-encoding buffers: the wire buffer and the entries vector
/// survive across calls, so steady-state encoding (same variables every
/// output step) performs zero heap allocations after the first call.
/// Threaded through [`crate::writer::SubfileWriter`] /
/// [`crate::writer::SubfileAssembler`] and the scrub re-encode path.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    w: WireWriter,
    entries: Vec<IndexEntry>,
}

impl EncodeScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode a PG into the scratch buffers, returning borrowed views of
    /// the PG bytes and index entries. Byte-identical to
    /// [`encode_pg_opts`]; the views are valid until the next call.
    pub fn encode_pg(
        &mut self,
        rank: u32,
        step: u32,
        blocks: &[VarBlock],
        integrity: IntegrityOpts,
    ) -> (&[u8], &[IndexEntry]) {
        self.w.clear();
        self.entries.clear();
        encode_pg_into(&mut self.w, &mut self.entries, rank, step, blocks, integrity);
        (self.w.as_bytes(), &self.entries)
    }
}

fn pg_header_crc(magic: u32, rank: u32, step: u32, nvars: u32) -> u64 {
    let mut h = crate::integrity::Crc64::new();
    h.update(&magic.to_le_bytes());
    h.update(&rank.to_le_bytes());
    h.update(&step.to_le_bytes());
    h.update(&nvars.to_le_bytes());
    h.finish()
}

/// A process group decoded from the front of a buffer, along with the
/// index entries it implies and the number of bytes it consumed (so a
/// forward scan can step to the next PG).
pub(crate) struct DecodedPg {
    pub rank: u32,
    pub step: u32,
    pub blocks: Vec<VarBlock>,
    pub entries: Vec<IndexEntry>,
    pub consumed: u64,
}

/// Identity and extent of one PG, as reported by [`probe_pg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PgSummary {
    /// Writing rank recorded in the PG header.
    pub rank: u32,
    /// Output step recorded in the PG header.
    pub step: u32,
    /// Encoded length of the whole PG, bytes.
    pub len: u64,
}

/// Probe the PG starting at byte `at` of `file`: decode its header and
/// structure (either layout) and, with `verify`, check its CRCs. The scrub
/// pass walks a subfile's data region with this — unverified probes to find
/// each PG's extent and owner, verified probes to detect damaged payloads.
pub fn probe_pg(file: &[u8], at: usize, verify: bool) -> Result<PgSummary, IntegrityError> {
    let buf = file.get(at..).ok_or(IntegrityError::TruncatedPg { at: at as u64 })?;
    let pg = decode_pg_prefix(buf, verify)?;
    Ok(PgSummary {
        rank: pg.rank,
        step: pg.step,
        len: pg.consumed,
    })
}

/// Decode one PG (either layout) from the front of `buf`, which may extend
/// past the PG. `verify` additionally checks header/payload CRCs on the
/// checked layout.
pub(crate) fn decode_pg_prefix(buf: &[u8], verify: bool) -> Result<DecodedPg, IntegrityError> {
    let mut r = WireReader::new(buf);
    let magic = r.u32()?;
    if magic != PG_MAGIC && magic != PG_MAGIC2 {
        return Err(IntegrityError::Wire(WireError::BadMagic {
            expected: PG_MAGIC as u64,
            found: magic as u64,
        }));
    }
    let checked = magic == PG_MAGIC2;
    let rank = r.u32()?;
    let step = r.u32()?;
    let nvars = r.u32()? as usize;
    if checked {
        let stored = r.u64()?;
        if verify && stored != pg_header_crc(magic, rank, step, nvars as u32) {
            return Err(IntegrityError::BadPgHeader { at: 0 });
        }
    }
    let mut blocks = Vec::with_capacity(nvars.min(UNTRUSTED_CAP));
    let mut entries = Vec::with_capacity(nvars.min(UNTRUSTED_CAP));
    for _ in 0..nvars {
        let name = VarName::intern(r.str_ref()?);
        let dtype = DType::from_wire(r.u8()?)?;
        let global_dims: Dims = read_dims(&mut r)?.into();
        let offsets: Dims = read_dims(&mut r)?.into();
        let local_dims: Dims = read_dims(&mut r)?.into();
        let plen = r.u64()? as usize;
        let stored_crc = if checked { Some(r.u64()?) } else { None };
        let payload_at = r.pos() as u64;
        let wire_payload = r.bytes(plen)?;
        if verify {
            if let Some(stored) = stored_crc {
                // Checksum the borrowed wire bytes before copying them out.
                let computed = crc64(wire_payload);
                if computed != stored {
                    return Err(IntegrityError::BadBlockCrc {
                        var: name.to_string(),
                        rank,
                        stored,
                        computed,
                    });
                }
            }
        }
        let block = VarBlock {
            name,
            dtype,
            global_dims,
            offsets,
            local_dims,
            payload: wire_payload.to_vec(),
        };
        entries.push(block.index_entry(rank, step, payload_at, stored_crc));
        blocks.push(block);
    }
    Ok(DecodedPg {
        rank,
        step,
        blocks,
        entries,
        consumed: r.pos() as u64,
    })
}

/// Decode a process group from bytes (self-description path — readers that
/// have no index can still walk PGs). Accepts both layouts; checksums are
/// *not* verified — use [`decode_pg_verified`] for that.
pub fn decode_pg(buf: &[u8]) -> Result<(u32, u32, Vec<VarBlock>), WireError> {
    match decode_pg_prefix(buf, false) {
        Ok(pg) => Ok((pg.rank, pg.step, pg.blocks)),
        Err(IntegrityError::Wire(e)) => Err(e),
        // verify=false only surfaces wire errors.
        Err(_) => unreachable!("unverified decode raised an integrity error"),
    }
}

/// Decode a process group and verify its checksums (header CRC and
/// per-payload CRC64 on the checked layout; legacy PGs decode without
/// verification since they carry no checksums).
pub fn decode_pg_verified(buf: &[u8]) -> Result<(u32, u32, Vec<VarBlock>), IntegrityError> {
    let pg = decode_pg_prefix(buf, true)?;
    Ok((pg.rank, pg.step, pg.blocks))
}

/// Total encoded size of a PG holding the given blocks, without building
/// the bytes (writers need the size up front to request an offset from
/// their sub-coordinator).
pub fn pg_encoded_size(blocks: &[VarBlock]) -> u64 {
    pg_encoded_size_opts(blocks, IntegrityOpts::off())
}

/// Like [`pg_encoded_size`], for the layout selected by `integrity`. The
/// checked layout adds 8 bytes of header CRC plus 8 bytes per block.
pub fn pg_encoded_size_opts(blocks: &[VarBlock], integrity: IntegrityOpts) -> u64 {
    let mut n = 4 + 4 + 4 + 4; // magic, rank, step, count
    if integrity.enabled {
        n += 8; // header crc
    }
    for b in blocks {
        n += 2 + b.name.len() as u64; // str
        n += 1; // dtype
        n += 1 + 8 * b.global_dims.len() as u64;
        n += 1 + 8 * b.offsets.len() as u64;
        n += 1 + 8 * b.local_dims.len() as u64;
        n += 8; // payload len
        if integrity.enabled {
            n += 8; // payload crc
        }
        n += b.payload.len() as u64;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blocks() -> Vec<VarBlock> {
        vec![
            VarBlock::from_f64("rho", vec![8, 8], vec![0, 4], vec![4, 4], &[1.0; 16]),
            VarBlock::from_f64("vx", vec![8, 8], vec![4, 0], vec![2, 8], &[2.5; 16]),
        ]
    }

    #[test]
    fn pg_roundtrip() {
        let blocks = sample_blocks();
        let (bytes, _) = encode_pg(3, 7, &blocks);
        let (rank, step, back) = decode_pg(&bytes).unwrap();
        assert_eq!(rank, 3);
        assert_eq!(step, 7);
        assert_eq!(back, blocks);
    }

    #[test]
    fn index_entries_point_at_payloads() {
        let blocks = sample_blocks();
        let (bytes, entries) = encode_pg(0, 0, &blocks);
        assert_eq!(entries.len(), 2);
        for (e, b) in entries.iter().zip(&blocks) {
            let at = e.file_offset as usize;
            let len = e.payload_len as usize;
            assert_eq!(&bytes[at..at + len], &b.payload[..]);
        }
    }

    #[test]
    fn entries_carry_characteristics() {
        let blocks = vec![VarBlock::from_f64(
            "t",
            vec![4],
            vec![0],
            vec![4],
            &[1.0, -2.0, 3.0, 0.0],
        )];
        let (_, entries) = encode_pg(0, 0, &blocks);
        assert_eq!(entries[0].chars.min, -2.0);
        assert_eq!(entries[0].chars.max, 3.0);
        assert_eq!(entries[0].chars.count, 4);
    }

    #[test]
    fn encoded_size_matches_actual() {
        let blocks = sample_blocks();
        let (bytes, _) = encode_pg(1, 2, &blocks);
        assert_eq!(pg_encoded_size(&blocks), bytes.len() as u64);
    }

    #[test]
    fn empty_pg_roundtrips() {
        let (bytes, entries) = encode_pg(9, 1, &[]);
        assert!(entries.is_empty());
        let (rank, step, blocks) = decode_pg(&bytes).unwrap();
        assert_eq!((rank, step), (9, 1));
        assert!(blocks.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let (mut bytes, _) = encode_pg(0, 0, &[]);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_pg(&bytes),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "payload/dims mismatch")]
    fn dims_mismatch_panics() {
        VarBlock::from_f64("x", vec![4], vec![0], vec![4], &[1.0; 3]);
    }

    #[test]
    fn as_f64_roundtrip() {
        let b = VarBlock::from_f64("x", vec![3], vec![0], vec![3], &[1.0, 2.0, 3.0]);
        assert_eq!(b.as_f64(), vec![1.0, 2.0, 3.0]);
        assert_eq!(b.element_count(), 3);
    }

    #[test]
    fn checked_pg_roundtrips_and_verifies() {
        let blocks = sample_blocks();
        let (bytes, entries) = encode_pg_opts(3, 7, &blocks, IntegrityOpts::on());
        assert_eq!(bytes.len() as u64, pg_encoded_size_opts(&blocks, IntegrityOpts::on()));
        for (e, b) in entries.iter().zip(&blocks) {
            assert_eq!(e.payload_crc, Some(crc64(&b.payload)));
            let at = e.file_offset as usize;
            assert_eq!(&bytes[at..at + e.payload_len as usize], &b.payload[..]);
        }
        let (rank, step, back) = decode_pg_verified(&bytes).unwrap();
        assert_eq!((rank, step), (3, 7));
        assert_eq!(back, blocks);
        // The unverified decoder accepts both layouts.
        let (r2, s2, b2) = decode_pg(&bytes).unwrap();
        assert_eq!((r2, s2, b2), (3, 7, blocks));
    }

    #[test]
    fn integrity_off_is_byte_identical_to_legacy() {
        let blocks = sample_blocks();
        let (legacy, le) = encode_pg(2, 5, &blocks);
        let (off, oe) = encode_pg_opts(2, 5, &blocks, IntegrityOpts::off());
        assert_eq!(legacy, off);
        assert_eq!(le, oe);
        assert!(le.iter().all(|e| e.payload_crc.is_none()));
    }

    #[test]
    fn payload_bit_flip_is_detected() {
        let blocks = sample_blocks();
        let (mut bytes, entries) = encode_pg_opts(1, 0, &blocks, IntegrityOpts::on());
        let at = entries[1].file_offset as usize;
        bytes[at + 3] ^= 0x10;
        match decode_pg_verified(&bytes) {
            Err(IntegrityError::BadBlockCrc { var, rank, .. }) => {
                assert_eq!(var, "vx");
                assert_eq!(rank, 1);
            }
            other => panic!("expected BadBlockCrc, got {other:?}"),
        }
        // Legacy PGs have no checksums: the same flip goes unnoticed.
        let (mut raw, le) = encode_pg(1, 0, &blocks);
        raw[le[1].file_offset as usize + 3] ^= 0x10;
        assert!(decode_pg_verified(&raw).is_ok());
    }

    #[test]
    fn header_corruption_is_detected() {
        let (mut bytes, _) = encode_pg_opts(1, 0, &sample_blocks(), IntegrityOpts::on());
        bytes[5] ^= 0x01; // rank field
        assert!(matches!(
            decode_pg_verified(&bytes),
            Err(IntegrityError::BadPgHeader { .. })
        ));
    }

    #[test]
    fn truncated_pg_errors_instead_of_panicking() {
        let blocks = sample_blocks();
        for integrity in [IntegrityOpts::off(), IntegrityOpts::on()] {
            let (bytes, _) = encode_pg_opts(4, 2, &blocks, integrity);
            for cut in [bytes.len() - 1, bytes.len() / 2, 17, 5, 1] {
                assert!(decode_pg(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }
}
