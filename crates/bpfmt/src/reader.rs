//! Reading data back through the indices.
//!
//! A reader locates blocks via a [`LocalIndex`] or [`GlobalIndex`] and
//! fetches payload bytes directly — one index lookup, one contiguous read,
//! as the paper describes for the global-index access path (§IV-C). A
//! restart-style "read everything" helper reconstructs a full global
//! variable from its blocks.
//!
//! Every function here is total over arbitrary input bytes: malformed or
//! truncated subfiles and hostile index entries produce a structured
//! [`IntegrityError`], never a panic. The `_verified` variants
//! additionally check each block's payload CRC when the index carries one
//! (entries written with [`IntegrityOpts::on`](crate::IntegrityOpts)).

use crate::chars::DType;
use crate::index::{GlobalIndex, IndexEntry};
use crate::integrity::{crc64, IntegrityError};

fn payload_range(file: &[u8], entry: &IndexEntry) -> Result<(usize, usize), IntegrityError> {
    let start = entry.file_offset;
    let end = start.checked_add(entry.payload_len);
    match end {
        Some(end) if end <= file.len() as u64 => Ok((start as usize, end as usize)),
        _ => Err(IntegrityError::BlockOutOfBounds {
            var: entry.var.to_string(),
            offset: entry.file_offset,
            len: entry.payload_len,
            file_len: file.len() as u64,
        }),
    }
}

/// Raw payload bytes of one indexed block (bounds-checked, CRC *not*
/// verified — see [`read_payload_verified`]).
pub fn read_payload<'a>(file: &'a [u8], entry: &IndexEntry) -> Result<&'a [u8], IntegrityError> {
    let (start, end) = payload_range(file, entry)?;
    Ok(&file[start..end])
}

/// Raw payload bytes of one indexed block, verified against the entry's
/// CRC64 when it carries one. Legacy entries (no CRC) pass through
/// unverified — they have nothing to check against.
pub fn read_payload_verified<'a>(
    file: &'a [u8],
    entry: &IndexEntry,
) -> Result<&'a [u8], IntegrityError> {
    let payload = read_payload(file, entry)?;
    if let Some(stored) = entry.payload_crc {
        let computed = crc64(payload);
        if computed != stored {
            return Err(IntegrityError::BadBlockCrc {
                var: entry.var.to_string(),
                rank: entry.rank,
                stored,
                computed,
            });
        }
    }
    Ok(payload)
}

fn decode_f64(payload: &[u8], entry: &IndexEntry) -> Result<Vec<f64>, IntegrityError> {
    if entry.dtype != DType::F64 {
        return Err(IntegrityError::WrongDtype {
            var: entry.var.to_string(),
            expected: DType::F64,
            found: entry.dtype,
        });
    }
    Ok(payload
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("len 8")))
        .collect())
}

/// Decode one indexed block as f64 values.
pub fn read_f64(file: &[u8], entry: &IndexEntry) -> Result<Vec<f64>, IntegrityError> {
    decode_f64(read_payload(file, entry)?, entry)
}

/// Decode one indexed block as f64 values, verifying its CRC first.
pub fn read_f64_verified(file: &[u8], entry: &IndexEntry) -> Result<Vec<f64>, IntegrityError> {
    decode_f64(read_payload_verified(file, entry)?, entry)
}

/// A set of subfiles addressed by name (the reader-side view of an output
/// set: N subfiles + one global index).
pub trait SubfileSource {
    /// Complete bytes of one subfile.
    fn subfile(&self, name: &str) -> Option<&[u8]>;
}

impl SubfileSource for std::collections::HashMap<String, Vec<u8>> {
    fn subfile(&self, name: &str) -> Option<&[u8]> {
        self.get(name).map(|v| v.as_slice())
    }
}

/// Reconstruct a full global 1-D..3-D variable at `step` from its blocks,
/// in row-major order.
///
/// This is the restart read: "a restart-style read of all of the data"
/// (§V, PLFS discussion) — every block is fetched via one index lookup and
/// one contiguous read, then scattered into the global array. Errors are
/// structured: [`IntegrityError::MissingVar`] when no block exists,
/// [`IntegrityError::MissingSubfile`] when the index names an absent file,
/// [`IntegrityError::BadDims`]/[`IntegrityError::BlockOutOfBounds`] on
/// malformed geometry.
pub fn read_global_f64(
    index: &GlobalIndex,
    source: &impl SubfileSource,
    var: &str,
    step: u32,
) -> Result<Vec<f64>, IntegrityError> {
    read_global_f64_impl(index, source, var, step, false)
}

/// Like [`read_global_f64`], but each block's payload is verified against
/// its index CRC before being scattered, so a silently corrupted subfile
/// surfaces as [`IntegrityError::BadBlockCrc`] instead of wrong data.
pub fn read_global_f64_verified(
    index: &GlobalIndex,
    source: &impl SubfileSource,
    var: &str,
    step: u32,
) -> Result<Vec<f64>, IntegrityError> {
    read_global_f64_impl(index, source, var, step, true)
}

fn read_global_f64_impl(
    index: &GlobalIndex,
    source: &impl SubfileSource,
    var: &str,
    step: u32,
    verify: bool,
) -> Result<Vec<f64>, IntegrityError> {
    let blocks: Vec<(&str, &IndexEntry)> =
        index.find(var).filter(|(_, e)| e.step == step).collect();
    let Some((_, first)) = blocks.first() else {
        return Err(IntegrityError::MissingVar {
            var: var.to_string(),
            step,
        });
    };
    let gdims = first.global_dims.clone();
    if !(1..=3).contains(&gdims.len()) {
        return Err(IntegrityError::BadDims {
            var: var.to_string(),
            dims: gdims.len(),
        });
    }
    let total: u64 = gdims.iter().product();
    // Guard the allocation itself: a hostile index can claim absurd
    // global dims. 2^32 f64s (32 GiB) is far beyond any simulated set.
    if total > u32::MAX as u64 {
        return Err(IntegrityError::BadDims {
            var: var.to_string(),
            dims: gdims.len(),
        });
    }
    let mut out = vec![f64::NAN; total as usize];
    for (file_name, e) in blocks {
        let Some(file) = source.subfile(file_name) else {
            return Err(IntegrityError::MissingSubfile {
                name: file_name.to_string(),
            });
        };
        let vals = if verify {
            read_f64_verified(file, e)?
        } else {
            read_f64(file, e)?
        };
        scatter(&mut out, &gdims, e, &vals)?;
    }
    Ok(out)
}

/// Scatter a row-major local block into a row-major global array, with
/// every offset/extent checked against the global dims.
fn scatter(
    out: &mut [f64],
    gdims: &[u64],
    entry: &IndexEntry,
    vals: &[f64],
) -> Result<(), IntegrityError> {
    let offsets = &entry.offsets;
    let ldims = &entry.local_dims;
    let bad = || IntegrityError::BadDims {
        var: entry.var.to_string(),
        dims: offsets.len(),
    };
    if offsets.len() != gdims.len() || ldims.len() != gdims.len() {
        return Err(bad());
    }
    // Every axis must fit inside the global array...
    for ((&o, &l), &g) in offsets.iter().zip(ldims.iter()).zip(gdims.iter()) {
        if o.checked_add(l).map(|end| end > g).unwrap_or(true) {
            return Err(bad());
        }
    }
    // ...and the payload must hold exactly the block's elements.
    let count: u64 = ldims.iter().product();
    if count != vals.len() as u64 {
        return Err(bad());
    }
    match gdims.len() {
        1 => {
            let o = offsets[0] as usize;
            out[o..o + vals.len()].copy_from_slice(vals);
        }
        2 => {
            let gx = gdims[1] as usize;
            let (oy, ox) = (offsets[0] as usize, offsets[1] as usize);
            let (ly, lx) = (ldims[0] as usize, ldims[1] as usize);
            for y in 0..ly {
                let src = y * lx;
                let dst = (oy + y) * gx + ox;
                out[dst..dst + lx].copy_from_slice(&vals[src..src + lx]);
            }
        }
        3 => {
            let (gy, gx) = (gdims[1] as usize, gdims[2] as usize);
            let (oz, oy, ox) = (
                offsets[0] as usize,
                offsets[1] as usize,
                offsets[2] as usize,
            );
            let (lz, ly, lx) = (ldims[0] as usize, ldims[1] as usize, ldims[2] as usize);
            for z in 0..lz {
                for y in 0..ly {
                    let src = (z * ly + y) * lx;
                    let dst = ((oz + z) * gy + (oy + y)) * gx + ox;
                    out[dst..dst + lx].copy_from_slice(&vals[src..src + lx]);
                }
            }
        }
        _ => unreachable!("dim count validated by caller"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::LocalIndex;
    use crate::integrity::IntegrityOpts;
    use crate::pg::VarBlock;
    use crate::writer::SubfileWriter;
    use std::collections::HashMap;

    /// Build a 2-subfile output set: a global 1-D var of 8 elements split
    /// in halves, one half per subfile.
    fn build_set() -> (GlobalIndex, HashMap<String, Vec<u8>>) {
        build_set_opts(IntegrityOpts::off())
    }

    fn build_set_opts(integrity: IntegrityOpts) -> (GlobalIndex, HashMap<String, Vec<u8>>) {
        let mut files = HashMap::new();
        let mut parts = Vec::new();
        for (i, range) in [(0u32, 0..4u64), (1u32, 4..8u64)] {
            let vals: Vec<f64> = range.clone().map(|x| x as f64 * 10.0).collect();
            let b = VarBlock::from_f64("u", vec![8], vec![range.start], vec![4], &vals);
            let mut w = SubfileWriter::with_integrity(integrity);
            w.append(i, 0, &[b]);
            let (bytes, local) = w.finalize();
            let name = format!("sub-{i}.bp");
            files.insert(name.clone(), bytes);
            parts.push((name, local));
        }
        (GlobalIndex::merge(parts), files)
    }

    #[test]
    fn single_lookup_single_read() {
        let (g, files) = build_set();
        let (fname, entry) = g.find_at("u", 0, &[6]).expect("block covering 6");
        let file = files.subfile(fname).unwrap();
        let vals = read_f64(file, entry).unwrap();
        assert_eq!(vals, vec![40.0, 50.0, 60.0, 70.0]);
    }

    #[test]
    fn restart_read_reconstructs_global_array() {
        let (g, files) = build_set();
        let all = read_global_f64(&g, &files, "u", 0).unwrap();
        let expect: Vec<f64> = (0..8).map(|x| x as f64 * 10.0).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn missing_var_is_structured_error() {
        let (g, files) = build_set();
        assert!(matches!(
            read_global_f64(&g, &files, "nope", 0),
            Err(IntegrityError::MissingVar { .. })
        ));
        assert!(matches!(
            read_global_f64(&g, &files, "u", 9),
            Err(IntegrityError::MissingVar { step: 9, .. })
        ));
    }

    #[test]
    fn missing_subfile_is_structured_error() {
        let (g, mut files) = build_set();
        files.remove("sub-1.bp");
        assert!(matches!(
            read_global_f64(&g, &files, "u", 0),
            Err(IntegrityError::MissingSubfile { .. })
        ));
    }

    #[test]
    fn restart_read_3d_domain_decomposition() {
        // 2x2x2 global cube split into 8 unit blocks, one per "rank",
        // spread over 2 subfiles — a miniature Pixie3D output set.
        let mut files = HashMap::new();
        let mut parts = Vec::new();
        for sub in 0..2u32 {
            let mut w = SubfileWriter::new();
            for k in 0..4u32 {
                let rank = sub * 4 + k;
                let (z, y, x) = ((rank >> 2) & 1, (rank >> 1) & 1, rank & 1);
                let b = VarBlock::from_f64(
                    "rho",
                    vec![2, 2, 2],
                    vec![z as u64, y as u64, x as u64],
                    vec![1, 1, 1],
                    &[rank as f64],
                );
                w.append(rank, 0, &[b]);
            }
            let (bytes, local) = w.finalize();
            let name = format!("s{sub}");
            files.insert(name.clone(), bytes);
            parts.push((name, local));
        }
        let g = GlobalIndex::merge(parts);
        let all = read_global_f64(&g, &files, "rho", 0).unwrap();
        // Row-major (z,y,x): value == rank == z*4 + y*2 + x.
        assert_eq!(all, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn read_2d_blocks() {
        let mut w = SubfileWriter::new();
        // 2x4 global, two 2x2 blocks.
        w.append(
            0,
            0,
            &[VarBlock::from_f64(
                "m",
                vec![2, 4],
                vec![0, 0],
                vec![2, 2],
                &[1.0, 2.0, 5.0, 6.0],
            )],
        );
        w.append(
            1,
            0,
            &[VarBlock::from_f64(
                "m",
                vec![2, 4],
                vec![0, 2],
                vec![2, 2],
                &[3.0, 4.0, 7.0, 8.0],
            )],
        );
        let (bytes, local) = w.finalize();
        let mut files = HashMap::new();
        files.insert("f".to_string(), bytes);
        let g = GlobalIndex::merge(vec![("f".to_string(), local)]);
        let all = read_global_f64(&g, &files, "m", 0).unwrap();
        assert_eq!(all, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn local_index_read_path_matches() {
        let mut w = SubfileWriter::new();
        w.append(3, 2, &[VarBlock::from_f64("q", vec![2], vec![0], vec![2], &[8.0, 9.0])]);
        let (file, _) = w.finalize();
        let idx = LocalIndex::parse(&file).unwrap();
        let e = idx.find("q").next().unwrap();
        assert_eq!(e.rank, 3);
        assert_eq!(e.step, 2);
        assert_eq!(read_f64(&file, e).unwrap(), vec![8.0, 9.0]);
    }

    #[test]
    fn out_of_bounds_entry_errors_instead_of_panicking() {
        let (g, files) = build_set();
        let (fname, entry) = g.find_at("u", 0, &[0]).unwrap();
        let file = files.subfile(fname).unwrap();
        let mut hostile = entry.clone();
        hostile.file_offset = file.len() as u64 - 8;
        assert!(matches!(
            read_payload(file, &hostile),
            Err(IntegrityError::BlockOutOfBounds { .. })
        ));
        hostile.file_offset = u64::MAX - 4; // offset+len overflows
        assert!(read_payload(file, &hostile).is_err());
    }

    #[test]
    fn wrong_dtype_is_structured_error() {
        let (g, files) = build_set();
        let (fname, entry) = g.find_at("u", 0, &[0]).unwrap();
        let file = files.subfile(fname).unwrap();
        let mut e = entry.clone();
        e.dtype = DType::U8;
        assert!(matches!(
            read_f64(file, &e),
            Err(IntegrityError::WrongDtype { .. })
        ));
    }

    #[test]
    fn verified_read_catches_silent_flip() {
        let (g, mut files) = build_set_opts(IntegrityOpts::on());
        let (fname, entry) = g.find_at("u", 0, &[6]).unwrap();
        assert!(entry.payload_crc.is_some(), "checked writer fills CRCs");
        let at = entry.file_offset as usize + 5;
        let fname = fname.to_string();
        let entry = entry.clone();
        files.get_mut(&fname).unwrap()[at] ^= 0x80;
        let file = files.subfile(&fname).unwrap();
        // The unverified read happily returns wrong data...
        assert!(read_f64(file, &entry).is_ok());
        // ...the verified read reports the corruption.
        assert!(matches!(
            read_f64_verified(file, &entry),
            Err(IntegrityError::BadBlockCrc { .. })
        ));
        assert!(matches!(
            read_global_f64_verified(&g, &files, "u", 0),
            Err(IntegrityError::BadBlockCrc { .. })
        ));
    }

    #[test]
    fn hostile_geometry_is_rejected() {
        let (g, files) = build_set();
        let mut bad = g.clone();
        // Block claims to extend past the global array.
        bad.entries[0].1.offsets = vec![6].into();
        assert!(matches!(
            read_global_f64(&bad, &files, "u", 0),
            Err(IntegrityError::BadDims { .. })
        ));
        // Absurd global dims must not trigger a huge allocation.
        let mut huge = g.clone();
        for (_, e) in huge.entries.iter_mut() {
            e.global_dims = vec![u64::MAX / 2].into();
        }
        assert!(matches!(
            read_global_f64(&huge, &files, "u", 0),
            Err(IntegrityError::BadDims { .. })
        ));
    }
}
