//! Reading data back through the indices.
//!
//! A reader locates blocks via a [`LocalIndex`] or [`GlobalIndex`] and
//! fetches payload bytes directly — one index lookup, one contiguous read,
//! as the paper describes for the global-index access path (§IV-C). A
//! restart-style "read everything" helper reconstructs a full global
//! variable from its blocks.

use crate::chars::DType;
use crate::index::{GlobalIndex, IndexEntry};

/// Raw payload bytes of one indexed block.
pub fn read_payload<'a>(file: &'a [u8], entry: &IndexEntry) -> &'a [u8] {
    let start = entry.file_offset as usize;
    let end = start + entry.payload_len as usize;
    &file[start..end]
}

/// Decode one indexed block as f64 values.
pub fn read_f64(file: &[u8], entry: &IndexEntry) -> Vec<f64> {
    assert_eq!(entry.dtype, DType::F64, "block is not f64");
    read_payload(file, entry)
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("len 8")))
        .collect()
}

/// A set of subfiles addressed by name (the reader-side view of an output
/// set: N subfiles + one global index).
pub trait SubfileSource {
    /// Complete bytes of one subfile.
    fn subfile(&self, name: &str) -> Option<&[u8]>;
}

impl SubfileSource for std::collections::HashMap<String, Vec<u8>> {
    fn subfile(&self, name: &str) -> Option<&[u8]> {
        self.get(name).map(|v| v.as_slice())
    }
}

/// Reconstruct a full global 1-D..3-D variable at `step` from its blocks,
/// in row-major order. Returns `None` if the variable has no blocks at
/// that step or a subfile is missing.
///
/// This is the restart read: "a restart-style read of all of the data"
/// (§V, PLFS discussion) — every block is fetched via one index lookup and
/// one contiguous read, then scattered into the global array.
pub fn read_global_f64(
    index: &GlobalIndex,
    source: &impl SubfileSource,
    var: &str,
    step: u32,
) -> Option<Vec<f64>> {
    let blocks: Vec<(&str, &IndexEntry)> =
        index.find(var).filter(|(_, e)| e.step == step).collect();
    let (_, first) = blocks.first()?;
    let gdims = &first.global_dims;
    assert!(
        (1..=3).contains(&gdims.len()),
        "read_global_f64 supports 1-3 dims"
    );
    let total: u64 = gdims.iter().product();
    let mut out = vec![f64::NAN; total as usize];
    for (file_name, e) in blocks {
        let file = source.subfile(file_name)?;
        let vals = read_f64(file, e);
        scatter(&mut out, gdims, &e.offsets, &e.local_dims, &vals);
    }
    Some(out)
}

/// Scatter a row-major local block into a row-major global array.
fn scatter(out: &mut [f64], gdims: &[u64], offsets: &[u64], ldims: &[u64], vals: &[f64]) {
    match gdims.len() {
        1 => {
            let o = offsets[0] as usize;
            out[o..o + vals.len()].copy_from_slice(vals);
        }
        2 => {
            let (gy, _gx) = (gdims[0], gdims[1]);
            let _ = gy;
            let gx = gdims[1] as usize;
            let (oy, ox) = (offsets[0] as usize, offsets[1] as usize);
            let (ly, lx) = (ldims[0] as usize, ldims[1] as usize);
            for y in 0..ly {
                let src = y * lx;
                let dst = (oy + y) * gx + ox;
                out[dst..dst + lx].copy_from_slice(&vals[src..src + lx]);
            }
        }
        3 => {
            let (gy, gx) = (gdims[1] as usize, gdims[2] as usize);
            let (oz, oy, ox) = (
                offsets[0] as usize,
                offsets[1] as usize,
                offsets[2] as usize,
            );
            let (lz, ly, lx) = (ldims[0] as usize, ldims[1] as usize, ldims[2] as usize);
            for z in 0..lz {
                for y in 0..ly {
                    let src = (z * ly + y) * lx;
                    let dst = ((oz + z) * gy + (oy + y)) * gx + ox;
                    out[dst..dst + lx].copy_from_slice(&vals[src..src + lx]);
                }
            }
        }
        _ => unreachable!("dim count validated by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::LocalIndex;
    use crate::pg::VarBlock;
    use crate::writer::SubfileWriter;
    use std::collections::HashMap;

    /// Build a 2-subfile output set: a global 1-D var of 8 elements split
    /// in halves, one half per subfile.
    fn build_set() -> (GlobalIndex, HashMap<String, Vec<u8>>) {
        let mut files = HashMap::new();
        let mut parts = Vec::new();
        for (i, range) in [(0u32, 0..4u64), (1u32, 4..8u64)] {
            let vals: Vec<f64> = range.clone().map(|x| x as f64 * 10.0).collect();
            let b = VarBlock::from_f64("u", vec![8], vec![range.start], vec![4], &vals);
            let mut w = SubfileWriter::new();
            w.append(i, 0, &[b]);
            let (bytes, local) = w.finalize();
            let name = format!("sub-{i}.bp");
            files.insert(name.clone(), bytes);
            parts.push((name, local));
        }
        (GlobalIndex::merge(parts), files)
    }

    #[test]
    fn single_lookup_single_read() {
        let (g, files) = build_set();
        let (fname, entry) = g.find_at("u", 0, &[6]).expect("block covering 6");
        let file = files.subfile(fname).unwrap();
        let vals = read_f64(file, entry);
        assert_eq!(vals, vec![40.0, 50.0, 60.0, 70.0]);
    }

    #[test]
    fn restart_read_reconstructs_global_array() {
        let (g, files) = build_set();
        let all = read_global_f64(&g, &files, "u", 0).unwrap();
        let expect: Vec<f64> = (0..8).map(|x| x as f64 * 10.0).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn missing_var_returns_none() {
        let (g, files) = build_set();
        assert!(read_global_f64(&g, &files, "nope", 0).is_none());
        assert!(read_global_f64(&g, &files, "u", 9).is_none());
    }

    #[test]
    fn missing_subfile_returns_none() {
        let (g, mut files) = build_set();
        files.remove("sub-1.bp");
        assert!(read_global_f64(&g, &files, "u", 0).is_none());
    }

    #[test]
    fn restart_read_3d_domain_decomposition() {
        // 2x2x2 global cube split into 8 unit blocks, one per "rank",
        // spread over 2 subfiles — a miniature Pixie3D output set.
        let mut files = HashMap::new();
        let mut parts = Vec::new();
        for sub in 0..2u32 {
            let mut w = SubfileWriter::new();
            for k in 0..4u32 {
                let rank = sub * 4 + k;
                let (z, y, x) = ((rank >> 2) & 1, (rank >> 1) & 1, rank & 1);
                let b = VarBlock::from_f64(
                    "rho",
                    vec![2, 2, 2],
                    vec![z as u64, y as u64, x as u64],
                    vec![1, 1, 1],
                    &[rank as f64],
                );
                w.append(rank, 0, &[b]);
            }
            let (bytes, local) = w.finalize();
            let name = format!("s{sub}");
            files.insert(name.clone(), bytes);
            parts.push((name, local));
        }
        let g = GlobalIndex::merge(parts);
        let all = read_global_f64(&g, &files, "rho", 0).unwrap();
        // Row-major (z,y,x): value == rank == z*4 + y*2 + x.
        assert_eq!(all, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn read_2d_blocks() {
        let mut w = SubfileWriter::new();
        // 2x4 global, two 2x2 blocks.
        w.append(
            0,
            0,
            &[VarBlock::from_f64(
                "m",
                vec![2, 4],
                vec![0, 0],
                vec![2, 2],
                &[1.0, 2.0, 5.0, 6.0],
            )],
        );
        w.append(
            1,
            0,
            &[VarBlock::from_f64(
                "m",
                vec![2, 4],
                vec![0, 2],
                vec![2, 2],
                &[3.0, 4.0, 7.0, 8.0],
            )],
        );
        let (bytes, local) = w.finalize();
        let mut files = HashMap::new();
        files.insert("f".to_string(), bytes);
        let g = GlobalIndex::merge(vec![("f".to_string(), local)]);
        let all = read_global_f64(&g, &files, "m", 0).unwrap();
        assert_eq!(all, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn local_index_read_path_matches() {
        let mut w = SubfileWriter::new();
        w.append(3, 2, &[VarBlock::from_f64("q", vec![2], vec![0], vec![2], &[8.0, 9.0])]);
        let (file, _) = w.finalize();
        let idx = LocalIndex::parse(&file).unwrap();
        let e = idx.find("q").next().unwrap();
        assert_eq!(e.rank, 3);
        assert_eq!(e.step, 2);
        assert_eq!(read_f64(&file, e), vec![8.0, 9.0]);
    }
}
