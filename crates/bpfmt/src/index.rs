//! File-local and global indices.
//!
//! Each adaptive-IO subfile ends with a **local index**: one entry per
//! variable block written into that file (including blocks that arrived
//! adaptively from other groups), sorted, followed by a fixed footer that
//! locates the index. The coordinator then merges every subfile's local
//! index into a **global index** that maps any variable block to
//! `(subfile, offset)` — "access to any data can be performed using a
//! single lookup into the index and then a direct read" (§IV-C).

use crate::chars::{Characteristics, DType};
use crate::wire::{WireError, WireReader, WireWriter};

/// Magic number in every index footer.
pub const FOOTER_MAGIC: u64 = 0x4250_494E_4458_3130; // "BPINDX10"
/// Footer byte size: index_offset + index_len + magic.
pub const FOOTER_LEN: u64 = 24;
/// Magic opening a serialized global index.
pub const GLOBAL_MAGIC: u64 = 0x4250_474C_4F42_4C31; // "BPGLOBL1"

/// One variable block's index record.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexEntry {
    /// Variable name.
    pub var: String,
    /// Element type.
    pub dtype: DType,
    /// Originating writer rank.
    pub rank: u32,
    /// Output step.
    pub step: u32,
    /// Byte offset of the payload within the subfile.
    pub file_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// Global array dimensions.
    pub global_dims: Vec<u64>,
    /// Offsets of this block in the global array.
    pub offsets: Vec<u64>,
    /// Local block dimensions.
    pub local_dims: Vec<u64>,
    /// Data characteristics.
    pub chars: Characteristics,
}

impl IndexEntry {
    /// Shift the entry by a base file offset (used when a PG is placed at
    /// an assigned position in a subfile).
    pub fn rebased(mut self, base: u64) -> Self {
        self.file_offset += base;
        self
    }

    fn write(&self, w: &mut WireWriter) {
        w.str(&self.var);
        w.u8(self.dtype.to_wire());
        w.u32(self.rank);
        w.u32(self.step);
        w.u64(self.file_offset);
        w.u64(self.payload_len);
        for dims in [&self.global_dims, &self.offsets, &self.local_dims] {
            w.u8(dims.len() as u8);
            for &d in dims.iter() {
                w.u64(d);
            }
        }
        self.chars.write(w);
    }

    fn read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let var = r.str()?;
        let dtype = DType::from_wire(r.u8()?)?;
        let rank = r.u32()?;
        let step = r.u32()?;
        let file_offset = r.u64()?;
        let payload_len = r.u64()?;
        let mut dims3 = [vec![], vec![], vec![]];
        for d in &mut dims3 {
            let n = r.u8()? as usize;
            d.reserve(n);
            for _ in 0..n {
                d.push(r.u64()?);
            }
        }
        let [global_dims, offsets, local_dims] = dims3;
        let chars = Characteristics::read(r)?;
        Ok(IndexEntry {
            var,
            dtype,
            rank,
            step,
            file_offset,
            payload_len,
            global_dims,
            offsets,
            local_dims,
            chars,
        })
    }
}

/// The sorted per-subfile index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocalIndex {
    /// Entries sorted by `(var, step, rank)`.
    pub entries: Vec<IndexEntry>,
}

impl LocalIndex {
    /// Build from unsorted entries (the sub-coordinator's "sort and merge
    /// the index pieces" step, Algorithm 2 line 31).
    pub fn from_pieces(mut entries: Vec<IndexEntry>) -> Self {
        entries.sort_by(|a, b| {
            (a.var.as_str(), a.step, a.rank).cmp(&(b.var.as_str(), b.step, b.rank))
        });
        LocalIndex { entries }
    }

    /// Serialize as the tail of a subfile whose data region is
    /// `data_len` bytes: returns `index bytes || footer`.
    pub fn serialize_with_footer(&self, data_len: u64) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            e.write(&mut w);
        }
        let index_len = w.len();
        w.u64(data_len);
        w.u64(index_len);
        w.u64(FOOTER_MAGIC);
        w.into_bytes()
    }

    /// Parse the local index out of a complete subfile.
    pub fn parse(file: &[u8]) -> Result<Self, WireError> {
        if (file.len() as u64) < FOOTER_LEN {
            return Err(WireError::Truncated {
                need: FOOTER_LEN as usize,
                have: file.len(),
            });
        }
        let foot = &file[file.len() - FOOTER_LEN as usize..];
        let mut r = WireReader::new(foot);
        let index_offset = r.u64()?;
        let index_len = r.u64()?;
        let magic = r.u64()?;
        if magic != FOOTER_MAGIC {
            return Err(WireError::BadMagic {
                expected: FOOTER_MAGIC,
                found: magic,
            });
        }
        let start = index_offset as usize;
        let end = start + index_len as usize;
        if end > file.len() {
            return Err(WireError::Truncated {
                need: end,
                have: file.len(),
            });
        }
        let mut r = WireReader::new(&file[start..end]);
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(IndexEntry::read(&mut r)?);
        }
        Ok(LocalIndex { entries })
    }

    /// All entries for one variable.
    pub fn find<'a>(&'a self, var: &'a str) -> impl Iterator<Item = &'a IndexEntry> + 'a {
        self.entries.iter().filter(move |e| e.var == var)
    }
}

/// The merged, cross-subfile index written by the coordinator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GlobalIndex {
    /// Subfile names, indexed by slot.
    pub files: Vec<String>,
    /// `(file slot, entry)` pairs sorted by `(var, step, rank)`.
    pub entries: Vec<(u32, IndexEntry)>,
}

impl GlobalIndex {
    /// Merge local indices, one per subfile.
    pub fn merge(parts: Vec<(String, LocalIndex)>) -> Self {
        let mut files = Vec::with_capacity(parts.len());
        let mut entries = Vec::new();
        for (slot, (name, local)) in parts.into_iter().enumerate() {
            files.push(name);
            for e in local.entries {
                entries.push((slot as u32, e));
            }
        }
        entries.sort_by(|(_, a), (_, b)| {
            (a.var.as_str(), a.step, a.rank).cmp(&(b.var.as_str(), b.step, b.rank))
        });
        GlobalIndex { files, entries }
    }

    /// All blocks of a variable: `(subfile name, entry)`.
    pub fn find<'a>(
        &'a self,
        var: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a IndexEntry)> + 'a {
        self.entries
            .iter()
            .filter(move |(_, e)| e.var == var)
            .map(move |(slot, e)| (self.files[*slot as usize].as_str(), e))
    }

    /// Blocks of a variable whose value range may intersect `[lo, hi]` —
    /// the characteristics-driven content query (§III-3).
    pub fn find_range<'a>(
        &'a self,
        var: &'a str,
        lo: f64,
        hi: f64,
    ) -> impl Iterator<Item = (&'a str, &'a IndexEntry)> + 'a {
        self.find(var)
            .filter(move |(_, e)| e.chars.may_contain_range(lo, hi))
    }

    /// The single block of `var` at `step` covering global coordinate
    /// `point` (logical-location query).
    pub fn find_at<'a>(
        &'a self,
        var: &'a str,
        step: u32,
        point: &[u64],
    ) -> Option<(&'a str, &'a IndexEntry)> {
        self.find(var).find(|(_, e)| {
            e.step == step
                && e.offsets.len() == point.len()
                && e.offsets
                    .iter()
                    .zip(&e.local_dims)
                    .zip(point)
                    .all(|((&o, &d), &p)| p >= o && p < o + d)
        })
    }

    /// Serialize (the coordinator's "write global index file").
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(GLOBAL_MAGIC);
        w.u32(self.files.len() as u32);
        for f in &self.files {
            w.str(f);
        }
        w.u32(self.entries.len() as u32);
        for (slot, e) in &self.entries {
            w.u32(*slot);
            e.write(&mut w);
        }
        w.into_bytes()
    }

    /// Parse a serialized global index.
    pub fn parse(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let magic = r.u64()?;
        if magic != GLOBAL_MAGIC {
            return Err(WireError::BadMagic {
                expected: GLOBAL_MAGIC,
                found: magic,
            });
        }
        let nf = r.u32()? as usize;
        let mut files = Vec::with_capacity(nf);
        for _ in 0..nf {
            files.push(r.str()?);
        }
        let ne = r.u32()? as usize;
        let mut entries = Vec::with_capacity(ne);
        for _ in 0..ne {
            let slot = r.u32()?;
            entries.push((slot, IndexEntry::read(&mut r)?));
        }
        Ok(GlobalIndex { files, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(var: &str, rank: u32, offset: u64, min: f64, max: f64) -> IndexEntry {
        IndexEntry {
            var: var.to_string(),
            dtype: DType::F64,
            rank,
            step: 0,
            file_offset: offset,
            payload_len: 64,
            global_dims: vec![16],
            offsets: vec![rank as u64 * 8],
            local_dims: vec![8],
            chars: Characteristics {
                min,
                max,
                count: 8,
                sum: (min + max) * 4.0,
            },
        }
    }

    #[test]
    fn local_index_sorts_pieces() {
        let idx = LocalIndex::from_pieces(vec![
            entry("b", 1, 100, 0.0, 1.0),
            entry("a", 2, 200, 0.0, 1.0),
            entry("a", 0, 0, 0.0, 1.0),
        ]);
        let order: Vec<(&str, u32)> = idx
            .entries
            .iter()
            .map(|e| (e.var.as_str(), e.rank))
            .collect();
        assert_eq!(order, vec![("a", 0), ("a", 2), ("b", 1)]);
    }

    #[test]
    fn local_index_footer_roundtrip() {
        let idx = LocalIndex::from_pieces(vec![
            entry("x", 0, 0, -1.0, 1.0),
            entry("x", 1, 64, 2.0, 3.0),
        ]);
        let data = vec![0u8; 128]; // pretend payload region
        let tail = idx.serialize_with_footer(data.len() as u64);
        let mut file = data;
        file.extend_from_slice(&tail);
        let back = LocalIndex::parse(&file).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn parse_rejects_bad_footer() {
        let idx = LocalIndex::default();
        let mut file = idx.serialize_with_footer(0);
        let n = file.len();
        file[n - 1] ^= 0xFF;
        assert!(matches!(
            LocalIndex::parse(&file),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn parse_rejects_short_file() {
        assert!(matches!(
            LocalIndex::parse(&[0u8; 10]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn rebase_shifts_offset() {
        let e = entry("x", 0, 16, 0.0, 1.0).rebased(1000);
        assert_eq!(e.file_offset, 1016);
    }

    #[test]
    fn global_merge_and_find() {
        let l0 = LocalIndex::from_pieces(vec![entry("x", 0, 0, 0.0, 1.0)]);
        let l1 = LocalIndex::from_pieces(vec![
            entry("x", 1, 0, 5.0, 9.0),
            entry("y", 1, 64, 0.0, 0.0),
        ]);
        let g = GlobalIndex::merge(vec![("f0".into(), l0), ("f1".into(), l1)]);
        let hits: Vec<(&str, u32)> = g.find("x").map(|(f, e)| (f, e.rank)).collect();
        assert_eq!(hits, vec![("f0", 0), ("f1", 1)]);
        assert_eq!(g.find("y").count(), 1);
        assert_eq!(g.find("z").count(), 0);
    }

    #[test]
    fn global_range_query_prunes() {
        let l0 = LocalIndex::from_pieces(vec![entry("x", 0, 0, 0.0, 1.0)]);
        let l1 = LocalIndex::from_pieces(vec![entry("x", 1, 0, 5.0, 9.0)]);
        let g = GlobalIndex::merge(vec![("f0".into(), l0), ("f1".into(), l1)]);
        let hits: Vec<u32> = g.find_range("x", 6.0, 7.0).map(|(_, e)| e.rank).collect();
        assert_eq!(hits, vec![1]);
        assert_eq!(g.find_range("x", 100.0, 200.0).count(), 0);
    }

    #[test]
    fn global_point_query_locates_block() {
        let l0 = LocalIndex::from_pieces(vec![entry("x", 0, 0, 0.0, 1.0)]); // covers [0,8)
        let l1 = LocalIndex::from_pieces(vec![entry("x", 1, 0, 5.0, 9.0)]); // covers [8,16)
        let g = GlobalIndex::merge(vec![("f0".into(), l0), ("f1".into(), l1)]);
        let (f, e) = g.find_at("x", 0, &[11]).unwrap();
        assert_eq!(f, "f1");
        assert_eq!(e.rank, 1);
        assert!(g.find_at("x", 0, &[16]).is_none());
        assert!(g.find_at("x", 1, &[3]).is_none(), "wrong step");
    }

    #[test]
    fn global_serialize_roundtrip() {
        let l0 = LocalIndex::from_pieces(vec![entry("x", 0, 0, -2.0, 2.0)]);
        let g = GlobalIndex::merge(vec![("sub-0.bp".into(), l0)]);
        let bytes = g.serialize();
        let back = GlobalIndex::parse(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn global_parse_rejects_bad_magic() {
        let g = GlobalIndex::default();
        let mut bytes = g.serialize();
        bytes[0] ^= 1;
        assert!(GlobalIndex::parse(&bytes).is_err());
    }

    #[test]
    fn global_entries_sorted_across_files() {
        let l0 = LocalIndex::from_pieces(vec![entry("z", 5, 0, 0.0, 0.0)]);
        let l1 = LocalIndex::from_pieces(vec![entry("a", 9, 0, 0.0, 0.0)]);
        let g = GlobalIndex::merge(vec![("f0".into(), l0), ("f1".into(), l1)]);
        assert_eq!(g.entries[0].1.var, "a");
        assert_eq!(g.entries[1].1.var, "z");
    }
}
