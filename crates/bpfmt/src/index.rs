//! File-local and global indices.
//!
//! Each adaptive-IO subfile ends with a **local index**: one entry per
//! variable block written into that file (including blocks that arrived
//! adaptively from other groups), sorted, followed by a fixed footer that
//! locates the index. The coordinator then merges every subfile's local
//! index into a **global index** that maps any variable block to
//! `(subfile, offset)` — "access to any data can be performed using a
//! single lookup into the index and then a direct read" (§IV-C).

use crate::chars::{Characteristics, DType};
use crate::integrity::{crc64, IntegrityError, IntegrityOpts};
use crate::intern::{Dims, VarName};
use crate::pg::{decode_pg_prefix, UNTRUSTED_CAP};
use crate::wire::{WireError, WireReader, WireWriter};

/// Magic number in every legacy index footer.
pub const FOOTER_MAGIC: u64 = 0x4250_494E_4458_3130; // "BPINDX10"
/// Legacy footer byte size: index_offset + index_len + magic.
pub const FOOTER_LEN: u64 = 24;
/// Magic in every checked ("v2") index footer.
pub const FOOTER2_MAGIC: u64 = 0x4250_494E_4458_3230; // "BPINDX20"
/// Checked footer byte size: index_offset + index_len + index_crc + magic.
pub const FOOTER2_LEN: u64 = 32;
/// Magic opening the duplicated mini-footer that trails a checked footer.
pub const MINI_MAGIC: u64 = 0x4250_4D49_4E49_4631; // "BPMINIF1"
/// Mini-footer byte size: magic + index_offset + crc of the two.
pub const MINI_LEN: u64 = 24;
/// Magic opening a serialized legacy global index.
pub const GLOBAL_MAGIC: u64 = 0x4250_474C_4F42_4C31; // "BPGLOBL1"
/// Magic opening a serialized checked global index (body + trailing CRC).
pub const GLOBAL_MAGIC2: u64 = 0x4250_474C_4F42_4C32; // "BPGLOBL2"

/// One variable block's index record.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexEntry {
    /// Variable name, interned (refcount-shared with the block it
    /// describes).
    pub var: VarName,
    /// Element type.
    pub dtype: DType,
    /// Originating writer rank.
    pub rank: u32,
    /// Output step.
    pub step: u32,
    /// Byte offset of the payload within the subfile.
    pub file_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// CRC64 of the payload bytes, when written with integrity on.
    /// `None` for legacy entries — verify-on-read then has nothing to
    /// check and treats the block as unverifiable-but-accepted.
    pub payload_crc: Option<u64>,
    /// Global array dimensions.
    pub global_dims: Dims,
    /// Offsets of this block in the global array.
    pub offsets: Dims,
    /// Local block dimensions.
    pub local_dims: Dims,
    /// Data characteristics.
    pub chars: Characteristics,
}

impl IndexEntry {
    /// Shift the entry by a base file offset (used when a PG is placed at
    /// an assigned position in a subfile).
    pub fn rebased(mut self, base: u64) -> Self {
        self.file_offset += base;
        self
    }

    /// Serialize. `checked` selects the v2 wire layout, which carries the
    /// optional payload CRC (a presence byte followed by the CRC).
    fn write(&self, w: &mut WireWriter, checked: bool) {
        w.str(&self.var);
        w.u8(self.dtype.to_wire());
        w.u32(self.rank);
        w.u32(self.step);
        w.u64(self.file_offset);
        w.u64(self.payload_len);
        if checked {
            match self.payload_crc {
                Some(crc) => {
                    w.u8(1);
                    w.u64(crc);
                }
                None => w.u8(0),
            }
        }
        for dims in [&self.global_dims, &self.offsets, &self.local_dims] {
            w.u8(dims.len() as u8);
            for &d in dims.iter() {
                w.u64(d);
            }
        }
        self.chars.write(w);
    }

    fn read(r: &mut WireReader<'_>, checked: bool) -> Result<Self, WireError> {
        let var = VarName::intern(r.str_ref()?);
        let dtype = DType::from_wire(r.u8()?)?;
        let rank = r.u32()?;
        let step = r.u32()?;
        let file_offset = r.u64()?;
        let payload_len = r.u64()?;
        let payload_crc = if checked {
            match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                v => return Err(WireError::BadEnum(v)),
            }
        } else {
            None
        };
        let mut dims3 = [vec![], vec![], vec![]];
        for d in &mut dims3 {
            let n = r.u8()? as usize;
            d.reserve(n.min(UNTRUSTED_CAP));
            for _ in 0..n {
                d.push(r.u64()?);
            }
        }
        let [global_dims, offsets, local_dims] = dims3;
        let chars = Characteristics::read(r)?;
        Ok(IndexEntry {
            var,
            dtype,
            rank,
            step,
            file_offset,
            payload_len,
            payload_crc,
            global_dims: global_dims.into(),
            offsets: offsets.into(),
            local_dims: local_dims.into(),
            chars,
        })
    }
}

/// The sorted per-subfile index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocalIndex {
    /// Entries sorted by `(var, step, rank)`.
    pub entries: Vec<IndexEntry>,
}

impl LocalIndex {
    /// Build from unsorted entries (the sub-coordinator's "sort and merge
    /// the index pieces" step, Algorithm 2 line 31).
    pub fn from_pieces(mut entries: Vec<IndexEntry>) -> Self {
        entries.sort_by(|a, b| {
            (a.var.as_str(), a.step, a.rank).cmp(&(b.var.as_str(), b.step, b.rank))
        });
        LocalIndex { entries }
    }

    /// Serialize as the legacy tail of a subfile whose data region is
    /// `data_len` bytes: returns `index bytes || footer`.
    pub fn serialize_with_footer(&self, data_len: u64) -> Vec<u8> {
        self.serialize_with_footer_opts(data_len, IntegrityOpts::off())
    }

    /// Serialize the subfile tail for the layout selected by `integrity`.
    ///
    /// The checked tail is `index bytes || footer || mini-footer`, where
    /// the footer adds a CRC64 over the index bytes and the mini-footer
    /// duplicates `(magic, index_offset)` under its own CRC at the very
    /// end of the file — so a torn tail that destroys one copy of the
    /// index location can still be detected and, via [`recover_index`],
    /// survived.
    pub fn serialize_with_footer_opts(&self, data_len: u64, integrity: IntegrityOpts) -> Vec<u8> {
        let checked = integrity.enabled;
        let mut w = WireWriter::new();
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            e.write(&mut w, checked);
        }
        let index_len = w.len();
        if !checked {
            w.u64(data_len);
            w.u64(index_len);
            w.u64(FOOTER_MAGIC);
            return w.into_bytes();
        }
        // Checksum the index bytes in place and append the footer to the
        // same buffer — no second copy of the index region.
        let index_crc = crc64(w.as_bytes());
        w.u64(data_len);
        w.u64(index_len);
        w.u64(index_crc);
        w.u64(FOOTER2_MAGIC);
        // Mini-footer: the last MINI_LEN bytes of the file.
        let mut mini = [0u8; 16];
        mini[0..8].copy_from_slice(&MINI_MAGIC.to_le_bytes());
        mini[8..16].copy_from_slice(&data_len.to_le_bytes());
        let mini_crc = crc64(&mini);
        w.bytes(&mini);
        w.u64(mini_crc);
        w.into_bytes()
    }

    /// Parse the legacy local index out of a complete subfile.
    pub fn parse(file: &[u8]) -> Result<Self, WireError> {
        if (file.len() as u64) < FOOTER_LEN {
            return Err(WireError::Truncated {
                need: FOOTER_LEN as usize,
                have: file.len(),
            });
        }
        let foot = &file[file.len() - FOOTER_LEN as usize..];
        let mut r = WireReader::new(foot);
        let index_offset = r.u64()?;
        let index_len = r.u64()?;
        let magic = r.u64()?;
        if magic != FOOTER_MAGIC {
            return Err(WireError::BadMagic {
                expected: FOOTER_MAGIC,
                found: magic,
            });
        }
        Self::parse_region(file, index_offset, index_len, false)
    }

    fn parse_region(
        file: &[u8],
        index_offset: u64,
        index_len: u64,
        checked: bool,
    ) -> Result<Self, WireError> {
        let start = index_offset as usize;
        let end = start.saturating_add(index_len as usize);
        if start > file.len() || end > file.len() {
            return Err(WireError::Truncated {
                need: end,
                have: file.len(),
            });
        }
        let mut r = WireReader::new(&file[start..end]);
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(UNTRUSTED_CAP));
        for _ in 0..n {
            entries.push(IndexEntry::read(&mut r, checked)?);
        }
        Ok(LocalIndex { entries })
    }

    /// Parse the local index out of a complete subfile of either layout,
    /// verifying checksums on the checked layout. The recovery ladder:
    ///
    /// 1. A legacy footer at the tail → legacy parse (no checksums).
    /// 2. Otherwise the mini-footer (last [`MINI_LEN`] bytes) and the main
    ///    footer before it must agree on the index location under their
    ///    CRCs; inconsistency or truncation → [`IntegrityError::TornFooter`].
    /// 3. The index bytes must match the footer's CRC
    ///    (→ [`IntegrityError::BadIndexCrc`]) and then decode cleanly.
    ///
    /// On `TornFooter`/`BadIndexCrc`, callers fall back to
    /// [`recover_index`], which rebuilds the index from the data region.
    pub fn parse_verified(file: &[u8]) -> Result<Self, IntegrityError> {
        let len = file.len() as u64;
        // Rung 1: legacy tail.
        if len >= FOOTER_LEN {
            let tail = &file[(len - 8) as usize..];
            if u64::from_le_bytes(tail.try_into().expect("len 8")) == FOOTER_MAGIC {
                return Self::parse(file).map_err(IntegrityError::Wire);
            }
        }
        if len < MINI_LEN + FOOTER2_LEN {
            return Err(IntegrityError::TornFooter);
        }
        // Rung 2: mini-footer, then main footer.
        let mini = &file[(len - MINI_LEN) as usize..];
        let mut r = WireReader::new(mini);
        let mini_magic = r.u64().expect("mini len");
        let mini_offset = r.u64().expect("mini len");
        let mini_crc = r.u64().expect("mini len");
        if mini_magic != MINI_MAGIC || crc64(&mini[..16]) != mini_crc {
            return Err(IntegrityError::TornFooter);
        }
        let foot = &file[(len - MINI_LEN - FOOTER2_LEN) as usize..(len - MINI_LEN) as usize];
        let mut r = WireReader::new(foot);
        let index_offset = r.u64().expect("footer len");
        let index_len = r.u64().expect("footer len");
        let index_crc = r.u64().expect("footer len");
        let magic = r.u64().expect("footer len");
        if magic != FOOTER2_MAGIC || index_offset != mini_offset {
            return Err(IntegrityError::TornFooter);
        }
        // Rung 3: index region CRC, then entry decode.
        let start = index_offset as usize;
        let end = start.saturating_add(index_len as usize);
        if start > file.len() || end > file.len() {
            return Err(IntegrityError::TornFooter);
        }
        let computed = crc64(&file[start..end]);
        if computed != index_crc {
            return Err(IntegrityError::BadIndexCrc {
                stored: index_crc,
                computed,
            });
        }
        Self::parse_region(file, index_offset, index_len, true).map_err(IntegrityError::Wire)
    }

    /// All entries for one variable.
    pub fn find<'a>(&'a self, var: &'a str) -> impl Iterator<Item = &'a IndexEntry> + 'a {
        self.entries.iter().filter(move |e| e.var == var)
    }
}

/// Rebuild a subfile's local index by forward-scanning its process groups
/// — the BP resilience path used when the footer is unreadable
/// ([`LocalIndex::parse_verified`] reported `TornFooter`/`BadIndexCrc`).
///
/// PGs are assumed densely packed from offset 0 (the writer/assembler
/// layout); the scan stops cleanly at the first position that does not
/// open with a PG magic (that's where the index region or zero-fill
/// begins). Checked PGs are CRC-verified while scanning, so a recovered
/// index is never silently built from corrupt bytes. A PG that *starts*
/// (magic matches) but is cut short is reported as
/// [`IntegrityError::TruncatedPg`]; checksum failures inside a scanned PG
/// keep their identity (e.g. [`IntegrityError::BadBlockCrc`]).
pub fn recover_index(file: &[u8]) -> Result<LocalIndex, IntegrityError> {
    use crate::pg::{PG_MAGIC, PG_MAGIC2};
    let mut pieces = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &file[pos..];
        if rest.len() < 4 {
            // 1–3 trailing bytes that look like the start of a PG magic
            // mean the file was cut mid-magic — not a clean scan end.
            let torn = !rest.is_empty()
                && [PG_MAGIC, PG_MAGIC2]
                    .iter()
                    .any(|m| m.to_le_bytes().starts_with(rest));
            if torn {
                return Err(IntegrityError::TruncatedPg { at: pos as u64 });
            }
            break;
        }
        let magic = u32::from_le_bytes(rest[..4].try_into().expect("len 4"));
        if magic != PG_MAGIC && magic != PG_MAGIC2 {
            break; // clean scan end: index region / zero-fill / EOF
        }
        match decode_pg_prefix(rest, true) {
            Ok(pg) => {
                pieces.extend(pg.entries.into_iter().map(|e| e.rebased(pos as u64)));
                pos += pg.consumed as usize;
            }
            // Wire-level failure after a magic match = the PG is cut short.
            Err(IntegrityError::Wire(_)) => {
                return Err(IntegrityError::TruncatedPg { at: pos as u64 })
            }
            // Checksum failures keep their identity (BadBlockCrc, …).
            Err(other) => return Err(other),
        }
    }
    Ok(LocalIndex::from_pieces(pieces))
}

/// The merged, cross-subfile index written by the coordinator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GlobalIndex {
    /// Subfile names, indexed by slot.
    pub files: Vec<String>,
    /// `(file slot, entry)` pairs sorted by `(var, step, rank)`.
    pub entries: Vec<(u32, IndexEntry)>,
}

impl GlobalIndex {
    /// Merge local indices, one per subfile.
    pub fn merge(parts: Vec<(String, LocalIndex)>) -> Self {
        let mut files = Vec::with_capacity(parts.len());
        let mut entries = Vec::new();
        for (slot, (name, local)) in parts.into_iter().enumerate() {
            files.push(name);
            for e in local.entries {
                entries.push((slot as u32, e));
            }
        }
        entries.sort_by(|(_, a), (_, b)| {
            (a.var.as_str(), a.step, a.rank).cmp(&(b.var.as_str(), b.step, b.rank))
        });
        GlobalIndex { files, entries }
    }

    /// All blocks of a variable: `(subfile name, entry)`.
    pub fn find<'a>(
        &'a self,
        var: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a IndexEntry)> + 'a {
        self.entries
            .iter()
            .filter(move |(_, e)| e.var == var)
            .map(move |(slot, e)| (self.files[*slot as usize].as_str(), e))
    }

    /// Blocks of a variable whose value range may intersect `[lo, hi]` —
    /// the characteristics-driven content query (§III-3).
    pub fn find_range<'a>(
        &'a self,
        var: &'a str,
        lo: f64,
        hi: f64,
    ) -> impl Iterator<Item = (&'a str, &'a IndexEntry)> + 'a {
        self.find(var)
            .filter(move |(_, e)| e.chars.may_contain_range(lo, hi))
    }

    /// The single block of `var` at `step` covering global coordinate
    /// `point` (logical-location query).
    pub fn find_at<'a>(
        &'a self,
        var: &'a str,
        step: u32,
        point: &[u64],
    ) -> Option<(&'a str, &'a IndexEntry)> {
        self.find(var).find(|(_, e)| {
            e.step == step
                && e.offsets.len() == point.len()
                && e.offsets
                    .iter()
                    .zip(&e.local_dims)
                    .zip(point)
                    .all(|((&o, &d), &p)| p >= o && p < o + d)
        })
    }

    /// Serialize in the legacy layout (the coordinator's "write global
    /// index file").
    pub fn serialize(&self) -> Vec<u8> {
        self.serialize_opts(IntegrityOpts::off())
    }

    /// Serialize for the layout selected by `integrity`. The checked
    /// layout opens with [`GLOBAL_MAGIC2`], carries v2 entries (with
    /// payload CRCs) and ends with a CRC64 over everything before it.
    pub fn serialize_opts(&self, integrity: IntegrityOpts) -> Vec<u8> {
        let checked = integrity.enabled;
        let mut w = WireWriter::new();
        w.u64(if checked { GLOBAL_MAGIC2 } else { GLOBAL_MAGIC });
        w.u32(self.files.len() as u32);
        for f in &self.files {
            w.str(f);
        }
        w.u32(self.entries.len() as u32);
        for (slot, e) in &self.entries {
            w.u32(*slot);
            e.write(&mut w, checked);
        }
        if !checked {
            return w.into_bytes();
        }
        let mut body = w.into_bytes();
        let crc = crc64(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        body
    }

    /// Parse a serialized global index of either layout. The trailing CRC
    /// of the checked layout is *not* verified here — use
    /// [`GlobalIndex::parse_verified`] for that.
    pub fn parse(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let magic = r.u64()?;
        if magic != GLOBAL_MAGIC && magic != GLOBAL_MAGIC2 {
            return Err(WireError::BadMagic {
                expected: GLOBAL_MAGIC,
                found: magic,
            });
        }
        let checked = magic == GLOBAL_MAGIC2;
        let nf = r.u32()? as usize;
        let mut files = Vec::with_capacity(nf.min(UNTRUSTED_CAP));
        for _ in 0..nf {
            files.push(r.str()?);
        }
        let ne = r.u32()? as usize;
        let mut entries = Vec::with_capacity(ne.min(UNTRUSTED_CAP));
        for _ in 0..ne {
            let slot = r.u32()?;
            entries.push((slot, IndexEntry::read(&mut r, checked)?));
        }
        Ok(GlobalIndex { files, entries })
    }

    /// Parse and verify: on the checked layout the trailing CRC64 must
    /// match the body it covers.
    pub fn parse_verified(buf: &[u8]) -> Result<Self, IntegrityError> {
        if buf.len() >= 8
            && u64::from_le_bytes(buf[..8].try_into().expect("len 8")) == GLOBAL_MAGIC2
        {
            if buf.len() < 16 {
                return Err(IntegrityError::Wire(WireError::Truncated {
                    need: 16,
                    have: buf.len(),
                }));
            }
            let body = &buf[..buf.len() - 8];
            let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("len 8"));
            let computed = crc64(body);
            if computed != stored {
                return Err(IntegrityError::BadIndexCrc { stored, computed });
            }
        }
        Self::parse(buf).map_err(IntegrityError::Wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(var: &str, rank: u32, offset: u64, min: f64, max: f64) -> IndexEntry {
        IndexEntry {
            var: var.into(),
            dtype: DType::F64,
            rank,
            step: 0,
            file_offset: offset,
            payload_len: 64,
            payload_crc: None,
            global_dims: vec![16].into(),
            offsets: vec![rank as u64 * 8].into(),
            local_dims: vec![8].into(),
            chars: Characteristics {
                min,
                max,
                count: 8,
                sum: (min + max) * 4.0,
            },
        }
    }

    #[test]
    fn local_index_sorts_pieces() {
        let idx = LocalIndex::from_pieces(vec![
            entry("b", 1, 100, 0.0, 1.0),
            entry("a", 2, 200, 0.0, 1.0),
            entry("a", 0, 0, 0.0, 1.0),
        ]);
        let order: Vec<(&str, u32)> = idx
            .entries
            .iter()
            .map(|e| (e.var.as_str(), e.rank))
            .collect();
        assert_eq!(order, vec![("a", 0), ("a", 2), ("b", 1)]);
    }

    #[test]
    fn local_index_footer_roundtrip() {
        let idx = LocalIndex::from_pieces(vec![
            entry("x", 0, 0, -1.0, 1.0),
            entry("x", 1, 64, 2.0, 3.0),
        ]);
        let data = vec![0u8; 128]; // pretend payload region
        let tail = idx.serialize_with_footer(data.len() as u64);
        let mut file = data;
        file.extend_from_slice(&tail);
        let back = LocalIndex::parse(&file).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn parse_rejects_bad_footer() {
        let idx = LocalIndex::default();
        let mut file = idx.serialize_with_footer(0);
        let n = file.len();
        file[n - 1] ^= 0xFF;
        assert!(matches!(
            LocalIndex::parse(&file),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn parse_rejects_short_file() {
        assert!(matches!(
            LocalIndex::parse(&[0u8; 10]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn rebase_shifts_offset() {
        let e = entry("x", 0, 16, 0.0, 1.0).rebased(1000);
        assert_eq!(e.file_offset, 1016);
    }

    #[test]
    fn global_merge_and_find() {
        let l0 = LocalIndex::from_pieces(vec![entry("x", 0, 0, 0.0, 1.0)]);
        let l1 = LocalIndex::from_pieces(vec![
            entry("x", 1, 0, 5.0, 9.0),
            entry("y", 1, 64, 0.0, 0.0),
        ]);
        let g = GlobalIndex::merge(vec![("f0".into(), l0), ("f1".into(), l1)]);
        let hits: Vec<(&str, u32)> = g.find("x").map(|(f, e)| (f, e.rank)).collect();
        assert_eq!(hits, vec![("f0", 0), ("f1", 1)]);
        assert_eq!(g.find("y").count(), 1);
        assert_eq!(g.find("z").count(), 0);
    }

    #[test]
    fn global_range_query_prunes() {
        let l0 = LocalIndex::from_pieces(vec![entry("x", 0, 0, 0.0, 1.0)]);
        let l1 = LocalIndex::from_pieces(vec![entry("x", 1, 0, 5.0, 9.0)]);
        let g = GlobalIndex::merge(vec![("f0".into(), l0), ("f1".into(), l1)]);
        let hits: Vec<u32> = g.find_range("x", 6.0, 7.0).map(|(_, e)| e.rank).collect();
        assert_eq!(hits, vec![1]);
        assert_eq!(g.find_range("x", 100.0, 200.0).count(), 0);
    }

    #[test]
    fn global_point_query_locates_block() {
        let l0 = LocalIndex::from_pieces(vec![entry("x", 0, 0, 0.0, 1.0)]); // covers [0,8)
        let l1 = LocalIndex::from_pieces(vec![entry("x", 1, 0, 5.0, 9.0)]); // covers [8,16)
        let g = GlobalIndex::merge(vec![("f0".into(), l0), ("f1".into(), l1)]);
        let (f, e) = g.find_at("x", 0, &[11]).unwrap();
        assert_eq!(f, "f1");
        assert_eq!(e.rank, 1);
        assert!(g.find_at("x", 0, &[16]).is_none());
        assert!(g.find_at("x", 1, &[3]).is_none(), "wrong step");
    }

    #[test]
    fn global_serialize_roundtrip() {
        let l0 = LocalIndex::from_pieces(vec![entry("x", 0, 0, -2.0, 2.0)]);
        let g = GlobalIndex::merge(vec![("sub-0.bp".into(), l0)]);
        let bytes = g.serialize();
        let back = GlobalIndex::parse(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn global_parse_rejects_bad_magic() {
        let g = GlobalIndex::default();
        let mut bytes = g.serialize();
        bytes[0] ^= 1;
        assert!(GlobalIndex::parse(&bytes).is_err());
    }

    #[test]
    fn global_entries_sorted_across_files() {
        let l0 = LocalIndex::from_pieces(vec![entry("z", 5, 0, 0.0, 0.0)]);
        let l1 = LocalIndex::from_pieces(vec![entry("a", 9, 0, 0.0, 0.0)]);
        let g = GlobalIndex::merge(vec![("f0".into(), l0), ("f1".into(), l1)]);
        assert_eq!(g.entries[0].1.var, "a");
        assert_eq!(g.entries[1].1.var, "z");
    }

    fn checked_entry(var: &str, rank: u32, offset: u64) -> IndexEntry {
        IndexEntry {
            payload_crc: Some(0xDEAD_BEEF_0000_0000 + rank as u64),
            ..entry(var, rank, offset, 0.0, 1.0)
        }
    }

    #[test]
    fn checked_footer_roundtrip_and_verify() {
        let idx = LocalIndex::from_pieces(vec![
            checked_entry("x", 0, 0),
            checked_entry("x", 1, 64),
            entry("y", 2, 128, 0.0, 0.0), // mixed: one legacy entry
        ]);
        let mut file = vec![0u8; 192];
        file.extend_from_slice(&idx.serialize_with_footer_opts(192, IntegrityOpts::on()));
        let back = LocalIndex::parse_verified(&file).unwrap();
        assert_eq!(back, idx);
        // Legacy parse must reject the v2 tail rather than misread it.
        assert!(LocalIndex::parse(&file).is_err());
    }

    #[test]
    fn parse_verified_falls_through_to_legacy() {
        let idx = LocalIndex::from_pieces(vec![entry("x", 0, 0, 0.0, 1.0)]);
        let mut file = vec![0u8; 64];
        file.extend_from_slice(&idx.serialize_with_footer(64));
        assert_eq!(LocalIndex::parse_verified(&file).unwrap(), idx);
    }

    #[test]
    fn torn_tail_is_detected_not_misread() {
        let idx = LocalIndex::from_pieces(vec![checked_entry("x", 0, 0)]);
        let mut file = vec![0u8; 64];
        file.extend_from_slice(&idx.serialize_with_footer_opts(64, IntegrityOpts::on()));
        // Tear off 1..MINI_LEN+FOOTER2_LEN bytes: every cut must surface
        // TornFooter (the mini-footer CRC no longer lines up).
        for cut in [1usize, 8, MINI_LEN as usize, (MINI_LEN + FOOTER2_LEN) as usize] {
            let torn = &file[..file.len() - cut];
            assert!(
                matches!(LocalIndex::parse_verified(torn), Err(IntegrityError::TornFooter)),
                "cut {cut} not reported as torn"
            );
        }
    }

    #[test]
    fn corrupt_index_region_fails_crc() {
        let idx = LocalIndex::from_pieces(vec![checked_entry("x", 0, 0)]);
        let data_len = 64usize;
        let mut file = vec![0u8; data_len];
        file.extend_from_slice(&idx.serialize_with_footer_opts(64, IntegrityOpts::on()));
        file[data_len + 10] ^= 0x40; // inside the serialized index bytes
        assert!(matches!(
            LocalIndex::parse_verified(&file),
            Err(IntegrityError::BadIndexCrc { .. })
        ));
    }

    #[test]
    fn recover_index_rebuilds_from_pgs() {
        use crate::pg::{encode_pg_opts, VarBlock};
        for integrity in [IntegrityOpts::off(), IntegrityOpts::on()] {
            let mut file = Vec::new();
            let mut want = Vec::new();
            for rank in 0..3u32 {
                let blocks = vec![VarBlock::from_f64(
                    "rho",
                    vec![24],
                    vec![rank as u64 * 8],
                    vec![8],
                    &[rank as f64; 8],
                )];
                let (bytes, entries) = encode_pg_opts(rank, 0, &blocks, integrity);
                let base = file.len() as u64;
                file.extend_from_slice(&bytes);
                want.extend(entries.into_iter().map(|e| e.rebased(base)));
            }
            let want = LocalIndex::from_pieces(want);
            // Append the tail; recover must ignore it (scan stops at the
            // index region's count bytes, which don't open with PG magic).
            let data_len = file.len() as u64;
            file.extend_from_slice(&want.serialize_with_footer_opts(data_len, integrity));
            assert_eq!(recover_index(&file).unwrap(), want);
            // With the tail torn off entirely, recovery still works.
            assert_eq!(recover_index(&file[..data_len as usize]).unwrap(), want);
            // Truncation inside the last PG is reported, not papered over.
            let torn = &file[..data_len as usize - 10];
            match recover_index(torn) {
                Err(IntegrityError::TruncatedPg { at }) => assert!(at < data_len),
                other => panic!("expected TruncatedPg, got {other:?}"),
            }
        }
    }

    #[test]
    fn recover_index_rejects_corrupt_checked_pg() {
        use crate::pg::{encode_pg_opts, VarBlock};
        let blocks = vec![VarBlock::from_f64("x", vec![4], vec![0], vec![4], &[7.0; 4])];
        let (mut file, entries) = encode_pg_opts(0, 0, &blocks, IntegrityOpts::on());
        file[entries[0].file_offset as usize] ^= 0x01;
        assert!(matches!(
            recover_index(&file),
            Err(IntegrityError::BadBlockCrc { .. })
        ));
    }

    #[test]
    fn global_checked_roundtrip_and_crc() {
        let l0 = LocalIndex::from_pieces(vec![checked_entry("x", 0, 0)]);
        let g = GlobalIndex::merge(vec![("sub-0.bp".into(), l0)]);
        let bytes = g.serialize_opts(IntegrityOpts::on());
        assert_eq!(GlobalIndex::parse_verified(&bytes).unwrap(), g);
        assert_eq!(GlobalIndex::parse(&bytes).unwrap(), g);
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x08;
        assert!(matches!(
            GlobalIndex::parse_verified(&bad),
            Err(IntegrityError::BadIndexCrc { .. }) | Err(IntegrityError::Wire(_))
        ));
    }
}
