//! # bpfmt — a BP-style self-describing output format
//!
//! The managed-io reproduction of the ADIOS BP format layer the paper's
//! adaptive method writes into: process groups with per-variable data
//! characteristics, a sorted local index + footer per subfile, and a
//! merged global index across subfiles (Algorithms 1–3's index plumbing).
//!
//! * [`wire`] — little-endian encoding primitives.
//! * [`chars`] — data characteristics (min/max/count/sum) and the
//!   characteristics-based content queries of §III-3.
//! * [`pg`] — process groups ([`pg::VarBlock`], [`pg::encode_pg`]).
//! * [`index`] — [`index::LocalIndex`] (subfile tail + footer) and
//!   [`index::GlobalIndex`] (coordinator-merged, with range and point
//!   queries).
//! * [`writer`] — append-mode [`writer::SubfileWriter`] and the adaptive
//!   [`writer::SubfileAssembler`] with offset reservation.
//! * [`reader`] — single-lookup block reads and restart-style global
//!   reconstruction.
//! * [`ec`] — GF(2^8) Reed–Solomon `k+m` erasure coding over payload
//!   extents, the tiered [`ec::RedundancyPolicy`], and checksummed shard
//!   PG framing for the lazy-rebuild path.
//! * [`integrity`] — CRC64 checksums, the [`integrity::IntegrityOpts`]
//!   knob selecting the checked ("v2") layout, structured
//!   [`integrity::IntegrityError`]s, and (in [`index`]) the
//!   [`index::recover_index`] forward-scan that rebuilds a local index
//!   when the footer is torn.

#![warn(missing_docs)]

pub mod attrs;
pub mod chars;
pub mod ec;
pub mod index;
pub mod integrity;
pub mod intern;
pub mod pg;
pub mod reader;
pub mod wire;
pub mod writer;

pub use attrs::{AttrValue, Attributes};
pub use chars::{Characteristics, DType};
pub use ec::{
    decode_shard_pg, encode_shard_pg, encode_shard_pg_scratch, EcError, RedundancyPolicy, RsCode,
    ShardMeta,
};
pub use index::{recover_index, GlobalIndex, IndexEntry, LocalIndex};
pub use integrity::{crc64, crc64_bytewise, Crc64, IntegrityError, IntegrityOpts};
pub use intern::{Dims, VarName};
pub use pg::{
    decode_pg, decode_pg_verified, encode_pg, encode_pg_opts, pg_encoded_size,
    pg_encoded_size_opts, probe_pg, EncodeScratch, PgSummary, VarBlock,
};
pub use reader::{
    read_f64, read_f64_verified, read_global_f64, read_global_f64_verified, read_payload,
    read_payload_verified, SubfileSource,
};
pub use writer::{SubfileAssembler, SubfileWriter};
