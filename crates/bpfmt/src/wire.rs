//! Little-endian wire primitives for the BP-style format.
//!
//! Hand-rolled (no serde) because the on-disk format must be
//! self-describing and stable — readers locate data through the embedded
//! index, exactly like ADIOS's BP format, rather than through Rust type
//! knowledge.

/// Cursor-style writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume into the underlying buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Everything written so far, borrowed.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Reset to empty, keeping the allocation (scratch-buffer reuse).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string (u16 length).
    pub fn str(&mut self, s: &str) {
        assert!(s.len() <= u16::MAX as usize, "string too long for wire");
        self.u16(s.len() as u16);
        self.bytes(s.as_bytes());
    }
}

/// Errors raised while decoding.
#[derive(Debug, PartialEq, Eq, Clone)]
pub enum WireError {
    /// Ran off the end of the buffer.
    Truncated {
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A magic number or tag did not match.
    BadMagic {
        /// What we expected.
        expected: u64,
        /// What we found.
        found: u64,
    },
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An enum discriminant was out of range.
    BadEnum(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated: need {need} bytes, have {have}")
            }
            WireError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:#x}, found {found:#x}")
            }
            WireError::BadUtf8 => write!(f, "invalid UTF-8 string"),
            WireError::BadEnum(v) => write!(f, "invalid enum discriminant {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor-style reader over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        Ok(self.str_ref()?.to_string())
    }

    /// Read a length-prefixed UTF-8 string as a borrow of the underlying
    /// buffer — the zero-allocation variant of [`WireReader::str`].
    pub fn str_ref(&mut self) -> Result<&'a str, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.f64(-1.25e10);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f64().unwrap(), -1.25e10);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn string_roundtrips() {
        let mut w = WireWriter::new();
        w.str("temperature");
        w.str("");
        w.str("μ-var");
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.str().unwrap(), "temperature");
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.str().unwrap(), "μ-var");
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = WireWriter::new();
        w.u32(1);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        r.u16().unwrap();
        let err = r.u32().unwrap_err();
        assert!(matches!(err, WireError::Truncated { need: 4, have: 2 }));
    }

    #[test]
    fn bad_utf8_is_detected() {
        let mut w = WireWriter::new();
        w.u16(2);
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.str().unwrap_err(), WireError::BadUtf8);
    }

    #[test]
    fn position_tracking() {
        let mut w = WireWriter::new();
        w.u64(1);
        w.u64(2);
        assert_eq!(w.len(), 16);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        r.u64().unwrap();
        assert_eq!(r.pos(), 8);
        assert_eq!(r.remaining(), 8);
    }
}
