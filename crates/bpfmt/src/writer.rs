//! Subfile assembly: building BP-style subfiles from process groups.
//!
//! Two construction modes mirror the two ways the middleware produces
//! files:
//!
//! * [`SubfileWriter`] — single-writer append mode (POSIX / MPI-IO style):
//!   PGs are appended in arrival order.
//! * [`SubfileAssembler`] — offset-assignment mode (adaptive style): the
//!   sub-coordinator *reserves* a region for each incoming PG (possibly
//!   from a writer belonging to another group) and the PG bytes are placed
//!   at the reserved offset later, in any order. This is exactly the
//!   offset bookkeeping of Algorithms 2–3.

use crate::index::{IndexEntry, LocalIndex};
use crate::integrity::IntegrityOpts;
use crate::pg::{EncodeScratch, VarBlock};

/// Append-mode subfile builder.
#[derive(Debug, Default)]
pub struct SubfileWriter {
    data: Vec<u8>,
    pieces: Vec<IndexEntry>,
    integrity: IntegrityOpts,
    scratch: EncodeScratch,
}

impl SubfileWriter {
    /// Empty subfile in the legacy (unchecked) layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty subfile; `integrity` selects checked vs legacy layout for
    /// every PG and the index tail.
    pub fn with_integrity(integrity: IntegrityOpts) -> Self {
        SubfileWriter {
            integrity,
            ..Self::default()
        }
    }

    /// Append one process group; returns its base offset. Encodes through
    /// the writer's [`EncodeScratch`], so appending the same variables
    /// every step allocates only for the subfile bytes themselves.
    pub fn append(&mut self, rank: u32, step: u32, blocks: &[VarBlock]) -> u64 {
        let base = self.data.len() as u64;
        let (bytes, entries) = self.scratch.encode_pg(rank, step, blocks, self.integrity);
        self.data.extend_from_slice(bytes);
        self.pieces
            .extend(entries.iter().map(|e| e.clone().rebased(base)));
        base
    }

    /// Bytes of payload data so far.
    pub fn data_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Finish: sort/merge the index, append it plus the footer, and return
    /// the complete subfile bytes with its local index.
    pub fn finalize(self) -> (Vec<u8>, LocalIndex) {
        let index = LocalIndex::from_pieces(self.pieces);
        let mut file = self.data;
        let tail = index.serialize_with_footer_opts(file.len() as u64, self.integrity);
        file.extend_from_slice(&tail);
        (file, index)
    }
}

/// Offset-assignment subfile builder (the adaptive sub-coordinator's
/// view of its file).
#[derive(Debug, Default)]
pub struct SubfileAssembler {
    /// Reserved high-water mark of the data region.
    reserved: u64,
    /// Placed fragments: (offset, bytes).
    fragments: Vec<(u64, Vec<u8>)>,
    pieces: Vec<IndexEntry>,
    integrity: IntegrityOpts,
}

impl SubfileAssembler {
    /// Empty assembler in the legacy (unchecked) layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty assembler; `integrity` selects the index-tail layout (placed
    /// PG bytes were already encoded by the writers, in whatever layout
    /// the protocol chose).
    pub fn with_integrity(integrity: IntegrityOpts) -> Self {
        SubfileAssembler {
            integrity,
            ..Self::default()
        }
    }

    /// Reserve `size` bytes for an incoming PG; returns the assigned base
    /// offset. This is what a sub-coordinator does when it signals a
    /// writer with `(target, offset)`.
    pub fn reserve(&mut self, size: u64) -> u64 {
        let at = self.reserved;
        self.reserved += size;
        at
    }

    /// Current reserved data length (the "final offset" the coordinator
    /// notes when a sub-coordinator completes, Algorithm 3).
    pub fn reserved_len(&self) -> u64 {
        self.reserved
    }

    /// Place a PG's bytes at a previously reserved offset and record its
    /// index pieces (already rebased by the caller or raw from
    /// [`encode_pg`] — pass `rebase = true` for raw pieces).
    pub fn place(&mut self, offset: u64, bytes: Vec<u8>, entries: Vec<IndexEntry>, rebase: bool) {
        assert!(
            offset + bytes.len() as u64 <= self.reserved,
            "placement outside reserved region"
        );
        self.pieces.extend(entries.into_iter().map(|e| {
            if rebase {
                e.rebased(offset)
            } else {
                e
            }
        }));
        self.fragments.push((offset, bytes));
    }

    /// Finish: materialise the data region (zero-filling unplaced gaps —
    /// in the simulator most experiments track sizes only), sort/merge the
    /// index, append the footer.
    pub fn finalize(self) -> (Vec<u8>, LocalIndex) {
        let mut file = vec![0u8; self.reserved as usize];
        for (at, bytes) in self.fragments {
            file[at as usize..at as usize + bytes.len()].copy_from_slice(&bytes);
        }
        let index = LocalIndex::from_pieces(self.pieces);
        let tail = index.serialize_with_footer_opts(file.len() as u64, self.integrity);
        file.extend_from_slice(&tail);
        (file, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{encode_pg, pg_encoded_size};
    use crate::reader::read_f64;

    fn block(name: &str, vals: &[f64]) -> VarBlock {
        VarBlock::from_f64(
            name,
            vec![vals.len() as u64],
            vec![0],
            vec![vals.len() as u64],
            vals,
        )
    }

    #[test]
    fn append_mode_roundtrip() {
        let mut w = SubfileWriter::new();
        w.append(0, 0, &[block("a", &[1.0, 2.0])]);
        w.append(1, 0, &[block("a", &[3.0, 4.0])]);
        let (file, index) = w.finalize();
        let parsed = LocalIndex::parse(&file).unwrap();
        assert_eq!(parsed, index);
        let entries: Vec<_> = parsed.find("a").collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(read_f64(&file, entries[0]).unwrap(), vec![1.0, 2.0]);
        assert_eq!(read_f64(&file, entries[1]).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn assembler_places_out_of_order() {
        let b0 = [block("v", &[1.0; 4])];
        let b1 = [block("v", &[2.0; 4])];
        let (bytes0, e0) = encode_pg(0, 0, &b0);
        let (bytes1, e1) = encode_pg(1, 0, &b1);

        let mut asm = SubfileAssembler::new();
        let at0 = asm.reserve(bytes0.len() as u64);
        let at1 = asm.reserve(bytes1.len() as u64);
        assert_eq!(at0, 0);
        assert_eq!(at1, bytes0.len() as u64);
        // Place in reverse order.
        asm.place(at1, bytes1, e1, true);
        asm.place(at0, bytes0, e0, true);
        let (file, index) = asm.finalize();
        let parsed = LocalIndex::parse(&file).unwrap();
        assert_eq!(parsed, index);
        let vals: Vec<Vec<f64>> = parsed.find("v").map(|e| read_f64(&file, e).unwrap()).collect();
        assert_eq!(vals, vec![vec![1.0; 4], vec![2.0; 4]]);
    }

    #[test]
    fn reserve_matches_encoded_size() {
        let blocks = [block("x", &[0.5; 8])];
        let (bytes, _) = encode_pg(0, 0, &blocks);
        assert_eq!(pg_encoded_size(&blocks), bytes.len() as u64);
    }

    #[test]
    #[should_panic(expected = "outside reserved region")]
    fn placement_outside_reservation_panics() {
        let mut asm = SubfileAssembler::new();
        asm.reserve(4);
        asm.place(0, vec![0u8; 8], vec![], false);
    }

    #[test]
    fn unplaced_gap_is_zero_filled() {
        let mut asm = SubfileAssembler::new();
        let _gap = asm.reserve(16); // reserved but never placed
        let (bytes, e) = encode_pg(0, 0, &[block("x", &[9.0])]);
        let at = asm.reserve(bytes.len() as u64);
        asm.place(at, bytes, e, true);
        let (file, index) = asm.finalize();
        assert_eq!(&file[..16], &[0u8; 16]);
        let entry = index.find("x").next().unwrap();
        assert_eq!(read_f64(&file, entry).unwrap(), vec![9.0]);
    }

    #[test]
    fn empty_subfile_finalizes() {
        let (file, index) = SubfileWriter::new().finalize();
        assert!(index.entries.is_empty());
        assert_eq!(LocalIndex::parse(&file).unwrap(), index);
    }
}
