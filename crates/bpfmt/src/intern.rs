//! Interned variable names and shared dimension vectors.
//!
//! PG encoding used to clone every block's name `String` and three dims
//! `Vec<u64>`s into its [`crate::index::IndexEntry`] — a fixed per-block
//! heap cost paid on every output step of every writer. [`VarName`] and
//! [`Dims`] replace those owned buffers with reference-counted slices:
//! cloning one is a refcount bump, so building an index entry from a
//! block allocates nothing, and the handful of distinct names a
//! simulation ever writes are deduplicated through a small per-thread
//! intern table.

use std::borrow::Borrow;
use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Cap on the per-thread intern table. Simulations use a handful of
/// distinct names; fuzz-style tests generate unbounded random ones, which
/// must not pin memory forever. Past the cap, names are still valid
/// `VarName`s — they just aren't remembered.
const INTERN_CAP: usize = 1024;

thread_local! {
    static NAMES: RefCell<HashSet<Arc<str>>> = RefCell::new(HashSet::new());
}

/// An interned, cheaply cloneable variable name.
///
/// Compares, orders and hashes as its string content; derefs to `str`, so
/// call sites that treated the old `String` field as a string keep
/// working. Cloning bumps a refcount instead of copying bytes.
#[derive(Clone)]
pub struct VarName(Arc<str>);

impl VarName {
    /// Intern `name`: repeated lookups of the same spelling on one thread
    /// share a single allocation.
    pub fn intern(name: &str) -> Self {
        NAMES.with(|cell| {
            let mut set = cell.borrow_mut();
            if let Some(hit) = set.get(name) {
                return VarName(Arc::clone(hit));
            }
            let arc: Arc<str> = Arc::from(name);
            if set.len() < INTERN_CAP {
                set.insert(Arc::clone(&arc));
            }
            VarName(arc)
        })
    }

    /// The name as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for VarName {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for VarName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for VarName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for VarName {
    fn from(s: &str) -> Self {
        VarName::intern(s)
    }
}

impl From<&String> for VarName {
    fn from(s: &String) -> Self {
        VarName::intern(s)
    }
}

impl From<String> for VarName {
    fn from(s: String) -> Self {
        VarName::intern(&s)
    }
}

impl PartialEq for VarName {
    fn eq(&self, other: &Self) -> bool {
        // Interned names usually share the allocation; compare pointers
        // first, content second.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for VarName {}

impl PartialEq<str> for VarName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for VarName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for VarName {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<VarName> for str {
    fn eq(&self, other: &VarName) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<VarName> for &str {
    fn eq(&self, other: &VarName) -> bool {
        *self == other.as_str()
    }
}

impl PartialOrd for VarName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VarName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for VarName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Debug for VarName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for VarName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

static EMPTY_DIMS: OnceLock<Arc<[u64]>> = OnceLock::new();

/// A shared, immutable dimension vector (`global_dims` / `offsets` /
/// `local_dims`).
///
/// Derefs to `[u64]` and compares as a slice; cloning bumps a refcount,
/// so an index entry can carry its block's dims without copying them.
#[derive(Clone)]
pub struct Dims(Arc<[u64]>);

impl Dims {
    /// The empty dims (scalar / local-only block). Allocation-free: all
    /// empty `Dims` share one static slice.
    pub fn empty() -> Self {
        Dims(Arc::clone(EMPTY_DIMS.get_or_init(|| Arc::from([]))))
    }

    /// The dims as a plain slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

impl Default for Dims {
    fn default() -> Self {
        Dims::empty()
    }
}

impl Deref for Dims {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        &self.0
    }
}

impl AsRef<[u64]> for Dims {
    fn as_ref(&self) -> &[u64] {
        &self.0
    }
}

impl From<Vec<u64>> for Dims {
    fn from(v: Vec<u64>) -> Self {
        if v.is_empty() {
            Dims::empty()
        } else {
            Dims(Arc::from(v))
        }
    }
}

impl From<&[u64]> for Dims {
    fn from(v: &[u64]) -> Self {
        if v.is_empty() {
            Dims::empty()
        } else {
            Dims(Arc::from(v))
        }
    }
}

impl<const N: usize> From<[u64; N]> for Dims {
    fn from(v: [u64; N]) -> Self {
        Dims::from(&v[..])
    }
}

impl<'a> IntoIterator for &'a Dims {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl PartialEq for Dims {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Dims {}

impl PartialEq<[u64]> for Dims {
    fn eq(&self, other: &[u64]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u64]> for Dims {
    fn eq(&self, other: &&[u64]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u64>> for Dims {
    fn eq(&self, other: &Vec<u64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u64; N]> for Dims {
    fn eq(&self, other: &[u64; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_names_share_storage() {
        let a = VarName::intern("rho");
        let b = VarName::intern("rho");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        assert_eq!(a, "rho");
        assert_eq!("rho", a);
        assert_eq!(a.as_str(), "rho");
        assert_eq!(format!("{a}"), "rho");
        assert_eq!(format!("{a:?}"), "\"rho\"");
    }

    #[test]
    fn names_order_and_compare_as_strings() {
        let a: VarName = "a".into();
        let z: VarName = String::from("z").into();
        assert!(a < z);
        assert_ne!(a, z);
        assert_eq!(z, "z".to_string());
    }

    #[test]
    fn intern_table_is_capped() {
        for i in 0..(INTERN_CAP * 2) {
            let name = format!("fuzz-name-{i}");
            let v = VarName::intern(&name);
            assert_eq!(v, name);
        }
        NAMES.with(|c| assert!(c.borrow().len() <= INTERN_CAP));
    }

    #[test]
    fn dims_share_and_compare() {
        let d: Dims = vec![4u64, 8].into();
        let e = d.clone();
        assert!(Arc::ptr_eq(&d.0, &e.0));
        assert_eq!(d, vec![4u64, 8]);
        assert_eq!(d, [4u64, 8]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.iter().sum::<u64>(), 12);
        assert_eq!(format!("{d:?}"), "[4, 8]");
    }

    #[test]
    fn empty_dims_are_shared() {
        let a = Dims::empty();
        let b: Dims = Vec::new().into();
        let c = Dims::default();
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert!(Arc::ptr_eq(&a.0, &c.0));
        assert!(a.is_empty());
    }
}
