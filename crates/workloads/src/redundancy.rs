//! Destroyed-data scenarios and policy variants for the tiered-redundancy
//! experiments.
//!
//! The straggler presets answer *slow* targets; these answer *destroyed*
//! ones: named, deterministic [`FaultScript`] presets that kill storage
//! targets outright (error-mode failures lose every byte at rest), plus
//! the redundancy-policy ladder the `redundancy` bench walks —
//! replication against two erasure-coded geometries at equal fault
//! tolerance.

use adios_core::redundancy::RedundancyOpts;
use bpfmt::ec::RedundancyPolicy;
use storesim::fault::{FailMode, FaultScript};

/// One named destroyed-data scenario, parameterised by the machine's OST
/// count at script-build time so the same preset runs on the testbed and
/// on full-scale configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedundancyScenario {
    /// No faults: every policy must store cleanly at its own overhead.
    Clean,
    /// One target dies mid-campaign and never returns — the classic
    /// destroyed-OST case the scrub experiments introduced.
    SingleLoss,
    /// One target dies and recovers, then a second dies for good: losses
    /// spread over the campaign, in-flight writes must re-place.
    RollingLoss,
    /// A correlated multi-target loss after the write phase (shared
    /// enclosure / controller failure): the case replication handles
    /// only at `n > m` copies.
    CorrelatedLoss,
    /// A deep brownout on one target while another dies: slow and
    /// destroyed faults at once, the paper's variability story plus
    /// durability.
    BrownoutPlusLoss,
}

impl RedundancyScenario {
    /// Every scenario, clean first (the storage-overhead control).
    pub fn matrix() -> Vec<RedundancyScenario> {
        vec![
            RedundancyScenario::Clean,
            RedundancyScenario::SingleLoss,
            RedundancyScenario::RollingLoss,
            RedundancyScenario::CorrelatedLoss,
            RedundancyScenario::BrownoutPlusLoss,
        ]
    }

    /// Display name (table/JSON key).
    pub fn name(&self) -> &'static str {
        match self {
            RedundancyScenario::Clean => "clean",
            RedundancyScenario::SingleLoss => "single-loss",
            RedundancyScenario::RollingLoss => "rolling-loss",
            RedundancyScenario::CorrelatedLoss => "correlated-loss",
            RedundancyScenario::BrownoutPlusLoss => "brownout+loss",
        }
    }

    /// Does this scenario destroy any data at all?
    pub fn is_faulted(&self) -> bool {
        *self != RedundancyScenario::Clean
    }

    /// The deterministic fault script for a machine with `ost_count`
    /// targets (seeds vary ambient noise, not the script).
    pub fn script(&self, ost_count: usize) -> FaultScript {
        assert!(
            ost_count >= 4,
            "destroyed-data scenarios need surviving targets to rebuild from"
        );
        match self {
            RedundancyScenario::Clean => FaultScript::none(),
            RedundancyScenario::SingleLoss => {
                FaultScript::none().fail_ost(1.0, 1, FailMode::Error, None)
            }
            RedundancyScenario::RollingLoss => FaultScript::none()
                .fail_ost(0.8, 1, FailMode::Error, Some(30.0))
                .fail_ost(2.0, ost_count / 2, FailMode::Error, None),
            RedundancyScenario::CorrelatedLoss => {
                FaultScript::none().correlated_loss(20.0, ost_count / 3, 2, None)
            }
            RedundancyScenario::BrownoutPlusLoss => FaultScript::none()
                .brownout(0.5, 0, 0.05, 10.0)
                .fail_ost(1.5, ost_count / 2, FailMode::Error, None),
        }
    }
}

/// The redundancy-policy ladder the bench walks: 2× replication
/// (tolerates one loss) against two erasure-coded geometries that
/// tolerate *two* losses at only 1.25×/1.5× storage overhead. Every
/// variant must end destroyed-data campaigns fully durable; the
/// erasure-coded ones must do so with strictly less repair traffic.
pub fn policy_ladder() -> [(&'static str, RedundancyPolicy); 3] {
    [
        ("rep2", RedundancyPolicy::Replicate(2)),
        ("ec8+2", RedundancyPolicy::Ec { k: 8, m: 2 }),
        ("ec4+2", RedundancyPolicy::Ec { k: 4, m: 2 }),
    ]
}

/// Campaign options for one ladder variant: the shared retry / backoff /
/// condemnation machinery on, lazy rebuild on.
pub fn redundancy_opts(policy: RedundancyPolicy) -> RedundancyOpts {
    RedundancyOpts::with_policy(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_build_for_small_and_large_machines() {
        for sc in RedundancyScenario::matrix() {
            for osts in [4, 12, 672] {
                let s = sc.script(osts);
                assert_eq!(s.is_empty(), !sc.is_faulted(), "{} @ {osts}", sc.name());
            }
        }
    }

    #[test]
    fn ladder_policies_are_valid_and_equally_tolerant() {
        for (name, p) in policy_ladder() {
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(p.tolerates() >= 1, "{name} survives at least one loss");
            assert_eq!(p.label(), name);
        }
        // More tolerance at cheaper storage: the ladder's point.
        let [(_, rep), (_, wide), (_, narrow)] = policy_ladder();
        assert_eq!(rep.tolerates(), 1);
        assert_eq!(wide.tolerates(), 2);
        assert_eq!(narrow.tolerates(), 2);
        assert!(wide.storage_overhead() < narrow.storage_overhead());
        assert!(narrow.storage_overhead() < rep.storage_overhead());
    }
}
