//! IOR-style benchmark harness — the measurement tool of the paper's §II.
//!
//! Matches the paper's configurations: POSIX-IO, one file per writer,
//! writers split evenly across a fixed set of storage targets, weak
//! scaling of the per-writer size. Used for the internal-interference
//! scaling sweep (Fig. 1), the external-interference variability study
//! (Table I / Fig. 2) and the imbalance illustration (Fig. 3).

use adios_core::{run, DataSpec, Interference, Method, OutputResult, RunSpec};
use storesim::MachineConfig;

/// One IOR configuration.
#[derive(Clone, Debug)]
pub struct IorConfig {
    /// Concurrent writers.
    pub writers: usize,
    /// Bytes each writer outputs.
    pub bytes_per_writer: u64,
    /// Storage targets the writers spread over (512 in the paper's Jaguar
    /// tests, one writer per target in the hourly external tests).
    pub osts: usize,
}

impl IorConfig {
    /// Run one sample.
    pub fn run_once(
        &self,
        machine: &MachineConfig,
        interference: &Interference,
        seed: u64,
    ) -> OutputResult {
        let spec = RunSpec {
            machine: machine.clone(),
            nprocs: self.writers,
            data: DataSpec::Uniform(self.bytes_per_writer),
            method: Method::Posix {
                targets: self.osts,
            },
            interference: interference.clone(),
            seed,
        };
        run(spec).result
    }

    /// Run `samples` independent samples (seeds `base_seed..`), as the
    /// paper does with its 40-sample error bars and 469 hourly probes.
    /// Samples fan out across worker threads (`MANAGED_IO_THREADS`) and
    /// merge back in seed order, identical to a serial run.
    pub fn run_samples(
        &self,
        machine: &MachineConfig,
        interference: &Interference,
        samples: usize,
        base_seed: u64,
    ) -> Vec<OutputResult> {
        let seeds: Vec<u64> = (0..samples as u64).map(|i| base_seed + i).collect();
        simcore::par::par_map(seeds, |seed| self.run_once(machine, interference, seed))
    }
}

/// Aggregate-bandwidth series (bytes/sec) over samples.
pub fn aggregate_bandwidths(results: &[OutputResult]) -> Vec<f64> {
    results.iter().map(|r| r.aggregate_bandwidth()).collect()
}

/// Mean per-writer bandwidth (bytes/sec) of each sample.
pub fn mean_per_writer_bandwidths(results: &[OutputResult]) -> Vec<f64> {
    results
        .iter()
        .map(|r| {
            let bws = r.per_writer_bandwidths();
            bws.iter().sum::<f64>() / bws.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MIB;
    use storesim::params::testbed;

    fn cfg() -> IorConfig {
        IorConfig {
            writers: 16,
            bytes_per_writer: 4 * MIB,
            osts: 8,
        }
    }

    #[test]
    fn one_sample_produces_all_writers() {
        let r = cfg().run_once(&testbed(), &Interference::None, 1);
        assert_eq!(r.records.len(), 16);
        assert_eq!(r.total_bytes, 16 * 4 * MIB);
        assert!(r.aggregate_bandwidth() > 0.0);
    }

    #[test]
    fn samples_are_independent_seeds() {
        let rs = cfg().run_samples(&testbed(), &Interference::None, 3, 10);
        assert_eq!(rs.len(), 3);
        // Quiet testbed: identical stats across seeds are fine; just
        // verify each sample is complete.
        for r in &rs {
            assert_eq!(r.records.len(), 16);
        }
    }

    #[test]
    fn bandwidth_helpers_have_sample_length() {
        let rs = cfg().run_samples(&testbed(), &Interference::None, 4, 20);
        assert_eq!(aggregate_bandwidths(&rs).len(), 4);
        assert_eq!(mean_per_writer_bandwidths(&rs).len(), 4);
    }

    #[test]
    fn more_writers_per_target_hurts_per_writer_bandwidth() {
        // 128 MiB writes exceed the testbed cache — disk-lane contention.
        let light = IorConfig {
            writers: 8,
            bytes_per_writer: 128 * MIB,
            osts: 8,
        };
        let heavy = IorConfig {
            writers: 32,
            bytes_per_writer: 128 * MIB,
            osts: 8,
        };
        let l = light.run_once(&testbed(), &Interference::None, 5);
        let h = heavy.run_once(&testbed(), &Interference::None, 5);
        let lb = mean_per_writer_bandwidths(&[l])[0];
        let hb = mean_per_writer_bandwidths(&[h])[0];
        assert!(
            hb < 0.5 * lb,
            "internal interference: 1/target {lb} vs 4/target {hb}"
        );
    }

    #[test]
    fn competing_job_reduces_aggregate_bandwidth() {
        let c = IorConfig {
            writers: 8,
            bytes_per_writer: 128 * MIB,
            osts: 8,
        };
        let quiet = c.run_once(&testbed(), &Interference::None, 7);
        let busy = c.run_once(
            &testbed(),
            &Interference::CompetingStreams {
                osts: 4,
                streams_per_ost: 3,
                bytes: 256 * MIB,
            },
            7,
        );
        assert!(
            busy.aggregate_bandwidth() < quiet.aggregate_bandwidth(),
            "external interference must cost bandwidth"
        );
    }
}
