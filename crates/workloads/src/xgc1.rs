//! XGC1 IO kernel (paper §IV-B).
//!
//! XGC1 is a gyrokinetic particle-in-cell code for edge-plasma physics.
//! The paper's tests use a configuration producing **38 MB per process**,
//! weak-scaled. Per-process output is particle phase-space data: a set of
//! double-precision arrays over the local particle population.

use bpfmt::VarBlock;
use simcore::units::MIB;
use simcore::Rng;

/// Particle phase-space fields XGC1 checkpoints.
pub const FIELDS: [&str; 10] = [
    "r", "z", "phi", "rho_parallel", "w1", "w2", "mu", "w0", "f0", "psi",
];

/// One XGC1 run configuration.
#[derive(Clone, Copy, Debug)]
pub struct Xgc1Config {
    /// Particles per process.
    pub particles_per_proc: u64,
    /// Number of processes.
    pub nprocs: usize,
}

impl Xgc1Config {
    /// The paper's configuration: 38 MB per process. With 10 f64 fields
    /// that is 498 073 particles per process (498073 × 10 × 8 ≈ 38 MiB).
    pub fn paper(nprocs: usize) -> Self {
        Xgc1Config {
            particles_per_proc: 38 * MIB / (10 * 8),
            nprocs,
        }
    }

    /// Payload bytes per process.
    pub fn bytes_per_process(&self) -> u64 {
        self.particles_per_proc * FIELDS.len() as u64 * 8
    }

    /// Total bytes per IO action.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_process() * self.nprocs as u64
    }

    /// Generate this rank's real variable blocks (small particle counts
    /// only). Particles form a 1-D global array partitioned by rank.
    pub fn blocks_of(&self, rank: usize, rng: &mut Rng) -> Vec<VarBlock> {
        let n = self.particles_per_proc;
        let total = n * self.nprocs as u64;
        let start = n * rank as u64;
        let mut blocks = Vec::with_capacity(FIELDS.len());
        for (fi, name) in FIELDS.iter().enumerate() {
            let vals: Vec<f64> = (0..n)
                .map(|i| {
                    let gid = (start + i) as f64;
                    gid * 1e-6 + fi as f64 * 10.0 + 0.1 * rng.normal()
                })
                .collect();
            blocks.push(VarBlock::from_f64(
                *name,
                vec![total],
                vec![start],
                vec![n],
                &vals,
            ));
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_size_is_38mb() {
        let cfg = Xgc1Config::paper(1024);
        let b = cfg.bytes_per_process();
        // Within one particle's rounding of 38 MiB.
        assert!(
            (b as i64 - (38 * MIB) as i64).unsigned_abs() < 80,
            "per-proc bytes {b}"
        );
    }

    #[test]
    fn total_scales_weakly() {
        let cfg = Xgc1Config::paper(2048);
        assert_eq!(cfg.total_bytes(), cfg.bytes_per_process() * 2048);
    }

    #[test]
    fn blocks_partition_particles() {
        let cfg = Xgc1Config {
            particles_per_proc: 100,
            nprocs: 4,
        };
        let mut rng = Rng::new(3);
        for r in 0..4 {
            let blocks = cfg.blocks_of(r, &mut rng);
            assert_eq!(blocks.len(), 10);
            assert_eq!(blocks[0].offsets, vec![100 * r as u64]);
            assert_eq!(blocks[0].global_dims, vec![400]);
            assert_eq!(blocks[0].element_count(), 100);
        }
    }
}
