//! Pixie3D IO kernel (paper §IV-A).
//!
//! Pixie3D is a 3-D extended MHD code; its output per process is "eight
//! double-precision, 3D arrays". The paper's three configurations are
//! per-process cubes of 32³ (small, 2 MB/process), 128³ (large,
//! 128 MB/process) and 256³ (extra large, 1 GB/process), weak-scaled.
//!
//! This module reproduces that kernel: the eight MHD state arrays
//! (density, momentum x3, magnetic field x3, temperature), each a cube of
//! doubles, laid out over a 3-D domain decomposition.

use bpfmt::VarBlock;
use simcore::Rng;

/// The eight double-precision fields Pixie3D emits.
pub const FIELDS: [&str; 8] = ["rho", "px", "py", "pz", "bx", "by", "bz", "temp"];

/// One Pixie3D run configuration.
#[derive(Clone, Copy, Debug)]
pub struct Pixie3dConfig {
    /// Per-process, per-variable cube edge (32 / 128 / 256 in the paper).
    pub cube: usize,
    /// Number of processes (weak scaling).
    pub nprocs: usize,
}

impl Pixie3dConfig {
    /// The paper's "small" model: 32-cubes, 2 MB/process.
    pub fn small(nprocs: usize) -> Self {
        Pixie3dConfig { cube: 32, nprocs }
    }

    /// The paper's "large" model: 128-cubes, 128 MB/process.
    pub fn large(nprocs: usize) -> Self {
        Pixie3dConfig { cube: 128, nprocs }
    }

    /// The paper's "extra large" model: 256-cubes, 1 GB/process.
    pub fn extra_large(nprocs: usize) -> Self {
        Pixie3dConfig { cube: 256, nprocs }
    }

    /// Raw payload bytes per process: 8 fields × cube³ doubles.
    pub fn bytes_per_process(&self) -> u64 {
        8 * (self.cube as u64).pow(3) * 8
    }

    /// Total output per IO action.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_process() * self.nprocs as u64
    }

    /// 3-D processor grid (px, py, pz) with px·py·pz == nprocs, as cubic
    /// as possible — the domain decomposition Pixie3D uses.
    pub fn proc_grid(&self) -> (usize, usize, usize) {
        let n = self.nprocs;
        let mut best = (n, 1, 1);
        let mut best_score = usize::MAX;
        let mut x = 1;
        while x * x * x <= n {
            if n.is_multiple_of(x) {
                let rem = n / x;
                let mut y = x;
                while y * y <= rem {
                    if rem.is_multiple_of(y) {
                        let z = rem / y;
                        let score = z - x; // minimise spread
                        if score < best_score {
                            best_score = score;
                            best = (x, y, z);
                        }
                    }
                    y += 1;
                }
            }
            x += 1;
        }
        best
    }

    /// Global array dimensions implied by the decomposition.
    pub fn global_dims(&self) -> [u64; 3] {
        let (px, py, pz) = self.proc_grid();
        [
            (pz * self.cube) as u64,
            (py * self.cube) as u64,
            (px * self.cube) as u64,
        ]
    }

    /// This rank's (z, y, x) offsets in the global array.
    pub fn offsets_of(&self, rank: usize) -> [u64; 3] {
        let (px, py, _pz) = self.proc_grid();
        let x = rank % px;
        let y = (rank / px) % py;
        let z = rank / (px * py);
        [
            (z * self.cube) as u64,
            (y * self.cube) as u64,
            (x * self.cube) as u64,
        ]
    }

    /// Generate this rank's real variable blocks (for real-bytes runs;
    /// keep `cube` small or memory explodes). Field values are smooth
    /// functions of global position plus noise, so data characteristics
    /// are meaningful.
    pub fn blocks_of(&self, rank: usize, rng: &mut Rng) -> Vec<VarBlock> {
        let c = self.cube;
        let gdims = self.global_dims().to_vec();
        let offs = self.offsets_of(rank).to_vec();
        let ldims = vec![c as u64; 3];
        let mut blocks = Vec::with_capacity(FIELDS.len());
        for (fi, name) in FIELDS.iter().enumerate() {
            let mut vals = Vec::with_capacity(c * c * c);
            for z in 0..c {
                for y in 0..c {
                    for x in 0..c {
                        let gz = offs[0] as usize + z;
                        let gy = offs[1] as usize + y;
                        let gx = offs[2] as usize + x;
                        let base = (gz + 2 * gy + 3 * gx) as f64 * 0.001 + fi as f64;
                        vals.push(base + 0.01 * rng.normal());
                    }
                }
            }
            blocks.push(VarBlock::from_f64(
                *name,
                gdims.clone(),
                offs.clone(),
                ldims.clone(),
                &vals,
            ));
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::{GIB, MIB};

    #[test]
    fn paper_sizes_match() {
        assert_eq!(Pixie3dConfig::small(512).bytes_per_process(), 2 * MIB);
        assert_eq!(Pixie3dConfig::large(512).bytes_per_process(), 128 * MIB);
        assert_eq!(Pixie3dConfig::extra_large(512).bytes_per_process(), GIB);
    }

    #[test]
    fn paper_16tb_case() {
        // §I: 16384 processes × 1 GB = 16 TB per IO.
        let xl = Pixie3dConfig::extra_large(16384);
        assert_eq!(xl.total_bytes(), 16384 * GIB);
    }

    #[test]
    fn proc_grid_covers_n() {
        for n in [1, 8, 12, 64, 100, 512, 729] {
            let cfg = Pixie3dConfig::small(n);
            let (x, y, z) = cfg.proc_grid();
            assert_eq!(x * y * z, n, "grid for {n}");
        }
    }

    #[test]
    fn cubic_counts_get_cubic_grids() {
        assert_eq!(Pixie3dConfig::small(8).proc_grid(), (2, 2, 2));
        assert_eq!(Pixie3dConfig::small(64).proc_grid(), (4, 4, 4));
    }

    #[test]
    fn offsets_tile_the_domain_without_overlap() {
        let cfg = Pixie3dConfig {
            cube: 4,
            nprocs: 8,
        };
        let mut seen = std::collections::HashSet::new();
        for r in 0..8 {
            let o = cfg.offsets_of(r);
            assert!(seen.insert(o), "duplicate offset {o:?}");
            let g = cfg.global_dims();
            for d in 0..3 {
                assert!(o[d] + 4 <= g[d], "rank {r} out of bounds");
            }
        }
    }

    #[test]
    fn blocks_have_eight_fields_with_correct_shape() {
        let cfg = Pixie3dConfig { cube: 4, nprocs: 8 };
        let mut rng = Rng::new(1);
        let blocks = cfg.blocks_of(3, &mut rng);
        assert_eq!(blocks.len(), 8);
        for b in &blocks {
            assert_eq!(b.local_dims, vec![4, 4, 4]);
            assert_eq!(b.element_count(), 64);
        }
        let names: Vec<&str> = blocks.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, FIELDS.to_vec());
    }

    #[test]
    fn field_values_are_position_dependent() {
        let cfg = Pixie3dConfig { cube: 4, nprocs: 8 };
        let mut rng = Rng::new(2);
        let a = cfg.blocks_of(0, &mut rng);
        let b = cfg.blocks_of(7, &mut rng);
        // Different ranks see different value ranges (smooth ramp).
        let ca = bpfmt::Characteristics::of_payload(bpfmt::DType::F64, &a[0].payload);
        let cb = bpfmt::Characteristics::of_payload(bpfmt::DType::F64, &b[0].payload);
        assert!(cb.min > ca.min);
    }
}
