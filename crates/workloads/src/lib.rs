//! # workloads — application IO kernels and measurement harnesses
//!
//! The workloads the paper evaluates with, reproduced over the managed-io
//! middleware:
//!
//! * [`ior`] — the IOR benchmark in the paper's POSIX file-per-process
//!   configuration (§II's interference measurements).
//! * [`pixie3d`] — the Pixie3D MHD IO kernel: eight double-precision 3-D
//!   arrays at 32/128/256-cube sizes (2 MB / 128 MB / 1 GB per process).
//! * [`xgc1`] — the XGC1 gyrokinetic PIC kernel at 38 MB/process.
//! * [`s3d`] — an S3D-style combustion checkpoint (the paper's size
//!   calibration reference).
//! * [`campaign`] — multi-sample method-comparison harnesses (Figs. 5–7).
//! * [`scale`] — full-Jaguar campaign configurations (16k-rank Pixie3D and
//!   XGC1 over all 672 OSTs), unlocked by the virtual-time OST engine.
//! * [`straggler`] — named straggler scenarios (limping disks, brownout
//!   waves) and the static-vs-closed-loop method pair for the control
//!   experiments.

#![warn(missing_docs)]

pub mod campaign;
pub mod ior;
pub mod pixie3d;
pub mod redundancy;
pub mod s3d;
pub mod scale;
pub mod straggler;
pub mod xgc1;

pub use campaign::{compare_at_scale, ComparisonRow};
pub use ior::IorConfig;
pub use pixie3d::Pixie3dConfig;
pub use redundancy::{policy_ladder, redundancy_opts, RedundancyScenario};
pub use s3d::S3dConfig;
pub use scale::{ScaleCampaign, RANK_SWEEP};
pub use straggler::{control_methods, StragglerScenario};
pub use xgc1::Xgc1Config;
