//! Straggler scenarios for the closed-loop defense experiments.
//!
//! The paper's §V motivation — "a small number of slow storage targets
//! greatly increased total IO time" — packaged as named, deterministic
//! [`FaultScript`] presets plus the method pair the `control_loop` bench
//! compares: the fault-hardened static adaptive protocol against the same
//! protocol with the closed control loop (straggler detection,
//! speculative re-issue, knob tuning) switched on.

use adios_core::control::ControlOpts;
use adios_core::fault::{FaultConfig, FaultTolerance};
use adios_core::runner::Method;
use adios_core::AdaptiveOpts;
use simcore::Rng;
use storesim::fault::FaultScript;

/// One named straggler scenario, parameterised by the machine's OST
/// count at script-build time so the same preset runs on the testbed and
/// on full-Jaguar configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StragglerScenario {
    /// No faults: the closed loop must converge to the static schedule.
    Clean,
    /// One OST limps permanently at 5% of nominal from the start — the
    /// classic dying-disk straggler.
    LimpingDisk,
    /// Two OSTs limp at different severities; the detector must flag
    /// both against the healthy median.
    LimpingPair,
    /// A wave of deep transient brownouts rolls across half the OSTs —
    /// flags must set and clear as the wave passes.
    BrownoutWave,
}

impl StragglerScenario {
    /// Every scenario, clean first (the convergence control).
    pub fn matrix() -> Vec<StragglerScenario> {
        vec![
            StragglerScenario::Clean,
            StragglerScenario::LimpingDisk,
            StragglerScenario::LimpingPair,
            StragglerScenario::BrownoutWave,
        ]
    }

    /// Display name (table/JSON key).
    pub fn name(&self) -> &'static str {
        match self {
            StragglerScenario::Clean => "clean",
            StragglerScenario::LimpingDisk => "limping-disk",
            StragglerScenario::LimpingPair => "limping-pair",
            StragglerScenario::BrownoutWave => "brownout-wave",
        }
    }

    /// Does this scenario inject any fault at all?
    pub fn is_faulted(&self) -> bool {
        *self != StragglerScenario::Clean
    }

    /// The deterministic fault script for a machine with `ost_count`
    /// targets (seeds vary ambient noise, not the script).
    pub fn script(&self, ost_count: usize) -> FaultScript {
        assert!(ost_count >= 2, "straggler scenarios need a healthy majority");
        match self {
            StragglerScenario::Clean => FaultScript::none(),
            StragglerScenario::LimpingDisk => FaultScript::none().limping(0.0, 0, 0.05),
            StragglerScenario::LimpingPair => FaultScript::none()
                .limping(0.0, 0, 0.04)
                .limping(0.5, ost_count / 2, 0.08),
            StragglerScenario::BrownoutWave => {
                let mut s = FaultScript::none();
                for (i, ost) in (0..ost_count / 2).enumerate() {
                    s = s.brownout(1.0 + 2.0 * i as f64, ost, 0.08, 6.0);
                }
                s
            }
        }
    }

    /// Like [`script`](Self::script), but limping severities are drawn
    /// per seed from [0.03, 0.12] — the variability experiments: the
    /// static schedule's span scales with the draw (high run-to-run CV)
    /// while the closed loop rescues the stuck writes at roughly
    /// constant cost. Non-limping scenarios are unchanged by the seed.
    pub fn script_seeded(&self, ost_count: usize, seed: u64) -> FaultScript {
        let mut rng = Rng::new(seed ^ 0x5742_661E_11A9_0C3D);
        let mut draw = || rng.uniform(0.03, 0.12);
        match self {
            StragglerScenario::LimpingDisk => {
                assert!(ost_count >= 2, "straggler scenarios need a healthy majority");
                FaultScript::none().limping(0.0, 0, draw())
            }
            StragglerScenario::LimpingPair => {
                assert!(ost_count >= 4, "a limping pair needs a healthy majority");
                FaultScript::none()
                    .limping(0.0, 0, draw())
                    .limping(0.5, ost_count / 2, draw())
            }
            _ => self.script(ost_count),
        }
    }

    /// The scenario as a full [`FaultConfig`] (storage faults only),
    /// with per-seed limping severities from
    /// [`script_seeded`](Self::script_seeded).
    pub fn fault_config(&self, ost_count: usize, seed: u64) -> FaultConfig {
        FaultConfig {
            storage: self.script_seeded(ost_count, seed),
            ..FaultConfig::default()
        }
    }
}

/// The `control_loop` bench's method pair at `targets` output files:
/// the fault-hardened static adaptive protocol ("static") against the
/// same protocol with the closed control loop on ("closed-loop"). Both
/// run identical fault-tolerance knobs so the only degree of freedom is
/// the loop itself.
pub fn control_methods(targets: usize) -> [(&'static str, Method); 2] {
    let hardened = AdaptiveOpts {
        fault: FaultTolerance::enabled(),
        ..AdaptiveOpts::default()
    };
    [
        (
            "static",
            Method::Adaptive {
                targets,
                opts: hardened.clone(),
            },
        ),
        (
            "closed-loop",
            Method::Adaptive {
                targets,
                opts: AdaptiveOpts {
                    control: ControlOpts::enabled(),
                    ..hardened
                },
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use storesim::fault::FaultEvent;

    #[test]
    fn matrix_is_clean_plus_three_faulted() {
        let m = StragglerScenario::matrix();
        assert_eq!(m.len(), 4);
        assert!(!m[0].is_faulted());
        assert!(m[1..].iter().all(|s| s.is_faulted()));
        let names: Vec<_> = m.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["clean", "limping-disk", "limping-pair", "brownout-wave"]
        );
    }

    #[test]
    fn scripts_scale_with_ost_count() {
        assert!(StragglerScenario::Clean.script(8).is_empty());
        assert_eq!(StragglerScenario::LimpingDisk.script(8).events.len(), 1);
        assert_eq!(StragglerScenario::LimpingPair.script(8).events.len(), 2);
        assert_eq!(StragglerScenario::BrownoutWave.script(8).events.len(), 4);
        assert_eq!(StragglerScenario::BrownoutWave.script(16).events.len(), 8);
    }

    #[test]
    fn limping_scenarios_leave_a_healthy_majority() {
        for ost_count in [4usize, 8, 672] {
            for s in StragglerScenario::matrix() {
                let script = s.script(ost_count);
                let mut hit = std::collections::HashSet::new();
                for e in &script.events {
                    if let FaultEvent::Brownout { ost, factor, .. } = e {
                        assert!(ost.0 < ost_count);
                        assert!(*factor > 0.0 && *factor < 1.0);
                        hit.insert(ost.0);
                    }
                }
                assert!(
                    hit.len() <= ost_count / 2,
                    "{}: more than half the OSTs degraded",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn seeded_limps_vary_within_bounds() {
        let mut factors = std::collections::BTreeSet::new();
        for seed in 0..32u64 {
            for s in [StragglerScenario::LimpingDisk, StragglerScenario::LimpingPair] {
                for e in &s.script_seeded(8, seed).events {
                    let FaultEvent::Brownout { factor, duration, .. } = e else {
                        panic!("limping scenarios emit only brownouts");
                    };
                    assert!(duration.is_none(), "a limp is permanent");
                    assert!((0.03..=0.12).contains(factor), "factor {factor} out of range");
                    factors.insert((factor * 1e6) as u64);
                }
            }
        }
        assert!(factors.len() > 16, "severities barely vary across seeds");
        // Non-limping scenarios ignore the seed entirely.
        for s in [StragglerScenario::Clean, StragglerScenario::BrownoutWave] {
            assert_eq!(s.script_seeded(8, 1).events, s.script(8).events);
        }
    }

    #[test]
    fn method_pair_differs_only_in_the_control_loop() {
        let [(sn, sm), (cn, cm)] = control_methods(8);
        assert_eq!(sn, "static");
        assert_eq!(cn, "closed-loop");
        let (Method::Adaptive { targets: st, opts: so }, Method::Adaptive { targets: ct, opts: co }) =
            (sm, cm)
        else {
            panic!("both methods must be adaptive");
        };
        assert_eq!(st, ct);
        assert!(so.fault.enabled && co.fault.enabled);
        assert!(!so.control.enabled);
        assert!(co.control.enabled);
        assert_eq!(so.writers_per_target, co.writers_per_target);
    }
}
