//! Full-machine scale campaigns: the paper's headline configurations.
//!
//! The paper's motivating runs are whole-Jaguar: Pixie3D and XGC1 at
//! thousands to tens of thousands of writers over all 672 OSTs (§I cites
//! 16384 × 1 GB = 16 TB per IO action). With the O(W)-per-event reference
//! OST engine these were out of reach — a 16k-rank campaign spends O(W²)
//! work per target drain — so earlier benches stopped at 512 ranks. The
//! virtual-time engine makes the full sweep tractable; this module holds
//! the named configurations the `scale` bench and future experiments run.

use adios_core::{DataSpec, Interference, Method, RunSpec};
use storesim::params::jaguar_full;
use storesim::MachineConfig;

use crate::campaign::{compare_at_scale, paper_methods, ComparisonRow};
use crate::pixie3d::Pixie3dConfig;
use crate::xgc1::Xgc1Config;

/// The rank sweep the scale bench walks: 512 (the old ceiling) to the
/// paper's 16384.
pub const RANK_SWEEP: [usize; 6] = [512, 1024, 2048, 4096, 8192, 16384];

/// One named full-machine campaign configuration.
#[derive(Clone, Debug)]
pub struct ScaleCampaign {
    /// Display name ("pixie3d-small @ 16384" style).
    pub name: String,
    /// The machine (always the full 672-OST Jaguar).
    pub machine: MachineConfig,
    /// Writer count.
    pub nprocs: usize,
    /// Output bytes per writer.
    pub bytes_per_proc: u64,
    /// Adaptive sub-coordinator target count (the paper used 512 at full
    /// scale; clamped below the writer count for small runs).
    pub adaptive_targets: usize,
}

impl ScaleCampaign {
    fn new(kernel: &str, nprocs: usize, bytes_per_proc: u64) -> Self {
        ScaleCampaign {
            name: format!("{kernel} @ {nprocs}"),
            machine: jaguar_full(),
            nprocs,
            bytes_per_proc,
            adaptive_targets: 512.min(nprocs),
        }
    }

    /// Pixie3D "small" (32-cubes, 2 MB/process) on the full machine.
    pub fn pixie3d_small(nprocs: usize) -> Self {
        let cfg = Pixie3dConfig::small(nprocs);
        Self::new("pixie3d-small", nprocs, cfg.bytes_per_process())
    }

    /// Pixie3D "large" (128-cubes, 128 MB/process) on the full machine.
    pub fn pixie3d_large(nprocs: usize) -> Self {
        let cfg = Pixie3dConfig::large(nprocs);
        Self::new("pixie3d-large", nprocs, cfg.bytes_per_process())
    }

    /// XGC1 at the paper's 38 MB/process on the full machine.
    pub fn xgc1(nprocs: usize) -> Self {
        let cfg = Xgc1Config::paper(nprocs);
        Self::new("xgc1", nprocs, cfg.bytes_per_process())
    }

    /// Total bytes one IO action moves.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_proc * self.nprocs as u64
    }

    /// The paper's two contenders at this campaign's adaptive target
    /// count: tuned MPI-IO (160-stripe) vs adaptive.
    pub fn methods(&self) -> [(&'static str, Method); 2] {
        paper_methods(self.adaptive_targets)
    }

    /// A run spec for one method under one seed (production noise is part
    /// of the machine; no artificial interference on top).
    pub fn run_spec(&self, method: Method, seed: u64) -> RunSpec {
        RunSpec {
            machine: self.machine.clone(),
            nprocs: self.nprocs,
            data: DataSpec::Uniform(self.bytes_per_proc),
            method,
            interference: Interference::None,
            seed,
        }
    }

    /// The seed-independent [`adios_core::RunBase`] for one method of
    /// this campaign — prepare once, sweep many seeds over it.
    pub fn sweep_base(&self, method: Method) -> adios_core::RunBase {
        adios_core::RunBase::prepare(self.run_spec(method, 0))
    }

    /// Streaming seed sweep of one method: `samples` consecutive seeds
    /// folded into a [`iostats::SweepSink`] by the work-stealing sweep
    /// executor. Peak memory is flat in `samples`.
    pub fn sweep(&self, method: Method, samples: usize, base_seed: u64) -> iostats::SweepSink {
        let seeds: Vec<u64> = (0..samples as u64).map(|i| base_seed + i).collect();
        let base = self.sweep_base(method);
        let mut sink = base.sweep_sink();
        base.run_seed_sweep_into(&seeds, &mut sink);
        sink
    }

    /// Run the MPI-vs-adaptive comparison for this campaign.
    pub fn compare(&self, samples: usize, base_seed: u64) -> Vec<ComparisonRow> {
        compare_at_scale(
            &self.machine,
            self.nprocs,
            self.bytes_per_proc,
            self.adaptive_targets,
            &Interference::None,
            samples,
            base_seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MIB;

    #[test]
    fn campaigns_target_the_full_machine() {
        for c in [
            ScaleCampaign::pixie3d_small(16384),
            ScaleCampaign::pixie3d_large(16384),
            ScaleCampaign::xgc1(16384),
        ] {
            assert_eq!(c.machine.ost_count, 672);
            assert_eq!(c.machine.max_stripe_count, 160);
            assert_eq!(c.nprocs, 16384);
            assert_eq!(c.adaptive_targets, 512);
        }
    }

    #[test]
    fn paper_sizes_carry_over() {
        assert_eq!(ScaleCampaign::pixie3d_small(512).bytes_per_proc, 2 * MIB);
        assert_eq!(ScaleCampaign::pixie3d_large(512).bytes_per_proc, 128 * MIB);
        let x = ScaleCampaign::xgc1(512).bytes_per_proc;
        assert!((x as i64 - (38 * MIB) as i64).unsigned_abs() < 80);
        assert_eq!(
            ScaleCampaign::pixie3d_small(16384).total_bytes(),
            16384 * 2 * MIB
        );
    }

    #[test]
    fn adaptive_targets_clamp_below_writer_count() {
        assert_eq!(ScaleCampaign::xgc1(128).adaptive_targets, 128);
        let methods = ScaleCampaign::xgc1(128).methods();
        assert_eq!(methods[0].0, "MPI");
        assert_eq!(methods[1].0, "Adaptive");
    }

    #[test]
    fn rank_sweep_spans_old_ceiling_to_paper_scale() {
        assert_eq!(RANK_SWEEP.first(), Some(&512));
        assert_eq!(RANK_SWEEP.last(), Some(&16384));
        assert!(RANK_SWEEP.windows(2).all(|w| w[1] == 2 * w[0]));
    }

    #[test]
    fn streaming_sweep_matches_campaign_scale() {
        let c = ScaleCampaign::pixie3d_small(64);
        let (_, method) = c.methods()[1].clone();
        let sink = c.sweep(method, 3, 9);
        assert_eq!(sink.samples(), 3);
        assert_eq!(sink.failed_samples(), 0);
        assert!(sink.bandwidth().mean() > 0.0);
        assert!(sink.per_ost_bytes().iter().any(|&b| b > 0));
    }

    #[test]
    fn small_campaign_runs_end_to_end() {
        // Smoke: a shrunk Pixie3D campaign on the full machine completes
        // and moves every byte.
        let c = ScaleCampaign::pixie3d_small(128);
        let rows = c.compare(1, 42);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.bandwidth.mean > 0.0, "{}: no bandwidth", r.method);
        }
    }
}
