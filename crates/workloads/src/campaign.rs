//! Campaign helpers: multi-sample method comparisons, the measurement
//! pattern of the paper's §IV ("for all cases, at least five samples are
//! generated").

use adios_core::fault::FaultConfig;
use adios_core::{AdaptiveOpts, DataSpec, Interference, Method, OutputResult, RunBase, RunSpec};
use iostats::{Summary, SweepSink};
use storesim::MachineConfig;

/// Run `samples` runs of the same spec under consecutive seeds.
///
/// Replicates are independent simulations, so they fan out across worker
/// threads ([`simcore::par`], `MANAGED_IO_THREADS` to control) and merge
/// back in seed order. The seed-independent prefix (machine config,
/// output plan, MPI-IO layout) is prepared once via [`RunBase`] and
/// shared across replicates; results are byte-identical to per-seed
/// one-shot [`adios_core::run`] calls.
pub fn sample_results(
    machine: &MachineConfig,
    nprocs: usize,
    bytes_per_proc: u64,
    method: &Method,
    interference: &Interference,
    samples: usize,
    base_seed: u64,
) -> Vec<OutputResult> {
    let seeds: Vec<u64> = (0..samples as u64).map(|i| base_seed + i).collect();
    let base = RunBase::prepare(RunSpec {
        machine: machine.clone(),
        nprocs,
        data: DataSpec::Uniform(bytes_per_proc),
        method: method.clone(),
        interference: interference.clone(),
        seed: 0,
    });
    base.run_seed_sweep(&seeds)
        .into_iter()
        .map(|o| o.result)
        .collect()
}

/// Streaming variant of [`sample_results`] for fleet-scale sweeps: run
/// `samples` consecutive seeds over the work-stealing sweep executor and
/// fold every replicate straight into a [`SweepSink`]. Memory stays flat
/// in the sample count (no per-seed results are materialized), and the
/// returned report is byte-identical at any `MANAGED_IO_THREADS` setting.
#[allow(clippy::too_many_arguments)]
pub fn sweep_stats(
    machine: &MachineConfig,
    nprocs: usize,
    bytes_per_proc: u64,
    method: &Method,
    interference: &Interference,
    samples: usize,
    base_seed: u64,
) -> SweepSink {
    let seeds: Vec<u64> = (0..samples as u64).map(|i| base_seed + i).collect();
    let base = RunBase::prepare(RunSpec {
        machine: machine.clone(),
        nprocs,
        data: DataSpec::Uniform(bytes_per_proc),
        method: method.clone(),
        interference: interference.clone(),
        seed: 0,
    });
    let mut sink = base.sweep_sink();
    base.run_seed_sweep_into(&seeds, &mut sink);
    sink
}

/// [`sweep_stats`] with fault injection and an explicit thread count.
#[allow(clippy::too_many_arguments)]
pub fn sweep_stats_with(
    machine: &MachineConfig,
    nprocs: usize,
    bytes_per_proc: u64,
    method: &Method,
    interference: &Interference,
    samples: usize,
    base_seed: u64,
    nthreads: usize,
    faults: &FaultConfig,
) -> SweepSink {
    let seeds: Vec<u64> = (0..samples as u64).map(|i| base_seed + i).collect();
    let base = RunBase::prepare(RunSpec {
        machine: machine.clone(),
        nprocs,
        data: DataSpec::Uniform(bytes_per_proc),
        method: method.clone(),
        interference: interference.clone(),
        seed: 0,
    });
    let mut sink = base.sweep_sink();
    base.run_seed_sweep_into_threads(nthreads, &seeds, faults, &mut sink);
    sink
}

/// Summary of aggregate bandwidth (bytes/sec) across samples.
pub fn bandwidth_summary(results: &[OutputResult]) -> Summary {
    let bws: Vec<f64> = results.iter().map(|r| r.aggregate_bandwidth()).collect();
    Summary::of(&bws)
}

/// The paper's Fig. 7 metric: standard deviation of per-writer write
/// times, averaged over samples.
pub fn mean_write_time_std(results: &[OutputResult]) -> f64 {
    let stds: Vec<f64> = results
        .iter()
        .map(|r| Summary::of(&r.per_writer_times()).std_dev)
        .collect();
    stds.iter().sum::<f64>() / stds.len() as f64
}

/// Mean imbalance factor across samples (§II-2's 3.79).
pub fn mean_imbalance(results: &[OutputResult]) -> f64 {
    let fs: Vec<f64> = results.iter().map(|r| r.imbalance_factor()).collect();
    fs.iter().sum::<f64>() / fs.len() as f64
}

/// The paper's two contenders on a given workload: the tuned MPI-IO base
/// transport (160-target stripe on Lustre) vs the adaptive method
/// (512 targets in the paper; parameterised here).
pub fn paper_methods(adaptive_targets: usize) -> [(&'static str, Method); 2] {
    [
        ("MPI", Method::MpiIo { stripe_count: 160 }),
        (
            "Adaptive",
            Method::Adaptive {
                targets: adaptive_targets,
                opts: AdaptiveOpts::default(),
            },
        ),
    ]
}

/// One row of a Fig. 5/6-style comparison.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Method label.
    pub method: &'static str,
    /// Process count.
    pub nprocs: usize,
    /// Aggregate bandwidth summary over samples (bytes/sec).
    pub bandwidth: Summary,
    /// Mean per-writer write-time standard deviation (Fig. 7).
    pub write_time_std: f64,
    /// Mean adaptive-write count per sample.
    pub adaptive_writes: f64,
}

/// Run the method comparison at one scale.
#[allow(clippy::too_many_arguments)]
pub fn compare_at_scale(
    machine: &MachineConfig,
    nprocs: usize,
    bytes_per_proc: u64,
    adaptive_targets: usize,
    interference: &Interference,
    samples: usize,
    base_seed: u64,
) -> Vec<ComparisonRow> {
    paper_methods(adaptive_targets)
        .into_iter()
        .map(|(name, method)| {
            let rs = sample_results(
                machine,
                nprocs,
                bytes_per_proc,
                &method,
                interference,
                samples,
                base_seed,
            );
            let adaptive: f64 = rs.iter().map(|r| r.adaptive_writes as f64).sum::<f64>()
                / rs.len() as f64;
            ComparisonRow {
                method: name,
                nprocs,
                bandwidth: bandwidth_summary(&rs),
                write_time_std: mean_write_time_std(&rs),
                adaptive_writes: adaptive,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MIB;
    use storesim::params::testbed;

    #[test]
    fn sampling_produces_requested_count() {
        let rs = sample_results(
            &testbed(),
            8,
            2 * MIB,
            &Method::Posix { targets: 8 },
            &Interference::None,
            3,
            100,
        );
        assert_eq!(rs.len(), 3);
        let s = bandwidth_summary(&rs);
        assert_eq!(s.n, 3);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn write_time_std_is_finite_and_nonnegative() {
        let rs = sample_results(
            &testbed(),
            16,
            8 * MIB,
            &Method::Adaptive {
                targets: 4,
                opts: AdaptiveOpts::default(),
            },
            &Interference::None,
            2,
            7,
        );
        let std = mean_write_time_std(&rs);
        assert!(std.is_finite() && std >= 0.0);
        assert!(mean_imbalance(&rs) >= 1.0);
    }

    #[test]
    fn compare_at_scale_yields_both_methods() {
        let rows = compare_at_scale(
            &testbed(),
            16,
            4 * MIB,
            8,
            &Interference::None,
            2,
            50,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].method, "MPI");
        assert_eq!(rows[1].method, "Adaptive");
        for r in rows {
            assert!(r.bandwidth.mean > 0.0);
        }
    }
}
