//! S3D-style combustion workload (referenced in §IV-A as a size
//! calibration point: the Pixie3D small model "is maybe 10% of a typical
//! data size for an application like the S3D combustion simulation").
//!
//! S3D checkpoints a 3-D structured grid with many species: the state
//! vector is velocity (3), temperature, pressure and `n_species` mass
//! fractions, all double precision. With the paper's calibration (small
//! Pixie3D ≈ 10 % of typical S3D), a typical S3D process writes ~20 MB.

/// One S3D run configuration.
#[derive(Clone, Copy, Debug)]
pub struct S3dConfig {
    /// Per-process grid edge (cubic local domain).
    pub cube: usize,
    /// Number of chemical species tracked.
    pub n_species: usize,
    /// Number of processes.
    pub nprocs: usize,
}

impl S3dConfig {
    /// A typical production-sized configuration: 48³ local grid with a
    /// 52-species n-heptane mechanism ≈ 48 MB/process; the paper also
    /// mentions "smaller S3D runs" around 10 MB (see [`S3dConfig::small`]).
    pub fn typical(nprocs: usize) -> Self {
        S3dConfig {
            cube: 48,
            n_species: 52,
            nprocs,
        }
    }

    /// A smaller ethylene-mechanism run (~10 MB/process, the hybrid
    /// MPI/OpenMP point of §IV-A).
    pub fn small(nprocs: usize) -> Self {
        S3dConfig {
            cube: 32,
            n_species: 35,
            nprocs,
        }
    }

    /// Fields per grid point: u, v, w, T, P + species.
    pub fn fields(&self) -> usize {
        5 + self.n_species
    }

    /// Bytes per process.
    pub fn bytes_per_process(&self) -> u64 {
        (self.cube as u64).pow(3) * self.fields() as u64 * 8
    }

    /// Total bytes per IO action.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_process() * self.nprocs as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MIB;

    #[test]
    fn typical_is_tens_of_mb() {
        let b = S3dConfig::typical(1).bytes_per_process();
        assert!(b > 40 * MIB && b < 60 * MIB, "typical S3D {b}");
    }

    #[test]
    fn small_is_around_ten_mb() {
        let b = S3dConfig::small(1).bytes_per_process();
        assert!(b > 8 * MIB && b < 12 * MIB, "small S3D {b}");
    }

    #[test]
    fn fields_count_species() {
        assert_eq!(S3dConfig::typical(1).fields(), 57);
    }

    #[test]
    fn total_scales_with_procs() {
        let c = S3dConfig::small(100);
        assert_eq!(c.total_bytes(), c.bytes_per_process() * 100);
    }
}
