//! Closed-loop straggler defense for the adaptive protocol.
//!
//! Three pieces (DESIGN.md §12), all pure state machines so the adaptive
//! actor can drive them deterministically from simulation time:
//!
//! - [`ControlOpts`] — the knobs, off by default. With `enabled = false`
//!   the protocol is byte-identical to the static adaptive protocol.
//! - [`OstLatencyTracker`] — the coordinator's per-OST view: a streaming
//!   EWMA plus a P² tail-quantile sketch per target ([`iostats::stream`]),
//!   fed by `LatencyDigest` batches from the sub-coordinators. An OST is
//!   flagged a straggler when its smoothed latency exceeds a robust
//!   multiple of the cross-OST median; the flag clears with hysteresis
//!   (half the flag threshold) so a borderline target does not flap.
//! - [`Tuner`] — an IOPathTune-style local hill climber each SC runs for
//!   its own queue depth and retry backoff. It only ever moves one step
//!   per decision epoch, holds raises that regress throughput past the
//!   hysteresis band, and in a clean run (no flags anywhere) sits exactly
//!   at the static schedule's depth — so clean closed-loop runs converge
//!   to the static protocol.

use iostats::{Ewma, P2Quantile};

/// Knobs for the closed control loop. Carried on
/// [`AdaptiveOpts`](crate::AdaptiveOpts); everything is inert unless
/// `enabled` is set.
#[derive(Clone, Copy, Debug)]
pub struct ControlOpts {
    /// Master switch. Off ⇒ the protocol is byte-identical to the
    /// static adaptive protocol (pinned in tests/determinism.rs).
    pub enabled: bool,
    /// Length of one decision epoch (SC digest + tuner step), seconds.
    pub epoch_secs: f64,
    /// EWMA weight for per-OST latency smoothing.
    pub ewma_alpha: f64,
    /// Flag an OST when its smoothed latency exceeds this multiple of
    /// the cross-OST median.
    pub straggler_factor: f64,
    /// Minimum latency samples before an OST participates in the median
    /// or can be flagged.
    pub min_samples: u64,
    /// A stuck write is speculatively re-issued once it is this many
    /// multiples of the healthy median latency old.
    pub spec_deadline_factor: f64,
    /// Allow speculative duplicate writes to spare targets.
    pub speculation: bool,
    /// Allow the per-SC queue-depth / backoff tuner to move knobs.
    pub tuning: bool,
    /// Relative throughput regression tolerated before a raise is held
    /// or reverted.
    pub hysteresis: f64,
    /// Upper bound for the tuner's per-OST queue depth.
    pub max_queue_depth: usize,
}

impl Default for ControlOpts {
    fn default() -> Self {
        ControlOpts {
            enabled: false,
            epoch_secs: 1.0,
            ewma_alpha: 0.25,
            straggler_factor: 3.0,
            min_samples: 3,
            spec_deadline_factor: 3.0,
            speculation: true,
            tuning: true,
            hysteresis: 0.15,
            max_queue_depth: 4,
        }
    }
}

impl ControlOpts {
    /// Default knobs with the loop switched on.
    pub fn enabled() -> Self {
        ControlOpts {
            enabled: true,
            ..ControlOpts::default()
        }
    }
}

/// One OST's latency state.
#[derive(Clone, Debug)]
struct OstLat {
    ewma: Ewma,
    tail: P2Quantile,
}

/// A flag transition reported by [`OstLatencyTracker::decide`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlagChange {
    /// The OST whose flag changed.
    pub ost: u32,
    /// New flag state: `true` ⇒ straggler.
    pub slow: bool,
}

/// The coordinator's per-OST latency view and straggler detector.
///
/// Grown on demand: `observe` accepts any OST id. Deciding is separate
/// from observing so a batch of digest samples costs one median pass.
#[derive(Clone, Debug)]
pub struct OstLatencyTracker {
    alpha: f64,
    factor: f64,
    min_samples: u64,
    lat: Vec<OstLat>,
    flagged: Vec<bool>,
    scratch: Vec<f64>,
}

impl OstLatencyTracker {
    /// A fresh tracker using the detector knobs from `opts`.
    pub fn new(opts: &ControlOpts) -> Self {
        OstLatencyTracker {
            alpha: opts.ewma_alpha,
            factor: opts.straggler_factor.max(1.0),
            min_samples: opts.min_samples.max(1),
            lat: Vec::new(),
            flagged: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn grow(&mut self, ost: usize) {
        while self.lat.len() <= ost {
            self.lat.push(OstLat {
                ewma: Ewma::new(self.alpha),
                tail: P2Quantile::new(0.9),
            });
            self.flagged.push(false);
        }
    }

    /// Feed one completion (or censored in-progress) latency for `ost`.
    pub fn observe(&mut self, ost: usize, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        self.grow(ost);
        self.lat[ost].ewma.observe(secs);
        self.lat[ost].tail.observe(secs);
    }

    /// Samples seen for `ost`.
    pub fn samples(&self, ost: usize) -> u64 {
        self.lat.get(ost).map_or(0, |l| l.ewma.count())
    }

    /// Smoothed latency for `ost` (0.0 before any sample).
    pub fn smoothed(&self, ost: usize) -> f64 {
        self.lat.get(ost).map_or(0.0, |l| l.ewma.value())
    }

    /// P² tail (p90) latency estimate for `ost`.
    pub fn tail(&self, ost: usize) -> f64 {
        self.lat.get(ost).map_or(0.0, |l| l.tail.value())
    }

    /// Is `ost` currently flagged a straggler?
    pub fn is_straggler(&self, ost: usize) -> bool {
        self.flagged.get(ost).copied().unwrap_or(false)
    }

    /// Median of the smoothed latencies over OSTs with enough samples;
    /// 0.0 until at least two OSTs qualify.
    pub fn median(&mut self) -> f64 {
        self.scratch.clear();
        for l in &self.lat {
            if l.ewma.count() >= self.min_samples {
                self.scratch.push(l.ewma.value());
            }
        }
        if self.scratch.len() < 2 {
            return 0.0;
        }
        self.scratch
            .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mid = self.scratch.len() / 2;
        if self.scratch.len() % 2 == 1 {
            self.scratch[mid]
        } else {
            0.5 * (self.scratch[mid - 1] + self.scratch[mid])
        }
    }

    /// Re-evaluate every flag against the current median. Appends one
    /// [`FlagChange`] per transition (ascending OST id) to `changes` and
    /// returns the median used. With fewer than two qualifying OSTs
    /// nothing changes — a lone target can never be "slower than the
    /// rest".
    pub fn decide(&mut self, changes: &mut Vec<FlagChange>) -> f64 {
        let med = self.median();
        if med <= 0.0 {
            return med;
        }
        let flag_at = self.factor * med;
        // Hysteresis: clear only once clearly back inside the band.
        let clear_at = 0.5 * flag_at;
        for ost in 0..self.lat.len() {
            if self.lat[ost].ewma.count() < self.min_samples {
                continue;
            }
            let v = self.lat[ost].ewma.value();
            if !self.flagged[ost] && v > flag_at {
                self.flagged[ost] = true;
                changes.push(FlagChange {
                    ost: ost as u32,
                    slow: true,
                });
            } else if self.flagged[ost] && v < clear_at {
                self.flagged[ost] = false;
                changes.push(FlagChange {
                    ost: ost as u32,
                    slow: false,
                });
            }
        }
        med
    }

    /// Any OST currently flagged?
    pub fn any_flagged(&self) -> bool {
        self.flagged.iter().any(|&f| f)
    }
}

/// Per-SC knob tuner: queue depth toward a target (freeze on own-OST
/// straggler, widen while the cluster is stressed elsewhere, base when
/// clean) one step per epoch, raises guarded by a throughput-regression
/// hysteresis band; retry backoff doubled while flagged, decayed back to
/// 1× when healthy.
#[derive(Clone, Debug)]
pub struct Tuner {
    base: usize,
    min: usize,
    max: usize,
    depth: usize,
    scale: f64,
    hysteresis: f64,
    last_rate: f64,
}

impl Tuner {
    /// `base_depth` is the static schedule's writers-per-target;
    /// `min_depth` is the freeze floor (0 only when other targets exist
    /// to drain the group's members).
    pub fn new(base_depth: usize, min_depth: usize, opts: &ControlOpts) -> Self {
        let base = base_depth.max(1);
        Tuner {
            base,
            min: min_depth.min(base),
            max: opts.max_queue_depth.max(base),
            depth: base,
            scale: 1.0,
            hysteresis: opts.hysteresis.clamp(0.0, 1.0),
            last_rate: 0.0,
        }
    }

    /// Current queue depth (writers the SC keeps on its own OST).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current retry-backoff multiplier.
    pub fn backoff_scale(&self) -> f64 {
        self.scale
    }

    /// One decision epoch. `own_flagged`: this SC's OST is a straggler;
    /// `any_flagged`: some OST in the cluster is. `epoch_bytes` is what
    /// the SC's members completed this epoch. Returns `true` when a knob
    /// moved.
    pub fn step(
        &mut self,
        own_flagged: bool,
        any_flagged: bool,
        epoch_bytes: u64,
        epoch_secs: f64,
    ) -> bool {
        let rate = epoch_bytes as f64 / epoch_secs.max(1e-9);
        let target = if own_flagged {
            self.min
        } else if any_flagged {
            // Healthy group under cluster stress: widen to finish (and
            // free this target for diverts/speculation) sooner.
            self.max
        } else {
            self.base
        };
        let prev_depth = self.depth;
        if self.depth > target {
            // Stepping down is always safe: it starves the slow path.
            self.depth -= 1;
        } else if self.depth < target {
            if self.last_rate == 0.0 || rate >= self.last_rate * (1.0 - self.hysteresis) {
                self.depth += 1;
            } else if self.depth > self.base {
                // The last raise regressed throughput: back off one step.
                self.depth -= 1;
            }
        }
        let prev_scale = self.scale;
        self.scale = if own_flagged {
            (self.scale * 2.0).min(8.0)
        } else {
            (self.scale * 0.5).max(1.0)
        };
        if epoch_bytes > 0 {
            self.last_rate = rate;
        }
        self.depth != prev_depth || self.scale != prev_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inert() {
        let o = ControlOpts::default();
        assert!(!o.enabled);
        assert!(ControlOpts::enabled().enabled);
    }

    #[test]
    fn tracker_flags_and_clears_a_straggler() {
        let mut t = OstLatencyTracker::new(&ControlOpts::default());
        let mut changes = Vec::new();
        for _ in 0..5 {
            for ost in 0..4 {
                t.observe(ost, 0.1);
            }
            t.observe(4, 2.0);
        }
        let med = t.decide(&mut changes);
        assert!((med - 0.1).abs() < 1e-9);
        assert_eq!(changes, vec![FlagChange { ost: 4, slow: true }]);
        assert!(t.is_straggler(4));
        assert!(!t.is_straggler(0));
        assert!(t.any_flagged());
        // Recovery: feed fast samples until the EWMA drops under the
        // clear threshold (half of 3× median).
        changes.clear();
        for _ in 0..30 {
            t.observe(4, 0.1);
        }
        t.decide(&mut changes);
        assert_eq!(changes, vec![FlagChange { ost: 4, slow: false }]);
        assert!(!t.any_flagged());
    }

    #[test]
    fn tracker_needs_two_qualifying_osts() {
        let mut t = OstLatencyTracker::new(&ControlOpts::default());
        let mut changes = Vec::new();
        for _ in 0..10 {
            t.observe(0, 5.0);
        }
        assert_eq!(t.decide(&mut changes), 0.0);
        assert!(changes.is_empty());
        assert!(!t.is_straggler(0));
    }

    #[test]
    fn tracker_ignores_poisoned_samples() {
        let mut t = OstLatencyTracker::new(&ControlOpts::default());
        t.observe(0, f64::NAN);
        t.observe(0, -1.0);
        t.observe(0, f64::INFINITY);
        assert_eq!(t.samples(0), 0);
        assert_eq!(t.smoothed(0), 0.0);
    }

    #[test]
    fn tuner_is_stable_on_clean_epochs() {
        let mut tn = Tuner::new(2, 0, &ControlOpts::default());
        for _ in 0..20 {
            assert!(!tn.step(false, false, 1 << 20, 1.0));
        }
        assert_eq!(tn.depth(), 2);
        assert_eq!(tn.backoff_scale(), 1.0);
    }

    #[test]
    fn tuner_freezes_when_flagged_and_recovers() {
        let opts = ControlOpts::default();
        let mut tn = Tuner::new(2, 0, &opts);
        assert!(tn.step(true, true, 1 << 20, 1.0));
        assert_eq!(tn.depth(), 1);
        tn.step(true, true, 0, 1.0);
        assert_eq!(tn.depth(), 0);
        assert!(tn.backoff_scale() > 1.0);
        // Flag clears: climb back to base, backoff decays to 1.
        for _ in 0..8 {
            tn.step(false, false, 1 << 20, 1.0);
        }
        assert_eq!(tn.depth(), 2);
        assert_eq!(tn.backoff_scale(), 1.0);
    }

    #[test]
    fn tuner_widens_under_cluster_stress_and_reverts_regressions() {
        let opts = ControlOpts::default();
        let mut tn = Tuner::new(1, 0, &opts);
        // Someone else is flagged: widen toward max while throughput
        // holds.
        tn.step(false, true, 100, 1.0);
        assert_eq!(tn.depth(), 2);
        // The raise regressed throughput hard: step back.
        tn.step(false, true, 10, 1.0);
        assert_eq!(tn.depth(), 1);
    }

    #[test]
    fn tuner_floor_respects_min_depth() {
        let mut tn = Tuner::new(1, 1, &ControlOpts::default());
        for _ in 0..5 {
            tn.step(true, true, 0, 1.0);
        }
        assert_eq!(tn.depth(), 1, "single-target runs must not freeze");
    }
}
