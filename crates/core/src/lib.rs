//! # adios-core — managed, adaptive IO middleware
//!
//! The primary contribution of *Managing Variability in the IO Performance
//! of Petascale Storage Systems* (Lofstead et al., SC 2010), reimplemented
//! over the managed-io simulation substrate. The middleware exposes a set
//! of transport methods selected per output operation:
//!
//! * [`posix`] — POSIX file-per-process (the paper's IOR measurement mode).
//! * [`mpiio`] — the tuned ADIOS MPI-IO base transport: one shared file,
//!   ≤160-target striping, buffered, all-concurrent writes (§III-A).
//! * Stagger — serialised per-target writes with staggered opens (the
//!   authors' CUG'09 technique; [`adaptive`] with work stealing off).
//! * [`adaptive`] — the paper's method: writer / sub-coordinator /
//!   coordinator roles, one active writer per target file, and dynamic
//!   work shifting from slow to fast targets (Algorithms 1–3), with full
//!   BP-style local/global index production.
//!
//! [`runner`] is the public entry point: build a [`runner::RunSpec`], call
//! [`runner::run`], inspect the [`record::OutputResult`].

#![warn(missing_docs)]

pub mod adaptive;
pub mod control;
pub mod fault;
pub mod mpiio;
pub mod multistep;
pub mod plan;
pub mod posix;
pub mod protocol;
pub mod readback;
pub mod record;
pub mod redundancy;
pub mod runner;
pub mod scrub;
pub mod staging;

pub use adaptive::{AdaptiveActor, AdaptiveOpts, MsgStats};
pub use control::{ControlOpts, FlagChange, OstLatencyTracker, Tuner};
pub use fault::{
    FaultConfig, FaultTolerance, IntegrityOutcome, NetFaults, SimError, WriteOutcome,
};
pub use multistep::{replay, required_bandwidth, AppModel, Timeline};
pub use plan::OutputPlan;
pub use readback::{
    run_restart_read, run_restart_read_with, ReadOutcome, ReadPlan, ReadResult, ReadRun,
};
pub use redundancy::{
    place_shards, run_redundant, RedundancyOpts, RedundancyReport, RedundantObject, ShardRecord,
    ShardState,
};
pub use scrub::{
    repair_subfiles, run_rebuild, run_scrub, BlockFate, RebuildExtent, RebuildFate, RebuildReport,
    RebuildTask, RepairSummary, ScrubReport,
};
pub use staging::{run_staged, StagingOpts, StagingResult};
pub use record::{OutputResult, WriteRecord};
pub use runner::{
    run, run_with_faults, run_with_redundancy, DataSpec, Interference, Method, ProtocolStats,
    RunBase, RunOutput, RunScratch, RunSpec,
};
