//! POSIX file-per-process transport — the IOR measurement mode of §II.
//!
//! Every rank creates its own file pinned to one storage target (writers
//! split evenly across the chosen targets, as in the paper's internal- and
//! external-interference experiments), opens it, writes its whole buffer
//! in one call, and closes.
//!
//! Like IOR itself, the open phase is separated from the timed write
//! phase by a barrier (rank 0 collects arrivals, then broadcasts go):
//! otherwise the metadata server's open storm staggers the writers and
//! hides exactly the concurrent-stream interference the benchmark is
//! supposed to measure. The barrier cost never enters the measured write
//! span.

use std::sync::Arc;

use clustersim::{Actor, Ctx, IoComplete, Rank};
use simcore::SimTime;
use storesim::layout::FileId;
use storesim::system::CompletionKind;

use crate::plan::OutputPlan;
use crate::record::WriteRecord;

const TAG_OPEN: u32 = 1;
const TAG_WRITE: u32 = 2;
const TAG_CLOSE: u32 = 3;

/// Barrier messages between ranks (rank 0 is the barrier root).
#[derive(Clone, Copy, Debug)]
pub enum BarrierMsg {
    /// A rank finished its open.
    Arrive,
    /// All ranks arrived; start writing.
    Go,
}

/// One rank of the POSIX file-per-process mode.
pub struct PosixActor {
    plan: Arc<OutputPlan>,
    /// This rank's own file (pre-created, pinned to its target).
    file: FileId,
    me: u32,
    write_started: Option<SimTime>,
    /// Barrier arrivals seen (rank 0 only).
    arrivals: usize,
    /// Per-rank arrival dedup (rank 0 only) — a faulty network may
    /// duplicate `Arrive` messages.
    arrived: Vec<bool>,
    /// The write was issued; duplicated `Go` messages are ignored.
    write_issued: bool,
    /// Completed writes (exactly one after a successful run).
    pub records: Vec<WriteRecord>,
    /// Set when the close completes.
    pub closed_at: Option<SimTime>,
}

impl PosixActor {
    /// Build the actor for `rank` writing to `file`.
    pub fn new(rank: u32, plan: Arc<OutputPlan>, file: FileId) -> Self {
        let arrived = if rank == 0 { vec![false; plan.nprocs] } else { Vec::new() };
        PosixActor {
            plan,
            file,
            me: rank,
            write_started: None,
            arrivals: 0,
            arrived,
            write_issued: false,
            records: Vec::new(),
            closed_at: None,
        }
    }

    fn begin_write(&mut self, ctx: &mut Ctx<'_, BarrierMsg>) {
        if std::mem::replace(&mut self.write_issued, true) {
            return; // duplicated Go
        }
        self.write_started = Some(ctx.now());
        let bytes = self.plan.rank_bytes[self.me as usize];
        ctx.write_file(self.file, 0, bytes, TAG_WRITE);
    }

    fn note_arrival(&mut self, from: Rank, ctx: &mut Ctx<'_, BarrierMsg>) {
        debug_assert_eq!(self.me, 0, "barrier root is rank 0");
        if std::mem::replace(&mut self.arrived[from.0 as usize], true) {
            return; // duplicated Arrive
        }
        self.arrivals += 1;
        if self.arrivals == self.plan.nprocs {
            for r in 1..self.plan.nprocs as u32 {
                ctx.send_control(Rank(r), BarrierMsg::Go);
            }
            self.begin_write(ctx);
        }
    }
}

impl Actor for PosixActor {
    type Msg = BarrierMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BarrierMsg>) {
        ctx.open(TAG_OPEN);
    }

    fn on_message(&mut self, from: Rank, msg: BarrierMsg, ctx: &mut Ctx<'_, BarrierMsg>) {
        match msg {
            BarrierMsg::Arrive => self.note_arrival(from, ctx),
            BarrierMsg::Go => self.begin_write(ctx),
        }
    }

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, BarrierMsg>) {
        match (done.tag, done.kind) {
            (TAG_OPEN, CompletionKind::Open) => {
                if self.me == 0 {
                    self.note_arrival(Rank(0), ctx);
                } else {
                    ctx.send_control(Rank(0), BarrierMsg::Arrive);
                }
            }
            (TAG_WRITE, CompletionKind::Write) => {
                let started = self.write_started.take().expect("write started");
                // A write that hit a failed target leaves no record: the
                // bytes are not durable. The rank still closes, so the run
                // terminates with a structured partial result.
                if !done.error {
                    let group = self.plan.group_of[self.me as usize];
                    self.records.push(WriteRecord {
                        rank: self.me,
                        bytes: done.bytes,
                        start: started,
                        end: done.finished,
                        ost: self.plan.ost_of_group[group as usize],
                        file: self.file,
                        offset: 0,
                        adaptive: false,
                    });
                }
                ctx.close(TAG_CLOSE);
            }
            (TAG_CLOSE, CompletionKind::Close) => {
                self.closed_at = Some(done.finished);
                ctx.finish();
            }
            other => panic!("unexpected IO completion {other:?}"),
        }
    }
}
