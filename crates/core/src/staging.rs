//! Data staging — the alternative the paper examines in §II-3.
//!
//! "Data staging moves output from a large number of compute nodes to a
//! smaller number of staging nodes before writing it to disk. However,
//! the total buffer space available in the staging area is limited,
//! thereby limiting the achievable degree of asynchronicity. Further,
//! large staging areas ... will still lead to internal or external
//! interference."
//!
//! Model: `stagers` extra ranks each own `buffer_bytes` of staging memory
//! and one output file. App ranks ship their buffers over the network to
//! their stager (rank-striped). A stager that has room accepts
//! immediately — the app's visible "IO time" is just the network
//! transfer — and drains accepted buffers to storage one at a time. A
//! stager with a full buffer makes the app wait (the blocking the paper
//! predicts when output outpaces the drain).
//!
//! The run reports both the app-visible span (what the application
//! blocks on) and the drain span (when data is actually durable), so the
//! asynchronicity *and* its buffer limit are measurable.

use std::collections::VecDeque;

use clustersim::{Actor, Ctx, IoComplete, Rank, Simulation};
use simcore::SimTime;
use storesim::layout::{FileId, StripeSpec};
use storesim::system::CompletionKind;
use storesim::MachineConfig;

use crate::plan::OutputPlan;
use crate::record::WriteRecord;

const TAG_WRITE: u32 = 2;

/// Staging configuration.
#[derive(Clone, Debug)]
pub struct StagingOpts {
    /// Number of staging ranks (appended after the app ranks).
    pub stagers: usize,
    /// Buffer capacity per stager, bytes.
    pub buffer_bytes: u64,
    /// Storage targets the stagers write to (one file per stager, striped
    /// round-robin over these).
    pub targets: usize,
}

/// Messages between app ranks and stagers.
#[derive(Clone, Copy, Debug)]
pub enum StageMsg {
    /// App rank ships its buffer (wire cost = the payload size).
    Data {
        /// Originating app rank.
        app: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// Stager accepted the buffer; the app is unblocked.
    Ack,
}

enum Role {
    App {
        stager: Rank,
        bytes: u64,
        sent_at: Option<SimTime>,
        acked_at: Option<SimTime>,
    },
    Stager {
        file: FileId,
        ost: storesim::layout::OstId,
        capacity: u64,
        used: u64,
        next_offset: u64,
        /// Buffers accepted and waiting to drain (app, bytes).
        drain_queue: VecDeque<(u32, u64)>,
        /// Requests that arrived while the buffer was full.
        blocked: VecDeque<(u32, u64)>,
        draining: bool,
        expected: usize,
        received: usize,
        drained: usize,
        /// (app rank, drain start, drain end, bytes).
        drains: Vec<WriteRecord>,
        last_drain_started: Option<SimTime>,
        current: Option<(u32, u64)>,
    },
}

/// One rank of the staging transport (app or stager).
pub struct StagingActor {
    role: Role,
    me: u32,
}

impl StagingActor {
    fn stager_try_drain(&mut self, ctx: &mut Ctx<'_, StageMsg>) {
        if let Role::Stager {
            file,
            drain_queue,
            draining,
            next_offset,
            last_drain_started,
            current,
            ..
        } = &mut self.role
        {
            if *draining {
                return;
            }
            if let Some((app, bytes)) = drain_queue.pop_front() {
                *draining = true;
                *last_drain_started = Some(ctx.now());
                *current = Some((app, bytes));
                let off = *next_offset;
                *next_offset += bytes;
                ctx.write_file(*file, off, bytes, TAG_WRITE);
            }
        }
    }

    fn stager_accept(&mut self, app: u32, bytes: u64, ctx: &mut Ctx<'_, StageMsg>) {
        let accepted = if let Role::Stager {
            capacity,
            used,
            drain_queue,
            blocked,
            received,
            ..
        } = &mut self.role
        {
            *received += 1;
            if *used + bytes <= *capacity {
                *used += bytes;
                drain_queue.push_back((app, bytes));
                true
            } else {
                blocked.push_back((app, bytes));
                false
            }
        } else {
            unreachable!("data sent to an app rank")
        };
        if accepted {
            ctx.send_control(Rank(app), StageMsg::Ack);
            self.stager_try_drain(ctx);
        }
    }

    fn stager_drain_done(&mut self, done: IoComplete, ctx: &mut Ctx<'_, StageMsg>) {
        let mut unblocked: Option<(u32, u64)> = None;
        if let Role::Stager {
            capacity,
            used,
            draining,
            drained,
            expected,
            drains,
            last_drain_started,
            blocked,
            ost,
            file,
            current,
            ..
        } = &mut self.role
        {
            *draining = false;
            *drained += 1;
            let (app, _) = current.take().expect("drain in flight");
            drains.push(WriteRecord {
                rank: app,
                bytes: done.bytes,
                start: last_drain_started.take().expect("drain started"),
                end: done.finished,
                ost: *ost,
                file: *file,
                offset: 0, // informational; stager tracks real offsets internally
                adaptive: false,
            });
            *used -= done.bytes;
            // Admit one blocked request if it now fits.
            if let Some(&(_, bytes)) = blocked.front() {
                if *used + bytes <= *capacity {
                    unblocked = blocked.pop_front();
                }
            }
            if *drained == *expected {
                ctx.finish();
            }
        }
        if let Some((app, bytes)) = unblocked {
            self.stager_accept(app, bytes, ctx);
        }
        self.stager_try_drain(ctx);
    }
}

impl Actor for StagingActor {
    type Msg = StageMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, StageMsg>) {
        if let Role::App {
            stager,
            bytes,
            sent_at,
            ..
        } = &mut self.role
        {
            *sent_at = Some(ctx.now());
            let msg = StageMsg::Data {
                app: self.me,
                bytes: *bytes,
            };
            let wire = *bytes;
            ctx.send(*stager, msg, wire);
        }
    }

    fn on_message(&mut self, _from: Rank, msg: StageMsg, ctx: &mut Ctx<'_, StageMsg>) {
        match msg {
            StageMsg::Data { app, bytes } => self.stager_accept(app, bytes, ctx),
            StageMsg::Ack => {
                if let Role::App { acked_at, .. } = &mut self.role {
                    *acked_at = Some(ctx.now());
                    ctx.finish();
                } else {
                    unreachable!("ack sent to a stager")
                }
            }
        }
    }

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, StageMsg>) {
        debug_assert_eq!(done.tag, TAG_WRITE);
        debug_assert_eq!(done.kind, CompletionKind::Write);
        self.stager_drain_done(done, ctx);
    }
}

/// Result of a staging run.
#[derive(Clone, Debug)]
pub struct StagingResult {
    /// Per-app (send, ack) — the app-visible IO window.
    pub app_spans: Vec<(SimTime, SimTime)>,
    /// Stager drain records (data actually durable).
    pub drains: Vec<WriteRecord>,
    /// Total bytes.
    pub total_bytes: u64,
}

impl StagingResult {
    /// App-visible span: first send to last ack.
    pub fn app_span(&self) -> f64 {
        let s = self.app_spans.iter().map(|&(s, _)| s).min().expect("apps");
        let e = self.app_spans.iter().map(|&(_, e)| e).max().expect("apps");
        (e - s).as_secs_f64()
    }

    /// Durability span: first send to last drain completion.
    pub fn drain_span(&self) -> f64 {
        let s = self.app_spans.iter().map(|&(s, _)| s).min().expect("apps");
        let e = self.drains.iter().map(|r| r.end).max().expect("drains");
        (e - s).as_secs_f64()
    }

    /// Apparent (app-visible) bandwidth, bytes/sec.
    pub fn apparent_bandwidth(&self) -> f64 {
        self.total_bytes as f64 / self.app_span()
    }

    /// Durable bandwidth, bytes/sec.
    pub fn durable_bandwidth(&self) -> f64 {
        self.total_bytes as f64 / self.drain_span()
    }
}

/// Run one staged output: `plan.nprocs` app ranks ship to
/// `opts.stagers` staging ranks which drain to storage.
pub fn run_staged(
    machine: &MachineConfig,
    plan: &OutputPlan,
    opts: &StagingOpts,
    seed: u64,
) -> StagingResult {
    assert!(opts.stagers > 0 && opts.buffer_bytes > 0);
    let mut storage = storesim::StorageSystem::new(machine.clone(), seed);
    let napp = plan.nprocs;
    let nstage = opts.stagers;
    let targets = opts.targets.min(machine.ost_count).max(1);
    let mut actors: Vec<StagingActor> = Vec::with_capacity(napp + nstage);
    for r in 0..napp as u32 {
        let stager = Rank((napp + (r as usize % nstage)) as u32);
        actors.push(StagingActor {
            role: Role::App {
                stager,
                bytes: plan.rank_bytes[r as usize],
                sent_at: None,
                acked_at: None,
            },
            me: r,
        });
    }
    for s in 0..nstage {
        let ost = storesim::layout::OstId(s % targets);
        let file = storage
            .fs_mut()
            .create(format!("staged-{s}.bp"), StripeSpec::Pinned(vec![ost]));
        let expected = (0..napp).filter(|r| r % nstage == s).count();
        actors.push(StagingActor {
            role: Role::Stager {
                file,
                ost,
                capacity: opts.buffer_bytes,
                used: 0,
                next_offset: 0,
                drain_queue: VecDeque::new(),
                blocked: VecDeque::new(),
                draining: false,
                expected,
                received: 0,
                drained: 0,
                drains: Vec::new(),
                last_drain_started: None,
                current: None,
            },
            me: (napp + s) as u32,
        });
    }
    let mut sim = Simulation::with_storage(machine.clone(), actors, seed, storage);
    // Every app acks (napp finishes) + every stager drains fully (nstage).
    let target = (napp + nstage) as u64;
    sim.run_until(target, SimTime::from_secs_f64(1e6));
    assert_eq!(sim.finish_count(), target, "staging stalled");
    let mut app_spans = Vec::with_capacity(napp);
    let mut drains = Vec::new();
    let mut total_bytes = 0;
    for a in sim.actors() {
        match &a.role {
            Role::App {
                sent_at,
                acked_at,
                bytes,
                ..
            } => {
                app_spans.push((
                    sent_at.expect("app sent"),
                    acked_at.expect("app acked"),
                ));
                total_bytes += *bytes;
            }
            Role::Stager { drains: d, .. } => drains.extend_from_slice(d),
        }
    }
    StagingResult {
        app_spans,
        drains,
        total_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::{GIB, MIB};
    use storesim::params::testbed;

    fn plan(nprocs: usize, bytes: u64) -> OutputPlan {
        OutputPlan::uniform(nprocs, 8, 8, bytes)
    }

    #[test]
    fn staging_completes_and_drains_everything() {
        let p = plan(16, 4 * MIB);
        let opts = StagingOpts {
            stagers: 4,
            buffer_bytes: GIB,
            targets: 4,
        };
        let res = run_staged(&testbed(), &p, &opts, 1);
        assert_eq!(res.app_spans.len(), 16);
        assert_eq!(res.drains.len(), 16);
        assert_eq!(res.total_bytes, 16 * 4 * MIB);
        assert!(res.drain_span() >= res.app_span());
    }

    #[test]
    fn big_buffers_make_apps_fast() {
        // With room for everything, the app-visible span is network-bound
        // and much shorter than the durability span.
        let p = plan(16, 32 * MIB);
        let opts = StagingOpts {
            stagers: 2,
            buffer_bytes: GIB,
            targets: 2,
        };
        let res = run_staged(&testbed(), &p, &opts, 2);
        assert!(
            res.apparent_bandwidth() > 3.0 * res.durable_bandwidth(),
            "asynchronicity: apparent {} vs durable {}",
            res.apparent_bandwidth(),
            res.durable_bandwidth()
        );
    }

    #[test]
    fn tiny_buffers_block_apps() {
        // §II-3: "asynchronicity is limited by the total and limited
        // amounts of buffer space" — one buffered write's worth of space
        // collapses apparent bandwidth toward durable bandwidth.
        let p = plan(16, 32 * MIB);
        let roomy = StagingOpts {
            stagers: 2,
            buffer_bytes: GIB,
            targets: 2,
        };
        let tight = StagingOpts {
            stagers: 2,
            buffer_bytes: 33 * MIB,
            targets: 2,
        };
        let fast = run_staged(&testbed(), &p, &roomy, 3);
        let slow = run_staged(&testbed(), &p, &tight, 3);
        assert!(
            slow.app_span() > 3.0 * fast.app_span(),
            "tight buffers must block: roomy {} vs tight {}",
            fast.app_span(),
            slow.app_span()
        );
    }

    #[test]
    fn drains_conserve_bytes() {
        let p = plan(12, 8 * MIB);
        let opts = StagingOpts {
            stagers: 3,
            buffer_bytes: 64 * MIB,
            targets: 3,
        };
        let res = run_staged(&testbed(), &p, &opts, 4);
        let drained: u64 = res.drains.iter().map(|d| d.bytes).sum();
        assert_eq!(drained, res.total_bytes);
    }

    #[test]
    fn staging_is_deterministic() {
        let p = plan(8, 4 * MIB);
        let opts = StagingOpts {
            stagers: 2,
            buffer_bytes: 16 * MIB,
            targets: 2,
        };
        let a = run_staged(&testbed(), &p, &opts, 9);
        let b = run_staged(&testbed(), &p, &opts, 9);
        assert_eq!(a.drain_span(), b.drain_span());
        assert_eq!(a.app_span(), b.app_span());
    }
}
