//! Multi-step application timelines: the §II-3 asynchronous-IO analysis.
//!
//! Petascale codes alternate 15–30 minute compute phases with output
//! bursts (§I). The paper argues (§II-3) that asynchronous IO only hides
//! variability while buffer space lasts: "asynchronicity is limited by
//! the total and limited amounts of buffer space available on the
//! machine, which typically extends to only one or at most a few
//! simulation output steps. Such near-synchronous IO, therefore, still
//! causes applications to block on IO when IO performance is
//! consistently too low."
//!
//! This module makes that argument quantitative. Given a sequence of
//! measured per-step IO drain times (from any transport's runs), it
//! replays an application timeline where output drains asynchronously
//! through a buffer of `buffer_steps` outstanding outputs, and reports
//! how much wall time the application spends blocked. It also evaluates
//! the §I budget rule: IO must stay within ~5 % of wall-clock time.

use minijson::{json, Value};

/// Application cadence parameters.
#[derive(Clone, Copy, Debug)]
pub struct AppModel {
    /// Compute time between outputs, seconds (paper: 15–30 min).
    pub compute_secs: f64,
    /// How many output steps can be buffered/in flight at once (§II-3:
    /// "one or at most a few"). 0 means fully synchronous.
    pub buffer_steps: usize,
}

impl AppModel {
    /// The paper's canonical cadence: 30-minute steps, one buffered step.
    pub fn paper_default() -> Self {
        AppModel {
            compute_secs: 1800.0,
            buffer_steps: 1,
        }
    }
}

/// Replayed timeline of one multi-step run.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Wall time at which each step's output was handed off (after any
    /// blocking).
    pub submit: Vec<f64>,
    /// Wall time each step's drain finished.
    pub drain_end: Vec<f64>,
    /// Blocking the app suffered before each handoff, seconds.
    pub blocked: Vec<f64>,
    /// Total wall time (last compute end + any terminal block; drains may
    /// finish later).
    pub app_wall: f64,
}

impl Timeline {
    /// Convert to a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "submit": self.submit.clone(),
            "drain_end": self.drain_end.clone(),
            "blocked": self.blocked.clone(),
            "app_wall": self.app_wall,
        })
    }

    /// Parse from a JSON object produced by [`Timeline::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let floats = |k: &str| {
            v.get(k)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("missing or non-array field `{k}`"))?
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| format!("non-numeric entry in `{k}`")))
                .collect::<Result<Vec<f64>, String>>()
        };
        Ok(Timeline {
            submit: floats("submit")?,
            drain_end: floats("drain_end")?,
            blocked: floats("blocked")?,
            app_wall: v
                .get("app_wall")
                .and_then(Value::as_f64)
                .ok_or_else(|| "missing or non-numeric field `app_wall`".to_string())?,
        })
    }

    /// Total time the application was blocked on IO.
    pub fn total_blocked(&self) -> f64 {
        self.blocked.iter().sum()
    }

    /// Fraction of application wall time spent blocked on IO (the §I
    /// "within 5 %" budget applies to this number).
    pub fn io_fraction(&self) -> f64 {
        self.total_blocked() / self.app_wall
    }
}

/// Replay an application that computes `model.compute_secs`, then hands
/// off an output whose drain takes `io_times[k]` seconds, with at most
/// `model.buffer_steps` outputs in flight (0 ⇒ the app itself waits for
/// each drain).
///
/// A single drain channel is assumed (outputs drain in order), matching
/// one shared file system path.
pub fn replay(io_times: &[f64], model: AppModel) -> Timeline {
    assert!(!io_times.is_empty());
    assert!(model.compute_secs >= 0.0);
    let n = io_times.len();
    let mut submit = vec![0.0; n];
    let mut drain_end = vec![0.0; n];
    let mut blocked = vec![0.0; n];
    let mut clock = 0.0; // application's own clock
    for k in 0..n {
        clock += model.compute_secs;
        // The app may hand off only if fewer than buffer_steps drains are
        // outstanding; with buffer_steps == 0 it waits for its own drain.
        let gate = if model.buffer_steps == 0 {
            // Synchronous: wait for this step's drain (computed below),
            // handled by blocking until the previous drain finished, then
            // draining inline.
            if k > 0 {
                drain_end[k - 1]
            } else {
                0.0
            }
        } else if k >= model.buffer_steps {
            // Must wait until the (k - buffer_steps)'th drain completes.
            drain_end[k - model.buffer_steps]
        } else {
            0.0
        };
        let start = clock.max(gate);
        blocked[k] = start - clock;
        clock = start;
        submit[k] = clock;
        let drain_start = if k == 0 {
            submit[k]
        } else {
            submit[k].max(drain_end[k - 1])
        };
        drain_end[k] = drain_start + io_times[k];
        if model.buffer_steps == 0 {
            // Synchronous: the app also waits for its own drain.
            let wait = drain_end[k] - clock;
            blocked[k] += wait;
            clock = drain_end[k];
        }
    }
    Timeline {
        submit,
        drain_end,
        blocked,
        app_wall: clock,
    }
}

/// The §I bandwidth budget: the minimum sustained IO rate needed to keep
/// IO within `budget` (e.g. 0.05) of wall time, for `bytes_per_step`
/// output every `compute_secs`.
pub fn required_bandwidth(bytes_per_step: u64, compute_secs: f64, budget: f64) -> f64 {
    assert!(budget > 0.0 && budget < 1.0);
    // io_time <= budget * (compute + io_time)  =>
    // io_time <= compute * budget / (1 - budget)
    let max_io = compute_secs * budget / (1.0 - budget);
    bytes_per_step as f64 / max_io
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::{GIB, TIB};

    #[test]
    fn fast_io_never_blocks() {
        let t = replay(&[10.0; 8], AppModel { compute_secs: 100.0, buffer_steps: 1 });
        assert_eq!(t.total_blocked(), 0.0);
        assert!((t.app_wall - 800.0).abs() < 1e-9);
    }

    #[test]
    fn synchronous_mode_blocks_every_step() {
        let t = replay(&[10.0; 4], AppModel { compute_secs: 100.0, buffer_steps: 0 });
        assert!((t.total_blocked() - 40.0).abs() < 1e-9);
        assert!((t.app_wall - 440.0).abs() < 1e-9);
    }

    #[test]
    fn slow_io_eventually_blocks_buffered_apps() {
        // Drains take longer than compute: with 1 buffered step the app
        // blocks from step 1 on (the paper's "near-synchronous" point).
        let t = replay(&[150.0; 6], AppModel { compute_secs: 100.0, buffer_steps: 1 });
        assert_eq!(t.blocked[0], 0.0, "first step fits the buffer");
        assert!(t.blocked[1] > 0.0, "second step must wait");
        // Steady state: each step effectively costs max(compute, io).
        assert!((t.app_wall - (100.0 + 5.0 * 150.0)).abs() < 1e-6);
    }

    #[test]
    fn deeper_buffers_absorb_transients() {
        // One slow outlier in otherwise fast drains.
        let mut io = vec![10.0; 10];
        io[3] = 500.0;
        let shallow = replay(&io, AppModel { compute_secs: 100.0, buffer_steps: 1 });
        let deep = replay(&io, AppModel { compute_secs: 100.0, buffer_steps: 4 });
        assert!(
            deep.total_blocked() < shallow.total_blocked(),
            "deep {} vs shallow {}",
            deep.total_blocked(),
            shallow.total_blocked()
        );
    }

    #[test]
    fn consistently_slow_io_defeats_any_finite_buffer() {
        // §II-3: consistently low performance blocks regardless of buffer.
        let io = vec![200.0; 40];
        let model = AppModel { compute_secs: 100.0, buffer_steps: 8 };
        let t = replay(&io, model);
        assert!(
            t.total_blocked() > 1000.0,
            "sustained deficit must block: {}",
            t.total_blocked()
        );
    }

    #[test]
    fn io_fraction_tracks_budget() {
        let t = replay(&[50.0; 10], AppModel { compute_secs: 1000.0, buffer_steps: 0 });
        assert!((t.io_fraction() - 50.0 / 1050.0).abs() < 1e-9);
    }

    #[test]
    fn paper_bandwidth_budget() {
        // §I: 150k procs x 200 MB every 30 min within 5 % => ~35 GB/s.
        // (The paper quotes decimal GB and ~3 TB per step.)
        let bytes = 3 * TIB;
        let bw = required_bandwidth(bytes, 1800.0, 0.05);
        let gibs = bw / GIB as f64;
        assert!(
            (30.0..42.0).contains(&gibs),
            "§I budget should be ~35 GB/s, got {gibs}"
        );
    }

    #[test]
    fn timeline_json_roundtrip() {
        let t = replay(&[1.0, 2.0], AppModel { compute_secs: 5.0, buffer_steps: 1 });
        let j = t.to_json().to_string();
        let back = Timeline::from_json(&Value::parse(&j).unwrap()).unwrap();
        assert_eq!(back.app_wall, t.app_wall);
        assert_eq!(back.blocked, t.blocked);
    }
}
