//! The adaptive IO method — paper §III, Algorithms 1–3, implemented as an
//! actor state machine per rank.
//!
//! Every rank is a **writer**. The first rank of each group additionally
//! acts as **sub-coordinator (SC)** for that group's file (one file pinned
//! per storage target). Rank 0 additionally acts as the **coordinator
//! (C)**. Writers and the coordinator communicate only through SCs.
//!
//! * A writer waits for a `(target, offset)` assignment, writes its
//!   process group, notifies the triggering SC (and the target SC when
//!   they differ) and ships its index pieces to the target SC
//!   (Algorithm 1).
//! * An SC feeds its own file one writer at a time (`writers_per_target`
//!   generalises this, §III-B3's untested extension), counts expected
//!   index bodies, reports completion to C, diverts waiting writers on
//!   `AdaptiveWriteStart`, or answers `WritersBusy` (Algorithm 2). After
//!   `OverallWriteComplete` it sorts/merges its index pieces, writes the
//!   local index into its file and forwards the index to C.
//! * C sits idle until SC completions arrive, then shifts work from
//!   still-writing groups onto completed (fast) files, one active adaptive
//!   write per file, spreading requests round-robin over writing SCs
//!   (Algorithm 3). When all groups complete and no adaptive request is
//!   outstanding it broadcasts `OverallWriteComplete`, gathers local
//!   indices and writes the global index.
//!
//! With `work_stealing: false` the same machinery degrades to the
//! authors' earlier *stagger* method (serialised per-target writes, no
//! shifting), which we use as an ablation baseline.
//!
//! # Fault tolerance ([`crate::fault::FaultTolerance`], off by default)
//!
//! When `opts.fault.enabled`, the same state machines harden against
//! storage-target failures, duplicated/delayed control traffic and rank
//! deaths:
//!
//! * Writers guard every write with a timeout and bounded exponential
//!   backoff retries; exhausted retries surface as `WriteFailed` to the
//!   writer's sub-coordinator, which re-queues the writer and condemns
//!   the target through the coordinator.
//! * The coordinator broadcasts `TargetDead` for condemned targets;
//!   writers holding now-destroyed data discard their records and
//!   re-enter their group's pool (`LostWrite`), and the rewrites flow
//!   through the ordinary work-shifting machinery onto surviving targets.
//! * The coordinator pings sub-coordinators; a silent SC is replaced by
//!   promoting the group's next member (`ScFailover`), and surviving
//!   members replay their status (and un-acked index records) to the
//!   promoted SC. Members that stay silent past the adoption window are
//!   declared dead and their bytes are reported lost by the runner.
//! * Duplicate-message guards (per-member state, per-writer index sets,
//!   in-flight request matching) make every handler idempotent.
//!
//! Fault-tolerant runs currently support synthetic (sizes-only) data;
//! byte-level accounting lives in the runner, keyed off write records and
//! the storage system's data-loss log.
//!
//! # Closed control loop ([`crate::control::ControlOpts`], off by default)
//!
//! When `opts.control.enabled`, the protocol closes a feedback loop over
//! the same roles (DESIGN.md §12):
//!
//! * SCs time every Assigned → Done edge of their members and, once per
//!   decision epoch, ship the per-OST samples to the coordinator
//!   (`LatencyDigest`), including censored ages of still-stuck local
//!   writes so a fully stalled target remains visible.
//! * The coordinator folds digests into a per-OST
//!   [`crate::control::OstLatencyTracker`] and broadcasts
//!   `StragglerFlag` transitions. Free-target choice prefers unflagged
//!   OSTs.
//! * An SC whose own OST is flagged speculatively re-issues writes stuck
//!   past an adaptive deadline: the coordinator grants a spare target
//!   (`SpecGrant`, offset permanently burned), the member duplicates the
//!   write under a separate generation-tagged namespace (`TAG_SPEC`),
//!   first completion wins and the loser is discarded — exactly-once
//!   accounting (`written + lost == total`) is preserved by
//!   construction.
//! * Each SC runs a local [`crate::control::Tuner`] adjusting its queue
//!   depth and its members' retry-backoff scale with hysteresis; clean
//!   runs converge to (and stay at) the static schedule.
//!
//! With `control.enabled = false` every run is byte-identical to the
//! static protocol (pinned in tests/determinism.rs).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use bpfmt::{encode_pg_opts, GlobalIndex, IndexEntry, IntegrityOpts, LocalIndex, VarBlock};
use clustersim::{Actor, Ctx, IoComplete, Rank};
use simcore::{SimDuration, SimTime};
use storesim::layout::FileId;
use storesim::system::CompletionKind;
use storesim::ObjectStore;

use crate::control::{ControlOpts, FlagChange, OstLatencyTracker, Tuner};
use crate::fault::FaultTolerance;
use crate::plan::OutputPlan;
use crate::protocol::{Assignment, Msg, INDEX_ENTRY_BYTES};
use crate::record::WriteRecord;

/// IO tag values (per-rank scoped). In fault mode the write tag carries a
/// generation counter in its upper bits (`TAG_WRITE | gen << 8`) so stale
/// completions from abandoned attempts are ignored.
const TAG_OPEN: u32 = 1;
const TAG_WRITE: u32 = 2;
const TAG_INDEX: u32 = 3;
const TAG_GLOBAL_INDEX: u32 = 4;
const TAG_CLOSE: u32 = 5;
/// Speculative duplicate write (control loop); carries its own
/// generation counter in bits 8+ (`TAG_SPEC | spec_gen << 8`), a
/// namespace separate from `TAG_WRITE` generations so primary retries
/// and speculations fence independently.
const TAG_SPEC: u32 = 6;
/// Timer used by staggered opens.
const TIMER_OPEN: u64 = 1;
/// Write-timeout timer (fault mode); carries the generation in bits 8+.
const TIMER_WRITE_TIMEOUT: u64 = 2;
/// Retry-backoff timer (fault mode); carries the generation in bits 8+.
const TIMER_RETRY: u64 = 3;
/// Coordinator liveness-ping timer (fault mode).
const TIMER_PING: u64 = 4;
/// Promoted-SC adoption window timer (fault mode).
const TIMER_ADOPT: u64 = 5;
/// Sub-coordinator dead-member sweep timer (fault mode).
const TIMER_SWEEP: u64 = 6;
/// Sub-coordinator control-loop decision epoch (control mode).
const TIMER_EPOCH: u64 = 7;
/// Speculative-write timeout (control mode); spec generation in bits 8+.
const TIMER_SPEC_TIMEOUT: u64 = 8;

/// Tuning knobs of the adaptive method.
#[derive(Clone, Debug)]
pub struct AdaptiveOpts {
    /// Simultaneous local writers an SC keeps active on its own file
    /// (paper uses 1; >1 is the generalisation of §III-B3).
    pub writers_per_target: usize,
    /// Divert waiting writers from the tail of the queue (`true`, default)
    /// or the head (`false`) — scheduling-policy ablation.
    pub steal_from_tail: bool,
    /// Stagger SC file opens to spare the metadata server (CUG'09 stagger
    /// technique).
    pub stagger_opens: bool,
    /// Gap between staggered opens.
    pub stagger_gap: SimDuration,
    /// Enable coordinator work-shifting. `false` degrades to the stagger
    /// method (serialised per-target writes only).
    pub work_stealing: bool,
    /// Coordinator ablation: instead of round-robining adaptive requests
    /// over writing SCs, keep draining the same SC until it reports busy.
    pub drain_first: bool,
    /// Failure-hardening knobs (inert unless `fault.enabled`).
    pub fault: FaultTolerance,
    /// Closed-loop straggler defense knobs (inert unless
    /// `control.enabled`): online per-OST straggler detection,
    /// speculative re-issue, local queue-depth/backoff tuning.
    pub control: ControlOpts,
    /// End-to-end integrity: when enabled, PGs, index tails and the
    /// global index are written in the checked (CRC64) layout. Off by
    /// default — off keeps every output byte identical to the unchecked
    /// implementation.
    pub integrity: IntegrityOpts,
}

impl Default for AdaptiveOpts {
    fn default() -> Self {
        AdaptiveOpts {
            writers_per_target: 1,
            steal_from_tail: true,
            stagger_opens: false,
            stagger_gap: SimDuration::from_millis(2),
            work_stealing: true,
            drain_first: false,
            fault: FaultTolerance::default(),
            control: ControlOpts::default(),
            integrity: IntegrityOpts::default(),
        }
    }
}

/// Per-rank protocol message counters (received messages by class),
/// used to verify the paper's §III-B3 scaling claim: the coordinator's
/// load grows with the number of storage targets, not with the number of
/// writers, and writers/coordinator never exchange messages directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct MsgStats {
    /// `WriteNow` assignments received (writer role).
    pub write_now: u64,
    /// `WriteComplete` notifications received (SC role).
    pub write_complete: u64,
    /// `IndexBody` messages received (SC role).
    pub index_body: u64,
    /// `AdaptiveWriteStart` requests received (SC role).
    pub adaptive_start: u64,
    /// `OverallWriteComplete` broadcasts received (SC role).
    pub overall: u64,
    /// Coordinator-bound messages received (`ScComplete`,
    /// `AdaptiveComplete`, `WritersBusy`, `IndexToC`) — coordinator role.
    pub coordinator_inbox: u64,
    /// Fault-protocol control messages received (failure reports, pings,
    /// failover, status replay) — zero unless fault mode is on.
    pub fault_ctrl: u64,
    /// Control-loop messages received (latency digests, straggler flags,
    /// speculation lifecycle, tuner updates) — zero unless the control
    /// loop is on.
    pub control: u64,
}

impl MsgStats {
    /// Total messages received by this rank.
    pub fn total(&self) -> u64 {
        self.write_now
            + self.write_complete
            + self.index_body
            + self.adaptive_start
            + self.overall
            + self.coordinator_inbox
            + self.fault_ctrl
            + self.control
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ScPhase {
    Writing,
    Busy,
    Complete,
}

/// Lifecycle of one group member as seen by its sub-coordinator (fault
/// bookkeeping; in fault-free runs every member walks Queued → Assigned →
/// Done exactly once).
#[derive(Clone, Copy, PartialEq, Debug)]
enum MemberState {
    /// Post-failover: no status report received yet.
    Unknown,
    /// In the waiting pool.
    Queued,
    /// Writing; `local` means the assignment came from this SC's own
    /// scheduler (counts against `local_active`) rather than a
    /// coordinator-directed divert.
    Assigned {
        at: SimTime,
        local: bool,
    },
    /// Write durably completed.
    Done,
    /// Declared dead (reaped by the sweep or the adoption window).
    Dead,
}

/// Sub-coordinator state.
struct ScState {
    group: u32,
    /// First member rank (member index = rank − first).
    first: u32,
    /// Members not yet assigned anywhere.
    waiting: VecDeque<u32>,
    /// Writes currently in flight to my own file.
    local_active: usize,
    /// Member completions not yet observed.
    members_remaining: usize,
    /// Local offset high-water mark (local assignments only).
    next_offset: u64,
    /// File high-water mark including adaptive writes into my file.
    file_high: u64,
    /// WriteComplete(target=me) seen minus IndexBody received.
    missing_indices: i64,
    /// Writes into my file (sizes the synthetic index).
    writes_into_file: u64,
    /// OverallWriteComplete received.
    overall_seen: bool,
    /// Local index flushed to storage.
    index_written: bool,
    sc_complete_sent: bool,
    /// Collected index pieces (real-bytes mode).
    pieces: Vec<IndexEntry>,
    /// Whether the file has been opened (scheduling gate).
    opened: bool,

    // ---- fault-tolerance extension ---------------------------------------
    /// Per-member lifecycle (dedup + reaping).
    member_state: Vec<MemberState>,
    /// My own file's target is condemned; nothing more lands there.
    target_dead: bool,
    /// Stop local scheduling (post-failure re-queues are served only via
    /// coordinator diverts, keeping offset authority in one place).
    local_frozen: bool,
    /// AdaptiveWriteStart dedup by `(target, offset)`.
    seen_starts: Vec<(u32, u64)>,
    /// Writers whose WriteComplete-into-my-file was already counted.
    seen_into: Vec<u32>,
    /// Writers whose IndexBody was already counted.
    seen_index: Vec<u32>,
    /// This SC was promoted by a coordinator failover.
    adopted: bool,

    // ---- control-loop extension ------------------------------------------
    /// Control-loop state; `Some` iff `opts.control.enabled`.
    ctl: Option<ScCtl>,
}

/// Per-SC control-loop state.
struct ScCtl {
    /// `(ost, latency_secs)` samples accumulated since the last digest.
    pending: Vec<(u32, f64)>,
    /// OSTs currently flagged by the coordinator.
    slow_osts: Vec<u32>,
    /// Latest cross-OST median latency reported by the coordinator
    /// (0 until the first `StragglerFlag` arrives).
    healthy_secs: f64,
    /// Members with an outstanding speculative duplicate:
    /// `(member rank, spec assignment)`.
    speculating: Vec<(u32, Assignment)>,
    /// Local queue-depth / backoff tuner.
    tuner: Tuner,
    /// Bytes my members completed this epoch (tuner input).
    epoch_bytes: u64,
    /// Last backoff scale broadcast to members (dedup: clean runs must
    /// send nothing).
    sent_scale: f64,
}

impl ScCtl {
    fn new(base_depth: usize, min_depth: usize, opts: &ControlOpts) -> Self {
        ScCtl {
            pending: Vec::new(),
            slow_osts: Vec::new(),
            healthy_secs: 0.0,
            speculating: Vec::new(),
            tuner: Tuner::new(base_depth, min_depth, opts),
            epoch_bytes: 0,
            sent_scale: 1.0,
        }
    }

    fn speculating_on(&self, member: u32) -> Option<usize> {
        self.speculating.iter().position(|&(m, _)| m == member)
    }
}

/// Coordinator-side control-loop state.
struct CoordCtl {
    /// Per-OST latency view and straggler flags.
    tracker: OstLatencyTracker,
    /// Outstanding speculation grants: `(member rank, spare target)`.
    spec_inflight: Vec<(u32, u32)>,
    /// Reused buffer for flag transitions per digest.
    changes: Vec<FlagChange>,
    /// Speculations granted (protocol stats).
    granted: u64,
    /// Speculations whose duplicate won the race (protocol stats).
    won: u64,
}

impl ScState {
    fn new(group: u32, members: VecDeque<u32>, first: u32) -> Self {
        let n = members.len();
        ScState {
            group,
            first,
            members_remaining: n,
            waiting: members,
            local_active: 0,
            next_offset: 0,
            file_high: 0,
            missing_indices: 0,
            writes_into_file: 0,
            overall_seen: false,
            index_written: false,
            sc_complete_sent: false,
            pieces: Vec::new(),
            opened: false,
            member_state: vec![MemberState::Queued; n],
            target_dead: false,
            local_frozen: false,
            seen_starts: Vec::new(),
            seen_into: Vec::new(),
            seen_index: Vec::new(),
            adopted: false,
            ctl: None,
        }
    }

    /// Member index of `rank`, if it belongs to this group.
    fn midx(&self, rank: u32) -> Option<usize> {
        let i = rank.checked_sub(self.first)? as usize;
        (i < self.member_state.len()).then_some(i)
    }
}

/// Coordinator state.
struct CoordState {
    phase: Vec<ScPhase>,
    noted_offset: Vec<u64>,
    /// Completed targets currently free to host an adaptive write.
    free_targets: VecDeque<u32>,
    /// Outstanding adaptive requests as `(sc group asked, target group)`
    /// — matched on completion/busy/failure so duplicated replies cannot
    /// double-resolve a request.
    inflight: Vec<(u32, u32)>,
    /// High-water mark of simultaneous adaptive requests (paper §III-B3:
    /// strictly bounded by SC count − 1).
    max_outstanding: usize,
    rr_cursor: usize,
    overall_sent: bool,
    indices_received: usize,
    /// How many group indices the coordinator still expects (shrinks when
    /// a group is abandoned with every member dead).
    indices_expected: usize,
    /// Per-group index-received flags (dedup).
    index_in: Vec<bool>,
    index_parts: Vec<(String, LocalIndex)>,
    /// Built after all indices arrive (real-bytes mode).
    global_index: Option<GlobalIndex>,
    /// Global index write already issued.
    global_issued: bool,
    /// Time the global index write completed.
    finished_at: Option<SimTime>,
    /// Total adaptive writes successfully issued and completed.
    adaptive_completed: usize,

    // ---- fault-tolerance extension ---------------------------------------
    /// Condemned targets (never handed out again).
    dead_target: Vec<bool>,
    /// Groups with no surviving members at all.
    abandoned: Vec<bool>,
    /// Current SC rank per group (changes on failover).
    sc_rank: Vec<u32>,
    /// Last `ScPong` time per group.
    pong_seen: Vec<SimTime>,
    /// How many SCs of this group have died so far.
    promoted: Vec<usize>,

    // ---- control-loop extension ------------------------------------------
    /// Control-loop state; `Some` iff `opts.control.enabled`.
    ctl: Option<CoordCtl>,
}

/// One rank of the adaptive method.
pub struct AdaptiveActor {
    plan: Arc<OutputPlan>,
    opts: Rc<AdaptiveOpts>,
    /// File of each group (index = group).
    files: Rc<Vec<FileId>>,
    /// Extra file for the coordinator's global index.
    global_index_file: FileId,
    /// Real-bytes payload for this rank (None ⇒ synthetic mode).
    blocks: Option<Vec<VarBlock>>,
    /// Shared "disk contents" in real-bytes mode.
    store: Option<Rc<RefCell<ObjectStore>>>,
    /// Output step stamped on process groups.
    step: u32,

    // Writer state.
    me: u32,
    assignment: Option<Assignment>,
    write_started: Option<SimTime>,
    /// Completed writes by this rank.
    pub records: Vec<WriteRecord>,
    /// Received-message counters.
    pub msg_stats: MsgStats,
    /// Bytes this rank re-wrote after a condemned target destroyed a
    /// durable record (the redundancy-free repair cost of replication by
    /// re-execution; surfaced as `ProtocolStats::bytes_rewritten`).
    pub rewritten_bytes: u64,
    /// Durable bytes still owed a rewrite (lost to a condemned target,
    /// not yet re-landed).
    rewrite_owed: u64,

    // Writer fault state.
    /// Write-attempt generation (stale-completion fencing).
    gen: u32,
    /// Attempts made for the current assignment.
    attempt: u32,

    // Writer control-loop state.
    /// In-flight speculative duplicate of the current assignment.
    spec_assignment: Option<Assignment>,
    /// Monotonic speculation generation (0 ⇒ none issued yet); stale
    /// `TAG_SPEC` completions and timers fence on it.
    spec_gen: u32,
    /// Retry-backoff multiplier pushed by the SC's tuner.
    backoff_scale: f64,
    /// Per-group SC replacement map (failover); None ⇒ plan default.
    sc_override: Vec<Option<u32>>,
    /// Groups whose file the coordinator declared destroyed.
    dead_groups: Vec<bool>,
    /// Status reports that arrived before this rank adopted SC duty
    /// (delayed-broadcast reordering).
    pending_reports: Vec<(Rank, Msg)>,

    sc: Option<ScState>,
    coord: Option<CoordState>,
}

impl AdaptiveActor {
    /// Build the actor for `rank`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: u32,
        plan: Arc<OutputPlan>,
        opts: Rc<AdaptiveOpts>,
        files: Rc<Vec<FileId>>,
        global_index_file: FileId,
        blocks: Option<Vec<VarBlock>>,
        store: Option<Rc<RefCell<ObjectStore>>>,
        step: u32,
    ) -> Self {
        let r = Rank(rank);
        let group = plan.group_of[rank as usize];
        let sc = if plan.is_sc(r) {
            let members: VecDeque<u32> = plan.members(group).map(|m| m.0).collect();
            let first = members.front().copied().unwrap_or(rank);
            let mut s = ScState::new(group, members, first);
            s.ctl = Self::make_sc_ctl(&plan, &opts);
            Some(s)
        } else {
            None
        };
        let coord = if r == plan.coordinator() {
            let targets = plan.targets;
            Some(CoordState {
                phase: vec![ScPhase::Writing; targets],
                noted_offset: vec![0; targets],
                free_targets: VecDeque::new(),
                inflight: Vec::new(),
                max_outstanding: 0,
                rr_cursor: 0,
                overall_sent: false,
                indices_received: 0,
                indices_expected: targets,
                index_in: vec![false; targets],
                index_parts: Vec::new(),
                global_index: None,
                global_issued: false,
                finished_at: None,
                adaptive_completed: 0,
                dead_target: vec![false; targets],
                abandoned: vec![false; targets],
                sc_rank: (0..targets as u32).map(|g| plan.sc_of(g).0).collect(),
                pong_seen: vec![SimTime::ZERO; targets],
                promoted: vec![0; targets],
                ctl: opts.control.enabled.then(|| CoordCtl {
                    tracker: OstLatencyTracker::new(&opts.control),
                    spec_inflight: Vec::new(),
                    changes: Vec::new(),
                    granted: 0,
                    won: 0,
                }),
            })
        } else {
            None
        };
        let targets = plan.targets;
        AdaptiveActor {
            plan,
            opts,
            files,
            global_index_file,
            blocks,
            store,
            step,
            me: rank,
            assignment: None,
            write_started: None,
            records: Vec::new(),
            msg_stats: MsgStats::default(),
            rewritten_bytes: 0,
            rewrite_owed: 0,
            gen: 0,
            attempt: 0,
            spec_assignment: None,
            spec_gen: 0,
            backoff_scale: 1.0,
            sc_override: vec![None; targets],
            dead_groups: vec![false; targets],
            pending_reports: Vec::new(),
            sc,
            coord,
        }
    }

    /// The coordinator's merged global index (real-bytes mode), available
    /// after the run.
    pub fn global_index(&self) -> Option<&GlobalIndex> {
        self.coord.as_ref().and_then(|c| c.global_index.as_ref())
    }

    /// When the full operation (including indices) finished — coordinator
    /// only.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.coord.as_ref().and_then(|c| c.finished_at)
    }

    /// Adaptive writes observed by the coordinator.
    pub fn adaptive_completed(&self) -> Option<usize> {
        self.coord.as_ref().map(|c| c.adaptive_completed)
    }

    /// High-water mark of simultaneous adaptive requests (coordinator
    /// only). The paper bounds this by `SC count − 1`.
    pub fn max_outstanding(&self) -> Option<usize> {
        self.coord.as_ref().map(|c| c.max_outstanding)
    }

    fn bytes_of(&self, rank: u32) -> u64 {
        self.plan.rank_bytes[rank as usize]
    }

    fn ft(&self) -> FaultTolerance {
        self.opts.fault
    }

    fn ctl_opts(&self) -> ControlOpts {
        self.opts.control
    }

    /// Generation-tagged write path active: stale-completion fencing is
    /// needed whenever either retries (fault mode) or speculation
    /// (control mode) can abandon an attempt.
    fn hardened(&self) -> bool {
        self.opts.fault.enabled || self.opts.control.enabled
    }

    /// Fresh SC control state (None when the loop is off). The queue
    /// depth may only freeze to 0 when other targets exist to drain the
    /// group's members through diverts/speculation.
    fn make_sc_ctl(plan: &OutputPlan, opts: &AdaptiveOpts) -> Option<ScCtl> {
        opts.control.enabled.then(|| {
            let base = opts.writers_per_target.max(1);
            let min = if plan.targets > 1 { 0 } else { 1 };
            ScCtl::new(base, min, &opts.control)
        })
    }

    /// Speculation grants/wins observed by the coordinator (control
    /// loop).
    pub fn spec_stats(&self) -> Option<(u64, u64)> {
        self.coord
            .as_ref()
            .and_then(|c| c.ctl.as_ref())
            .map(|ctl| (ctl.granted, ctl.won))
    }

    /// Current SC of `group`, accounting for failover promotions.
    fn current_sc_of(&self, group: u32) -> Rank {
        match self.sc_override[group as usize] {
            Some(r) => Rank(r),
            None => self.plan.sc_of(group),
        }
    }

    fn send_msg(&self, ctx: &mut Ctx<'_, Msg>, to: Rank, m: Msg) {
        let wire = m.wire_bytes();
        ctx.send(to, m, wire);
    }

    // ---- writer role ------------------------------------------------------

    fn start_write(&mut self, a: Assignment, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(self.assignment.is_none(), "writer double-assigned");
        self.assignment = Some(a);
        self.write_started = Some(ctx.now());
        self.attempt = 1;
        if self.hardened() {
            self.gen += 1;
        }
        self.submit_write(ctx);
    }

    /// Submit the current assignment's write (initial attempt or retry).
    fn submit_write(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let a = self.assignment.expect("submit without assignment");
        let bytes = self.bytes_of(self.me);
        let ft = self.ft();
        if self.hardened() {
            let tag = TAG_WRITE | (self.gen << 8);
            ctx.write_file(a.file, a.offset, bytes, tag);
            // Timeout/retry machinery stays a fault-mode feature; the
            // control loop alone only needs generation fencing (a
            // speculation winner abandons the primary attempt).
            if ft.enabled {
                ctx.set_timer(
                    SimDuration::from_secs_f64(ft.timeout_for(bytes)),
                    TIMER_WRITE_TIMEOUT | ((self.gen as u64) << 8),
                );
            }
        } else {
            ctx.write_file(a.file, a.offset, bytes, TAG_WRITE);
        }
    }

    /// One write attempt failed (error completion or timeout): retry with
    /// backoff, or give up and report `WriteFailed` to the current SC of
    /// the triggering group.
    fn write_attempt_failed(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let ft = self.ft();
        let Some(a) = self.assignment else { return };
        if self.attempt < ft.max_retries.max(1) {
            self.attempt += 1;
            self.gen += 1;
            let mut backoff = ft.backoff_secs(self.attempt - 1);
            if self.ctl_opts().enabled {
                // The SC's tuner widens backoff while our target limps.
                backoff *= self.backoff_scale;
            }
            ctx.set_timer(
                SimDuration::from_secs_f64(backoff),
                TIMER_RETRY | ((self.gen as u64) << 8),
            );
        } else {
            self.assignment = None;
            self.write_started = None;
            self.attempt = 0;
            let bytes = self.bytes_of(self.me);
            let to = self.current_sc_of(a.triggering_group);
            self.send_msg(ctx, to, Msg::WriteFailed {
                assignment: a,
                bytes,
            });
        }
    }

    /// A write attempt (primary or speculative duplicate) completed
    /// durably under assignment `a` — record it and run Algorithm 1's
    /// notification fan-out. The caller has already cleared the writer's
    /// in-flight state so the race's loser is fenced as stale.
    fn finish_write(&mut self, done: IoComplete, a: Assignment, ctx: &mut Ctx<'_, Msg>) {
        let started = self.write_started.take().expect("write start recorded");
        self.attempt = 0;
        if self.rewrite_owed > 0 {
            // This completion repays a durable write destroyed with a
            // condemned target: count it as repair traffic.
            let repaid = done.bytes.min(self.rewrite_owed);
            self.rewritten_bytes += repaid;
            self.rewrite_owed -= repaid;
        }
        self.records.push(WriteRecord {
            rank: self.me,
            bytes: done.bytes,
            start: started,
            end: done.finished,
            ost: a.ost,
            file: a.file,
            offset: a.offset,
            adaptive: a.is_adaptive(),
        });
        // Real-bytes mode: the PG is durable now; place it.
        let mut pieces: Vec<IndexEntry> = Vec::new();
        if let Some(blocks) = &self.blocks {
            let (bytes, entries) = encode_pg_opts(self.me, self.step, blocks, self.opts.integrity);
            debug_assert_eq!(bytes.len() as u64, done.bytes, "plan/payload size drift");
            if let Some(store) = &self.store {
                store.borrow_mut().put(a.file, a.offset, &bytes);
            }
            pieces = entries.into_iter().map(|e| e.rebased(a.offset)).collect();
        }
        // Algorithm 1 lines 4–8.
        let trig_sc = self.current_sc_of(a.triggering_group);
        let msg = Msg::WriteComplete {
            assignment: a,
            bytes: done.bytes,
        };
        ctx.send(trig_sc, msg.clone(), msg.wire_bytes());
        let target_sc = self.current_sc_of(a.target_group);
        if a.is_adaptive() {
            let m2 = Msg::WriteComplete {
                assignment: a,
                bytes: done.bytes,
            };
            ctx.send(target_sc, m2.clone(), m2.wire_bytes());
        }
        let idx = Msg::IndexBody {
            target_group: a.target_group,
            pieces,
        };
        let wire = idx.wire_bytes();
        ctx.send(target_sc, idx, wire);
    }

    /// A target's file was destroyed (coordinator broadcast): discard any
    /// durable record into it and re-enter the writing pool through this
    /// rank's own SC.
    fn writer_on_target_dead(&mut self, group: u32, ctx: &mut Ctx<'_, Msg>) {
        if !self.ft().enabled {
            return;
        }
        self.dead_groups[group as usize] = true;
        if let Some(sc) = &mut self.sc {
            if sc.group == group {
                sc.target_dead = true;
                sc.local_frozen = true;
            }
        }
        let dead_file = self.files[group as usize];
        if let Some(pos) = self.records.iter().position(|r| r.file == dead_file) {
            let lost = self.records.remove(pos);
            self.rewrite_owed += lost.bytes;
            let my_group = self.plan.group_of[self.me as usize];
            let to = self.current_sc_of(my_group);
            self.send_msg(ctx, to, Msg::LostWrite { bytes: lost.bytes });
        }
    }

    // ---- writer role: speculation (control loop) --------------------------

    /// SC ordered a speculative duplicate of the current write.
    fn writer_on_spec_write(&mut self, a: Assignment, ctx: &mut Ctx<'_, Msg>) {
        if !self.ctl_opts().enabled {
            return;
        }
        if self.assignment.is_none() || self.spec_assignment.is_some() {
            // Primary already resolved, or a duplicate is already flying:
            // the order is stale. The SC resolves the grant through the
            // normal completion/cancel paths.
            return;
        }
        self.spec_gen += 1;
        self.spec_assignment = Some(a);
        let bytes = self.bytes_of(self.me);
        ctx.write_file(a.file, a.offset, bytes, TAG_SPEC | (self.spec_gen << 8));
        ctx.set_timer(
            SimDuration::from_secs_f64(self.ft().timeout_for(bytes)),
            TIMER_SPEC_TIMEOUT | ((self.spec_gen as u64) << 8),
        );
    }

    /// The duplicate errored or timed out: drop it and tell my SC so the
    /// spare target is freed. The primary write keeps going untouched.
    fn spec_abort(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(sa) = self.spec_assignment.take() else {
            return;
        };
        let to = self.current_sc_of(sa.triggering_group);
        self.send_msg(ctx, to, Msg::SpecCancel {
            member: self.me,
            target_group: sa.target_group,
        });
    }

    /// The speculative duplicate completed durably.
    fn writer_on_spec_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, Msg>) {
        if done.error {
            self.spec_abort(ctx);
            return;
        }
        let Some(sa) = self.spec_assignment.take() else {
            return;
        };
        if self.assignment.is_none() {
            // The primary already resolved for good (finished, or failed
            // and re-queued us elsewhere) — the duplicate is an orphan:
            // its bytes sit at a permanently burned offset and are never
            // recorded, so nothing double-counts.
            return;
        }
        // The duplicate won the race: abandon the primary (its
        // completion, timeout and retry events all fence on
        // `assignment.is_none()` / generation mismatch) and account the
        // bytes exactly once, under the speculative assignment.
        self.assignment = None;
        self.finish_write(done, sa, ctx);
    }

    // ---- sub-coordinator role ----------------------------------------------

    fn sc_open(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.open(TAG_OPEN);
    }

    fn sc_schedule_local(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Pull assignments out of the SC state first (borrow discipline:
        // `start_write` needs `&mut self`).
        let mut to_assign: Vec<(u32, Assignment)> = Vec::new();
        {
            let plan = Arc::clone(&self.plan);
            let now = ctx.now();
            let sc = self.sc.as_mut().expect("sc role");
            if !sc.opened || sc.target_dead || sc.local_frozen {
                return;
            }
            // Control loop: the tuner owns the queue depth (it starts at
            // — and in clean runs stays at — the static value).
            let k = match &sc.ctl {
                Some(ctl) => ctl.tuner.depth(),
                None => self.opts.writers_per_target.max(1),
            };
            while sc.local_active < k {
                let Some(w) = sc.waiting.pop_front() else {
                    break;
                };
                let bytes = plan.rank_bytes[w as usize];
                let a = Assignment {
                    triggering_group: sc.group,
                    target_group: sc.group,
                    file: self.files[sc.group as usize],
                    ost: plan.ost_of_group[sc.group as usize],
                    offset: sc.next_offset,
                };
                sc.next_offset += bytes;
                sc.file_high = sc.file_high.max(sc.next_offset);
                sc.local_active += 1;
                if let Some(i) = sc.midx(w) {
                    sc.member_state[i] = MemberState::Assigned { at: now, local: true };
                }
                to_assign.push((w, a));
            }
        }
        for (w, a) in to_assign {
            if w == self.me {
                self.start_write(a, ctx);
            } else {
                let m = Msg::WriteNow(a);
                let wire = m.wire_bytes();
                ctx.send(Rank(w), m, wire);
            }
        }
    }

    /// Send `ScComplete` once all members are accounted for.
    fn sc_maybe_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let coordinator = self.plan.coordinator();
        let m = {
            let sc = self.sc.as_mut().expect("sc role");
            if sc.members_remaining != 0 || sc.sc_complete_sent {
                return;
            }
            sc.sc_complete_sent = true;
            Msg::ScComplete {
                group: sc.group,
                final_offset: sc.next_offset,
            }
        };
        self.send_msg(ctx, coordinator, m);
    }

    fn sc_on_write_complete(
        &mut self,
        from: Rank,
        a: Assignment,
        bytes: u64,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        let coordinator = self.plan.coordinator();
        let my_group = self.sc.as_ref().expect("sc role").group;
        let now = ctx.now();
        let mut send_to_c: Vec<Msg> = Vec::new();
        let mut reschedule = false;
        {
            let sc = self.sc.as_mut().expect("sc role");
            if a.target_group == my_group && !sc.seen_into.contains(&from.0) {
                // A write landed in my file: expect its index body.
                sc.seen_into.push(from.0);
                sc.missing_indices += 1;
                sc.writes_into_file += 1;
                sc.file_high = sc.file_high.max(a.offset + bytes);
            }
            if a.triggering_group == my_group {
                // Source is one of mine. Only the Assigned → Done edge
                // counts (duplicated deliveries are ignored).
                let state = sc.midx(from.0).map(|i| sc.member_state[i]);
                if let Some(MemberState::Assigned { at, local }) = state {
                    let i = sc.midx(from.0).expect("member");
                    sc.member_state[i] = MemberState::Done;
                    sc.members_remaining -= 1;
                    if let Some(ctl) = sc.ctl.as_mut() {
                        // Feed the detector with the winner's latency and
                        // the tuner with the epoch's throughput.
                        ctl.pending
                            .push((a.ost.0 as u32, (now - at).as_secs_f64()));
                        ctl.epoch_bytes += bytes;
                        // Resolve an outstanding speculation: the
                        // completion's assignment tells which copy won.
                        if let Some(pos) = ctl.speculating_on(from.0) {
                            let (_, sa) = ctl.speculating.swap_remove(pos);
                            let spec_won =
                                a.is_adaptive() && a.target_group == sa.target_group;
                            send_to_c.push(if spec_won {
                                Msg::SpecDone {
                                    member: from.0,
                                    target_group: sa.target_group,
                                }
                            } else {
                                Msg::SpecCancel {
                                    member: from.0,
                                    target_group: sa.target_group,
                                }
                            });
                        }
                    }
                    if local {
                        sc.local_active -= 1;
                        reschedule = true;
                    } else {
                        // Coordinator-directed divert: resolve the
                        // adaptive request (Algorithm 2 line 6). This
                        // includes self-diverts back into my own file.
                        send_to_c.push(Msg::AdaptiveComplete {
                            target_group: a.target_group,
                            bytes,
                        });
                    }
                }
            }
        }
        for m in send_to_c {
            self.send_msg(ctx, coordinator, m);
        }
        self.sc_maybe_complete(ctx);
        if reschedule {
            self.sc_schedule_local(ctx);
        }
        self.sc_maybe_write_index(ctx);
    }

    /// A member's write could not be completed: re-queue it and condemn
    /// the target through the coordinator.
    fn sc_on_write_failed(&mut self, from: Rank, a: Assignment, ctx: &mut Ctx<'_, Msg>) {
        if !self.ft().enabled {
            return;
        }
        let coordinator = self.plan.coordinator();
        let mut send_to_c: Vec<Msg> = Vec::new();
        {
            let sc = self.sc.as_mut().expect("sc role");
            let Some(i) = sc.midx(from.0) else { return };
            let MemberState::Assigned { local, .. } = sc.member_state[i] else {
                return; // duplicate failure report
            };
            sc.member_state[i] = MemberState::Queued;
            sc.waiting.push_back(from.0);
            sc.local_frozen = true;
            if local {
                sc.local_active = sc.local_active.saturating_sub(1);
            }
            if let Some(ctl) = sc.ctl.as_mut() {
                // A re-queued member's speculation is moot; free the spare
                // target (its offset stays burned at the coordinator).
                if let Some(pos) = ctl.speculating_on(from.0) {
                    let (_, sa) = ctl.speculating.swap_remove(pos);
                    send_to_c.push(Msg::SpecCancel {
                        member: from.0,
                        target_group: sa.target_group,
                    });
                }
            }
            if a.target_group == sc.group {
                sc.target_dead = true;
                send_to_c.push(Msg::TargetFailed { group: sc.group });
            } else {
                send_to_c.push(Msg::AdaptiveFailed {
                    target_group: a.target_group,
                });
            }
            send_to_c.push(Msg::ScRevert { group: sc.group });
        }
        for m in send_to_c {
            self.send_msg(ctx, coordinator, m);
        }
    }

    /// A member's previously durable write was destroyed: re-queue it.
    fn sc_on_lost_write(&mut self, from: Rank, ctx: &mut Ctx<'_, Msg>) {
        if !self.ft().enabled {
            return;
        }
        let coordinator = self.plan.coordinator();
        let revert = {
            let sc = self.sc.as_mut().expect("sc role");
            let Some(i) = sc.midx(from.0) else { return };
            if sc.member_state[i] != MemberState::Done {
                return; // duplicate
            }
            sc.member_state[i] = MemberState::Queued;
            sc.waiting.push_back(from.0);
            sc.members_remaining += 1;
            sc.local_frozen = true;
            sc.sc_complete_sent = false;
            Msg::ScRevert { group: sc.group }
        };
        self.send_msg(ctx, coordinator, revert);
    }

    fn sc_on_adaptive_start(
        &mut self,
        target_group: u32,
        file: FileId,
        ost: storesim::layout::OstId,
        offset: u64,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        let coordinator = self.plan.coordinator();
        if self.ft().enabled && self.sc.is_none() {
            // A divert offer outran the failover broadcast that promotes
            // this rank: decline it, the coordinator will re-issue.
            let m = Msg::WritersBusy {
                group: self.plan.group_of[self.me as usize],
                target_group,
            };
            self.send_msg(ctx, coordinator, m);
            return;
        }
        let (victim, my_group) = {
            let now = ctx.now();
            let sc = self.sc.as_mut().expect("sc role");
            // Dedup only requests that assigned a writer: a duplicated
            // request hitting an empty pool yields a redundant
            // `WritersBusy`, which the coordinator's in-flight matching
            // discards — whereas a legitimate re-issue after a busy reply
            // reuses the same (target, offset) and must not be dropped.
            if self.opts.fault.enabled && sc.seen_starts.contains(&(target_group, offset)) {
                return;
            }
            let v = if self.opts.steal_from_tail {
                sc.waiting.pop_back()
            } else {
                sc.waiting.pop_front()
            };
            if let Some(w) = v {
                if self.opts.fault.enabled {
                    sc.seen_starts.push((target_group, offset));
                }
                if let Some(i) = sc.midx(w) {
                    sc.member_state[i] = MemberState::Assigned { at: now, local: false };
                }
            }
            (v, sc.group)
        };
        match victim {
            None => {
                // Algorithm 2 line 22.
                let m = Msg::WritersBusy {
                    group: my_group,
                    target_group,
                };
                self.send_msg(ctx, coordinator, m);
            }
            Some(w) => {
                let a = Assignment {
                    triggering_group: my_group,
                    target_group,
                    file,
                    ost,
                    offset,
                };
                if w == self.me {
                    self.start_write(a, ctx);
                } else {
                    let m = Msg::WriteNow(a);
                    let wire = m.wire_bytes();
                    ctx.send(Rank(w), m, wire);
                }
            }
        }
    }

    fn sc_on_index_body(&mut self, from: Rank, pieces: Vec<IndexEntry>, ctx: &mut Ctx<'_, Msg>) {
        {
            let sc = self.sc.as_mut().expect("sc role");
            if self.opts.fault.enabled {
                if sc.seen_index.contains(&from.0) {
                    return; // duplicated index body
                }
                sc.seen_index.push(from.0);
            }
            sc.missing_indices -= 1;
            sc.pieces.extend(pieces);
        }
        self.sc_maybe_write_index(ctx);
    }

    fn sc_on_overall_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.sc.as_mut().expect("sc role").overall_seen = true;
        self.sc_maybe_write_index(ctx);
    }

    /// Algorithm 2 lines 31–33: once done and no indices are missing, sort
    /// and merge the pieces, write the local index, send it to C. A dead
    /// target has no file to write into: the index step is skipped and the
    /// (empty-file) index goes straight to C.
    fn sc_maybe_write_index(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let dead = {
            let sc = self.sc.as_mut().expect("sc role");
            if !(sc.overall_seen && sc.missing_indices <= 0 && !sc.index_written) {
                return;
            }
            sc.index_written = true;
            sc.target_dead
        };
        if dead {
            self.sc_on_index_flushed(ctx);
            return;
        }
        let (file, index_bytes, offset) = {
            let sc = self.sc.as_mut().expect("sc role");
            let index_bytes = if self.blocks.is_some() {
                // Real size once serialized; estimate now, write exact later.
                let idx = LocalIndex::from_pieces(std::mem::take(&mut sc.pieces));
                let tail = idx.serialize_with_footer_opts(sc.file_high, self.opts.integrity);
                let n = tail.len() as u64;
                if let Some(store) = &self.store {
                    store
                        .borrow_mut()
                        .put(self.files[sc.group as usize], sc.file_high, &tail);
                }
                sc.pieces = idx.entries; // keep sorted entries for C
                n
            } else {
                sc.writes_into_file * INDEX_ENTRY_BYTES + 64
            };
            (self.files[sc.group as usize], index_bytes, sc.file_high)
        };
        ctx.write_file(file, offset, index_bytes, TAG_INDEX);
    }

    fn sc_on_index_flushed(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let coordinator = self.plan.coordinator();
        let (group, pieces, wire_bytes) = {
            let sc = self.sc.as_mut().expect("sc role");
            let pieces = if self.blocks.is_some() {
                std::mem::take(&mut sc.pieces)
            } else {
                Vec::new()
            };
            (
                sc.group,
                pieces,
                sc.writes_into_file * INDEX_ENTRY_BYTES + 64,
            )
        };
        let m = Msg::IndexToC {
            group,
            pieces,
            wire_bytes,
        };
        self.send_msg(ctx, coordinator, m);
        // Close the subfile (metadata cost modelled, excluded from the
        // measured write span per the paper's methodology).
        ctx.close(TAG_CLOSE);
    }

    /// Reap members whose assigned write has been silent far beyond the
    /// writer's own retry budget — they are dead ranks. A speculating
    /// member is not reaped early: its `at` was refreshed by the grant
    /// (so the duplicate gets a full budget of its own), and reaping it
    /// frees the spare target through `SpecCancel`.
    fn sc_sweep(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let coordinator = self.plan.coordinator();
        let ft = self.ft();
        let plan = Arc::clone(&self.plan);
        let now = ctx.now();
        let mut send_to_c: Vec<Msg> = Vec::new();
        let keep_going = {
            let sc = self.sc.as_mut().expect("sc role");
            for i in 0..sc.member_state.len() {
                if let MemberState::Assigned { at, .. } = sc.member_state[i] {
                    let rank = sc.first + i as u32;
                    let bytes = plan.rank_bytes[rank as usize];
                    if (now - at).as_secs_f64() > ft.retry_budget_secs(bytes) {
                        sc.member_state[i] = MemberState::Dead;
                        sc.members_remaining -= 1;
                        if let Some(ctl) = sc.ctl.as_mut() {
                            if let Some(pos) = ctl.speculating_on(rank) {
                                let (_, sa) = ctl.speculating.swap_remove(pos);
                                send_to_c.push(Msg::SpecCancel {
                                    member: rank,
                                    target_group: sa.target_group,
                                });
                            }
                        }
                    }
                }
            }
            sc.members_remaining > 0
        };
        for m in send_to_c {
            self.send_msg(ctx, coordinator, m);
        }
        self.sc_maybe_complete(ctx);
        if keep_going {
            ctx.set_timer(
                SimDuration::from_secs_f64(ft.sweep_interval_secs),
                TIMER_SWEEP,
            );
        }
    }

    // ---- sub-coordinator role: control loop --------------------------------

    /// One decision epoch (control loop): digest latencies to C, request
    /// speculation for stuck writes on a flagged OST, step the tuner.
    fn sc_epoch(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.ctl_opts().enabled || self.sc.is_none() {
            return;
        }
        let coordinator = self.plan.coordinator();
        let opts = self.ctl_opts();
        let plan = Arc::clone(&self.plan);
        let now = ctx.now();
        let mut to_c: Vec<Msg> = Vec::new();
        let mut to_members: Vec<(u32, Msg)> = Vec::new();
        let keep_going = {
            let sc = self.sc.as_mut().expect("sc role");
            let my_ost = plan.ost_of_group[sc.group as usize].0 as u32;
            let group = sc.group;
            let first = sc.first;
            let n = sc.member_state.len();
            let Some(ctl) = sc.ctl.as_mut() else {
                return;
            };
            // 1. Censored ages: a local write still stuck after a full
            //    epoch contributes its age, so a completely stalled OST
            //    (no completions at all) still accrues latency signal.
            for i in 0..n {
                if let MemberState::Assigned { at, local: true } = sc.member_state[i] {
                    let age = (now - at).as_secs_f64();
                    if age > opts.epoch_secs {
                        ctl.pending.push((my_ost, age));
                    }
                }
            }
            // 2. Ship the digest.
            if !ctl.pending.is_empty() {
                to_c.push(Msg::LatencyDigest {
                    samples: std::mem::take(&mut ctl.pending),
                });
            }
            let own_flagged = ctl.slow_osts.contains(&my_ost);
            // 3. Speculation: my OST is flagged and a local write is stuck
            //    past the adaptive deadline — ask C for a spare target.
            //    Ungranted requests are simply re-sent next epoch; the
            //    coordinator dedups by member.
            if opts.speculation
                && own_flagged
                && ctl.healthy_secs > 0.0
                && !sc.target_dead
            {
                let deadline = opts.spec_deadline_factor * ctl.healthy_secs;
                for i in 0..n {
                    if let MemberState::Assigned { at, local: true } = sc.member_state[i] {
                        let rank = first + i as u32;
                        if (now - at).as_secs_f64() > deadline
                            && ctl.speculating_on(rank).is_none()
                        {
                            to_c.push(Msg::SpecRequest {
                                group,
                                member: rank,
                                bytes: plan.rank_bytes[rank as usize],
                            });
                        }
                    }
                }
            }
            // 4. Tuner step (queue depth + backoff scale).
            if opts.tuning {
                let any_flagged = !ctl.slow_osts.is_empty();
                let bytes = std::mem::take(&mut ctl.epoch_bytes);
                ctl.tuner.step(own_flagged, any_flagged, bytes, opts.epoch_secs);
                let scale = ctl.tuner.backoff_scale();
                if scale != ctl.sent_scale {
                    ctl.sent_scale = scale;
                    for m in plan.members(group) {
                        to_members.push((m.0, Msg::TunerUpdate { backoff_scale: scale }));
                    }
                }
            } else {
                ctl.epoch_bytes = 0;
            }
            sc.members_remaining > 0 || !sc.index_written
        };
        for m in to_c {
            self.send_msg(ctx, coordinator, m);
        }
        for (r, m) in to_members {
            if r == self.me {
                if let Msg::TunerUpdate { backoff_scale } = m {
                    self.backoff_scale = backoff_scale;
                }
            } else {
                self.send_msg(ctx, Rank(r), m);
            }
        }
        // A depth raise may admit more writers right away.
        self.sc_schedule_local(ctx);
        if keep_going {
            ctx.set_timer(SimDuration::from_secs_f64(opts.epoch_secs), TIMER_EPOCH);
        }
    }

    /// Coordinator broadcast: an OST's straggler flag flipped.
    fn sc_on_straggler_flag(&mut self, ost: u32, slow: bool, median_secs: f64) {
        if !self.ctl_opts().enabled {
            return;
        }
        let Some(sc) = self.sc.as_mut() else { return };
        let Some(ctl) = sc.ctl.as_mut() else { return };
        if median_secs > 0.0 {
            ctl.healthy_secs = median_secs;
        }
        if slow {
            if !ctl.slow_osts.contains(&ost) {
                ctl.slow_osts.push(ost);
            }
        } else {
            ctl.slow_osts.retain(|&o| o != ost);
        }
    }

    /// Coordinator granted a speculative duplicate for `member`.
    fn sc_on_spec_grant(&mut self, member: u32, a: Assignment, ctx: &mut Ctx<'_, Msg>) {
        if !self.ctl_opts().enabled {
            return;
        }
        let coordinator = self.plan.coordinator();
        let now = ctx.now();
        enum Act {
            Issue,
            Decline,
            Ignore,
        }
        let act = {
            match self.sc.as_mut() {
                Some(sc) if sc.group == a.triggering_group => {
                    let midx = sc.midx(member);
                    match sc.ctl.as_mut() {
                        Some(ctl) => match midx {
                            // Only a still-Assigned member can speculate;
                            // anything else (done, re-queued, reaped, or a
                            // duplicated grant) declines so the spare
                            // target is freed.
                            Some(i) => match sc.member_state[i] {
                                MemberState::Assigned { local, .. }
                                    if ctl.speculating_on(member).is_none() =>
                                {
                                    // Refresh the assignment clock: the
                                    // duplicate gets a full retry budget, so
                                    // the sweep reaper cannot reclaim a
                                    // member mid-speculation.
                                    sc.member_state[i] =
                                        MemberState::Assigned { at: now, local };
                                    ctl.speculating.push((member, a));
                                    Act::Issue
                                }
                                MemberState::Assigned { .. } => Act::Ignore,
                                _ => Act::Decline,
                            },
                            None => Act::Decline,
                        },
                        None => Act::Decline,
                    }
                }
                // Stale grant (this rank is not — or no longer — the SC of
                // the requesting group, e.g. after a failover).
                _ => Act::Decline,
            }
        };
        match act {
            Act::Issue => {
                if member == self.me {
                    self.writer_on_spec_write(a, ctx);
                } else {
                    self.send_msg(ctx, Rank(member), Msg::SpecWrite { assignment: a });
                }
            }
            Act::Decline => {
                self.send_msg(ctx, coordinator, Msg::SpecCancel {
                    member,
                    target_group: a.target_group,
                });
            }
            Act::Ignore => {}
        }
    }

    /// `SpecCancel` role dispatch. Rank 0 is both an SC and the
    /// coordinator, so the roles are tried in protocol order: a cancel
    /// from one of my speculating members is SC business (drop the entry,
    /// forward to C); otherwise, if I am the coordinator, resolve the
    /// grant; otherwise the message is stale — ignore it.
    fn on_spec_cancel(&mut self, member: u32, target_group: u32, ctx: &mut Ctx<'_, Msg>) {
        if !self.ctl_opts().enabled {
            return;
        }
        let coordinator = self.plan.coordinator();
        let forwarded = {
            match self.sc.as_mut().and_then(|sc| sc.ctl.as_mut()) {
                Some(ctl) => match ctl.speculating_on(member) {
                    Some(pos) if ctl.speculating[pos].1.target_group == target_group => {
                        ctl.speculating.swap_remove(pos);
                        true
                    }
                    _ => false,
                },
                None => false,
            }
        };
        if forwarded {
            self.send_msg(ctx, coordinator, Msg::SpecCancel {
                member,
                target_group,
            });
        } else if self.coord.is_some() {
            self.c_resolve_spec(member, target_group, false, ctx);
        }
    }

    // ---- sub-coordinator failover -----------------------------------------

    /// This rank was promoted to SC of `group` by the coordinator.
    fn adopt_group(&mut self, group: u32, dead_sc: u32, overall_sent: bool, ctx: &mut Ctx<'_, Msg>) {
        if self.sc.as_ref().is_some_and(|s| s.group == group) {
            return; // duplicated failover broadcast
        }
        let members: VecDeque<u32> = self.plan.members(group).map(|m| m.0).collect();
        let first = members.front().copied().unwrap_or(self.me);
        let n = members.len();
        let mut sc = ScState::new(group, VecDeque::new(), first);
        sc.member_state = vec![MemberState::Unknown; n];
        sc.members_remaining = n;
        sc.overall_seen = overall_sent;
        sc.adopted = true;
        // Re-queues after a failover are served only through coordinator
        // diverts: the dead SC's offset authority cannot be reconstructed
        // safely (an unreported member may hold a durable local write).
        sc.local_frozen = true;
        sc.target_dead = self.dead_groups[group as usize];
        if let Some(i) = sc.midx(dead_sc) {
            sc.member_state[i] = MemberState::Dead;
            sc.members_remaining -= 1;
        }
        // The dead SC's control state (flags, speculations, tuner) died
        // with it; start fresh — the coordinator re-broadcasts flag
        // transitions as digests keep arriving.
        sc.ctl = Self::make_sc_ctl(&self.plan, &self.opts);
        self.sc = Some(sc);
        // Fill in my own status directly; peers report via StatusReport.
        let my_report = self.own_status_report(group);
        self.apply_status_report(Rank(self.me), my_report, ctx);
        let stashed: Vec<(Rank, Msg)> = std::mem::take(&mut self.pending_reports);
        for (from, m) in stashed {
            if let Msg::StatusReport { group: g, .. } = &m {
                if *g == group {
                    self.apply_status_report(from, m, ctx);
                    continue;
                }
            }
            self.pending_reports.push((from, m));
        }
        ctx.open(TAG_OPEN);
        let ft = self.ft();
        ctx.set_timer(SimDuration::from_secs_f64(ft.adopt_timeout_secs), TIMER_ADOPT);
        ctx.set_timer(SimDuration::from_secs_f64(ft.sweep_interval_secs), TIMER_SWEEP);
        if self.ctl_opts().enabled {
            ctx.set_timer(
                SimDuration::from_secs_f64(self.ctl_opts().epoch_secs),
                TIMER_EPOCH,
            );
        }
        self.sc_maybe_complete(ctx);
        self.sc_maybe_write_index(ctx);
    }

    /// Build this rank's own [`Msg::StatusReport`] for `group`.
    fn own_status_report(&self, group: u32) -> Msg {
        let group_file = self.files[group as usize];
        let done_local = self
            .records
            .iter()
            .find(|r| r.file == group_file)
            .map(|r| (r.offset, r.bytes));
        let done_elsewhere = self.records.iter().any(|r| r.file != group_file);
        Msg::StatusReport {
            group,
            done_local,
            done_elsewhere,
            in_flight: self.assignment,
            pieces: Vec::new(),
        }
    }

    /// Merge one member's replayed status into the adopted SC state.
    fn apply_status_report(&mut self, from: Rank, m: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::StatusReport {
            group,
            done_local,
            done_elsewhere,
            in_flight,
            pieces,
        } = m
        else {
            return;
        };
        match &self.sc {
            Some(s) if s.group == group => {}
            _ => {
                // Report outran the failover broadcast; stash until (and
                // unless) this rank adopts the group.
                self.pending_reports.push((
                    from,
                    Msg::StatusReport {
                        group,
                        done_local,
                        done_elsewhere,
                        in_flight,
                        pieces,
                    },
                ));
                return;
            }
        }
        let now = ctx.now();
        let queued = {
            let sc = self.sc.as_mut().expect("sc role");
            let Some(i) = sc.midx(from.0) else { return };
            if sc.member_state[i] != MemberState::Unknown {
                return; // duplicate report
            }
            let mut queued = false;
            if let Some((off, bytes)) = done_local {
                sc.member_state[i] = MemberState::Done;
                sc.members_remaining -= 1;
                sc.writes_into_file += 1;
                sc.file_high = sc.file_high.max(off + bytes);
                sc.next_offset = sc.next_offset.max(off + bytes);
                sc.seen_into.push(from.0);
                sc.seen_index.push(from.0);
            } else if done_elsewhere {
                sc.member_state[i] = MemberState::Done;
                sc.members_remaining -= 1;
            } else if let Some(a) = in_flight {
                sc.member_state[i] = MemberState::Assigned { at: now, local: false };
                sc.next_offset = sc.next_offset.max(a.offset + self.plan.rank_bytes[from.0 as usize]);
            } else {
                sc.member_state[i] = MemberState::Queued;
                sc.waiting.push_back(from.0);
                queued = true;
            }
            sc.pieces.extend(pieces);
            queued
        };
        if queued {
            // Tell the coordinator this group is writing again, so it
            // re-probes us with divert offers (local scheduling stays
            // frozen after an adoption).
            let coordinator = self.plan.coordinator();
            self.send_msg(ctx, coordinator, Msg::ScRevert { group });
        }
        self.sc_maybe_complete(ctx);
        self.sc_maybe_write_index(ctx);
    }

    /// The adoption window closed: members that never reported are dead.
    fn sc_adopt_timeout(&mut self, ctx: &mut Ctx<'_, Msg>) {
        {
            let Some(sc) = self.sc.as_mut() else { return };
            if !sc.adopted {
                return;
            }
            for s in sc.member_state.iter_mut() {
                if *s == MemberState::Unknown {
                    *s = MemberState::Dead;
                    sc.members_remaining -= 1;
                }
            }
        }
        self.sc_maybe_complete(ctx);
        self.sc_maybe_write_index(ctx);
    }

    // ---- coordinator role ---------------------------------------------------

    /// Push `g` back into the free pool unless it is condemned, already
    /// free, or currently targeted by an in-flight adaptive request or
    /// speculation grant (one active write per file).
    fn c_free_target(c: &mut CoordState, g: u32) {
        if c.dead_target[g as usize]
            || c.free_targets.contains(&g)
            || c.inflight.iter().any(|&(_, t)| t == g)
            || c.ctl
                .as_ref()
                .is_some_and(|ctl| ctl.spec_inflight.iter().any(|&(_, t)| t == g))
        {
            return;
        }
        c.free_targets.push_back(g);
    }

    fn c_try_issue(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let targets = self.plan.targets;
        let mut issues: Vec<(Rank, Msg)> = Vec::new();
        if self.opts.work_stealing {
            let c = self.coord.as_mut().expect("coordinator role");
            loop {
                if c.free_targets.is_empty() {
                    break;
                }
                // Next writing SC (round-robin, or drain-first ablation).
                let mut chosen: Option<usize> = None;
                for probe in 0..targets {
                    let idx = if self.opts.drain_first {
                        probe
                    } else {
                        (c.rr_cursor + probe) % targets
                    };
                    if c.phase[idx] == ScPhase::Writing && !c.abandoned[idx] {
                        chosen = Some(idx);
                        break;
                    }
                }
                let Some(sc_idx) = chosen else {
                    break;
                };
                if !self.opts.drain_first {
                    c.rr_cursor = (sc_idx + 1) % targets;
                }
                // Control loop: steer diverts away from flagged OSTs when
                // an unflagged free target exists (FIFO otherwise).
                let pick = c
                    .ctl
                    .as_ref()
                    .and_then(|ctl| {
                        c.free_targets.iter().position(|&g| {
                            !ctl.tracker.is_straggler(self.plan.ost_of_group[g as usize].0)
                        })
                    })
                    .unwrap_or(0);
                let t = c.free_targets.remove(pick).expect("non-empty");
                c.inflight.push((sc_idx as u32, t));
                c.max_outstanding = c.max_outstanding.max(c.inflight.len());
                let m = Msg::AdaptiveWriteStart {
                    target_group: t,
                    file: self.files[t as usize],
                    ost: self.plan.ost_of_group[t as usize],
                    offset: c.noted_offset[t as usize],
                };
                issues.push((Rank(c.sc_rank[sc_idx]), m));
            }
        }
        for (to, m) in issues {
            self.send_msg(ctx, to, m);
        }
        self.c_check_done(ctx);
    }

    fn c_check_done(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let recipients = {
            let c = self.coord.as_mut().expect("coordinator role");
            let all_complete = c.phase.iter().all(|&p| p == ScPhase::Complete);
            let specs_done = c
                .ctl
                .as_ref()
                .is_none_or(|ctl| ctl.spec_inflight.is_empty());
            if all_complete && c.inflight.is_empty() && specs_done && !c.overall_sent {
                c.overall_sent = true;
                (0..self.plan.targets)
                    .filter(|&g| !c.abandoned[g])
                    .map(|g| Rank(c.sc_rank[g]))
                    .collect::<Vec<_>>()
            } else {
                Vec::new()
            }
        };
        for to in recipients {
            self.send_msg(ctx, to, Msg::OverallWriteComplete);
        }
    }

    fn c_on_sc_complete(&mut self, group: u32, final_offset: u64, ctx: &mut Ctx<'_, Msg>) {
        {
            let c = self.coord.as_mut().expect("coordinator role");
            if c.phase[group as usize] == ScPhase::Complete {
                return; // duplicated completion
            }
            c.phase[group as usize] = ScPhase::Complete;
            c.noted_offset[group as usize] = c.noted_offset[group as usize].max(final_offset);
            Self::c_free_target(c, group);
        }
        self.c_try_issue(ctx);
    }

    fn c_on_adaptive_complete(
        &mut self,
        from: Rank,
        target_group: u32,
        bytes: u64,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        {
            let sender_group = self.plan.group_of[from.0 as usize];
            let c = self.coord.as_mut().expect("coordinator role");
            let Some(pos) = c
                .inflight
                .iter()
                .position(|&(s, t)| s == sender_group && t == target_group)
            else {
                return; // duplicated or unmatched resolution
            };
            c.inflight.swap_remove(pos);
            c.noted_offset[target_group as usize] += bytes;
            Self::c_free_target(c, target_group);
            c.adaptive_completed += 1;
        }
        self.c_try_issue(ctx);
    }

    fn c_on_writers_busy(&mut self, group: u32, target_group: u32, ctx: &mut Ctx<'_, Msg>) {
        {
            let c = self.coord.as_mut().expect("coordinator role");
            let Some(pos) = c
                .inflight
                .iter()
                .position(|&(s, t)| s == group && t == target_group)
            else {
                return; // duplicated reply
            };
            c.inflight.swap_remove(pos);
            if c.phase[group as usize] == ScPhase::Writing {
                c.phase[group as usize] = ScPhase::Busy;
            }
            Self::c_free_target(c, target_group);
        }
        self.c_try_issue(ctx);
    }

    // ---- coordinator role: control loop ------------------------------------

    /// Fold one SC's latency digest into the per-OST tracker, re-decide
    /// flags, broadcast transitions to every live SC.
    fn c_on_latency_digest(&mut self, samples: Vec<(u32, f64)>, ctx: &mut Ctx<'_, Msg>) {
        if !self.ctl_opts().enabled {
            return;
        }
        let (flags, recipients) = {
            let c = self.coord.as_mut().expect("coordinator role");
            let Some(ctl) = c.ctl.as_mut() else { return };
            for &(ost, secs) in &samples {
                ctl.tracker.observe(ost as usize, secs);
            }
            ctl.changes.clear();
            let mut changes = std::mem::take(&mut ctl.changes);
            let median = ctl.tracker.decide(&mut changes);
            ctl.changes = changes;
            if ctl.changes.is_empty() {
                return;
            }
            let flags: Vec<Msg> = ctl
                .changes
                .iter()
                .map(|ch| Msg::StragglerFlag {
                    ost: ch.ost,
                    slow: ch.slow,
                    median_secs: median,
                })
                .collect();
            let recipients: Vec<Rank> = (0..self.plan.targets)
                .filter(|&g| !c.abandoned[g])
                .map(|g| Rank(c.sc_rank[g]))
                .collect();
            (flags, recipients)
        };
        for m in flags {
            for &to in &recipients {
                self.send_msg(ctx, to, m.clone());
            }
        }
    }

    /// An SC asks for a spare target to duplicate a stuck member's write.
    /// Granting permanently burns the offset at the spare: even the losing
    /// copy may still land there, so it is never reused.
    fn c_on_spec_request(&mut self, group: u32, member: u32, bytes: u64, ctx: &mut Ctx<'_, Msg>) {
        if !self.ctl_opts().enabled || !self.ctl_opts().speculation {
            return;
        }
        let grant = {
            let c = self.coord.as_mut().expect("coordinator role");
            let Some(ctl) = c.ctl.as_mut() else { return };
            if ctl.spec_inflight.iter().any(|&(m, _)| m == member) {
                return; // already granted (the SC re-asks every epoch)
            }
            // A spare must be free, alive, off the requesting group, and
            // on an unflagged OST — no point racing one straggler against
            // another.
            let Some(pick) = c.free_targets.iter().position(|&g| {
                g != group
                    && !c.dead_target[g as usize]
                    && !ctl.tracker.is_straggler(self.plan.ost_of_group[g as usize].0)
            }) else {
                return; // nothing suitable now; the SC retries next epoch
            };
            let t = c.free_targets.remove(pick).expect("position valid");
            let offset = c.noted_offset[t as usize];
            c.noted_offset[t as usize] += bytes;
            ctl.spec_inflight.push((member, t));
            ctl.granted += 1;
            let a = Assignment {
                triggering_group: group,
                target_group: t,
                file: self.files[t as usize],
                ost: self.plan.ost_of_group[t as usize],
                offset,
            };
            (Rank(c.sc_rank[group as usize]), Msg::SpecGrant { member, assignment: a })
        };
        let (to, m) = grant;
        self.send_msg(ctx, to, m);
    }

    /// Resolve an outstanding speculation grant (duplicate won, lost, or
    /// became moot) and put the spare target back into rotation.
    fn c_resolve_spec(&mut self, member: u32, target_group: u32, won: bool, ctx: &mut Ctx<'_, Msg>) {
        if !self.ctl_opts().enabled {
            return;
        }
        {
            let c = self.coord.as_mut().expect("coordinator role");
            let Some(ctl) = c.ctl.as_mut() else { return };
            let Some(pos) = ctl
                .spec_inflight
                .iter()
                .position(|&(m, t)| m == member && t == target_group)
            else {
                return; // duplicated resolution
            };
            ctl.spec_inflight.swap_remove(pos);
            if won {
                ctl.won += 1;
            }
            Self::c_free_target(c, target_group);
        }
        self.c_try_issue(ctx);
    }

    /// Condemn target `g`: never hand it out again, and tell everyone so
    /// writes lost with it get rewritten elsewhere.
    fn c_condemn_target(&mut self, g: u32, ctx: &mut Ctx<'_, Msg>) {
        let broadcast = {
            let c = self.coord.as_mut().expect("coordinator role");
            if c.dead_target[g as usize] {
                false
            } else {
                c.dead_target[g as usize] = true;
                c.free_targets.retain(|&t| t != g);
                true
            }
        };
        if broadcast {
            for r in 0..self.plan.nprocs as u32 {
                self.send_msg(ctx, Rank(r), Msg::TargetDead { group: g });
            }
        }
        self.c_try_issue(ctx);
    }

    fn c_on_target_failed(&mut self, group: u32, ctx: &mut Ctx<'_, Msg>) {
        if !self.ft().enabled {
            return;
        }
        self.c_condemn_target(group, ctx);
    }

    fn c_on_adaptive_failed(&mut self, from: Rank, target_group: u32, ctx: &mut Ctx<'_, Msg>) {
        if !self.ft().enabled {
            return;
        }
        let matched = {
            let sender_group = self.plan.group_of[from.0 as usize];
            let c = self.coord.as_mut().expect("coordinator role");
            match c
                .inflight
                .iter()
                .position(|&(s, t)| s == sender_group && t == target_group)
            {
                Some(pos) => {
                    c.inflight.swap_remove(pos);
                    true
                }
                None => false,
            }
        };
        if matched {
            self.c_condemn_target(target_group, ctx);
        }
    }

    fn c_on_sc_revert(&mut self, group: u32, ctx: &mut Ctx<'_, Msg>) {
        if !self.ft().enabled {
            return;
        }
        {
            let c = self.coord.as_mut().expect("coordinator role");
            if c.abandoned[group as usize] {
                return;
            }
            c.phase[group as usize] = ScPhase::Writing;
        }
        self.c_try_issue(ctx);
    }

    fn c_on_pong(&mut self, group: u32, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        if let Some(c) = self.coord.as_mut() {
            c.pong_seen[group as usize] = now;
        }
    }

    /// Liveness round: ping pending SCs, fail over the silent ones.
    fn c_ping_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let ft = self.ft();
        let now = ctx.now();
        let threshold = 2.5 * ft.ping_interval_secs;
        let (pings, failovers, keep_going) = {
            let c = self.coord.as_mut().expect("coordinator role");
            let mut pings = Vec::new();
            let mut failovers = Vec::new();
            let mut pending = false;
            for g in 0..self.plan.targets {
                if c.abandoned[g] || c.index_in[g] || c.sc_rank[g] == self.me {
                    continue;
                }
                pending = true;
                if (now - c.pong_seen[g]).as_secs_f64() > threshold {
                    failovers.push(g as u32);
                } else {
                    pings.push(Rank(c.sc_rank[g]));
                }
            }
            (pings, failovers, pending)
        };
        for to in pings {
            self.send_msg(ctx, to, Msg::ScPing);
        }
        for g in failovers {
            self.c_failover(g, ctx);
        }
        if keep_going {
            ctx.set_timer(
                SimDuration::from_secs_f64(ft.ping_interval_secs),
                TIMER_PING,
            );
        }
    }

    /// Promote the next surviving member of `group` to SC, or abandon the
    /// group when nobody is left.
    fn c_failover(&mut self, group: u32, ctx: &mut Ctx<'_, Msg>) {
        let members: Vec<u32> = self.plan.members(group).map(|m| m.0).collect();
        enum Action {
            Promote { new_sc: u32, dead_sc: u32, overall: bool },
            Abandon,
        }
        let action = {
            let now = ctx.now();
            let c = self.coord.as_mut().expect("coordinator role");
            c.promoted[group as usize] += 1;
            let idx = c.promoted[group as usize];
            if idx >= members.len() {
                Action::Abandon
            } else {
                let dead_sc = c.sc_rank[group as usize];
                let new_sc = members[idx];
                c.sc_rank[group as usize] = new_sc;
                c.pong_seen[group as usize] = now;
                c.phase[group as usize] = ScPhase::Writing;
                // Adaptive requests routed through the dead SC can never
                // resolve (the completion relay died with it), but the
                // handed-out offset may already hold a member's write.
                // Park a worst-case hole past it and re-free the target,
                // so the group's survivors can still be served.
                let worst = members
                    .iter()
                    .map(|&m| self.plan.rank_bytes[m as usize])
                    .max()
                    .unwrap_or(0);
                let stale: Vec<u32> = c
                    .inflight
                    .iter()
                    .filter(|&&(s, _)| s == group)
                    .map(|&(_, t)| t)
                    .collect();
                c.inflight.retain(|&(s, _)| s != group);
                for t in stale {
                    c.noted_offset[t as usize] += worst;
                    Self::c_free_target(c, t);
                }
                // Speculations relayed through the dead SC can never
                // resolve either; their offsets were burned at grant
                // time, so the spare targets are safe to re-free.
                let stale_specs: Vec<u32> = match c.ctl.as_mut() {
                    Some(ctl) => {
                        let stale: Vec<u32> = ctl
                            .spec_inflight
                            .iter()
                            .filter(|&&(m, _)| self.plan.group_of[m as usize] == group)
                            .map(|&(_, t)| t)
                            .collect();
                        ctl.spec_inflight
                            .retain(|&(m, _)| self.plan.group_of[m as usize] != group);
                        stale
                    }
                    None => Vec::new(),
                };
                for t in stale_specs {
                    Self::c_free_target(c, t);
                }
                Action::Promote {
                    new_sc,
                    dead_sc,
                    overall: c.overall_sent,
                }
            }
        };
        match action {
            Action::Promote {
                new_sc,
                dead_sc,
                overall,
            } => {
                for r in 0..self.plan.nprocs as u32 {
                    self.send_msg(ctx, Rank(r), Msg::ScFailover {
                        group,
                        new_sc,
                        dead_sc,
                        overall_sent: overall,
                    });
                }
                // The re-freed targets can now serve the promoted group.
                self.c_try_issue(ctx);
            }
            Action::Abandon => {
                {
                    let c = self.coord.as_mut().expect("coordinator role");
                    c.abandoned[group as usize] = true;
                    c.phase[group as usize] = ScPhase::Complete;
                    c.free_targets.retain(|&t| t != group);
                    // In-flight requests through the dead group can never
                    // resolve; their targets stay parked (the handed-out
                    // offsets may have been written, so re-freeing would
                    // risk overlap).
                    c.inflight.retain(|&(s, _)| s != group);
                    // Speculations for the abandoned group's members are
                    // moot; their offsets are burned, so the spare
                    // targets are safe to re-free.
                    let stale_specs: Vec<u32> = match c.ctl.as_mut() {
                        Some(ctl) => {
                            let stale: Vec<u32> = ctl
                                .spec_inflight
                                .iter()
                                .filter(|&&(m, _)| self.plan.group_of[m as usize] == group)
                                .map(|&(_, t)| t)
                                .collect();
                            ctl.spec_inflight
                                .retain(|&(m, _)| self.plan.group_of[m as usize] != group);
                            stale
                        }
                        None => Vec::new(),
                    };
                    for t in stale_specs {
                        Self::c_free_target(c, t);
                    }
                    if !c.index_in[group as usize] {
                        c.indices_expected = c.indices_expected.saturating_sub(1);
                    }
                }
                self.c_maybe_write_global(ctx);
                self.c_check_done(ctx);
            }
        }
    }

    /// Every rank's reaction to a failover broadcast: learn the new SC;
    /// members replay their status; the promoted rank adopts the group.
    fn on_sc_failover(
        &mut self,
        group: u32,
        new_sc: u32,
        dead_sc: u32,
        overall_sent: bool,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        if !self.ft().enabled {
            return;
        }
        self.sc_override[group as usize] = Some(new_sc);
        if self.me == new_sc {
            self.adopt_group(group, dead_sc, overall_sent, ctx);
        } else if self.plan.group_of[self.me as usize] == group && self.me != dead_sc {
            let report = self.own_status_report(group);
            self.send_msg(ctx, Rank(new_sc), report);
        }
    }

    fn c_on_index(&mut self, group: u32, pieces: Vec<IndexEntry>, ctx: &mut Ctx<'_, Msg>) {
        {
            let c = self.coord.as_mut().expect("coordinator role");
            if c.index_in[group as usize] {
                return; // duplicated index
            }
            c.index_in[group as usize] = true;
            c.indices_received += 1;
            if !pieces.is_empty() || self.blocks.is_some() {
                c.index_parts
                    .push((format!("sub-{group}.bp"), LocalIndex { entries: pieces }));
            }
        }
        self.c_maybe_write_global(ctx);
    }

    fn c_maybe_write_global(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let bytes = {
            let c = self.coord.as_mut().expect("coordinator role");
            if c.indices_received < c.indices_expected || c.global_issued {
                return;
            }
            c.global_issued = true;
            if self.blocks.is_some() {
                c.index_parts.sort_by(|a, b| a.0.cmp(&b.0));
                let g = GlobalIndex::merge(std::mem::take(&mut c.index_parts));
                let bytes = g.serialize_opts(self.opts.integrity);
                let n = bytes.len() as u64;
                if let Some(store) = &self.store {
                    store.borrow_mut().put(self.global_index_file, 0, &bytes);
                }
                c.global_index = Some(g);
                n
            } else {
                // Synthetic: size scales with total writes.
                self.plan.nprocs as u64 * INDEX_ENTRY_BYTES + 64
            }
        };
        ctx.write_file(self.global_index_file, 0, bytes, TAG_GLOBAL_INDEX);
    }
}

impl Actor for AdaptiveActor {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Some(sc) = &self.sc {
            if self.opts.stagger_opens {
                let delay = self.opts.stagger_gap * sc.group as u64;
                ctx.set_timer(delay, TIMER_OPEN);
            } else {
                self.sc_open(ctx);
            }
        }
        let ft = self.ft();
        if ft.enabled {
            if self.coord.is_some() {
                ctx.set_timer(SimDuration::from_secs_f64(ft.ping_interval_secs), TIMER_PING);
            }
            if self.sc.is_some() {
                ctx.set_timer(
                    SimDuration::from_secs_f64(ft.sweep_interval_secs),
                    TIMER_SWEEP,
                );
            }
        }
        let ctl = self.ctl_opts();
        if ctl.enabled && self.sc.is_some() {
            ctx.set_timer(SimDuration::from_secs_f64(ctl.epoch_secs), TIMER_EPOCH);
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Msg>) {
        let base = tag & 0xFF;
        let tgen = (tag >> 8) as u32;
        match base {
            TIMER_OPEN => self.sc_open(ctx),
            TIMER_WRITE_TIMEOUT if self.assignment.is_some() && tgen == self.gen => {
                self.write_attempt_failed(ctx);
            }
            TIMER_RETRY if self.assignment.is_some() && tgen == self.gen => {
                self.submit_write(ctx);
            }
            TIMER_PING if self.coord.is_some() => self.c_ping_round(ctx),
            TIMER_ADOPT => self.sc_adopt_timeout(ctx),
            TIMER_SWEEP if self.sc.is_some() => self.sc_sweep(ctx),
            TIMER_EPOCH if self.sc.is_some() => self.sc_epoch(ctx),
            TIMER_SPEC_TIMEOUT
                if self.spec_assignment.is_some() && tgen == self.spec_gen =>
            {
                self.spec_abort(ctx);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, from: Rank, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match &msg {
            Msg::WriteNow(_) => self.msg_stats.write_now += 1,
            Msg::WriteComplete { .. } => self.msg_stats.write_complete += 1,
            Msg::IndexBody { .. } => self.msg_stats.index_body += 1,
            Msg::AdaptiveWriteStart { .. } => self.msg_stats.adaptive_start += 1,
            Msg::OverallWriteComplete => self.msg_stats.overall += 1,
            Msg::AdaptiveComplete { .. }
            | Msg::ScComplete { .. }
            | Msg::WritersBusy { .. }
            | Msg::IndexToC { .. } => self.msg_stats.coordinator_inbox += 1,
            Msg::WriteFailed { .. }
            | Msg::TargetFailed { .. }
            | Msg::AdaptiveFailed { .. }
            | Msg::TargetDead { .. }
            | Msg::LostWrite { .. }
            | Msg::ScRevert { .. }
            | Msg::ScPing
            | Msg::ScPong { .. }
            | Msg::ScFailover { .. }
            | Msg::StatusReport { .. } => self.msg_stats.fault_ctrl += 1,
            Msg::LatencyDigest { .. }
            | Msg::StragglerFlag { .. }
            | Msg::SpecRequest { .. }
            | Msg::SpecGrant { .. }
            | Msg::SpecWrite { .. }
            | Msg::SpecCancel { .. }
            | Msg::SpecDone { .. }
            | Msg::TunerUpdate { .. } => self.msg_stats.control += 1,
        }
        match msg {
            Msg::WriteNow(a) => {
                // Fault mode: duplicated (or stale re-delivered) orders are
                // ignored once this rank is writing or durably done.
                if self.ft().enabled && (self.assignment.is_some() || !self.records.is_empty()) {
                    return;
                }
                self.start_write(a, ctx)
            }
            Msg::WriteComplete { assignment, bytes } => {
                self.sc_on_write_complete(from, assignment, bytes, ctx)
            }
            Msg::IndexBody { pieces, .. } => self.sc_on_index_body(from, pieces, ctx),
            Msg::AdaptiveComplete {
                target_group,
                bytes,
            } => self.c_on_adaptive_complete(from, target_group, bytes, ctx),
            Msg::ScComplete {
                group,
                final_offset,
            } => self.c_on_sc_complete(group, final_offset, ctx),
            Msg::WritersBusy {
                group,
                target_group,
            } => self.c_on_writers_busy(group, target_group, ctx),
            Msg::IndexToC { group, pieces, .. } => self.c_on_index(group, pieces, ctx),
            Msg::AdaptiveWriteStart {
                target_group,
                file,
                ost,
                offset,
            } => self.sc_on_adaptive_start(target_group, file, ost, offset, ctx),
            Msg::OverallWriteComplete => self.sc_on_overall_complete(ctx),
            Msg::WriteFailed { assignment, .. } => self.sc_on_write_failed(from, assignment, ctx),
            Msg::TargetFailed { group } => self.c_on_target_failed(group, ctx),
            Msg::AdaptiveFailed { target_group } => {
                self.c_on_adaptive_failed(from, target_group, ctx)
            }
            Msg::TargetDead { group } => self.writer_on_target_dead(group, ctx),
            Msg::LostWrite { .. } => self.sc_on_lost_write(from, ctx),
            Msg::ScRevert { group } => self.c_on_sc_revert(group, ctx),
            Msg::ScPing => {
                if let Some(sc) = &self.sc {
                    let g = sc.group;
                    self.send_msg(ctx, from, Msg::ScPong { group: g });
                }
            }
            Msg::ScPong { group } => self.c_on_pong(group, ctx),
            Msg::ScFailover {
                group,
                new_sc,
                dead_sc,
                overall_sent,
            } => self.on_sc_failover(group, new_sc, dead_sc, overall_sent, ctx),
            Msg::StatusReport { .. } => self.apply_status_report(from, msg, ctx),
            Msg::LatencyDigest { samples } => self.c_on_latency_digest(samples, ctx),
            Msg::StragglerFlag {
                ost,
                slow,
                median_secs,
            } => self.sc_on_straggler_flag(ost, slow, median_secs),
            Msg::SpecRequest {
                group,
                member,
                bytes,
            } => self.c_on_spec_request(group, member, bytes, ctx),
            Msg::SpecGrant { member, assignment } => {
                self.sc_on_spec_grant(member, assignment, ctx)
            }
            Msg::SpecWrite { assignment } => self.writer_on_spec_write(assignment, ctx),
            Msg::SpecCancel {
                member,
                target_group,
            } => self.on_spec_cancel(member, target_group, ctx),
            Msg::SpecDone {
                member,
                target_group,
            } => self.c_resolve_spec(member, target_group, true, ctx),
            Msg::TunerUpdate { backoff_scale } => {
                if self.ctl_opts().enabled {
                    self.backoff_scale = backoff_scale;
                }
            }
        }
    }

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, Msg>) {
        let base = done.tag & 0xFF;
        let cgen = done.tag >> 8;
        match (base, done.kind) {
            (TAG_OPEN, CompletionKind::Open) => {
                if let Some(sc) = self.sc.as_mut() {
                    sc.opened = true;
                    self.sc_schedule_local(ctx);
                }
            }
            (TAG_WRITE, CompletionKind::Write) => {
                if self.hardened() {
                    if cgen != self.gen || self.assignment.is_none() {
                        return; // stale attempt (retried or lost the spec race)
                    }
                    if done.error {
                        if self.ft().enabled {
                            self.write_attempt_failed(ctx);
                        }
                        // Without fault mode there is no retry machinery;
                        // the control loop's speculation (if any) is the
                        // only rescue path, so keep waiting on it.
                        return;
                    }
                }
                let a = self.assignment.take().expect("completion without assignment");
                // The primary won (or ran unopposed): any in-flight
                // duplicate is fenced as an orphan at a burned offset.
                self.spec_assignment = None;
                self.finish_write(done, a, ctx)
            }
            (TAG_SPEC, CompletionKind::Write) => {
                if cgen != self.spec_gen || self.spec_assignment.is_none() {
                    return; // stale duplicate
                }
                self.writer_on_spec_complete(done, ctx);
            }
            // An index write that errored (target died during the index
            // phase) still reports to C: accounting is record-based.
            (TAG_INDEX, CompletionKind::Write) => self.sc_on_index_flushed(ctx),
            (TAG_GLOBAL_INDEX, CompletionKind::Write) => {
                self.coord.as_mut().expect("coordinator role").finished_at = Some(done.finished);
                // The coordinator's finish ends the run: every data write,
                // local index and the global index are durable by now.
                ctx.finish();
            }
            (TAG_CLOSE, CompletionKind::Close) => {}
            other => {
                if !self.hardened() {
                    panic!("unexpected IO completion {other:?}")
                }
            }
        }
    }
}
