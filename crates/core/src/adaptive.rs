//! The adaptive IO method — paper §III, Algorithms 1–3, implemented as an
//! actor state machine per rank.
//!
//! Every rank is a **writer**. The first rank of each group additionally
//! acts as **sub-coordinator (SC)** for that group's file (one file pinned
//! per storage target). Rank 0 additionally acts as the **coordinator
//! (C)**. Writers and the coordinator communicate only through SCs.
//!
//! * A writer waits for a `(target, offset)` assignment, writes its
//!   process group, notifies the triggering SC (and the target SC when
//!   they differ) and ships its index pieces to the target SC
//!   (Algorithm 1).
//! * An SC feeds its own file one writer at a time (`writers_per_target`
//!   generalises this, §III-B3's untested extension), counts expected
//!   index bodies, reports completion to C, diverts waiting writers on
//!   `AdaptiveWriteStart`, or answers `WritersBusy` (Algorithm 2). After
//!   `OverallWriteComplete` it sorts/merges its index pieces, writes the
//!   local index into its file and forwards the index to C.
//! * C sits idle until SC completions arrive, then shifts work from
//!   still-writing groups onto completed (fast) files, one active adaptive
//!   write per file, spreading requests round-robin over writing SCs
//!   (Algorithm 3). When all groups complete and no adaptive request is
//!   outstanding it broadcasts `OverallWriteComplete`, gathers local
//!   indices and writes the global index.
//!
//! With `work_stealing: false` the same machinery degrades to the
//! authors' earlier *stagger* method (serialised per-target writes, no
//! shifting), which we use as an ablation baseline.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bpfmt::{encode_pg, GlobalIndex, IndexEntry, LocalIndex, VarBlock};
use clustersim::{Actor, Ctx, IoComplete, Rank};
use simcore::{SimDuration, SimTime};
use storesim::layout::FileId;
use storesim::system::CompletionKind;
use storesim::ObjectStore;

use crate::plan::OutputPlan;
use crate::protocol::{Assignment, Msg, INDEX_ENTRY_BYTES};
use crate::record::WriteRecord;

/// IO tag values (per-rank scoped).
const TAG_OPEN: u32 = 1;
const TAG_WRITE: u32 = 2;
const TAG_INDEX: u32 = 3;
const TAG_GLOBAL_INDEX: u32 = 4;
const TAG_CLOSE: u32 = 5;
/// Timer used by staggered opens.
const TIMER_OPEN: u64 = 1;

/// Tuning knobs of the adaptive method.
#[derive(Clone, Debug)]
pub struct AdaptiveOpts {
    /// Simultaneous local writers an SC keeps active on its own file
    /// (paper uses 1; >1 is the generalisation of §III-B3).
    pub writers_per_target: usize,
    /// Divert waiting writers from the tail of the queue (`true`, default)
    /// or the head (`false`) — scheduling-policy ablation.
    pub steal_from_tail: bool,
    /// Stagger SC file opens to spare the metadata server (CUG'09 stagger
    /// technique).
    pub stagger_opens: bool,
    /// Gap between staggered opens.
    pub stagger_gap: SimDuration,
    /// Enable coordinator work-shifting. `false` degrades to the stagger
    /// method (serialised per-target writes only).
    pub work_stealing: bool,
    /// Coordinator ablation: instead of round-robining adaptive requests
    /// over writing SCs, keep draining the same SC until it reports busy.
    pub drain_first: bool,
}

impl Default for AdaptiveOpts {
    fn default() -> Self {
        AdaptiveOpts {
            writers_per_target: 1,
            steal_from_tail: true,
            stagger_opens: false,
            stagger_gap: SimDuration::from_millis(2),
            work_stealing: true,
            drain_first: false,
        }
    }
}

/// Per-rank protocol message counters (received messages by class),
/// used to verify the paper's §III-B3 scaling claim: the coordinator's
/// load grows with the number of storage targets, not with the number of
/// writers, and writers/coordinator never exchange messages directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct MsgStats {
    /// `WriteNow` assignments received (writer role).
    pub write_now: u64,
    /// `WriteComplete` notifications received (SC role).
    pub write_complete: u64,
    /// `IndexBody` messages received (SC role).
    pub index_body: u64,
    /// `AdaptiveWriteStart` requests received (SC role).
    pub adaptive_start: u64,
    /// `OverallWriteComplete` broadcasts received (SC role).
    pub overall: u64,
    /// Coordinator-bound messages received (`ScComplete`,
    /// `AdaptiveComplete`, `WritersBusy`, `IndexToC`) — coordinator role.
    pub coordinator_inbox: u64,
}

impl MsgStats {
    /// Total messages received by this rank.
    pub fn total(&self) -> u64 {
        self.write_now
            + self.write_complete
            + self.index_body
            + self.adaptive_start
            + self.overall
            + self.coordinator_inbox
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ScPhase {
    Writing,
    Busy,
    Complete,
}

/// Sub-coordinator state.
struct ScState {
    group: u32,
    /// Members not yet assigned anywhere.
    waiting: VecDeque<u32>,
    /// Writes currently in flight to my own file.
    local_active: usize,
    /// Member completions not yet observed.
    members_remaining: usize,
    /// Local offset high-water mark (local assignments only).
    next_offset: u64,
    /// File high-water mark including adaptive writes into my file.
    file_high: u64,
    /// WriteComplete(target=me) seen minus IndexBody received.
    missing_indices: i64,
    /// Writes into my file (sizes the synthetic index).
    writes_into_file: u64,
    /// OverallWriteComplete received.
    overall_seen: bool,
    /// Local index flushed to storage.
    index_written: bool,
    sc_complete_sent: bool,
    /// Collected index pieces (real-bytes mode).
    pieces: Vec<IndexEntry>,
    /// Whether the file has been opened (scheduling gate).
    opened: bool,
}

/// Coordinator state.
struct CoordState {
    phase: Vec<ScPhase>,
    noted_offset: Vec<u64>,
    /// Completed targets currently free to host an adaptive write.
    free_targets: VecDeque<u32>,
    outstanding: usize,
    /// High-water mark of simultaneous adaptive requests (paper §III-B3:
    /// strictly bounded by SC count − 1).
    max_outstanding: usize,
    rr_cursor: usize,
    overall_sent: bool,
    indices_received: usize,
    index_parts: Vec<(String, LocalIndex)>,
    /// Built after all indices arrive (real-bytes mode).
    global_index: Option<GlobalIndex>,
    /// Time the global index write completed.
    finished_at: Option<SimTime>,
    /// Total adaptive writes successfully issued and completed.
    adaptive_completed: usize,
}

/// One rank of the adaptive method.
pub struct AdaptiveActor {
    plan: Rc<OutputPlan>,
    opts: Rc<AdaptiveOpts>,
    /// File of each group (index = group).
    files: Rc<Vec<FileId>>,
    /// Extra file for the coordinator's global index.
    global_index_file: FileId,
    /// Real-bytes payload for this rank (None ⇒ synthetic mode).
    blocks: Option<Vec<VarBlock>>,
    /// Shared "disk contents" in real-bytes mode.
    store: Option<Rc<RefCell<ObjectStore>>>,
    /// Output step stamped on process groups.
    step: u32,

    // Writer state.
    me: u32,
    assignment: Option<Assignment>,
    write_started: Option<SimTime>,
    /// Completed writes by this rank.
    pub records: Vec<WriteRecord>,
    /// Received-message counters.
    pub msg_stats: MsgStats,

    sc: Option<ScState>,
    coord: Option<CoordState>,
}

impl AdaptiveActor {
    /// Build the actor for `rank`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: u32,
        plan: Rc<OutputPlan>,
        opts: Rc<AdaptiveOpts>,
        files: Rc<Vec<FileId>>,
        global_index_file: FileId,
        blocks: Option<Vec<VarBlock>>,
        store: Option<Rc<RefCell<ObjectStore>>>,
        step: u32,
    ) -> Self {
        let r = Rank(rank);
        let group = plan.group_of[rank as usize];
        let sc = if plan.is_sc(r) {
            let members: VecDeque<u32> = plan.members(group).map(|m| m.0).collect();
            Some(ScState {
                group,
                members_remaining: members.len(),
                waiting: members,
                local_active: 0,
                next_offset: 0,
                file_high: 0,
                missing_indices: 0,
                writes_into_file: 0,
                overall_seen: false,
                index_written: false,
                sc_complete_sent: false,
                pieces: Vec::new(),
                opened: false,
            })
        } else {
            None
        };
        let coord = if r == plan.coordinator() {
            Some(CoordState {
                phase: vec![ScPhase::Writing; plan.targets],
                noted_offset: vec![0; plan.targets],
                free_targets: VecDeque::new(),
                outstanding: 0,
                max_outstanding: 0,
                rr_cursor: 0,
                overall_sent: false,
                indices_received: 0,
                index_parts: Vec::new(),
                global_index: None,
                finished_at: None,
                adaptive_completed: 0,
            })
        } else {
            None
        };
        AdaptiveActor {
            plan,
            opts,
            files,
            global_index_file,
            blocks,
            store,
            step,
            me: rank,
            assignment: None,
            write_started: None,
            records: Vec::new(),
            msg_stats: MsgStats::default(),
            sc,
            coord,
        }
    }

    /// The coordinator's merged global index (real-bytes mode), available
    /// after the run.
    pub fn global_index(&self) -> Option<&GlobalIndex> {
        self.coord.as_ref().and_then(|c| c.global_index.as_ref())
    }

    /// When the full operation (including indices) finished — coordinator
    /// only.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.coord.as_ref().and_then(|c| c.finished_at)
    }

    /// Adaptive writes observed by the coordinator.
    pub fn adaptive_completed(&self) -> Option<usize> {
        self.coord.as_ref().map(|c| c.adaptive_completed)
    }

    /// High-water mark of simultaneous adaptive requests (coordinator
    /// only). The paper bounds this by `SC count − 1`.
    pub fn max_outstanding(&self) -> Option<usize> {
        self.coord.as_ref().map(|c| c.max_outstanding)
    }

    fn bytes_of(&self, rank: u32) -> u64 {
        self.plan.rank_bytes[rank as usize]
    }

    // ---- writer role ------------------------------------------------------

    fn start_write(&mut self, a: Assignment, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(self.assignment.is_none(), "writer double-assigned");
        self.assignment = Some(a);
        self.write_started = Some(ctx.now());
        let bytes = self.bytes_of(self.me);
        ctx.write_file(a.file, a.offset, bytes, TAG_WRITE);
    }

    fn finish_write(&mut self, done: IoComplete, ctx: &mut Ctx<'_, Msg>) {
        let a = self.assignment.take().expect("completion without assignment");
        let started = self.write_started.take().expect("write start recorded");
        self.records.push(WriteRecord {
            rank: self.me,
            bytes: done.bytes,
            start: started,
            end: done.finished,
            ost: a.ost,
            file: a.file,
            offset: a.offset,
            adaptive: a.is_adaptive(),
        });
        // Real-bytes mode: the PG is durable now; place it.
        let mut pieces: Vec<IndexEntry> = Vec::new();
        if let Some(blocks) = &self.blocks {
            let (bytes, entries) = encode_pg(self.me, self.step, blocks);
            debug_assert_eq!(bytes.len() as u64, done.bytes, "plan/payload size drift");
            if let Some(store) = &self.store {
                store.borrow_mut().put(a.file, a.offset, &bytes);
            }
            pieces = entries.into_iter().map(|e| e.rebased(a.offset)).collect();
        }
        // Algorithm 1 lines 4–8.
        let trig_sc = self.plan.sc_of(a.triggering_group);
        let msg = Msg::WriteComplete {
            assignment: a,
            bytes: done.bytes,
        };
        ctx.send(trig_sc, msg.clone(), msg.wire_bytes());
        let target_sc = self.plan.sc_of(a.target_group);
        if a.is_adaptive() {
            let m2 = Msg::WriteComplete {
                assignment: a,
                bytes: done.bytes,
            };
            ctx.send(target_sc, m2.clone(), m2.wire_bytes());
        }
        let idx = Msg::IndexBody {
            target_group: a.target_group,
            pieces,
        };
        let wire = idx.wire_bytes();
        ctx.send(target_sc, idx, wire);
    }

    // ---- sub-coordinator role ----------------------------------------------

    fn sc_open(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.open(TAG_OPEN);
    }

    fn sc_schedule_local(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Pull assignments out of the SC state first (borrow discipline:
        // `start_write` needs `&mut self`).
        let mut to_assign: Vec<(u32, Assignment)> = Vec::new();
        {
            let plan = Rc::clone(&self.plan);
            let sc = self.sc.as_mut().expect("sc role");
            if !sc.opened {
                return;
            }
            let k = self.opts.writers_per_target.max(1);
            while sc.local_active < k {
                let Some(w) = sc.waiting.pop_front() else {
                    break;
                };
                let bytes = plan.rank_bytes[w as usize];
                let a = Assignment {
                    triggering_group: sc.group,
                    target_group: sc.group,
                    file: self.files[sc.group as usize],
                    ost: plan.ost_of_group[sc.group as usize],
                    offset: sc.next_offset,
                };
                sc.next_offset += bytes;
                sc.file_high = sc.file_high.max(sc.next_offset);
                sc.local_active += 1;
                to_assign.push((w, a));
            }
        }
        for (w, a) in to_assign {
            if w == self.me {
                self.start_write(a, ctx);
            } else {
                let m = Msg::WriteNow(a);
                let wire = m.wire_bytes();
                ctx.send(Rank(w), m, wire);
            }
        }
    }

    fn sc_on_write_complete(&mut self, a: Assignment, bytes: u64, ctx: &mut Ctx<'_, Msg>) {
        let coordinator = self.plan.coordinator();
        let my_group = self.sc.as_ref().expect("sc role").group;
        let mut send_to_c: Vec<Msg> = Vec::new();
        let mut reschedule = false;
        {
            let sc = self.sc.as_mut().expect("sc role");
            if a.target_group == my_group {
                // A write landed in my file: expect its index body.
                sc.missing_indices += 1;
                sc.writes_into_file += 1;
                sc.file_high = sc.file_high.max(a.offset + bytes);
            }
            if a.triggering_group == my_group {
                // Source is one of mine.
                sc.members_remaining -= 1;
                if a.target_group != my_group {
                    // Adaptive completion: tell C (Algorithm 2 line 6).
                    send_to_c.push(Msg::AdaptiveComplete {
                        target_group: a.target_group,
                        bytes,
                    });
                } else {
                    sc.local_active -= 1;
                    reschedule = true;
                }
                if sc.members_remaining == 0 && !sc.sc_complete_sent {
                    sc.sc_complete_sent = true;
                    send_to_c.push(Msg::ScComplete {
                        group: my_group,
                        final_offset: sc.next_offset,
                    });
                }
            }
        }
        for m in send_to_c {
            let wire = m.wire_bytes();
            ctx.send(coordinator, m, wire);
        }
        if reschedule {
            self.sc_schedule_local(ctx);
        }
        self.sc_maybe_write_index(ctx);
    }

    fn sc_on_adaptive_start(
        &mut self,
        target_group: u32,
        file: FileId,
        ost: storesim::layout::OstId,
        offset: u64,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        let coordinator = self.plan.coordinator();
        let (victim, my_group) = {
            let sc = self.sc.as_mut().expect("sc role");
            let v = if self.opts.steal_from_tail {
                sc.waiting.pop_back()
            } else {
                sc.waiting.pop_front()
            };
            (v, sc.group)
        };
        match victim {
            None => {
                // Algorithm 2 line 22.
                let m = Msg::WritersBusy {
                    group: my_group,
                    target_group,
                };
                let wire = m.wire_bytes();
                ctx.send(coordinator, m, wire);
            }
            Some(w) => {
                let a = Assignment {
                    triggering_group: my_group,
                    target_group,
                    file,
                    ost,
                    offset,
                };
                if w == self.me {
                    self.start_write(a, ctx);
                } else {
                    let m = Msg::WriteNow(a);
                    let wire = m.wire_bytes();
                    ctx.send(Rank(w), m, wire);
                }
            }
        }
    }

    fn sc_on_index_body(&mut self, pieces: Vec<IndexEntry>, ctx: &mut Ctx<'_, Msg>) {
        {
            let sc = self.sc.as_mut().expect("sc role");
            sc.missing_indices -= 1;
            sc.pieces.extend(pieces);
        }
        self.sc_maybe_write_index(ctx);
    }

    fn sc_on_overall_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.sc.as_mut().expect("sc role").overall_seen = true;
        self.sc_maybe_write_index(ctx);
    }

    /// Algorithm 2 lines 31–33: once done and no indices are missing, sort
    /// and merge the pieces, write the local index, send it to C.
    fn sc_maybe_write_index(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let (file, index_bytes, offset) = {
            let sc = self.sc.as_mut().expect("sc role");
            if !(sc.overall_seen && sc.missing_indices == 0 && !sc.index_written) {
                return;
            }
            sc.index_written = true;
            let index_bytes = if self.blocks.is_some() {
                // Real size once serialized; estimate now, write exact later.
                let idx = LocalIndex::from_pieces(std::mem::take(&mut sc.pieces));
                let tail = idx.serialize_with_footer(sc.file_high);
                let n = tail.len() as u64;
                if let Some(store) = &self.store {
                    store
                        .borrow_mut()
                        .put(self.files[sc.group as usize], sc.file_high, &tail);
                }
                sc.pieces = idx.entries; // keep sorted entries for C
                n
            } else {
                sc.writes_into_file * INDEX_ENTRY_BYTES + 64
            };
            (self.files[sc.group as usize], index_bytes, sc.file_high)
        };
        ctx.write_file(file, offset, index_bytes, TAG_INDEX);
    }

    fn sc_on_index_flushed(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let coordinator = self.plan.coordinator();
        let (group, pieces, wire_bytes) = {
            let sc = self.sc.as_mut().expect("sc role");
            let pieces = if self.blocks.is_some() {
                std::mem::take(&mut sc.pieces)
            } else {
                Vec::new()
            };
            (
                sc.group,
                pieces,
                sc.writes_into_file * INDEX_ENTRY_BYTES + 64,
            )
        };
        let m = Msg::IndexToC {
            group,
            pieces,
            wire_bytes,
        };
        let wire = m.wire_bytes();
        ctx.send(coordinator, m, wire);
        // Close the subfile (metadata cost modelled, excluded from the
        // measured write span per the paper's methodology).
        ctx.close(TAG_CLOSE);
    }

    // ---- coordinator role ---------------------------------------------------

    fn c_try_issue(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let targets = self.plan.targets;
        let mut issues: Vec<(Rank, Msg)> = Vec::new();
        if self.opts.work_stealing {
            let c = self.coord.as_mut().expect("coordinator role");
            loop {
                if c.free_targets.is_empty() {
                    break;
                }
                // Next writing SC (round-robin, or drain-first ablation).
                let mut chosen: Option<usize> = None;
                for probe in 0..targets {
                    let idx = if self.opts.drain_first {
                        probe
                    } else {
                        (c.rr_cursor + probe) % targets
                    };
                    if c.phase[idx] == ScPhase::Writing {
                        chosen = Some(idx);
                        break;
                    }
                }
                let Some(sc_idx) = chosen else {
                    break;
                };
                if !self.opts.drain_first {
                    c.rr_cursor = (sc_idx + 1) % targets;
                }
                let t = c.free_targets.pop_front().expect("non-empty");
                c.outstanding += 1;
                c.max_outstanding = c.max_outstanding.max(c.outstanding);
                let m = Msg::AdaptiveWriteStart {
                    target_group: t,
                    file: self.files[t as usize],
                    ost: self.plan.ost_of_group[t as usize],
                    offset: c.noted_offset[t as usize],
                };
                issues.push((self.plan.sc_of(sc_idx as u32), m));
            }
        }
        for (to, m) in issues {
            let wire = m.wire_bytes();
            ctx.send(to, m, wire);
        }
        self.c_check_done(ctx);
    }

    fn c_check_done(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let broadcast = {
            let c = self.coord.as_mut().expect("coordinator role");
            let all_complete = c.phase.iter().all(|&p| p == ScPhase::Complete);
            if all_complete && c.outstanding == 0 && !c.overall_sent {
                c.overall_sent = true;
                true
            } else {
                false
            }
        };
        if broadcast {
            for g in 0..self.plan.targets as u32 {
                let to = self.plan.sc_of(g);
                let m = Msg::OverallWriteComplete;
                let wire = m.wire_bytes();
                ctx.send(to, m, wire);
            }
        }
    }

    fn c_on_sc_complete(&mut self, group: u32, final_offset: u64, ctx: &mut Ctx<'_, Msg>) {
        {
            let c = self.coord.as_mut().expect("coordinator role");
            c.phase[group as usize] = ScPhase::Complete;
            c.noted_offset[group as usize] = c.noted_offset[group as usize].max(final_offset);
            c.free_targets.push_back(group);
        }
        self.c_try_issue(ctx);
    }

    fn c_on_adaptive_complete(&mut self, target_group: u32, bytes: u64, ctx: &mut Ctx<'_, Msg>) {
        {
            let c = self.coord.as_mut().expect("coordinator role");
            c.noted_offset[target_group as usize] += bytes;
            c.free_targets.push_back(target_group);
            c.outstanding -= 1;
            c.adaptive_completed += 1;
        }
        self.c_try_issue(ctx);
    }

    fn c_on_writers_busy(&mut self, group: u32, target_group: u32, ctx: &mut Ctx<'_, Msg>) {
        {
            let c = self.coord.as_mut().expect("coordinator role");
            if c.phase[group as usize] == ScPhase::Writing {
                c.phase[group as usize] = ScPhase::Busy;
            }
            c.free_targets.push_back(target_group);
            c.outstanding -= 1;
        }
        self.c_try_issue(ctx);
    }

    fn c_on_index(&mut self, group: u32, pieces: Vec<IndexEntry>, ctx: &mut Ctx<'_, Msg>) {
        let write_global = {
            let c = self.coord.as_mut().expect("coordinator role");
            c.indices_received += 1;
            if !pieces.is_empty() || self.blocks.is_some() {
                c.index_parts
                    .push((format!("sub-{group}.bp"), LocalIndex { entries: pieces }));
            }
            c.indices_received == self.plan.targets
        };
        if write_global {
            let bytes = {
                let c = self.coord.as_mut().expect("coordinator role");
                if self.blocks.is_some() {
                    c.index_parts.sort_by(|a, b| a.0.cmp(&b.0));
                    let g = GlobalIndex::merge(std::mem::take(&mut c.index_parts));
                    let bytes = g.serialize();
                    let n = bytes.len() as u64;
                    if let Some(store) = &self.store {
                        store.borrow_mut().put(self.global_index_file, 0, &bytes);
                    }
                    c.global_index = Some(g);
                    n
                } else {
                    // Synthetic: size scales with total writes.
                    self.plan.nprocs as u64 * INDEX_ENTRY_BYTES + 64
                }
            };
            ctx.write_file(self.global_index_file, 0, bytes, TAG_GLOBAL_INDEX);
        }
    }
}

impl Actor for AdaptiveActor {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Some(sc) = &self.sc {
            if self.opts.stagger_opens {
                let delay = self.opts.stagger_gap * sc.group as u64;
                ctx.set_timer(delay, TIMER_OPEN);
            } else {
                self.sc_open(ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Msg>) {
        if tag == TIMER_OPEN {
            self.sc_open(ctx);
        }
    }

    fn on_message(&mut self, _from: Rank, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match &msg {
            Msg::WriteNow(_) => self.msg_stats.write_now += 1,
            Msg::WriteComplete { .. } => self.msg_stats.write_complete += 1,
            Msg::IndexBody { .. } => self.msg_stats.index_body += 1,
            Msg::AdaptiveWriteStart { .. } => self.msg_stats.adaptive_start += 1,
            Msg::OverallWriteComplete => self.msg_stats.overall += 1,
            Msg::AdaptiveComplete { .. }
            | Msg::ScComplete { .. }
            | Msg::WritersBusy { .. }
            | Msg::IndexToC { .. } => self.msg_stats.coordinator_inbox += 1,
        }
        match msg {
            Msg::WriteNow(a) => self.start_write(a, ctx),
            Msg::WriteComplete { assignment, bytes } => {
                self.sc_on_write_complete(assignment, bytes, ctx)
            }
            Msg::IndexBody { pieces, .. } => self.sc_on_index_body(pieces, ctx),
            Msg::AdaptiveComplete {
                target_group,
                bytes,
            } => self.c_on_adaptive_complete(target_group, bytes, ctx),
            Msg::ScComplete {
                group,
                final_offset,
            } => self.c_on_sc_complete(group, final_offset, ctx),
            Msg::WritersBusy {
                group,
                target_group,
            } => self.c_on_writers_busy(group, target_group, ctx),
            Msg::IndexToC { group, pieces, .. } => self.c_on_index(group, pieces, ctx),
            Msg::AdaptiveWriteStart {
                target_group,
                file,
                ost,
                offset,
            } => self.sc_on_adaptive_start(target_group, file, ost, offset, ctx),
            Msg::OverallWriteComplete => self.sc_on_overall_complete(ctx),
        }
    }

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, Msg>) {
        match (done.tag, done.kind) {
            (TAG_OPEN, CompletionKind::Open) => {
                self.sc.as_mut().expect("sc role").opened = true;
                self.sc_schedule_local(ctx);
            }
            (TAG_WRITE, CompletionKind::Write) => self.finish_write(done, ctx),
            (TAG_INDEX, CompletionKind::Write) => self.sc_on_index_flushed(ctx),
            (TAG_GLOBAL_INDEX, CompletionKind::Write) => {
                self.coord.as_mut().expect("coordinator role").finished_at = Some(done.finished);
                // The coordinator's finish ends the run: every data write,
                // local index and the global index are durable by now.
                ctx.finish();
            }
            (TAG_CLOSE, CompletionKind::Close) => {}
            other => panic!("unexpected IO completion {other:?}"),
        }
    }
}
