//! Messages of the managed-IO protocols (paper Algorithms 1–3).
//!
//! Writers and the coordinator never talk to each other directly — all
//! traffic flows through sub-coordinators ("this isolates the messaging
//! reducing the message load on any particular part of the system",
//! §III-B). The message set below is the paper's, plus the index bodies
//! that carry real `bpfmt` pieces in real-bytes mode.

use bpfmt::IndexEntry;
use storesim::layout::{FileId, OstId};

/// Wire size used for small control messages.
pub const CTRL_BYTES: u64 = 64;

/// Approximate wire size of one index entry (name + dims + stats).
pub const INDEX_ENTRY_BYTES: u64 = 96;

/// A writer's assignment: where to put its process group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Group whose sub-coordinator issued the assignment (the
    /// "triggering" SC).
    pub triggering_group: u32,
    /// Group owning the target file (== triggering for local writes).
    pub target_group: u32,
    /// Target file.
    pub file: FileId,
    /// Storage target backing the file.
    pub ost: OstId,
    /// Byte offset within the target file.
    pub offset: u64,
}

impl Assignment {
    /// True when this assignment shifted work to another group's file.
    pub fn is_adaptive(&self) -> bool {
        self.triggering_group != self.target_group
    }
}

/// All protocol messages.
#[derive(Clone, Debug)]
pub enum Msg {
    // ---- sub-coordinator -> writer --------------------------------------
    /// "Wait for message (target, offset)" — Algorithm 1 line 1.
    WriteNow(Assignment),

    // ---- writer -> sub-coordinator --------------------------------------
    /// Algorithm 1 lines 4–6: sent to the triggering SC, and to the target
    /// SC when they differ.
    WriteComplete {
        /// The writer's assignment (lets both SCs classify the message).
        assignment: Assignment,
        /// Bytes written.
        bytes: u64,
    },
    /// Algorithm 1 line 8: the writer's local index, sent to the target SC.
    IndexBody {
        /// Group owning the file the index describes.
        target_group: u32,
        /// Index pieces (already rebased to the assigned offset). Empty in
        /// synthetic (sizes-only) mode.
        pieces: Vec<IndexEntry>,
    },

    // ---- sub-coordinator -> coordinator ----------------------------------
    /// An adaptive write that one of my writers performed elsewhere has
    /// completed (Algorithm 2 line 6).
    AdaptiveComplete {
        /// Group whose file received the data.
        target_group: u32,
        /// Bytes written (advances the coordinator's offset note).
        bytes: u64,
    },
    /// All of my writers have completed (Algorithm 2 line 13). Carries the
    /// file's final local offset so the coordinator can hand out adaptive
    /// offsets (Algorithm 3 "note final offset").
    ScComplete {
        /// The completing group.
        group: u32,
        /// High-water offset of its file.
        final_offset: u64,
    },
    /// I have no waiting writers to divert (Algorithm 2 line 22).
    WritersBusy {
        /// The replying group.
        group: u32,
        /// The adaptive target that went unused (so C can free it).
        target_group: u32,
    },
    /// My sorted local index, for the global merge (Algorithm 2 line 33).
    IndexToC {
        /// The group the index belongs to.
        group: u32,
        /// Sorted local index entries (empty in synthetic mode).
        pieces: Vec<IndexEntry>,
        /// Serialized size on the wire (drives message timing even in
        /// synthetic mode).
        wire_bytes: u64,
    },

    // ---- coordinator -> sub-coordinator ----------------------------------
    /// Divert one waiting writer to `target_group`'s file (Algorithm 2
    /// line 20 receives this).
    AdaptiveWriteStart {
        /// Group owning the target file.
        target_group: u32,
        /// Target file.
        file: FileId,
        /// Target OST.
        ost: OstId,
        /// Assigned offset.
        offset: u64,
    },
    /// Everything is written; write your index (Algorithm 2 line 27).
    OverallWriteComplete,

    // ---- fault-tolerance extension (inactive unless fault mode is on) ----
    /// Writer → its sub-coordinator: a write exhausted its retries (error
    /// completions or timeouts). The writer is idle again and must be
    /// re-queued.
    WriteFailed {
        /// The assignment that could not be completed.
        assignment: Assignment,
        /// Bytes that were supposed to be written.
        bytes: u64,
    },
    /// Sub-coordinator → coordinator: my own file's storage target is
    /// unusable (a local write to it failed for good).
    TargetFailed {
        /// The group whose target died.
        group: u32,
    },
    /// Sub-coordinator → coordinator: the adaptive write you directed at
    /// `target_group` failed for good (resolves the outstanding request
    /// and condemns the target).
    AdaptiveFailed {
        /// The adaptive target that proved unusable.
        target_group: u32,
    },
    /// Coordinator → all ranks: `group`'s file is gone; anyone holding a
    /// durable write into it must discard the record and arrange a
    /// rewrite through its own sub-coordinator.
    TargetDead {
        /// The group whose file was destroyed.
        group: u32,
    },
    /// Writer → its sub-coordinator: my previously completed write was
    /// destroyed with a dead target; put me back in the pool.
    LostWrite {
        /// Bytes that must be rewritten.
        bytes: u64,
    },
    /// Sub-coordinator → coordinator: I have waiting writers again (after
    /// a failure re-queue); treat me as writing even if I had completed
    /// or reported busy.
    ScRevert {
        /// The reverting group.
        group: u32,
    },
    /// Coordinator → sub-coordinator: liveness probe.
    ScPing,
    /// Sub-coordinator → coordinator: liveness reply.
    ScPong {
        /// The replying group.
        group: u32,
    },
    /// Coordinator → all ranks: `group`'s sub-coordinator is dead;
    /// `new_sc` takes over. Alive members reply with [`Msg::StatusReport`]
    /// so the new SC can reconstruct group state (index replay).
    ScFailover {
        /// The orphaned group.
        group: u32,
        /// The promoted member rank.
        new_sc: u32,
        /// The dead sub-coordinator rank (excluded from the group).
        dead_sc: u32,
        /// Whether `OverallWriteComplete` was already broadcast.
        overall_sent: bool,
    },
    /// Member → freshly promoted sub-coordinator: everything the member
    /// knows about its own progress, replayed so the new SC can rebuild
    /// the group's bookkeeping and un-acked index records.
    StatusReport {
        /// The reporting member's group.
        group: u32,
        /// `(offset, bytes)` of a completed write into the group's own
        /// file, if any.
        done_local: Option<(u64, u64)>,
        /// True when the member completed its write into another group's
        /// file (adaptive).
        done_elsewhere: bool,
        /// The member's in-flight assignment, if it is currently writing.
        in_flight: Option<Assignment>,
        /// Replayed index pieces for writes into the group's file (empty
        /// in synthetic mode).
        pieces: Vec<IndexEntry>,
    },

    // ---- control-loop extension (inactive unless `AdaptiveOpts.control`) --
    /// Sub-coordinator → coordinator: per-OST write latencies observed
    /// since the last decision epoch (completions plus censored ages of
    /// still-stuck local writes, so a fully stalled target is visible).
    LatencyDigest {
        /// `(ost, latency_secs)` samples, in observation order.
        samples: Vec<(u32, f64)>,
    },
    /// Coordinator → sub-coordinators: an OST's straggler flag changed.
    /// Carries the current cross-OST median latency so SCs can derive
    /// speculation deadlines locally.
    StragglerFlag {
        /// The OST whose flag changed.
        ost: u32,
        /// New state: `true` ⇒ straggler.
        slow: bool,
        /// Median smoothed latency across tracked OSTs, seconds.
        median_secs: f64,
    },
    /// Sub-coordinator → coordinator: member `member`'s local write has
    /// been stuck on my flagged OST past the speculation deadline;
    /// please grant a spare target for a duplicate.
    SpecRequest {
        /// The requesting group.
        group: u32,
        /// The stuck member's rank.
        member: u32,
        /// Bytes the duplicate would write.
        bytes: u64,
    },
    /// Coordinator → sub-coordinator: speculation granted. The offset in
    /// `assignment` is permanently burned at the coordinator — even a
    /// losing duplicate may still land there, so it is never reused.
    SpecGrant {
        /// The member the grant is for.
        member: u32,
        /// Where the duplicate goes.
        assignment: Assignment,
    },
    /// Sub-coordinator → member: issue the speculative duplicate write.
    SpecWrite {
        /// Where the duplicate goes.
        assignment: Assignment,
    },
    /// The speculation lost, failed, or is moot: free the spare target.
    /// Flows writer → SC (a duplicate errored or timed out) and SC → C
    /// (the original write won, the member failed/was reaped, or a stale
    /// grant arrived).
    SpecCancel {
        /// The member the speculation was for.
        member: u32,
        /// The spare target to free.
        target_group: u32,
    },
    /// Sub-coordinator → coordinator: the duplicate won the race — the
    /// member's bytes landed on the spare target. Frees the target.
    SpecDone {
        /// The rescued member.
        member: u32,
        /// The spare target that received the bytes.
        target_group: u32,
    },
    /// Sub-coordinator → its members: updated retry-backoff multiplier
    /// from the local tuner.
    TunerUpdate {
        /// Multiplier applied to retry backoff delays.
        backoff_scale: f64,
    },
}

impl Msg {
    /// Wire cost of this message in bytes (control messages are small;
    /// index bodies scale with entry count).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Msg::IndexBody { pieces, .. } => {
                CTRL_BYTES + (pieces.len().max(1) as u64) * INDEX_ENTRY_BYTES
            }
            Msg::IndexToC { pieces, wire_bytes, .. } => {
                CTRL_BYTES + (*wire_bytes).max(pieces.len() as u64 * INDEX_ENTRY_BYTES)
            }
            Msg::StatusReport { pieces, .. } => {
                CTRL_BYTES + pieces.len() as u64 * INDEX_ENTRY_BYTES
            }
            // 12 bytes per (ost, latency) pair, rounded up to keep the
            // digest visibly heavier than a bare control message.
            Msg::LatencyDigest { samples } => CTRL_BYTES + samples.len() as u64 * 16,
            _ => CTRL_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(trig: u32, target: u32) -> Assignment {
        Assignment {
            triggering_group: trig,
            target_group: target,
            file: FileId(target),
            ost: OstId(target as usize),
            offset: 0,
        }
    }

    #[test]
    fn adaptive_detection() {
        assert!(!asg(3, 3).is_adaptive());
        assert!(asg(3, 5).is_adaptive());
    }

    #[test]
    fn control_messages_are_small() {
        assert_eq!(Msg::WriteNow(asg(0, 0)).wire_bytes(), CTRL_BYTES);
        assert_eq!(
            Msg::ScComplete {
                group: 0,
                final_offset: 0
            }
            .wire_bytes(),
            CTRL_BYTES
        );
    }

    #[test]
    fn latency_digests_scale_with_samples() {
        let empty = Msg::LatencyDigest { samples: vec![] };
        assert_eq!(empty.wire_bytes(), CTRL_BYTES);
        let digest = Msg::LatencyDigest {
            samples: vec![(0, 0.5); 10],
        };
        assert_eq!(digest.wire_bytes(), CTRL_BYTES + 160);
        assert_eq!(
            Msg::SpecGrant {
                member: 3,
                assignment: asg(0, 2)
            }
            .wire_bytes(),
            CTRL_BYTES
        );
    }

    #[test]
    fn index_bodies_scale_with_entries() {
        let small = Msg::IndexBody {
            target_group: 0,
            pieces: vec![],
        };
        let b = small.wire_bytes();
        assert!(b >= CTRL_BYTES + INDEX_ENTRY_BYTES);
        let big = Msg::IndexToC {
            group: 0,
            pieces: vec![],
            wire_bytes: 10_000,
        };
        assert_eq!(big.wire_bytes(), CTRL_BYTES + 10_000);
    }
}
