//! Messages of the managed-IO protocols (paper Algorithms 1–3).
//!
//! Writers and the coordinator never talk to each other directly — all
//! traffic flows through sub-coordinators ("this isolates the messaging
//! reducing the message load on any particular part of the system",
//! §III-B). The message set below is the paper's, plus the index bodies
//! that carry real `bpfmt` pieces in real-bytes mode.

use bpfmt::IndexEntry;
use storesim::layout::{FileId, OstId};

/// Wire size used for small control messages.
pub const CTRL_BYTES: u64 = 64;

/// Approximate wire size of one index entry (name + dims + stats).
pub const INDEX_ENTRY_BYTES: u64 = 96;

/// A writer's assignment: where to put its process group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Group whose sub-coordinator issued the assignment (the
    /// "triggering" SC).
    pub triggering_group: u32,
    /// Group owning the target file (== triggering for local writes).
    pub target_group: u32,
    /// Target file.
    pub file: FileId,
    /// Storage target backing the file.
    pub ost: OstId,
    /// Byte offset within the target file.
    pub offset: u64,
}

impl Assignment {
    /// True when this assignment shifted work to another group's file.
    pub fn is_adaptive(&self) -> bool {
        self.triggering_group != self.target_group
    }
}

/// All protocol messages.
#[derive(Clone, Debug)]
pub enum Msg {
    // ---- sub-coordinator -> writer --------------------------------------
    /// "Wait for message (target, offset)" — Algorithm 1 line 1.
    WriteNow(Assignment),

    // ---- writer -> sub-coordinator --------------------------------------
    /// Algorithm 1 lines 4–6: sent to the triggering SC, and to the target
    /// SC when they differ.
    WriteComplete {
        /// The writer's assignment (lets both SCs classify the message).
        assignment: Assignment,
        /// Bytes written.
        bytes: u64,
    },
    /// Algorithm 1 line 8: the writer's local index, sent to the target SC.
    IndexBody {
        /// Group owning the file the index describes.
        target_group: u32,
        /// Index pieces (already rebased to the assigned offset). Empty in
        /// synthetic (sizes-only) mode.
        pieces: Vec<IndexEntry>,
    },

    // ---- sub-coordinator -> coordinator ----------------------------------
    /// An adaptive write that one of my writers performed elsewhere has
    /// completed (Algorithm 2 line 6).
    AdaptiveComplete {
        /// Group whose file received the data.
        target_group: u32,
        /// Bytes written (advances the coordinator's offset note).
        bytes: u64,
    },
    /// All of my writers have completed (Algorithm 2 line 13). Carries the
    /// file's final local offset so the coordinator can hand out adaptive
    /// offsets (Algorithm 3 "note final offset").
    ScComplete {
        /// The completing group.
        group: u32,
        /// High-water offset of its file.
        final_offset: u64,
    },
    /// I have no waiting writers to divert (Algorithm 2 line 22).
    WritersBusy {
        /// The replying group.
        group: u32,
        /// The adaptive target that went unused (so C can free it).
        target_group: u32,
    },
    /// My sorted local index, for the global merge (Algorithm 2 line 33).
    IndexToC {
        /// The group the index belongs to.
        group: u32,
        /// Sorted local index entries (empty in synthetic mode).
        pieces: Vec<IndexEntry>,
        /// Serialized size on the wire (drives message timing even in
        /// synthetic mode).
        wire_bytes: u64,
    },

    // ---- coordinator -> sub-coordinator ----------------------------------
    /// Divert one waiting writer to `target_group`'s file (Algorithm 2
    /// line 20 receives this).
    AdaptiveWriteStart {
        /// Group owning the target file.
        target_group: u32,
        /// Target file.
        file: FileId,
        /// Target OST.
        ost: OstId,
        /// Assigned offset.
        offset: u64,
    },
    /// Everything is written; write your index (Algorithm 2 line 27).
    OverallWriteComplete,
}

impl Msg {
    /// Wire cost of this message in bytes (control messages are small;
    /// index bodies scale with entry count).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Msg::IndexBody { pieces, .. } => {
                CTRL_BYTES + (pieces.len().max(1) as u64) * INDEX_ENTRY_BYTES
            }
            Msg::IndexToC { pieces, wire_bytes, .. } => {
                CTRL_BYTES + (*wire_bytes).max(pieces.len() as u64 * INDEX_ENTRY_BYTES)
            }
            _ => CTRL_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(trig: u32, target: u32) -> Assignment {
        Assignment {
            triggering_group: trig,
            target_group: target,
            file: FileId(target),
            ost: OstId(target as usize),
            offset: 0,
        }
    }

    #[test]
    fn adaptive_detection() {
        assert!(!asg(3, 3).is_adaptive());
        assert!(asg(3, 5).is_adaptive());
    }

    #[test]
    fn control_messages_are_small() {
        assert_eq!(Msg::WriteNow(asg(0, 0)).wire_bytes(), CTRL_BYTES);
        assert_eq!(
            Msg::ScComplete {
                group: 0,
                final_offset: 0
            }
            .wire_bytes(),
            CTRL_BYTES
        );
    }

    #[test]
    fn index_bodies_scale_with_entries() {
        let small = Msg::IndexBody {
            target_group: 0,
            pieces: vec![],
        };
        let b = small.wire_bytes();
        assert!(b >= CTRL_BYTES + INDEX_ENTRY_BYTES);
        let big = Msg::IndexToC {
            group: 0,
            pieces: vec![],
            wire_bytes: 10_000,
        };
        assert_eq!(big.wire_bytes(), CTRL_BYTES + 10_000);
    }
}
