//! The experiment runner: the public entry point that sets up a machine,
//! a workload and a transport method, runs the co-simulation, and returns
//! the paper's measurements.
//!
//! ```
//! use adios_core::runner::{run, DataSpec, Interference, Method, RunSpec};
//! use simcore::units::MIB;
//! use storesim::params::testbed;
//!
//! let spec = RunSpec {
//!     machine: testbed(),
//!     nprocs: 16,
//!     data: DataSpec::Uniform(4 * MIB),
//!     method: Method::Adaptive {
//!         targets: 8,
//!         opts: Default::default(),
//!     },
//!     interference: Interference::None,
//!     seed: 42,
//! };
//! let out = run(spec);
//! assert_eq!(out.result.records.len(), 16);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use bpfmt::{pg_encoded_size_opts, GlobalIndex, IntegrityOpts, VarBlock};
use clustersim::{Actor, FaultPlane, LinkFaults, Simulation};
use iostats::{SweepSample, SweepSink};
use simcore::units::GIB;
use simcore::SimTime;
use storesim::layout::{FileId, OstId, StripeSpec};
use storesim::{CorruptionOracle, MachineConfig, ObjectStore, StorageSystem};

use crate::adaptive::{AdaptiveActor, AdaptiveOpts, MsgStats};
use crate::fault::{FaultConfig, IntegrityOutcome, SimError, WriteOutcome};
use crate::mpiio::{stripe_aligned_offsets, MpiIoActor};
use crate::plan::OutputPlan;
use crate::posix::PosixActor;
use crate::record::{OutputResult, WriteRecord};

/// Hard cap on simulated time for one output operation (10⁶ simulated
/// seconds — far beyond any sane IO phase; hitting it means the protocol
/// stalled, which the runner asserts on).
const RUN_DEADLINE: SimTime = SimTime::from_nanos(1_000_000_000_000_000);

/// Which transport method to run.
#[derive(Clone, Debug)]
pub enum Method {
    /// POSIX file-per-process over `targets` storage targets (IOR mode).
    Posix {
        /// Storage targets the writers spread over.
        targets: usize,
    },
    /// MPI-IO / ADIOS base transport: one shared file striped over
    /// `stripe_count` targets (clamped to the machine's per-file limit —
    /// 160 on Lustre 1.6).
    MpiIo {
        /// Requested stripe count.
        stripe_count: usize,
    },
    /// The stagger method (CUG'09): grouped, serialised per-target writes,
    /// staggered opens, no work shifting.
    Stagger {
        /// Output files / targets.
        targets: usize,
    },
    /// The paper's adaptive method (Algorithms 1–3).
    Adaptive {
        /// Output files / targets (512 in the paper's runs).
        targets: usize,
        /// Tuning knobs.
        opts: AdaptiveOpts,
    },
}

/// Artificial external interference, as in §IV: a separate program
/// continuously writing to a handful of targets.
#[derive(Clone, Debug)]
pub enum Interference {
    /// Quiet system (only the machine's own production noise, if enabled).
    None,
    /// `streams_per_ost` perpetual writers on each of `osts` targets,
    /// `bytes` per write.
    CompetingStreams {
        /// Number of targets hit.
        osts: usize,
        /// Concurrent streams per target.
        streams_per_ost: usize,
        /// Bytes per (continuously repeated) write.
        bytes: u64,
    },
    /// Permanently degrade specific targets (failure injection: dying
    /// disks, rebuilding RAID sets) — NERSC's observation that "a small
    /// number of slow storage targets greatly increased total IO time"
    /// (§V, Antypas & Uselton).
    DegradedOsts {
        /// Target indices to degrade.
        osts: Vec<usize>,
        /// Remaining capability fraction (0, 1].
        factor: f64,
    },
    /// Like [`Interference::CompetingStreams`], but each stream idles for
    /// an exponential gap between bursts — a competing application's
    /// duty-cycled IO phases (the "two simultaneous IOR jobs" setup of
    /// the XTP experiments).
    BurstyStreams {
        /// Number of targets hit.
        osts: usize,
        /// Streams per target.
        streams_per_ost: usize,
        /// Bytes per burst.
        bytes: u64,
        /// Mean idle gap between bursts, seconds.
        mean_gap: f64,
    },
}

impl Interference {
    /// The paper's configuration: a file striped over 8 targets, three
    /// processes per target continuously writing 1 GiB each (24 procs).
    pub fn paper_default() -> Self {
        Interference::CompetingStreams {
            osts: 8,
            streams_per_ost: 3,
            bytes: GIB,
        }
    }
}

/// Per-rank output data.
#[derive(Clone, Debug)]
pub enum DataSpec {
    /// Weak scaling: every rank writes this many bytes (synthetic —
    /// sizes move through the simulator, no payload bytes exist).
    Uniform(u64),
    /// Heterogeneous synthetic sizes.
    PerRank(Vec<u64>),
    /// Real-bytes mode: each rank writes these variable blocks as a BP
    /// process group; payloads land in an in-memory object store and the
    /// full index machinery runs. Only supported by the adaptive/stagger
    /// methods (the ones that write the BP format).
    Real(Vec<Vec<VarBlock>>),
}

/// Everything needed for one run.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Machine preset (see `storesim::params`).
    pub machine: MachineConfig,
    /// Rank count.
    pub nprocs: usize,
    /// What each rank writes.
    pub data: DataSpec,
    /// Transport method.
    pub method: Method,
    /// Artificial interference.
    pub interference: Interference,
    /// Seed for all stochastic elements.
    pub seed: u64,
}

/// Result of one run.
pub struct RunOutput {
    /// The paper-facing measurements.
    pub result: OutputResult,
    /// The merged global index (real-bytes adaptive runs only).
    pub global_index: Option<GlobalIndex>,
    /// Subfile bytes by name (real-bytes runs only) — usable with
    /// `bpfmt::read_global_f64` for read-back verification.
    pub subfiles: Option<HashMap<String, Vec<u8>>>,
    /// Protocol statistics (adaptive/stagger runs only).
    pub protocol: Option<ProtocolStats>,
    /// Structured failures observed during the run (empty on clean runs).
    pub errors: Vec<SimError>,
    /// Byte-level accounting: always `written + lost == total`.
    pub outcome: WriteOutcome,
    /// Ground truth about silent damage, from the fault injector.
    pub oracle: CorruptionOracle,
    /// Integrity accounting derived from `oracle` and the write records.
    pub integrity: IntegrityOutcome,
}

/// Aggregated protocol statistics of one adaptive run (§III-B3's
/// scalability analysis, measured).
#[derive(Clone, Copy, Debug)]
pub struct ProtocolStats {
    /// Messages the coordinator received (`ScComplete` +
    /// `AdaptiveComplete` + `WritersBusy` + `IndexToC`).
    pub coordinator_inbox: u64,
    /// High-water mark of simultaneous adaptive requests (paper bound:
    /// targets − 1).
    pub max_outstanding_adaptive: usize,
    /// Total messages received across all ranks.
    pub total_messages: u64,
    /// Messages received by the busiest single rank.
    pub busiest_rank_inbox: u64,
    /// Speculative duplicates granted by the coordinator (0 unless the
    /// control loop is on).
    pub spec_granted: u64,
    /// Speculations whose duplicate beat the stuck primary.
    pub spec_won: u64,
    /// Repair traffic: bytes re-landed after a condemned target
    /// destroyed durable data (whole-extent re-execution in this
    /// protocol; the redundancy campaign's `RedundancyReport` reports the
    /// same quantity for its shard plane).
    pub bytes_rewritten: u64,
    /// Of the rewritten bytes, how many were produced by erasure-coded
    /// reconstruction rather than recopying. Always 0 here — the adaptive
    /// protocol repairs by re-execution; EC campaigns
    /// ([`crate::run_redundant`]) fill this in their report.
    pub bytes_reconstructed: u64,
}

impl RunOutput {
    /// Condense this run into one streaming [`SweepSample`] for a
    /// [`SweepSink`].
    ///
    /// A run with no usable write records — or a degenerate zero-length
    /// write span, which a total fault wipe-out can produce — is marked
    /// `failed`: its byte/error counters still accumulate but it
    /// contributes nothing to the distribution metrics (whose extraction
    /// would otherwise divide by zero).
    pub fn sweep_sample(&self, seed: u64) -> SweepSample {
        let r = &self.result;
        let span = r.write_span();
        // Streaming min/max/moment pass over per-writer elapsed times: no
        // intermediate Vec, so warm sweep seeds stay allocation-lean.
        let mut min_t = f64::INFINITY;
        let mut max_t = f64::NEG_INFINITY;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for rec in &r.records {
            let t = rec.elapsed();
            min_t = min_t.min(t);
            max_t = max_t.max(t);
            sum += t;
            sumsq += t * t;
        }
        let failed = r.records.is_empty() || span <= 0.0 || min_t <= 0.0;
        let (bandwidth, write_time_std, imbalance) = if failed {
            (0.0, 0.0, 0.0)
        } else {
            let n = r.records.len() as f64;
            let var = if r.records.len() < 2 {
                0.0
            } else {
                ((sumsq - sum * sum / n) / (n - 1.0)).max(0.0)
            };
            (r.aggregate_bandwidth(), var.sqrt(), max_t / min_t)
        };
        SweepSample {
            seed,
            bandwidth,
            write_span: span,
            write_time_std,
            imbalance,
            total_bytes: self.outcome.written_bytes,
            lost_bytes: self.outcome.lost_bytes,
            errors: self.errors.len() as u64,
            corrupt_records: self.integrity.corrupt_records as u64,
            adaptive_writes: self.result.adaptive_writes as u64,
            failed,
            ost_bytes: r.records.iter().map(|rec| (rec.ost.0 as u32, rec.bytes)).collect(),
        }
    }
}

/// Per-worker scratch arena for seed sweeps: the pooled [`StorageSystem`]
/// (event-queue slabs, per-OST engine state, file table, protocol scratch
/// buffers) that [`RunBase::run_seed_scratch`] resets and reuses across
/// seeds instead of rebuilding.
///
/// The pool is keyed by pointer identity of the [`RunBase`]'s shared
/// [`OutputPlan`]: a scratch handed a different base simply rebuilds cold
/// (correct, just not warm), so one scratch can be carried across
/// heterogeneous sweeps safely. Warm runs are byte-identical to cold ones
/// — the contract pinned by `storesim`'s fresh-vs-reset suite and the
/// sweep determinism tests.
#[derive(Default)]
pub struct RunScratch {
    pooled: Option<(Arc<OutputPlan>, StorageSystem)>,
    /// Explicit in-run shard-thread budget; `None` follows
    /// `MANAGED_IO_SHARDS`.
    shards: Option<usize>,
    /// Explicit driver-loop choice; `None` follows
    /// `MANAGED_IO_LOOKAHEAD` (on unless `=0`).
    lookahead: Option<bool>,
}

impl RunScratch {
    /// An empty (cold) scratch.
    pub fn new() -> Self {
        RunScratch::default()
    }

    /// A scratch whose storage systems advance their OST shards on
    /// `threads` threads, ignoring `MANAGED_IO_SHARDS`. Byte-identical
    /// to the serial default at any setting — this is how the sharded
    /// differential tests pin thread counts without env races.
    pub fn with_shard_threads(threads: usize) -> Self {
        RunScratch {
            pooled: None,
            shards: Some(threads),
            lookahead: None,
        }
    }

    /// Pin the coupled driver loop for every run through this scratch:
    /// `true` = protocol lookahead (wide macro-windows), `false` = the
    /// stepwise one-event-per-iteration reference loop. Overrides
    /// `MANAGED_IO_LOOKAHEAD`. Byte-identical either way — this is how
    /// the coupled differential tests pin the loop without env races.
    pub fn set_lookahead(&mut self, on: bool) {
        self.lookahead = Some(on);
    }

    /// Take a storage system for one `(base, seed)` replicate: reset the
    /// pooled one in place when it belongs to this `base`, else build
    /// fresh. Returns the system and whether it came back warm (file
    /// table already populated).
    fn storage_for(&mut self, base: &RunBase, seed: u64) -> (StorageSystem, bool) {
        let (mut sys, warm) = match self.pooled.take() {
            Some((plan, mut sys)) if Arc::ptr_eq(&plan, &base.plan) => {
                sys.reset(seed);
                (sys, true)
            }
            _ => (StorageSystem::new(Arc::clone(&base.machine), seed), false),
        };
        // In-run sharding: a warm system keeps its shard layout and pool,
        // so this is a no-op on every seed after the first.
        sys.set_shard_threads(self.shards.unwrap_or_else(shard_threads));
        if profiling() {
            sys.enable_profiling();
        }
        (sys, warm)
    }

    /// Return a run's storage system to the pool for the next seed.
    fn put_back(&mut self, base: &RunBase, sys: StorageSystem) {
        self.pooled = Some((Arc::clone(&base.plan), sys));
    }
}

/// In-run shard-thread budget from `MANAGED_IO_SHARDS` (default 1 =
/// serial). Composes with the sweep's `MANAGED_IO_THREADS`: the outer
/// sweep fans seeds across workers, and each worker's storage system
/// advances its OST shards on this many threads between decision points.
/// Results are byte-identical at any setting; only wall-clock changes.
fn shard_threads() -> usize {
    static SHARDS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SHARDS.get_or_init(|| match std::env::var("MANAGED_IO_SHARDS") {
        Ok(raw) => simcore::par::parse_threads(&raw).unwrap_or_else(|err| {
            eprintln!("managed-io: ignoring MANAGED_IO_SHARDS={raw:?}: {err}; running serial");
            1
        }),
        Err(_) => 1,
    })
}

/// True when `MANAGED_IO_PROFILE=1`: every run prints a wall-time phase
/// breakdown (client protocol / OST advance / harvest merge / stats) as
/// one minijson object on stdout.
fn profiling() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("MANAGED_IO_PROFILE").is_ok_and(|v| v == "1"))
}

thread_local! {
    /// Wall time this thread spent in post-run stats accounting during the
    /// current profiled run (see [`timed_stats`]).
    static STATS_TIME: std::cell::Cell<std::time::Duration> =
        const { std::cell::Cell::new(std::time::Duration::ZERO) };
}

/// Attribute `f`'s wall time to the profile's `stats` phase (byte/loss
/// accounting, integrity oracle diffing). Free when profiling is off.
fn timed_stats<T>(f: impl FnOnce() -> T) -> T {
    if !profiling() {
        return f();
    }
    let t0 = std::time::Instant::now();
    let r = f();
    STATS_TIME.with(|c| c.set(c.get() + t0.elapsed()));
    r
}

/// Apply the scratch's driver-loop choice to a freshly-built simulation
/// and arm the coupled driver profile when `MANAGED_IO_PROFILE=1`.
fn configure_driver<A: Actor>(sim: &mut Simulation<A>, scratch: &RunScratch) {
    if let Some(on) = scratch.lookahead {
        sim.set_lookahead(on);
    }
    if profiling() {
        sim.enable_driver_profiling();
    }
}

/// Print one `coupled_driver` minijson row: where a coupled run's driver
/// wall time went (cluster dispatch / storage drain / harvest delivery)
/// and how many driver rounds the loop took — the coupled counterpart of
/// the storage-side `in_run` row.
fn emit_driver_profile<A: Actor>(sim: &Simulation<A>, seed: u64) {
    if let Some(p) = sim.driver_profile() {
        let row = minijson::json!({
            "profile": "coupled_driver",
            "seed": seed,
            "shards": sim.storage().shard_threads() as u64,
            "lookahead": sim.lookahead_enabled(),
            "cluster_dispatch_s": p.cluster_dispatch_s,
            "storage_drain_s": p.storage_drain_s,
            "harvest_deliver_s": p.harvest_deliver_s,
            "rounds": p.rounds,
        });
        println!("{row}");
    }
}

fn rank_bytes_of(data: &DataSpec, nprocs: usize, integrity: IntegrityOpts) -> Vec<u64> {
    match data {
        DataSpec::Uniform(b) => vec![*b; nprocs],
        DataSpec::PerRank(v) => {
            assert_eq!(v.len(), nprocs);
            v.clone()
        }
        DataSpec::Real(blocks) => {
            assert_eq!(blocks.len(), nprocs);
            blocks
                .iter()
                .map(|b| pg_encoded_size_opts(b, integrity))
                .collect()
        }
    }
}

/// The integrity layout a method writes its PGs in (checked PGs are
/// larger, so plan sizes must agree with the writer's encoding).
fn integrity_of(method: &Method) -> IntegrityOpts {
    match method {
        Method::Adaptive { opts, .. } => opts.integrity,
        _ => IntegrityOpts::default(),
    }
}

fn apply_interference(sim_storage: &mut storesim::StorageSystem, interference: &Interference) {
    let ost_count = sim_storage.config().ost_count;
    match interference {
        Interference::None => {}
        Interference::CompetingStreams {
            osts,
            streams_per_ost,
            bytes,
        } => {
            for o in 0..*osts {
                for _ in 0..*streams_per_ost {
                    sim_storage.add_background_stream(SimTime::ZERO, OstId(o % ost_count), *bytes);
                }
            }
        }
        Interference::BurstyStreams {
            osts,
            streams_per_ost,
            bytes,
            mean_gap,
        } => {
            for o in 0..*osts {
                for _ in 0..*streams_per_ost {
                    sim_storage.add_bursty_stream(
                        SimTime::ZERO,
                        OstId(o % ost_count),
                        *bytes,
                        *mean_gap,
                    );
                }
            }
        }
        Interference::DegradedOsts { osts, factor } => {
            for &o in osts {
                sim_storage.degrade_ost(SimTime::ZERO, OstId(o % ost_count), *factor);
            }
        }
    }
}

/// Execute one fault-free run to completion.
pub fn run(spec: RunSpec) -> RunOutput {
    run_with_faults(spec, FaultConfig::none())
}

/// Execute one run under a [`FaultConfig`]. Storage faults, message-layer
/// faults and rank kills are installed before the run; the result carries
/// structured [`SimError`]s and a [`WriteOutcome`] byte accounting instead
/// of panicking or hanging on failure. With an empty config this is
/// exactly [`run`].
pub fn run_with_faults(spec: RunSpec, faults: FaultConfig) -> RunOutput {
    let seed = spec.seed;
    RunBase::prepare(spec).run_seed_with_faults(seed, &faults)
}

/// Execute one run with an optional tiered-redundancy shard plane.
///
/// With `red.enabled == false` this delegates verbatim to
/// [`run_with_faults`] — same entry point, same RNG streams, so the
/// artifacts are byte-identical to a build without the redundancy module
/// (pinned in `tests/determinism.rs`). With the plane enabled, the base
/// run executes unchanged and the same per-rank payloads are
/// additionally materialized as redundant shards via
/// [`run_redundant`](crate::redundancy::run_redundant) under the same
/// storage fault script; the second element carries that campaign's
/// [`RedundancyReport`](crate::redundancy::RedundancyReport).
pub fn run_with_redundancy(
    spec: RunSpec,
    faults: FaultConfig,
    red: &crate::redundancy::RedundancyOpts,
) -> (RunOutput, Option<crate::redundancy::RedundancyReport>) {
    if !red.enabled {
        return (run_with_faults(spec, faults), None);
    }
    let machine = spec.machine.clone();
    let rank_bytes = rank_bytes_of(&spec.data, spec.nprocs, integrity_of(&spec.method));
    let seed = spec.seed;
    let script = faults.storage.clone();
    let base = run_with_faults(spec, faults);
    let report =
        crate::redundancy::run_redundant(&machine, &rank_bytes, &script, red, seed ^ 0x7EDD_EC01);
    (base, Some(report))
}

/// The seed-independent prefix of a run, built once and shared across a
/// whole campaign sweep.
///
/// A replicate campaign re-runs the same `(machine, workload, method)`
/// point under many seeds; everything but the seed — the machine
/// parameters, the per-rank byte sizes, the [`OutputPlan`] group/target
/// assignment, and (for MPI-IO) the clamped stripe layout — is identical
/// across replicates. [`RunBase::prepare`] computes that prefix once and
/// puts the heavyweight pieces behind [`Arc`], so [`RunBase::run_seed`]
/// and the parallel [`RunBase::run_seed_sweep`] share them instead of
/// rebuilding per replicate.
///
/// Every seeded run is **byte-identical** to the equivalent one-shot
/// [`run`] / [`run_with_faults`] call with that seed (those entry points
/// are now themselves thin wrappers over `prepare` + `run_seed`).
pub struct RunBase {
    machine: Arc<MachineConfig>,
    nprocs: usize,
    data: DataSpec,
    method: Method,
    interference: Interference,
    plan: Arc<OutputPlan>,
    /// MPI-IO precomputed layout: (clamped stripe count, stripe size,
    /// per-rank file offsets).
    mpiio: Option<(usize, u64, Vec<u64>)>,
}

impl RunBase {
    /// Build the shared prefix from a spec (the spec's `seed` field is
    /// ignored — pass seeds to [`RunBase::run_seed`]).
    pub fn prepare(spec: RunSpec) -> RunBase {
        let RunSpec {
            machine,
            nprocs,
            data,
            method,
            interference,
            seed: _,
        } = spec;
        let machine = Arc::new(machine);
        let rank_bytes = rank_bytes_of(&data, nprocs, integrity_of(&method));
        let ost_count = machine.ost_count;
        let (plan, mpiio) = match &method {
            Method::MpiIo { stripe_count } => {
                let stripe_count = (*stripe_count)
                    .min(machine.max_stripe_count)
                    .min(ost_count)
                    .min(nprocs);
                // ADIOS MPI method on Lustre: stripe width = the (largest)
                // per-rank buffer, so each rank's region lands on one target.
                let stripe_size = rank_bytes.iter().copied().max().expect("nprocs > 0").max(1);
                let offsets = stripe_aligned_offsets(&rank_bytes, stripe_size);
                (
                    Arc::new(OutputPlan::new(nprocs, stripe_count, ost_count, rank_bytes)),
                    Some((stripe_count, stripe_size, offsets)),
                )
            }
            Method::Posix { targets }
            | Method::Stagger { targets }
            | Method::Adaptive { targets, .. } => (
                Arc::new(OutputPlan::new(nprocs, *targets, ost_count, rank_bytes)),
                None,
            ),
        };
        RunBase {
            machine,
            nprocs,
            data,
            method,
            interference,
            plan,
            mpiio,
        }
    }

    /// The shared machine parameters.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The shared output plan.
    pub fn plan(&self) -> &OutputPlan {
        &self.plan
    }

    /// Execute one fault-free replicate under `seed`.
    pub fn run_seed(&self, seed: u64) -> RunOutput {
        self.run_seed_with_faults(seed, &FaultConfig::none())
    }

    /// Execute one replicate under `seed` with fault injection.
    pub fn run_seed_with_faults(&self, seed: u64, faults: &FaultConfig) -> RunOutput {
        self.run_seed_scratch(seed, faults, &mut RunScratch::new())
    }

    /// [`RunBase::run_seed_with_faults`] against a reusable
    /// [`RunScratch`]: a warm scratch's storage system is reset in place
    /// instead of rebuilt, so steady-state sweep seeds run without
    /// reallocating the storage layer. Byte-identical to the cold path.
    pub fn run_seed_scratch(
        &self,
        seed: u64,
        faults: &FaultConfig,
        scratch: &mut RunScratch,
    ) -> RunOutput {
        if !profiling() {
            return self.run_seed_inner(seed, faults, scratch);
        }
        STATS_TIME.with(|c| c.set(std::time::Duration::ZERO));
        let t0 = std::time::Instant::now();
        let out = self.run_seed_inner(seed, faults, scratch);
        let total = t0.elapsed().as_secs_f64();
        let stats = STATS_TIME.with(std::cell::Cell::get).as_secs_f64();
        if let Some((_, sys)) = &scratch.pooled {
            if let Some(p) = sys.profile() {
                // Everything not spent advancing OST shards, merging
                // their harvests, or computing stats is the serialized
                // client protocol (actors, MDS, global events) — the
                // Amdahl residual of in-run sharding.
                let client = (total - p.ost_advance_s - p.harvest_merge_s - stats).max(0.0);
                let row = minijson::json!({
                    "profile": "in_run",
                    "seed": seed,
                    "shards": sys.shard_threads() as u64,
                    "total_s": total,
                    "client_s": client,
                    "ost_advance_s": p.ost_advance_s,
                    "harvest_merge_s": p.harvest_merge_s,
                    "stats_s": stats,
                    "windows": p.windows,
                    "parallel_windows": p.parallel_windows,
                    "shard_events": p.shard_events,
                    "global_events": p.global_events,
                });
                println!("{row}");
            }
        }
        out
    }

    fn run_seed_inner(
        &self,
        seed: u64,
        faults: &FaultConfig,
        scratch: &mut RunScratch,
    ) -> RunOutput {
        match &self.method {
            Method::Posix { .. } => run_posix(self, seed, faults, scratch),
            Method::MpiIo { .. } => run_mpiio(self, seed, faults, scratch),
            Method::Stagger { .. } => {
                let opts = AdaptiveOpts {
                    work_stealing: false,
                    stagger_opens: true,
                    ..Default::default()
                };
                run_adaptive(self, seed, opts, faults, scratch)
            }
            Method::Adaptive { opts, .. } => run_adaptive(self, seed, opts.clone(), faults, scratch),
        }
    }

    /// Run a whole seed sweep in parallel (over `MANAGED_IO_THREADS`
    /// workers), sharing this prefix across replicates. Results come back
    /// in seed order and each is byte-identical to a serial
    /// [`RunBase::run_seed`] call.
    pub fn run_seed_sweep(&self, seeds: &[u64]) -> Vec<RunOutput> {
        self.run_seed_sweep_with_faults(seeds, &FaultConfig::none())
    }

    /// [`RunBase::run_seed_sweep`] with fault injection applied to every
    /// replicate.
    pub fn run_seed_sweep_with_faults(&self, seeds: &[u64], faults: &FaultConfig) -> Vec<RunOutput> {
        simcore::par::par_map_with(self, seeds.to_vec(), |base, seed| {
            base.run_seed_with_faults(seed, faults)
        })
    }

    /// An empty [`SweepSink`] sized for this base's machine.
    pub fn sweep_sink(&self) -> SweepSink {
        SweepSink::new(self.machine.ost_count)
    }

    /// Run a fault-free seed sweep, streaming every replicate into
    /// `sink`. See [`RunBase::run_seed_sweep_into_threads`].
    pub fn run_seed_sweep_into(&self, seeds: &[u64], sink: &mut SweepSink) {
        self.run_seed_sweep_into_threads(simcore::par::threads(), seeds, &FaultConfig::none(), sink)
    }

    /// The fleet-sweep entry point: run `seeds` over `nthreads`
    /// work-stealing workers, each carrying a private ([`RunScratch`],
    /// [`SweepSink`]) pair it reuses across every seed it claims, and
    /// merge the per-worker sinks into `sink` at the end.
    ///
    /// Peak memory is flat in the seed count — per-seed [`RunOutput`]s
    /// are condensed to [`SweepSample`]s worker-side and never
    /// materialized as a collection. Because the sink's accumulators are
    /// exactly order-independent, the merged report is byte-identical to
    /// a serial sweep at any thread count, faults included.
    pub fn run_seed_sweep_into_threads(
        &self,
        nthreads: usize,
        seeds: &[u64],
        faults: &FaultConfig,
        sink: &mut SweepSink,
    ) {
        let parts = simcore::par::par_fold_workers_threads(
            nthreads,
            seeds.to_vec(),
            || (RunScratch::new(), self.sweep_sink()),
            |(scratch, local), seed| {
                let out = self.run_seed_scratch(seed, faults, scratch);
                local.add_sample(&out.sweep_sample(seed));
            },
        );
        for (_, local) in &parts {
            sink.merge(local);
        }
    }
}

/// Install the configured faults into a freshly built simulation.
pub(crate) fn install_faults<A: Actor>(sim: &mut Simulation<A>, seed: u64, faults: &FaultConfig) {
    if !faults.storage.is_empty() {
        sim.storage_mut().install_faults(&faults.storage);
    }
    if faults.network.is_some() || !faults.kills.is_empty() {
        let mut plane = FaultPlane::new(seed);
        if let Some(n) = faults.network {
            plane = plane.with_default(LinkFaults::flaky(n.dup_p, n.delay_p, n.delay_mean_secs));
        }
        for &(at, r) in &faults.kills {
            plane = plane.kill_at(at, r);
        }
        sim.install_fault_plane(plane);
    }
}

/// Byte-level accounting: which of each rank's bytes are durably present
/// at run end. A record whose target suffered an error-mode failure after
/// the write landed counts as lost ([`SimError::DataLost`]); a rank with
/// no surviving bytes at all and no destroyed record simply never wrote
/// ([`SimError::RankFailed`]).
fn account(
    storage: &storesim::StorageSystem,
    rank_bytes: &[u64],
    records: &[WriteRecord],
) -> (WriteOutcome, Vec<SimError>) {
    let total: u64 = rank_bytes.iter().sum();
    let mut written = 0u64;
    let mut errors = Vec::new();
    for (rank, &bytes) in rank_bytes.iter().enumerate() {
        let mut valid = 0u64;
        let mut destroyed: Option<&WriteRecord> = None;
        for r in records.iter().filter(|r| r.rank == rank as u32) {
            if storage.ost_lost_data_since(r.ost, r.end) {
                destroyed = Some(r);
            } else {
                valid += r.bytes;
            }
        }
        let w = valid.min(bytes);
        written += w;
        let lost = bytes - w;
        if lost > 0 {
            match destroyed {
                Some(r) => errors.push(SimError::DataLost {
                    rank: rank as u32,
                    ost: r.ost.0,
                    bytes: lost,
                }),
                None => errors.push(SimError::RankFailed {
                    rank: rank as u32,
                    bytes_lost: lost,
                }),
            }
        }
    }
    let outcome = WriteOutcome {
        total_bytes: total,
        written_bytes: written,
        lost_bytes: total - written,
        complete: written == total,
    };
    (outcome, errors)
}

/// Integrity accounting: which surviving write records the corruption
/// oracle has flagged. Destroyed records (their whole target died) count
/// as lost, not corrupt — a loud failure, already in [`account`]'s books.
fn integrity_account(
    storage: &storesim::StorageSystem,
    records: &[WriteRecord],
) -> (CorruptionOracle, IntegrityOutcome, Vec<SimError>) {
    let oracle = storage.integrity_oracle();
    let mut out = IntegrityOutcome {
        oracle_events: oracle.corrupt_count(),
        ..Default::default()
    };
    let mut errors = Vec::new();
    for r in records {
        if storage.ost_lost_data_since(r.ost, r.end) {
            continue;
        }
        if oracle.write_corrupted(r.ost, r.end) {
            out.corrupt_records += 1;
            out.corrupt_bytes += r.bytes;
            errors.push(SimError::DataCorrupted {
                rank: r.rank,
                ost: r.ost.0,
                bytes: r.bytes,
            });
        }
    }
    (oracle, out, errors)
}

fn run_posix(base: &RunBase, seed: u64, faults: &FaultConfig, scratch: &mut RunScratch) -> RunOutput {
    assert!(
        matches!(base.data, DataSpec::Uniform(_) | DataSpec::PerRank(_)),
        "real-bytes mode requires the adaptive/stagger methods"
    );
    let plan = Arc::clone(&base.plan);
    let (mut storage, warm) = scratch.storage_for(base, seed);
    let mut actors = Vec::with_capacity(base.nprocs);
    for r in 0..base.nprocs as u32 {
        // File creation order is deterministic, so a warm scratch's
        // surviving file table maps rank r to FileId(r) directly.
        let file = if warm {
            FileId(r)
        } else {
            let g = plan.group_of[r as usize];
            let ost = plan.ost_of_group[g as usize];
            storage
                .fs_mut()
                .create(format!("ior-{r}.dat"), StripeSpec::Pinned(vec![ost]))
        };
        actors.push(PosixActor::new(r, Arc::clone(&plan), file));
    }
    debug_assert_eq!(storage.fs().file_count(), base.nprocs);
    let mut sim = Simulation::with_storage(Arc::clone(&base.machine), actors, seed, storage);
    apply_interference(sim.storage_mut(), &base.interference);
    install_faults(&mut sim, seed, faults);
    configure_driver(&mut sim, scratch);
    let stats = sim.run_until(base.nprocs as u64, RUN_DEADLINE);
    emit_driver_profile(&sim, seed);
    let mut errors = Vec::new();
    if sim.finish_count() < base.nprocs as u64 {
        let pending: Vec<u32> = sim
            .actors()
            .enumerate()
            .filter(|(_, a)| a.closed_at.is_none())
            .map(|(r, _)| r as u32)
            .collect();
        errors.push(SimError::Stalled {
            pending_ranks: pending,
            last_event_time: stats.end_time.as_secs_f64(),
        });
    }
    let mut records: Vec<WriteRecord> = Vec::with_capacity(base.nprocs);
    let mut full_end = SimTime::ZERO;
    for a in sim.actors() {
        if faults.is_empty() {
            assert_eq!(a.records.len(), 1, "rank failed to write");
        }
        records.extend_from_slice(&a.records);
        if let Some(t) = a.closed_at {
            full_end = full_end.max(t);
        }
    }
    if full_end == SimTime::ZERO {
        full_end = stats.end_time;
    }
    records.sort_by_key(|r| r.rank);
    let (mut outcome, account_errors) =
        timed_stats(|| account(sim.storage(), &plan.rank_bytes, &records));
    outcome.complete &= errors.is_empty();
    errors.extend(account_errors);
    let (oracle, integrity, integrity_errors) =
        timed_stats(|| integrity_account(sim.storage(), &records));
    errors.extend(integrity_errors);
    let result = OutputResult::from_partial(records, full_end.as_secs_f64());
    scratch.put_back(base, sim.into_storage());
    RunOutput {
        result,
        global_index: None,
        subfiles: None,
        protocol: None,
        errors,
        outcome,
        oracle,
        integrity,
    }
}

fn run_mpiio(base: &RunBase, seed: u64, faults: &FaultConfig, scratch: &mut RunScratch) -> RunOutput {
    assert!(
        matches!(base.data, DataSpec::Uniform(_) | DataSpec::PerRank(_)),
        "real-bytes mode requires the adaptive/stagger methods"
    );
    let (stripe_count, stripe_size, offsets) =
        base.mpiio.as_ref().expect("prepared MPI-IO layout");
    let (stripe_count, stripe_size) = (*stripe_count, *stripe_size);
    let plan = Arc::clone(&base.plan);
    let (mut storage, warm) = scratch.storage_for(base, seed);
    let file = if warm {
        FileId(0)
    } else {
        storage.create_file_with_stripe_size("shared.bp", StripeSpec::Count(stripe_count), stripe_size)
    };
    let mut actors = Vec::with_capacity(base.nprocs);
    let file_osts = &storage.fs().meta(file).osts;
    for r in 0..base.nprocs as u32 {
        let stripe_idx = (offsets[r as usize] / stripe_size) as usize % file_osts.len();
        actors.push(MpiIoActor::new(
            r,
            Arc::clone(&plan),
            file,
            offsets[r as usize],
            file_osts[stripe_idx],
        ));
    }
    let mut sim = Simulation::with_storage(Arc::clone(&base.machine), actors, seed, storage);
    apply_interference(sim.storage_mut(), &base.interference);
    install_faults(&mut sim, seed, faults);
    configure_driver(&mut sim, scratch);
    let stats = sim.run_until(base.nprocs as u64, RUN_DEADLINE);
    emit_driver_profile(&sim, seed);
    let mut errors = Vec::new();
    if sim.finish_count() < base.nprocs as u64 {
        let pending: Vec<u32> = sim
            .actors()
            .enumerate()
            .filter(|(_, a)| a.closed_at.is_none())
            .map(|(r, _)| r as u32)
            .collect();
        errors.push(SimError::Stalled {
            pending_ranks: pending,
            last_event_time: stats.end_time.as_secs_f64(),
        });
    }
    let mut records: Vec<WriteRecord> = Vec::with_capacity(base.nprocs);
    let mut full_end = SimTime::ZERO;
    for a in sim.actors() {
        if faults.is_empty() {
            assert_eq!(a.records.len(), 1, "rank failed to write");
        }
        records.extend_from_slice(&a.records);
        if let Some(t) = a.closed_at {
            full_end = full_end.max(t);
        }
    }
    if full_end == SimTime::ZERO {
        full_end = stats.end_time;
    }
    records.sort_by_key(|r| r.rank);
    let (mut outcome, account_errors) =
        timed_stats(|| account(sim.storage(), &plan.rank_bytes, &records));
    outcome.complete &= errors.is_empty();
    errors.extend(account_errors);
    let (oracle, integrity, integrity_errors) =
        timed_stats(|| integrity_account(sim.storage(), &records));
    errors.extend(integrity_errors);
    let result = OutputResult::from_partial(records, full_end.as_secs_f64());
    scratch.put_back(base, sim.into_storage());
    RunOutput {
        result,
        global_index: None,
        subfiles: None,
        protocol: None,
        errors,
        outcome,
        oracle,
        integrity,
    }
}

fn run_adaptive(
    base: &RunBase,
    seed: u64,
    mut opts: AdaptiveOpts,
    faults: &FaultConfig,
    scratch: &mut RunScratch,
) -> RunOutput {
    // Silent-corruption-only scripts never perturb timing or liveness, so
    // they compose with real-bytes data and need no hardened protocol;
    // every other fault kind forces the hardened protocol and (because the
    // retry paths re-place payloads) synthetic data.
    let silent_only =
        faults.network.is_none() && faults.kills.is_empty() && faults.storage.is_silent_only();
    if !faults.is_empty() && !silent_only {
        assert!(
            matches!(base.data, DataSpec::Uniform(_) | DataSpec::PerRank(_)),
            "fault injection supports synthetic (sizes-only) data"
        );
        // Faults without the hardened protocol would just hang; switch it
        // on (explicit knobs in `opts.fault` are respected as-is).
        opts.fault.enabled = true;
    }
    // The control loop's speculative duplicates re-place payloads the same
    // way retries do, so it is synthetic-data-only too. It does NOT force
    // fault mode: generation fencing alone covers clean-run speculation.
    if opts.control.enabled {
        assert!(
            matches!(base.data, DataSpec::Uniform(_) | DataSpec::PerRank(_)),
            "the control loop supports synthetic (sizes-only) data"
        );
    }
    let plan = Arc::clone(&base.plan);
    let opts = Rc::new(opts);
    let (real_blocks, store) = match &base.data {
        DataSpec::Real(blocks) => (
            Some(blocks.clone()),
            Some(Rc::new(RefCell::new(ObjectStore::new()))),
        ),
        _ => (None, None),
    };
    let (mut storage, warm) = scratch.storage_for(base, seed);
    let mut files = Vec::with_capacity(plan.targets);
    let gidx_file = if warm {
        // Deterministic creation order: group g → FileId(g), then the
        // global index file right after.
        for g in 0..plan.targets {
            files.push(FileId(g as u32));
        }
        FileId(plan.targets as u32)
    } else {
        for g in 0..plan.targets {
            let ost = plan.ost_of_group[g];
            files.push(
                storage
                    .fs_mut()
                    .create(format!("sub-{g}.bp"), StripeSpec::Pinned(vec![ost])),
            );
        }
        storage
            .fs_mut()
            .create("global-index.bp", StripeSpec::Pinned(vec![OstId(0)]))
    };
    debug_assert_eq!(storage.fs().file_count(), plan.targets + 1);
    let files = Rc::new(files);
    let mut actors = Vec::with_capacity(base.nprocs);
    for r in 0..base.nprocs as u32 {
        let blocks = real_blocks.as_ref().map(|b| b[r as usize].clone());
        actors.push(AdaptiveActor::new(
            r,
            Arc::clone(&plan),
            Rc::clone(&opts),
            Rc::clone(&files),
            gidx_file,
            blocks,
            store.clone(),
            0,
        ));
    }
    let mut sim = Simulation::with_storage(Arc::clone(&base.machine), actors, seed, storage);
    apply_interference(sim.storage_mut(), &base.interference);
    install_faults(&mut sim, seed, faults);
    configure_driver(&mut sim, scratch);
    // The coordinator's single finish signal marks the whole operation
    // (data + local indices + global index) durable.
    let stats = sim.run_until(1, RUN_DEADLINE);
    emit_driver_profile(&sim, seed);
    let coordinator = sim.actor(clustersim::Rank(0));
    let finished = coordinator.finished_at();
    if faults.is_empty() || silent_only {
        assert!(
            finished.is_some(),
            "adaptive protocol stalled: coordinator never finished"
        );
    }
    let global_index = coordinator.global_index().cloned();
    let max_outstanding = coordinator.max_outstanding().unwrap_or(0);
    let (spec_granted, spec_won) = coordinator.spec_stats().unwrap_or((0, 0));
    let mut errors = Vec::new();
    if finished.is_none() {
        let mut pending: Vec<u32> = sim
            .actors()
            .enumerate()
            .filter(|(_, a)| a.records.is_empty())
            .map(|(r, _)| r as u32)
            .collect();
        if pending.is_empty() {
            pending.push(0); // everyone wrote; the coordinator wrap-up hung
        }
        errors.push(SimError::Stalled {
            pending_ranks: pending,
            last_event_time: stats.end_time.as_secs_f64(),
        });
    }
    let full_end = finished.unwrap_or(stats.end_time);
    let mut records: Vec<WriteRecord> = Vec::with_capacity(base.nprocs);
    let mut total_messages = 0u64;
    let mut busiest = 0u64;
    let mut coordinator_inbox = 0u64;
    let mut bytes_rewritten = 0u64;
    for a in sim.actors() {
        if faults.is_empty() || silent_only {
            assert_eq!(a.records.len(), 1, "rank failed to write exactly once");
        }
        records.extend_from_slice(&a.records);
        let s: MsgStats = a.msg_stats;
        total_messages += s.total();
        busiest = busiest.max(s.total());
        coordinator_inbox += s.coordinator_inbox;
        bytes_rewritten += a.rewritten_bytes;
    }
    records.sort_by_key(|r| r.rank);
    let protocol = Some(ProtocolStats {
        coordinator_inbox,
        max_outstanding_adaptive: max_outstanding,
        total_messages,
        busiest_rank_inbox: busiest,
        spec_granted,
        spec_won,
        bytes_rewritten,
        bytes_reconstructed: 0,
    });
    let (mut outcome, account_errors) =
        timed_stats(|| account(sim.storage(), &plan.rank_bytes, &records));
    outcome.complete &= errors.is_empty();
    errors.extend(account_errors);
    let (oracle, integrity, integrity_errors) =
        timed_stats(|| integrity_account(sim.storage(), &records));
    errors.extend(integrity_errors);
    scratch.put_back(base, sim.into_storage());
    // Materialise subfile bytes for read-back verification.
    let mut subfiles = store.map(|store| {
        let store = store.borrow();
        let mut out = HashMap::new();
        for (g, &f) in files.iter().enumerate() {
            let size = store.size(f);
            if size > 0 {
                let bytes = store.get(f, 0, size).expect("full file readable").to_vec();
                out.insert(format!("sub-{g}.bp"), bytes);
            }
        }
        out
    });
    // Real-bytes runs: make the oracle's silent damage real — flip one
    // seeded bit inside the payload region of every corrupted record, so
    // verify-on-read genuinely has something to catch.
    if let Some(subfiles) = subfiles.as_mut() {
        for r in &records {
            if !oracle.write_corrupted(r.ost, r.end) {
                continue;
            }
            let Some(g) = files.iter().position(|&f| f == r.file) else {
                continue;
            };
            if let Some(bytes) = subfiles.get_mut(&format!("sub-{g}.bp")) {
                // The last byte of a PG region belongs to its final
                // block's payload; pick the flipped bit from the seed so
                // distinct runs damage distinct bits.
                let at = (r.offset + r.bytes - 1) as usize;
                if at < bytes.len() {
                    let bit = (seed ^ u64::from(r.rank) ^ r.offset) % 8;
                    bytes[at] ^= 1 << bit;
                }
            }
        }
    }
    let result = OutputResult::from_partial(records, full_end.as_secs_f64());
    RunOutput {
        result,
        global_index,
        subfiles,
        protocol,
        errors,
        outcome,
        oracle,
        integrity,
    }
}
