//! Fault configuration and structured failure results for runs.
//!
//! The paper treats storage-target slowdowns as the common case; this
//! module extends the reproduction to outright failures: scheduled OST
//! deaths and stalls ([`storesim::FaultScript`]), a lossy message layer
//! (duplication and delay via [`clustersim::FaultPlane`]) and rank kills.
//! [`crate::runner::run_with_faults`] drives a run under a
//! [`FaultConfig`] and reports what happened through [`WriteOutcome`] and
//! [`SimError`] instead of panicking or hanging.

use storesim::FaultScript;

/// Message-layer fault probabilities applied to every link.
///
/// Drops are deliberately not exposed: the adaptive protocol tolerates
/// duplicated and delayed control traffic end-to-end, while a dropped
/// message surfaces as a [`SimError::Stalled`] watchdog report — the
/// honest outcome for an unacknowledged transport.
#[derive(Clone, Copy, Debug)]
pub struct NetFaults {
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message is delayed beyond the base network cost.
    pub delay_p: f64,
    /// Mean of the exponential extra delay, seconds.
    pub delay_mean_secs: f64,
}

/// Everything that can go wrong during one run, scheduled up front.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Storage-side faults (brownouts, OST failures, MDS outages).
    pub storage: FaultScript,
    /// Message-layer faults (duplication, delay), if any.
    pub network: Option<NetFaults>,
    /// Rank kills: `(at_secs, rank)` — the rank stops receiving messages,
    /// timers and IO completions from that time on.
    pub kills: Vec<(f64, u32)>,
}

impl FaultConfig {
    /// A configuration with no faults at all.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// True when no fault of any kind is scheduled.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty() && self.network.is_none() && self.kills.is_empty()
    }
}

/// Fault-tolerance knobs of the adaptive protocol (all inert unless
/// `enabled`; the default keeps the protocol byte-identical to the
/// fault-unaware implementation).
#[derive(Clone, Copy, Debug)]
pub struct FaultTolerance {
    /// Master switch. Off ⇒ no timers, no extra messages, no guards.
    pub enabled: bool,
    /// Per-attempt write timeout in seconds; `0.0` picks an automatic
    /// value of `30 + bytes / 0.5 MiB/s` (generous enough that healthy
    /// contended writes never trip it on the testbed machines).
    pub write_timeout_secs: f64,
    /// Write attempts before the writer reports `WriteFailed` to its
    /// sub-coordinator (first try + retries).
    pub max_retries: u32,
    /// Base of the exponential retry backoff, seconds
    /// (`base · 2^(attempt-1)`).
    pub backoff_base_secs: f64,
    /// Coordinator → sub-coordinator liveness ping interval, seconds.
    pub ping_interval_secs: f64,
    /// How long a freshly promoted sub-coordinator waits for member
    /// status reports before declaring non-reporters dead, seconds.
    pub adopt_timeout_secs: f64,
    /// Sub-coordinator sweep interval for reaping members whose assigned
    /// write never completed nor failed (dead writers), seconds.
    pub sweep_interval_secs: f64,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance {
            enabled: false,
            write_timeout_secs: 0.0,
            max_retries: 3,
            backoff_base_secs: 0.5,
            ping_interval_secs: 5.0,
            adopt_timeout_secs: 50.0,
            sweep_interval_secs: 20.0,
        }
    }
}

impl FaultTolerance {
    /// The default knobs with the master switch on.
    pub fn enabled() -> Self {
        FaultTolerance {
            enabled: true,
            ..Default::default()
        }
    }

    /// Effective per-attempt timeout for a write of `bytes`.
    pub fn timeout_for(&self, bytes: u64) -> f64 {
        if self.write_timeout_secs > 0.0 {
            self.write_timeout_secs
        } else {
            30.0 + bytes as f64 / (512.0 * 1024.0)
        }
    }

    /// Exponential backoff delay after `failures` failed attempts
    /// (`base · 2^(failures−1)`).
    pub fn backoff_secs(&self, failures: u32) -> f64 {
        self.backoff_base_secs * f64::powi(2.0, failures as i32 - 1)
    }

    /// How long a write of `bytes` may stay silent before its writer is
    /// declared dead: worst case all attempts time out, plus the full
    /// backoff chain, plus generous message slack.
    pub fn retry_budget_secs(&self, bytes: u64) -> f64 {
        self.max_retries.max(1) as f64 * self.timeout_for(bytes)
            + self.backoff_base_secs * f64::powi(2.0, self.max_retries as i32)
            + 30.0
    }
}

/// A structured failure observed during a run — surfaced in
/// [`crate::runner::RunOutput::errors`] instead of a panic or hang.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The run hit its deadline or ran out of events before every rank
    /// (or the coordinator) finished.
    Stalled {
        /// Ranks that never signalled completion.
        pending_ranks: Vec<u32>,
        /// Simulated time of the last processed event, seconds.
        last_event_time: f64,
    },
    /// A rank produced no durable write (its data never reached storage).
    RankFailed {
        /// The failing rank.
        rank: u32,
        /// Bytes it was supposed to write.
        bytes_lost: u64,
    },
    /// A rank's write completed but the data was later destroyed by a
    /// storage-target failure (error-mode OST death after the write).
    DataLost {
        /// The writing rank.
        rank: u32,
        /// The storage target that failed.
        ost: usize,
        /// Bytes destroyed.
        bytes: u64,
    },
    /// A rank's write completed and survived, but the stored bytes are
    /// silently corrupted (bit-flips below the checksum layer). Invisible
    /// without verify-on-read — this error is produced from the fault
    /// injector's corruption oracle, never from timing.
    DataCorrupted {
        /// The writing rank.
        rank: u32,
        /// The storage target holding the bad block.
        ost: usize,
        /// Bytes of the corrupted write.
        bytes: u64,
    },
    /// A redundancy group lost more extents than its policy tolerates:
    /// fewer than `need` of its shards survive, so reconstruction is
    /// impossible and the object's bytes are gone for good. Reported
    /// loudly instead of returning garbage.
    Unrecoverable {
        /// The writing rank whose object is unrecoverable.
        rank: u32,
        /// Surviving shard count.
        have: usize,
        /// Shards required to reconstruct (`k` for `Ec{k,m}`, 1 for
        /// replication).
        need: usize,
        /// Payload bytes lost.
        bytes: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                pending_ranks,
                last_event_time,
            } => write!(
                f,
                "run stalled at t={last_event_time:.3}s with {} rank(s) pending: {:?}",
                pending_ranks.len(),
                &pending_ranks[..pending_ranks.len().min(8)]
            ),
            SimError::RankFailed { rank, bytes_lost } => {
                write!(f, "rank {rank} failed to write {bytes_lost} bytes")
            }
            SimError::DataLost { rank, ost, bytes } => {
                write!(f, "rank {rank} lost {bytes} bytes to failed OST {ost}")
            }
            SimError::DataCorrupted { rank, ost, bytes } => {
                write!(
                    f,
                    "rank {rank}: {bytes} bytes silently corrupted on OST {ost}"
                )
            }
            SimError::Unrecoverable {
                rank,
                have,
                need,
                bytes,
            } => write!(
                f,
                "rank {rank}: {bytes} bytes unrecoverable ({have} shards survive, {need} needed)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Byte-level accounting of one run under faults. Always satisfies
/// `written_bytes + lost_bytes == total_bytes`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Bytes the workload intended to write (sum over ranks).
    pub total_bytes: u64,
    /// Bytes durably written and still present at run end.
    pub written_bytes: u64,
    /// Bytes never written or destroyed by failures.
    pub lost_bytes: u64,
    /// True when every byte landed and every rank finished cleanly.
    pub complete: bool,
}

impl WriteOutcome {
    /// An all-clear outcome for `total` bytes.
    pub fn complete(total: u64) -> Self {
        WriteOutcome {
            total_bytes: total,
            written_bytes: total,
            lost_bytes: 0,
            complete: true,
        }
    }
}

/// Integrity accounting of one run: how much of the surviving data is
/// silently damaged, according to the fault injector's corruption oracle.
/// `oracle_events` counts every corrupted storage write (index and
/// metadata writes included); `corrupt_records`/`corrupt_bytes` count
/// only the data writes that appear in the run's write records — the
/// blocks a verify-on-read or scrub pass must catch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityOutcome {
    /// Corrupted storage writes recorded by the oracle (all kinds).
    pub oracle_events: usize,
    /// Data-write records whose stored bytes are corrupt.
    pub corrupt_records: usize,
    /// Bytes covered by those corrupt records.
    pub corrupt_bytes: u64,
}

impl IntegrityOutcome {
    /// True when the oracle recorded no damage at all.
    pub fn clean(&self) -> bool {
        self.oracle_events == 0 && self.corrupt_records == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_is_empty() {
        assert!(FaultConfig::none().is_empty());
        let cfg = FaultConfig {
            kills: vec![(1.0, 3)],
            ..Default::default()
        };
        assert!(!cfg.is_empty());
    }

    #[test]
    fn default_tolerance_is_inert() {
        assert!(!FaultTolerance::default().enabled);
        assert!(FaultTolerance::enabled().enabled);
    }

    #[test]
    fn auto_timeout_scales_with_bytes() {
        let ft = FaultTolerance::default();
        let small = ft.timeout_for(1024);
        let big = ft.timeout_for(512 * 1024 * 1024);
        assert!(small >= 30.0);
        assert!(big > small + 100.0);
        let fixed = FaultTolerance {
            write_timeout_secs: 2.0,
            ..FaultTolerance::default()
        };
        assert_eq!(fixed.timeout_for(u64::MAX), 2.0);
    }

    #[test]
    fn backoff_doubles_and_budget_covers_all_attempts() {
        let ft = FaultTolerance::default();
        assert_eq!(ft.backoff_secs(1), 0.5);
        assert_eq!(ft.backoff_secs(2), 1.0);
        assert_eq!(ft.backoff_secs(3), 2.0);
        let budget = ft.retry_budget_secs(1024);
        let mut worst = 30.0; // message slack
        for failures in 1..=ft.max_retries {
            worst += ft.timeout_for(1024) + ft.backoff_secs(failures);
        }
        assert!(budget >= worst);
    }

    #[test]
    fn sim_error_display_is_compact() {
        let e = SimError::Stalled {
            pending_ranks: (0..20).collect(),
            last_event_time: 1.5,
        };
        let s = format!("{e}");
        assert!(s.contains("20 rank(s)"));
        assert!(!s.contains("19"), "display truncates the rank list");
    }
}
