//! Output planning: who writes what, to which target, under which
//! sub-coordinator.
//!
//! The adaptive method's organisation (paper Fig. 4): ranks are split into
//! contiguous groups, one group per output file, one file pinned per
//! storage target; the first rank of each group doubles as the
//! sub-coordinator (SC); rank 0 additionally plays the coordinator (C).
//! Contiguity matters because ranks are placed sequentially on cores, so a
//! group shares nodes and its intra-group traffic stays cheap (§III-B).

use clustersim::topology::contiguous_groups;
use clustersim::Rank;
use storesim::layout::OstId;

/// The static plan for one collective output operation.
#[derive(Clone, Debug)]
pub struct OutputPlan {
    /// Total ranks participating.
    pub nprocs: usize,
    /// Number of groups == output files == storage targets used.
    pub targets: usize,
    /// Bytes each rank contributes (weak scaling ⇒ all equal, but the
    /// protocol supports heterogeneous sizes).
    pub rank_bytes: Vec<u64>,
    /// Group membership as contiguous rank ranges.
    pub groups: Vec<std::ops::Range<u32>>,
    /// Group index of each rank.
    pub group_of: Vec<u32>,
    /// Storage target of each group's file.
    pub ost_of_group: Vec<OstId>,
}

impl OutputPlan {
    /// Build a plan: `nprocs` ranks over `targets` files/OSTs on a machine
    /// with `ost_count` targets. If there are fewer ranks than requested
    /// targets, the plan shrinks to one rank per group.
    pub fn new(nprocs: usize, targets: usize, ost_count: usize, rank_bytes: Vec<u64>) -> Self {
        assert_eq!(rank_bytes.len(), nprocs);
        assert!(nprocs > 0 && targets > 0);
        let targets = targets.min(nprocs).min(ost_count);
        let groups = contiguous_groups(nprocs, targets);
        let mut group_of = vec![0u32; nprocs];
        for (g, r) in groups.iter().enumerate() {
            for rank in r.clone() {
                group_of[rank as usize] = g as u32;
            }
        }
        let ost_of_group = (0..targets).map(|g| OstId(g % ost_count)).collect();
        OutputPlan {
            nprocs,
            targets,
            rank_bytes,
            groups,
            group_of,
            ost_of_group,
        }
    }

    /// Uniform weak-scaling plan: every rank writes `bytes_per_rank`.
    pub fn uniform(nprocs: usize, targets: usize, ost_count: usize, bytes_per_rank: u64) -> Self {
        Self::new(nprocs, targets, ost_count, vec![bytes_per_rank; nprocs])
    }

    /// Sub-coordinator rank of a group (its first member).
    pub fn sc_of(&self, group: u32) -> Rank {
        Rank(self.groups[group as usize].start)
    }

    /// The coordinator rank (rank 0 — also SC of group 0 and a writer).
    pub fn coordinator(&self) -> Rank {
        Rank(0)
    }

    /// Is this rank a sub-coordinator?
    pub fn is_sc(&self, rank: Rank) -> bool {
        let g = self.group_of[rank.0 as usize];
        self.sc_of(g) == rank
    }

    /// Members of a group in rank order.
    pub fn members(&self, group: u32) -> impl Iterator<Item = Rank> + '_ {
        self.groups[group as usize].clone().map(Rank)
    }

    /// Total bytes across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.rank_bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_shapes() {
        let p = OutputPlan::uniform(16, 4, 8, 1024);
        assert_eq!(p.targets, 4);
        assert_eq!(p.groups.len(), 4);
        assert_eq!(p.sc_of(0), Rank(0));
        assert_eq!(p.sc_of(1), Rank(4));
        assert!(p.is_sc(Rank(0)));
        assert!(p.is_sc(Rank(4)));
        assert!(!p.is_sc(Rank(5)));
        assert_eq!(p.coordinator(), Rank(0));
        assert_eq!(p.total_bytes(), 16 * 1024);
    }

    #[test]
    fn targets_clamp_to_ranks_and_osts() {
        let p = OutputPlan::uniform(3, 512, 8, 1);
        assert_eq!(p.targets, 3, "no empty groups");
        let p = OutputPlan::uniform(100, 512, 8, 1);
        assert_eq!(p.targets, 8, "no more targets than OSTs");
    }

    #[test]
    fn group_of_is_consistent() {
        let p = OutputPlan::uniform(17, 4, 16, 1);
        for g in 0..p.targets as u32 {
            for r in p.members(g) {
                assert_eq!(p.group_of[r.0 as usize], g);
            }
        }
    }

    #[test]
    fn ost_assignment_wraps() {
        let p = OutputPlan::uniform(32, 16, 8, 1);
        assert_eq!(p.targets, 8);
        assert_eq!(p.ost_of_group[7], OstId(7));
    }

    #[test]
    fn heterogeneous_sizes_kept() {
        let sizes: Vec<u64> = (1..=8).collect();
        let p = OutputPlan::new(8, 2, 8, sizes.clone());
        assert_eq!(p.rank_bytes, sizes);
        assert_eq!(p.total_bytes(), 36);
    }
}
