//! Restart-style read-back: the consumer side of an output set.
//!
//! The paper's §V (PLFS discussion) raises the question whether
//! log-structured many-file layouts hurt restart reads; §IV-C argues
//! the global index keeps reads a single lookup plus a direct read. This
//! module measures that on the simulated timeline: a set of reader ranks
//! (a restarting simulation, or an analysis cluster) opens the subfiles
//! and reads every data block through the index layout produced by a
//! previous write.

use std::rc::Rc;

use clustersim::{Actor, Ctx, IoComplete, Rank, Simulation};
use simcore::SimTime;
use storesim::layout::{FileId, OstId, StripeSpec};
use storesim::system::CompletionKind;
use storesim::{CorruptionOracle, MachineConfig};

use crate::fault::{FaultConfig, SimError};
use crate::record::WriteRecord;

const TAG_OPEN: u32 = 1;
const TAG_READ: u32 = 2;
const TAG_CLOSE: u32 = 3;

/// Where one block of a previous output lives.
#[derive(Clone, Copy, Debug)]
pub struct BlockLocation {
    /// Subfile index (0..files).
    pub file_slot: u32,
    /// Byte offset of the block.
    pub offset: u64,
    /// Block length.
    pub len: u64,
    /// Target backing the subfile (for file re-creation).
    pub ost: OstId,
    /// When the block was written — the key the corruption oracle uses.
    pub written_at: SimTime,
    /// The rank that wrote it (for structured error reports).
    pub rank: u32,
}

/// The read plan: which reader fetches which blocks.
#[derive(Clone, Debug)]
pub struct ReadPlan {
    /// Per-reader block lists.
    pub per_reader: Vec<Vec<BlockLocation>>,
    /// Distinct subfiles: slot -> OST.
    pub files: Vec<OstId>,
}

impl ReadPlan {
    /// Build from a previous run's write records, fanning blocks out over
    /// `readers` ranks round-robin — the paper's restart read ("all of
    /// the data").
    pub fn from_records(records: &[WriteRecord], readers: usize) -> Self {
        assert!(readers > 0 && !records.is_empty());
        // Map the write run's FileIds onto dense slots.
        let mut files: Vec<(FileId, OstId)> = Vec::new();
        let mut slot_of = std::collections::HashMap::new();
        for r in records {
            slot_of.entry(r.file).or_insert_with(|| {
                files.push((r.file, r.ost));
                (files.len() - 1) as u32
            });
        }
        let mut per_reader: Vec<Vec<BlockLocation>> = vec![Vec::new(); readers];
        for (i, r) in records.iter().enumerate() {
            per_reader[i % readers].push(BlockLocation {
                file_slot: slot_of[&r.file],
                offset: r.offset,
                len: r.bytes,
                ost: r.ost,
                written_at: r.end,
                rank: r.rank,
            });
        }
        ReadPlan {
            per_reader,
            files: files.into_iter().map(|(_, o)| o).collect(),
        }
    }

    /// Total bytes the plan reads.
    pub fn total_bytes(&self) -> u64 {
        self.per_reader
            .iter()
            .flat_map(|blocks| blocks.iter().map(|b| b.len))
            .sum()
    }

    /// Total blocks the plan reads.
    pub fn total_blocks(&self) -> usize {
        self.per_reader.iter().map(Vec::len).sum()
    }
}

/// One reader rank: open, fetch my blocks one at a time (index lookup +
/// direct read), close.
struct ReadActor {
    blocks: Rc<Vec<BlockLocation>>,
    files: Rc<Vec<FileId>>,
    next: usize,
    me: u32,
    started: Option<SimTime>,
    /// (start, end, bytes) of this rank's whole read phase.
    pub span: Option<(SimTime, SimTime, u64)>,
    read_bytes: u64,
    closed: bool,
    /// Per-block completion flags (true = the read came back clean).
    pub done_ok: Vec<bool>,
}

impl ReadActor {
    fn issue_next(&mut self, ctx: &mut Ctx<'_, ()>) {
        if self.next >= self.blocks.len() {
            ctx.close(TAG_CLOSE);
            return;
        }
        let b = self.blocks[self.next];
        self.next += 1;
        ctx.read_file(self.files[b.file_slot as usize], b.offset, b.len, TAG_READ);
    }
}

impl Actor for ReadActor {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.open(TAG_OPEN);
    }

    fn on_message(&mut self, _f: Rank, _m: (), _c: &mut Ctx<'_, ()>) {}

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, ()>) {
        match (done.tag, done.kind) {
            (TAG_OPEN, CompletionKind::Open) => {
                self.started = Some(ctx.now());
                self.issue_next(ctx);
            }
            (TAG_READ, CompletionKind::Read) => {
                // `next` already points one past the block this completes.
                if !done.error {
                    self.read_bytes += done.bytes;
                    self.done_ok[self.next - 1] = true;
                }
                self.span = Some((
                    self.started.expect("read phase started"),
                    done.finished,
                    self.read_bytes,
                ));
                self.issue_next(ctx);
            }
            (TAG_CLOSE, CompletionKind::Close) => {
                self.closed = true;
                ctx.finish();
            }
            other => panic!("unexpected IO completion for reader {}: {other:?}", self.me),
        }
    }
}

/// Per-block integrity accounting of a read or scrub pass. The four
/// counters partition the blocks examined, so
/// `verified + corrupt + repaired + unread == total()` by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Blocks read back clean (checksum matches, oracle agrees).
    pub verified: usize,
    /// Blocks whose stored bytes are corrupt and were *not* repaired.
    pub corrupt: usize,
    /// Blocks found corrupt and successfully rewritten (scrub only).
    pub repaired: usize,
    /// Blocks that could not be read at all (dead target, stall).
    pub unread: usize,
}

impl ReadOutcome {
    /// Total blocks examined.
    pub fn total(&self) -> usize {
        self.verified + self.corrupt + self.repaired + self.unread
    }

    /// True when every block was read and verified clean.
    pub fn clean(&self) -> bool {
        self.corrupt == 0 && self.repaired == 0 && self.unread == 0
    }
}

/// Result of a restart read.
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// Per-reader (start, end, bytes).
    pub per_reader: Vec<(SimTime, SimTime, u64)>,
    /// Total bytes read.
    pub total_bytes: u64,
}

impl ReadResult {
    /// Aggregate read bandwidth over the full span, bytes/sec.
    pub fn aggregate_bandwidth(&self) -> f64 {
        let start = self.per_reader.iter().map(|&(s, _, _)| s).min().expect("readers");
        let end = self.per_reader.iter().map(|&(_, e, _)| e).max().expect("readers");
        self.total_bytes as f64 / (end - start).as_secs_f64()
    }
}

/// A fault-aware restart read: timings plus integrity accounting.
#[derive(Clone, Debug)]
pub struct ReadRun {
    /// The timing result (same shape as the fault-free read).
    pub result: ReadResult,
    /// Per-block integrity accounting.
    pub outcome: ReadOutcome,
    /// Structured failures (stalls, unread/corrupt blocks).
    pub errors: Vec<SimError>,
}

/// Execute a restart read of `plan` on `machine` (fault-free; panics if
/// the read stalls, which cannot happen without faults).
pub fn run_restart_read(machine: &MachineConfig, plan: &ReadPlan, seed: u64) -> ReadResult {
    let run = run_restart_read_with(machine, plan, seed, &FaultConfig::none(), None);
    assert!(run.errors.is_empty(), "fault-free restart read failed");
    run.result
}

/// Execute a restart read of `plan` on `machine` under `faults`, checking
/// each block against the writing run's corruption `oracle` (verify-on-
/// read). Instead of panicking, stalls surface as [`SimError::Stalled`]
/// and unreadable blocks are counted in the outcome.
pub fn run_restart_read_with(
    machine: &MachineConfig,
    plan: &ReadPlan,
    seed: u64,
    faults: &FaultConfig,
    oracle: Option<&CorruptionOracle>,
) -> ReadRun {
    let mut storage = storesim::StorageSystem::new(machine.clone(), seed);
    // Recreate the subfiles with their original placement, sized by the
    // plan (the data itself is simulated).
    let files: Vec<FileId> = plan
        .files
        .iter()
        .enumerate()
        .map(|(slot, &ost)| {
            storage
                .fs_mut()
                .create(format!("restart-sub-{slot}.bp"), StripeSpec::Pinned(vec![ost]))
        })
        .collect();
    let files = Rc::new(files);
    let actors: Vec<ReadActor> = plan
        .per_reader
        .iter()
        .enumerate()
        .map(|(i, blocks)| ReadActor {
            done_ok: vec![false; blocks.len()],
            blocks: Rc::new(blocks.clone()),
            files: Rc::clone(&files),
            next: 0,
            me: i as u32,
            started: None,
            span: None,
            read_bytes: 0,
            closed: false,
        })
        .collect();
    let readers = actors.len() as u64;
    let mut sim = Simulation::with_storage(machine.clone(), actors, seed, storage);
    crate::runner::install_faults(&mut sim, seed, faults);
    let stats = sim.run_until(readers, SimTime::from_secs_f64(1e6));
    let mut errors = Vec::new();
    if sim.finish_count() < readers {
        let pending: Vec<u32> = sim
            .actors()
            .enumerate()
            .filter(|(_, a)| !a.closed)
            .map(|(r, _)| r as u32)
            .collect();
        errors.push(SimError::Stalled {
            pending_ranks: pending,
            last_event_time: stats.end_time.as_secs_f64(),
        });
    }
    let mut outcome = ReadOutcome::default();
    for a in sim.actors() {
        for (b, &ok) in a.blocks.iter().zip(&a.done_ok) {
            if !ok {
                outcome.unread += 1;
            } else if oracle.is_some_and(|o| o.write_corrupted(b.ost, b.written_at)) {
                outcome.corrupt += 1;
                errors.push(SimError::DataCorrupted {
                    rank: b.rank,
                    ost: b.ost.0,
                    bytes: b.len,
                });
            } else {
                outcome.verified += 1;
            }
        }
    }
    let per_reader: Vec<(SimTime, SimTime, u64)> = sim
        .actors()
        .map(|a| a.span.unwrap_or((SimTime::ZERO, SimTime::ZERO, 0)))
        .collect();
    let total_bytes = per_reader.iter().map(|&(_, _, b)| b).sum();
    ReadRun {
        result: ReadResult {
            per_reader,
            total_bytes,
        },
        outcome,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, DataSpec, Interference, Method, RunSpec};
    use crate::AdaptiveOpts;
    use simcore::units::MIB;
    use storesim::params::testbed;

    fn write_then_plan(readers: usize) -> (ReadPlan, u64) {
        let out = run(RunSpec {
            machine: testbed(),
            nprocs: 16,
            data: DataSpec::Uniform(4 * MIB),
            method: Method::Adaptive {
                targets: 4,
                opts: AdaptiveOpts::default(),
            },
            interference: Interference::None,
            seed: 3,
        });
        let total = out.result.total_bytes;
        (ReadPlan::from_records(&out.result.records, readers), total)
    }

    #[test]
    fn plan_covers_all_blocks() {
        let (plan, total) = write_then_plan(4);
        assert_eq!(plan.total_bytes(), total);
        let n_blocks: usize = plan.per_reader.iter().map(|b| b.len()).sum();
        assert_eq!(n_blocks, 16);
        assert!(plan.files.len() <= 5, "subfiles + global index file");
    }

    #[test]
    fn restart_read_completes_and_reads_everything() {
        let (plan, total) = write_then_plan(4);
        let res = run_restart_read(&testbed(), &plan, 7);
        assert_eq!(res.total_bytes, total);
        assert!(res.aggregate_bandwidth() > 0.0);
        assert_eq!(res.per_reader.len(), 4);
    }

    #[test]
    fn single_reader_restart_works() {
        let (plan, total) = write_then_plan(1);
        let res = run_restart_read(&testbed(), &plan, 9);
        assert_eq!(res.total_bytes, total);
    }

    #[test]
    fn more_readers_speed_up_the_restart() {
        let (plan1, _) = write_then_plan(1);
        let (plan8, _) = write_then_plan(8);
        let slow = run_restart_read(&testbed(), &plan1, 11);
        let fast = run_restart_read(&testbed(), &plan8, 11);
        assert!(
            fast.aggregate_bandwidth() > 2.0 * slow.aggregate_bandwidth(),
            "parallel restart should scale: {} vs {}",
            slow.aggregate_bandwidth(),
            fast.aggregate_bandwidth()
        );
    }

    #[test]
    fn read_plan_is_deterministic() {
        let (a, _) = write_then_plan(3);
        let (b, _) = write_then_plan(3);
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.files.len(), b.files.len());
    }
}
