//! Measurement records and aggregated results for one output operation.
//!
//! Following the paper's methodology: "the times reported only include the
//! actual write, flush, and file close operations to remove the
//! variability due to the metadata server" (§IV). Records keep every
//! phase; the aggregate result reports the write phase the way the paper
//! does.

use simcore::SimTime;
use storesim::layout::{FileId, OstId};

/// One completed data write by one rank.
#[derive(Clone, Copy, Debug)]
pub struct WriteRecord {
    /// Writing rank.
    pub rank: u32,
    /// Bytes written.
    pub bytes: u64,
    /// Write start (assignment receipt / submission).
    pub start: SimTime,
    /// Write completion.
    pub end: SimTime,
    /// Target storage target.
    pub ost: OstId,
    /// Target file.
    pub file: FileId,
    /// Byte offset within the target file.
    pub offset: u64,
    /// Whether this was an adaptively diverted write.
    pub adaptive: bool,
}

impl WriteRecord {
    /// Elapsed write time in seconds.
    pub fn elapsed(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }
}

/// Aggregated outcome of one collective output.
#[derive(Clone, Debug)]
pub struct OutputResult {
    /// Per-write records, in rank order (then by completion for ranks with
    /// several writes).
    pub records: Vec<WriteRecord>,
    /// Total bytes written (data only, indices excluded).
    pub total_bytes: u64,
    /// Earliest write start.
    pub start: SimTime,
    /// Latest write end — overall write time is set by the slowest writer
    /// (§II-2).
    pub end: SimTime,
    /// Number of adaptive (work-shifted) writes.
    pub adaptive_writes: usize,
    /// Wall time of the complete operation including index/metadata
    /// wrap-up (for comparisons the paper excludes).
    pub full_span: f64,
}

impl OutputResult {
    /// Build from records (panics if empty — an output with no writes is a
    /// harness bug).
    pub fn from_records(records: Vec<WriteRecord>, full_span: f64) -> Self {
        assert!(!records.is_empty(), "no write records");
        let total_bytes = records.iter().map(|r| r.bytes).sum();
        let start = records.iter().map(|r| r.start).min().expect("non-empty");
        let end = records.iter().map(|r| r.end).max().expect("non-empty");
        let adaptive_writes = records.iter().filter(|r| r.adaptive).count();
        OutputResult {
            records,
            total_bytes,
            start,
            end,
            adaptive_writes,
            full_span,
        }
    }

    /// Build from possibly-incomplete records (fault-injected runs): an
    /// empty record set yields a zeroed result instead of panicking.
    pub fn from_partial(records: Vec<WriteRecord>, full_span: f64) -> Self {
        if records.is_empty() {
            return OutputResult {
                records,
                total_bytes: 0,
                start: SimTime::ZERO,
                end: SimTime::ZERO,
                adaptive_writes: 0,
                full_span,
            };
        }
        Self::from_records(records, full_span)
    }

    /// The paper's measured span: first write start to last write end.
    pub fn write_span(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }

    /// Aggregate bandwidth over the write span, bytes/sec.
    pub fn aggregate_bandwidth(&self) -> f64 {
        let s = self.write_span();
        assert!(s > 0.0, "zero write span");
        self.total_bytes as f64 / s
    }

    /// Per-writer elapsed times in seconds (one entry per record).
    pub fn per_writer_times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.elapsed()).collect()
    }

    /// Per-writer achieved bandwidths, bytes/sec.
    pub fn per_writer_bandwidths(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.bytes as f64 / r.elapsed())
            .collect()
    }

    /// Imbalance factor of this action (slowest / fastest write time).
    pub fn imbalance_factor(&self) -> f64 {
        iostats::imbalance_factor(&self.per_writer_times())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, start: f64, end: f64, bytes: u64, adaptive: bool) -> WriteRecord {
        WriteRecord {
            rank,
            bytes,
            start: SimTime::from_secs_f64(start),
            end: SimTime::from_secs_f64(end),
            ost: OstId(0),
            file: FileId(0),
            offset: 0,
            adaptive,
        }
    }

    #[test]
    fn aggregation() {
        let r = OutputResult::from_records(
            vec![
                rec(0, 0.0, 2.0, 100, false),
                rec(1, 0.5, 4.0, 100, true),
            ],
            5.0,
        );
        assert_eq!(r.total_bytes, 200);
        assert_eq!(r.write_span(), 4.0);
        assert_eq!(r.aggregate_bandwidth(), 50.0);
        assert_eq!(r.adaptive_writes, 1);
        assert_eq!(r.per_writer_times(), vec![2.0, 3.5]);
    }

    #[test]
    fn imbalance() {
        let r = OutputResult::from_records(
            vec![rec(0, 0.0, 1.0, 1, false), rec(1, 0.0, 3.0, 1, false)],
            3.0,
        );
        assert!((r.imbalance_factor() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn per_writer_bandwidths() {
        let r = OutputResult::from_records(vec![rec(0, 0.0, 2.0, 100, false)], 2.0);
        assert_eq!(r.per_writer_bandwidths(), vec![50.0]);
    }

    #[test]
    #[should_panic(expected = "no write records")]
    fn empty_records_panic() {
        OutputResult::from_records(vec![], 0.0);
    }
}
