//! The MPI-IO (ADIOS base transport) baseline — paper §III-A.
//!
//! One shared file for all ranks, striped over at most 160 targets (the
//! Lustre 1.6 single-file limit the paper calls out as a 28 GB/s
//! structural ceiling). Following the tuned ADIOS MPI method, the stripe
//! width is set to the per-rank buffer size so each rank's region maps to
//! exactly one target. Output is fully buffered; ranks agree on offsets
//! with an `MPI_Scan`-style exchange (modelled as a log₂(n) message-hop
//! delay) and then all write **concurrently** — at scale this means
//! `n / stripe_count` simultaneous streams per target, which is the
//! internal interference the adaptive method avoids.

use std::sync::Arc;

use clustersim::topology::log2_ceil;
use clustersim::{Actor, Ctx, IoComplete, Rank};
use simcore::SimTime;
use storesim::layout::{FileId, OstId};
use storesim::system::CompletionKind;

use crate::plan::OutputPlan;
use crate::posix::BarrierMsg;
use crate::record::WriteRecord;

const TAG_OPEN: u32 = 1;
const TAG_WRITE: u32 = 2;
const TAG_CLOSE: u32 = 3;
const TIMER_SCAN: u64 = 1;

/// One rank of the MPI-IO baseline.
pub struct MpiIoActor {
    plan: Arc<OutputPlan>,
    /// The shared striped file.
    file: FileId,
    /// Precomputed byte offset of this rank within the shared file
    /// (prefix sum over rank sizes, stripe-aligned).
    offset: u64,
    /// The target this rank's region lands on (for records).
    ost: OstId,
    me: u32,
    write_started: Option<SimTime>,
    /// Barrier arrivals seen (rank 0 only).
    arrivals: usize,
    /// Per-rank arrival dedup (rank 0 only) — a faulty network may
    /// duplicate `Arrive` messages.
    arrived: Vec<bool>,
    /// The scan timer was scheduled; duplicated `Go` messages are ignored.
    scan_scheduled: bool,
    /// Completed writes.
    pub records: Vec<WriteRecord>,
    /// Set when the close completes.
    pub closed_at: Option<SimTime>,
}

impl MpiIoActor {
    /// Build the actor for `rank`; `offset` comes from
    /// [`stripe_aligned_offsets`] and `ost` from the file's stripe map.
    pub fn new(rank: u32, plan: Arc<OutputPlan>, file: FileId, offset: u64, ost: OstId) -> Self {
        let arrived = if rank == 0 { vec![false; plan.nprocs] } else { Vec::new() };
        MpiIoActor {
            plan,
            file,
            offset,
            ost,
            me: rank,
            write_started: None,
            arrivals: 0,
            arrived,
            scan_scheduled: false,
            records: Vec::new(),
            closed_at: None,
        }
    }

    /// `MPI_File_open` is collective: after the barrier, model the
    /// MPI_Scan offset agreement as a log₂(n)-hop delay, then write.
    fn after_barrier(&mut self, ctx: &mut Ctx<'_, BarrierMsg>) {
        if std::mem::replace(&mut self.scan_scheduled, true) {
            return; // duplicated Go
        }
        let hops = 2 * log2_ceil(self.plan.nprocs as u64) as u64;
        let delay = ctx.message_delay(64) * hops.max(1);
        ctx.set_timer(delay, TIMER_SCAN);
    }

    fn note_arrival(&mut self, from: Rank, ctx: &mut Ctx<'_, BarrierMsg>) {
        debug_assert_eq!(self.me, 0, "barrier root is rank 0");
        if std::mem::replace(&mut self.arrived[from.0 as usize], true) {
            return; // duplicated Arrive
        }
        self.arrivals += 1;
        if self.arrivals == self.plan.nprocs {
            for r in 1..self.plan.nprocs as u32 {
                ctx.send_control(Rank(r), BarrierMsg::Go);
            }
            self.after_barrier(ctx);
        }
    }
}

/// Stripe-aligned per-rank offsets: each rank's region is padded to the
/// stripe width so it lands wholly on one target (the ADIOS MPI method's
/// Lustre optimisation).
pub fn stripe_aligned_offsets(rank_bytes: &[u64], stripe_size: u64) -> Vec<u64> {
    assert!(stripe_size > 0);
    let mut offsets = Vec::with_capacity(rank_bytes.len());
    let mut at = 0u64;
    for &b in rank_bytes {
        offsets.push(at);
        let padded = b.div_ceil(stripe_size) * stripe_size;
        at += padded;
    }
    offsets
}

impl Actor for MpiIoActor {
    type Msg = BarrierMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BarrierMsg>) {
        ctx.open(TAG_OPEN);
    }

    fn on_message(&mut self, from: Rank, msg: BarrierMsg, ctx: &mut Ctx<'_, BarrierMsg>) {
        match msg {
            BarrierMsg::Arrive => self.note_arrival(from, ctx),
            BarrierMsg::Go => self.after_barrier(ctx),
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, BarrierMsg>) {
        debug_assert_eq!(tag, TIMER_SCAN);
        self.write_started = Some(ctx.now());
        let bytes = self.plan.rank_bytes[self.me as usize];
        ctx.write_file(self.file, self.offset, bytes, TAG_WRITE);
    }

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, BarrierMsg>) {
        match (done.tag, done.kind) {
            (TAG_OPEN, CompletionKind::Open) => {
                if self.me == 0 {
                    self.note_arrival(Rank(0), ctx);
                } else {
                    ctx.send_control(Rank(0), BarrierMsg::Arrive);
                }
            }
            (TAG_WRITE, CompletionKind::Write) => {
                let started = self.write_started.take().expect("write started");
                // MPI-IO has no recovery path: a write into a failed
                // stripe leaves no record (the bytes are gone) but the
                // rank still closes, so the run ends with a structured
                // partial result instead of hanging.
                if !done.error {
                    self.records.push(WriteRecord {
                        rank: self.me,
                        bytes: done.bytes,
                        start: started,
                        end: done.finished,
                        ost: self.ost,
                        file: self.file,
                        offset: self.offset,
                        adaptive: false,
                    });
                }
                ctx.close(TAG_CLOSE);
            }
            (TAG_CLOSE, CompletionKind::Close) => {
                self.closed_at = Some(done.finished);
                ctx.finish();
            }
            other => panic!("unexpected IO completion {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_stripe_aligned_prefix_sums() {
        let offs = stripe_aligned_offsets(&[100, 100, 100], 64);
        assert_eq!(offs, vec![0, 128, 256]);
    }

    #[test]
    fn exact_multiples_pack_tightly() {
        let offs = stripe_aligned_offsets(&[128, 128], 64);
        assert_eq!(offs, vec![0, 128]);
    }

    #[test]
    fn empty_ranks_take_no_space() {
        let offs = stripe_aligned_offsets(&[0, 100], 64);
        assert_eq!(offs, vec![0, 0]);
    }
}
