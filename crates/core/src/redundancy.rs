//! Tiered redundancy: k+m erasure-coded shard placement with lazy
//! rebuild.
//!
//! The adaptive protocol masks *slow* targets by steering work away from
//! them; this module answers *destroyed* data. Each rank's PG payload is
//! materialized under a per-object [`RedundancyPolicy`]:
//!
//! * `None` — a single copy; destroyed data is gone.
//! * `Replicate(n)` — `n` full copies on distinct OSTs; any loss is
//!   repaired by recopying a whole extent from a survivor.
//! * `Ec { k, m }` — `k` data + `m` parity shards on distinct OSTs
//!   ([`bpfmt::ec`]); any `m` losses are repaired by reconstructing
//!   *only the damaged extents* from any `k` survivors, so repair
//!   traffic is `lost × payload/k` instead of `payload` per copy.
//!
//! Three layers:
//!
//! * [`place_shards`] — deterministic distinct-OST placement, skipping
//!   targets flagged by the control loop or condemned by earlier retry
//!   budgets (the campaign's analog of the coordinator steering that
//!   skips flagged OSTs in `c_try_issue`).
//! * [`run_redundant`] — the timeline campaign: shard writes with the
//!   shared retry/backoff/condemnation machinery, damage assessment
//!   against the placement-aware [`CorruptionOracle`] (`lost_since`),
//!   and a lazy [`run_rebuild`](crate::scrub::run_rebuild) pass that
//!   restores damaged extents.
//! * [`RedundantObject`] — the real-bytes half: shards carried in
//!   checksummed `PG_MAGIC2` PGs, reconstruction via the
//!   `EncodeScratch` fast path, and online policy switching
//!   ([`RedundantObject::switch_policy`]) that re-encodes through the
//!   rebuild path without data loss.

use std::cell::RefCell;
use std::rc::Rc;

use bpfmt::ec::{
    decode_shard_pg, encode_shard_pg, encode_shard_pg_scratch, shard_meta_params, EcError,
    RedundancyPolicy, ShardMeta,
};
use bpfmt::EncodeScratch;
use clustersim::{Actor, Ctx, IoComplete, Rank, Simulation};
use simcore::{EventToken, SimDuration, SimTime};
use storesim::layout::{FileId, OstId, StripeSpec};
use storesim::system::CompletionKind;
use storesim::{CorruptionOracle, FaultScript, MachineConfig};

use crate::fault::{FaultTolerance, SimError, WriteOutcome};
use crate::scrub::{run_rebuild, RebuildExtent, RebuildFate, RebuildTask};

const TAG_OPEN: u32 = 1;
const TAG_CLOSE: u32 = 3;
const TAG_IO_BASE: u32 = 16;

/// Knobs of the redundant data plane. Off by default — and with
/// `enabled = false` every entry point delegates verbatim to the
/// non-redundant path, keeping output byte-identical to a build without
/// this module (pinned in `tests/determinism.rs`).
#[derive(Clone, Debug)]
pub struct RedundancyOpts {
    /// Master switch.
    pub enabled: bool,
    /// Default per-object policy.
    pub policy: RedundancyPolicy,
    /// Per-variable policy overrides (first match by name wins); objects
    /// not listed use `policy`.
    pub per_var: Vec<(String, RedundancyPolicy)>,
    /// Run the lazy rebuild pass after damage assessment.
    pub rebuild: bool,
    /// Targets the placement must avoid — the condemned/flagged set from
    /// the control loop's `OstLatencyTracker`, fed forward so shards are
    /// never placed on a target the protocol already distrusts.
    pub avoid_osts: Vec<usize>,
    /// Shared retry/backoff/condemnation knobs for shard writes and the
    /// rebuild pass.
    pub fault: FaultTolerance,
    /// Rebuilder worker count (0 ⇒ one per damaged object, capped at 8).
    pub rebuild_workers: usize,
}

impl Default for RedundancyOpts {
    fn default() -> Self {
        RedundancyOpts {
            enabled: false,
            policy: RedundancyPolicy::None,
            per_var: Vec::new(),
            rebuild: true,
            avoid_osts: Vec::new(),
            fault: FaultTolerance::enabled(),
            rebuild_workers: 0,
        }
    }
}

impl RedundancyOpts {
    /// Redundancy disabled (the default; byte-identical output).
    pub fn off() -> Self {
        Self::default()
    }

    /// Redundancy enabled under `policy` with lazy rebuild on.
    pub fn with_policy(policy: RedundancyPolicy) -> Self {
        RedundancyOpts {
            enabled: true,
            policy,
            ..Self::default()
        }
    }

    /// The policy governing variable `var`: the first `per_var` match,
    /// else the default policy.
    pub fn policy_for(&self, var: &str) -> RedundancyPolicy {
        self.per_var
            .iter()
            .find(|(name, _)| name == var)
            .map(|&(_, p)| p)
            .unwrap_or(self.policy)
    }
}

/// Assign the `n` shards of placement group `pg` to distinct OSTs:
/// round-robin from a deterministic per-group anchor over the healthy
/// pool (`0..ost_count` minus `avoid`). When fewer than `n` healthy
/// targets remain the full target set is used instead (durability over
/// steering), and when the machine itself has fewer than `n` targets the
/// assignment wraps — some targets then carry several shards of the same
/// group, and the policy's loss tolerance degrades accordingly.
pub fn place_shards(pg: usize, n: usize, ost_count: usize, avoid: &[usize]) -> Vec<OstId> {
    assert!(ost_count > 0 && n > 0);
    let healthy: Vec<usize> = (0..ost_count).filter(|o| !avoid.contains(o)).collect();
    let pool: Vec<usize> = if healthy.len() >= n || healthy.is_empty() {
        if healthy.is_empty() {
            (0..ost_count).collect()
        } else {
            healthy
        }
    } else {
        (0..ost_count).collect()
    };
    let anchor = pg % pool.len();
    (0..n).map(|i| OstId(pool[(anchor + i) % pool.len()])).collect()
}

/// One shard write as recorded by the campaign.
#[derive(Clone, Copy, Debug)]
pub struct ShardRecord {
    /// Placement group (= writing rank) index.
    pub pg: u32,
    /// Shard index within the group.
    pub shard: u32,
    /// Target the shard finally landed on.
    pub ost: OstId,
    /// Byte offset within the per-target shard file.
    pub offset: u64,
    /// Shard length, bytes.
    pub len: u64,
    /// First submission of the shard.
    pub start: SimTime,
    /// Completion of the successful attempt.
    pub end: SimTime,
    /// The shard was re-placed off its planned target after condemnation.
    pub moved: bool,
    /// The shard was never durably written (every placement failed).
    pub failed: bool,
}

/// Post-assessment state of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Written and intact at campaign end.
    Intact,
    /// Written, but its target later destroyed the bytes.
    Lost,
    /// Written, but silently corrupted below the checksum layer.
    Corrupt,
    /// Never durably written.
    Unwritten,
}

/// Result of one redundant campaign: write phase, damage assessment, and
/// (when enabled) the lazy rebuild.
#[derive(Clone, Debug)]
pub struct RedundancyReport {
    /// The campaign's default policy.
    pub policy: RedundancyPolicy,
    /// Placement groups (= ranks) written.
    pub pgs: usize,
    /// Per-shard write records, grouped by `pg`.
    pub records: Vec<ShardRecord>,
    /// Per-shard assessment, parallel to `records`.
    pub states: Vec<ShardState>,
    /// Groups with at least one damaged shard.
    pub damaged_pgs: usize,
    /// Damaged groups fully restored by the rebuild.
    pub rebuilt_pgs: usize,
    /// Groups that lost more shards than the policy tolerates (or whose
    /// rebuild writes failed).
    pub unrecoverable_pgs: usize,
    /// Shard bytes durably stored by the write phase.
    pub bytes_stored: u64,
    /// Repair write traffic of the rebuild pass.
    pub bytes_rewritten: u64,
    /// Damaged bytes restored through erasure-decode reconstruction
    /// (zero for replication, which only copies).
    pub bytes_reconstructed: u64,
    /// Bytes read from survivors by the rebuild pass.
    pub bytes_read: u64,
    /// Simulated duration of the shard-write phase, seconds.
    pub write_elapsed_secs: f64,
    /// Simulated duration of the rebuild pass, seconds (0 when disabled
    /// or clean).
    pub rebuild_elapsed_secs: f64,
    /// Structured failures from both phases.
    pub errors: Vec<SimError>,
    /// Payload-byte accounting: `written` counts payloads durable at the
    /// end (clean or rebuilt), `lost` counts unrecoverable payloads.
    pub outcome: WriteOutcome,
}

impl RedundancyReport {
    /// True when every payload ended durable: no unrecoverable groups
    /// and no unrepaired damage.
    pub fn fully_durable(&self) -> bool {
        self.unrecoverable_pgs == 0 && self.outcome.lost_bytes == 0
    }
}

/// One shard-write work item carried by a writer actor.
#[derive(Clone, Copy, Debug)]
struct ShardJob {
    shard: u32,
    len: u64,
    ost: OstId,
}

/// Shared campaign state: per-OST bump allocators for shard-file offsets
/// and the condemned-target set every writer consults before re-placing
/// — the campaign's stand-in for coordinator steering.
struct Steering {
    next_offset: Vec<u64>,
    condemned: Vec<usize>,
}

struct ShardWriter {
    pg: u32,
    jobs: Vec<ShardJob>,
    files: Rc<Vec<FileId>>,
    steering: Rc<RefCell<Steering>>,
    avoid: Rc<Vec<usize>>,
    ost_count: usize,
    tol: FaultTolerance,
    cur: usize,
    opened: bool,
    attempt: u32,
    /// Placements tried for the current shard (terminates re-placement).
    placements: usize,
    /// Offset allocated for the in-flight attempt.
    cur_offset: u64,
    cur_start: Option<SimTime>,
    moved: bool,
    cur_tag: u32,
    next_tag: u32,
    timeout: Option<(u64, EventToken)>,
    retry_at: Option<u64>,
    next_timer: u64,
    pub records: Vec<ShardRecord>,
    pub closed: bool,
}

impl ShardWriter {
    fn osts_used(&self) -> Vec<usize> {
        self.records.iter().map(|r| r.ost.0).collect()
    }

    fn start_shard(&mut self, ctx: &mut Ctx<'_, ()>) {
        if self.cur >= self.jobs.len() {
            ctx.close(TAG_CLOSE);
            return;
        }
        self.attempt = 1;
        self.placements = 1;
        self.moved = false;
        self.cur_start = None;
        self.issue(ctx);
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, ()>) {
        let job = self.jobs[self.cur];
        let ost = job.ost.0;
        {
            let mut st = self.steering.borrow_mut();
            self.cur_offset = st.next_offset[ost];
            st.next_offset[ost] += job.len;
        }
        if self.cur_start.is_none() {
            self.cur_start = Some(ctx.now());
        }
        self.cur_tag = self.next_tag;
        self.next_tag += 1;
        ctx.write_file(self.files[ost], self.cur_offset, job.len, self.cur_tag);
        let tag = self.next_timer;
        self.next_timer += 1;
        let token = ctx.set_timer(
            SimDuration::from_secs_f64(self.tol.timeout_for(job.len)),
            tag,
        );
        self.timeout = Some((tag, token));
    }

    /// Re-place the current shard on a fresh target after condemnation:
    /// the next OST (cyclically) that is neither condemned, avoided, nor
    /// already carrying a shard of this group. Falls back to any
    /// non-condemned target, then gives up.
    fn replace_target(&mut self) -> bool {
        if self.placements > self.ost_count {
            return false;
        }
        self.placements += 1;
        let used = self.osts_used();
        let st = self.steering.borrow();
        let cur = self.jobs[self.cur].ost.0;
        let pick = |skip_used: bool| {
            (1..=self.ost_count).map(|d| (cur + d) % self.ost_count).find(|o| {
                !st.condemned.contains(o)
                    && !self.avoid.contains(o)
                    && (!skip_used || !used.contains(o))
            })
        };
        let Some(next) = pick(true).or_else(|| pick(false)) else {
            return false;
        };
        drop(st);
        self.jobs[self.cur].ost = OstId(next);
        self.moved = true;
        self.attempt = 1;
        true
    }

    fn settle_failed(&mut self, ctx: &mut Ctx<'_, ()>) {
        let job = self.jobs[self.cur];
        self.records.push(ShardRecord {
            pg: self.pg,
            shard: job.shard,
            ost: job.ost,
            offset: self.cur_offset,
            len: job.len,
            start: self.cur_start.unwrap_or(SimTime::ZERO),
            end: ctx.now(),
            moved: self.moved,
            failed: true,
        });
        self.cur += 1;
        self.start_shard(ctx);
    }

    fn attempt_failed(&mut self, ctx: &mut Ctx<'_, ()>) {
        if self.attempt < self.tol.max_retries {
            let delay = self.tol.backoff_secs(self.attempt);
            self.attempt += 1;
            let tag = self.next_timer;
            self.next_timer += 1;
            ctx.set_timer(SimDuration::from_secs_f64(delay), tag);
            self.retry_at = Some(tag);
            return;
        }
        // Retry budget exhausted: condemn the target campaign-wide and
        // re-place the shard.
        let ost = self.jobs[self.cur].ost.0;
        {
            let mut st = self.steering.borrow_mut();
            if !st.condemned.contains(&ost) {
                st.condemned.push(ost);
            }
        }
        if self.replace_target() {
            self.issue(ctx);
        } else {
            self.settle_failed(ctx);
        }
    }

    fn clear_timeout(&mut self, ctx: &mut Ctx<'_, ()>) {
        if let Some((_, token)) = self.timeout.take() {
            ctx.cancel_timer(token);
        }
    }
}

impl Actor for ShardWriter {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.open(TAG_OPEN);
    }

    fn on_message(&mut self, _f: Rank, _m: (), _c: &mut Ctx<'_, ()>) {}

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, ()>) {
        if self.retry_at == Some(tag) {
            self.retry_at = None;
            self.issue(ctx);
            return;
        }
        if self.timeout.as_ref().is_some_and(|&(t, _)| t == tag) {
            self.timeout = None;
            self.attempt_failed(ctx);
        }
    }

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, ()>) {
        match (done.tag, done.kind) {
            (TAG_OPEN, CompletionKind::Open) => {
                self.opened = true;
                self.start_shard(ctx);
            }
            (TAG_CLOSE, CompletionKind::Close) => {
                self.closed = true;
                ctx.finish();
            }
            (tag, CompletionKind::Write) => {
                if tag != self.cur_tag {
                    return; // stale completion of a timed-out attempt
                }
                self.clear_timeout(ctx);
                if done.error {
                    self.attempt_failed(ctx);
                    return;
                }
                let job = self.jobs[self.cur];
                self.records.push(ShardRecord {
                    pg: self.pg,
                    shard: job.shard,
                    ost: job.ost,
                    offset: self.cur_offset,
                    len: job.len,
                    start: self.cur_start.unwrap_or(SimTime::ZERO),
                    end: ctx.now(),
                    moved: self.moved,
                    failed: false,
                });
                self.cur += 1;
                self.start_shard(ctx);
            }
            other => panic!("unexpected IO completion for shard writer {}: {other:?}", self.pg),
        }
    }
}

/// Execute one redundant campaign: place and write each rank's shards
/// under `opts.policy`, assess damage against the fault injector's
/// ground truth, and (with `opts.rebuild`) run the lazy rebuild pass to
/// restore every damaged extent that the policy can still reconstruct.
///
/// `rank_bytes[r]` is rank `r`'s payload size; `script` is the storage
/// fault schedule the campaign runs under.
pub fn run_redundant(
    machine: &MachineConfig,
    rank_bytes: &[u64],
    script: &FaultScript,
    opts: &RedundancyOpts,
    seed: u64,
) -> RedundancyReport {
    assert!(opts.enabled, "run_redundant requires RedundancyOpts::enabled");
    opts.policy.validate().expect("valid redundancy policy");
    let policy = opts.policy;
    let nprocs = rank_bytes.len();
    assert!(nprocs > 0);
    let n_shards = policy.shard_count();

    // -- Placement + shard-write phase ------------------------------------
    let mut storage = storesim::StorageSystem::new(machine.clone(), seed);
    let files: Vec<FileId> = (0..machine.ost_count)
        .map(|o| {
            storage
                .fs_mut()
                .create(format!("ec-{o}.bp"), StripeSpec::Pinned(vec![OstId(o)]))
        })
        .collect();
    if !script.is_empty() {
        storage.install_faults(script);
    }
    let files = Rc::new(files);
    let steering = Rc::new(RefCell::new(Steering {
        next_offset: vec![0; machine.ost_count],
        condemned: Vec::new(),
    }));
    let avoid = Rc::new(opts.avoid_osts.clone());
    let actors: Vec<ShardWriter> = (0..nprocs)
        .map(|r| {
            let placement = place_shards(r, n_shards, machine.ost_count, &opts.avoid_osts);
            let slen = policy.shard_len(rank_bytes[r] as usize).max(1) as u64;
            let jobs: Vec<ShardJob> = placement
                .into_iter()
                .enumerate()
                .map(|(s, ost)| ShardJob {
                    shard: s as u32,
                    len: slen,
                    ost,
                })
                .collect();
            ShardWriter {
                pg: r as u32,
                jobs,
                files: Rc::clone(&files),
                steering: Rc::clone(&steering),
                avoid: Rc::clone(&avoid),
                ost_count: machine.ost_count,
                tol: opts.fault,
                cur: 0,
                opened: false,
                attempt: 0,
                placements: 0,
                cur_offset: 0,
                cur_start: None,
                moved: false,
                cur_tag: 0,
                next_tag: TAG_IO_BASE,
                timeout: None,
                retry_at: None,
                next_timer: 1,
                records: Vec::new(),
                closed: false,
            }
        })
        .collect();
    let n = actors.len() as u64;
    let mut sim = Simulation::with_storage(machine.clone(), actors, seed, storage);
    let stats = sim.run_until(n, SimTime::from_secs_f64(1e6));

    let mut errors = Vec::new();
    if sim.finish_count() < n {
        let pending: Vec<u32> = sim
            .actors()
            .enumerate()
            .filter(|(_, a)| !a.closed)
            .map(|(r, _)| r as u32)
            .collect();
        errors.push(SimError::Stalled {
            pending_ranks: pending,
            last_event_time: stats.end_time.as_secs_f64(),
        });
    }

    // -- Damage assessment -------------------------------------------------
    // The write phase may finish before late scripted faults fire; data
    // at rest is still destroyed by them. Drain the storage queue through
    // the script's fault horizon so the oracle records every loss.
    if let Some(last) = script.events.iter().map(|e| e.at()).max() {
        sim.storage_mut()
            .advance_to(last + SimDuration::from_secs_f64(1.0));
    }
    // The placement-aware oracle: destroyed-data instants + silent
    // corruption, usable after the simulation is torn down.
    let oracle: CorruptionOracle = sim.storage().integrity_oracle();
    let mut records: Vec<ShardRecord> = Vec::with_capacity(nprocs * n_shards);
    for a in sim.actors() {
        records.extend(a.records.iter().copied());
    }
    records.sort_by_key(|r| (r.pg, r.shard));
    let states: Vec<ShardState> = records
        .iter()
        .map(|r| {
            if r.failed {
                ShardState::Unwritten
            } else if oracle.lost_since(r.ost, r.end) {
                ShardState::Lost
            } else if oracle.write_corrupted(r.ost, r.end) {
                ShardState::Corrupt
            } else {
                ShardState::Intact
            }
        })
        .collect();
    let bytes_stored: u64 = records
        .iter()
        .zip(&states)
        .filter(|(_, s)| **s != ShardState::Unwritten)
        .map(|(r, _)| r.len)
        .sum();

    // -- Lazy rebuild ------------------------------------------------------
    let mut tasks: Vec<RebuildTask> = Vec::new();
    let mut task_pg: Vec<u32> = Vec::new();
    for (pg, &payload_bytes) in rank_bytes.iter().enumerate() {
        let group: Vec<(usize, &ShardRecord)> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.pg == pg as u32)
            .collect();
        let damaged: Vec<&ShardRecord> = group
            .iter()
            .filter(|(i, _)| states[*i] != ShardState::Intact)
            .map(|(_, r)| *r)
            .collect();
        if damaged.is_empty() {
            continue;
        }
        let sources: Vec<RebuildExtent> = group
            .iter()
            .filter(|(i, _)| states[*i] == ShardState::Intact)
            .map(|(_, r)| RebuildExtent {
                ost: r.ost,
                offset: r.offset,
                len: r.len,
            })
            .collect();
        let writes: Vec<RebuildExtent> = damaged
            .iter()
            .map(|r| RebuildExtent {
                ost: r.ost,
                offset: r.offset,
                len: r.len,
            })
            .collect();
        tasks.push(RebuildTask {
            rank: pg as u32,
            payload_bytes,
            sources,
            need: policy.data_shards(),
            writes,
        });
        task_pg.push(pg as u32);
    }
    let damaged_pgs = tasks.len();

    let mut rebuilt_pgs = 0;
    let mut unrecoverable_pgs = 0;
    let mut bytes_rewritten = 0;
    let mut bytes_reconstructed = 0;
    let mut bytes_read = 0;
    let mut rebuild_elapsed_secs = 0.0;
    let mut lost_payload = 0u64;
    if opts.rebuild && !tasks.is_empty() {
        let workers = if opts.rebuild_workers > 0 {
            opts.rebuild_workers
        } else {
            tasks.len().min(8)
        };
        let rebuild = run_rebuild(machine, &tasks, &oracle.dead, workers, opts.fault, seed ^ 0x5EC0_7D17);
        for (i, fate) in rebuild.fates.iter().enumerate() {
            match *fate {
                RebuildFate::Clean | RebuildFate::Rebuilt { .. } => rebuilt_pgs += 1,
                RebuildFate::Unrecoverable { .. }
                | RebuildFate::WriteFailed
                | RebuildFate::Unreached => {
                    unrecoverable_pgs += 1;
                    lost_payload += tasks[i].payload_bytes;
                }
            }
        }
        bytes_rewritten = rebuild.bytes_rewritten;
        bytes_read = rebuild.bytes_read;
        if matches!(policy, RedundancyPolicy::Ec { .. }) {
            bytes_reconstructed = rebuild.bytes_rewritten;
        }
        rebuild_elapsed_secs = rebuild.elapsed_secs;
        errors.extend(rebuild.errors);
    } else {
        // No rebuild: damaged groups count as unrecoverable only when
        // they exceed the policy's tolerance; merely-degraded groups are
        // still readable.
        for t in &tasks {
            if t.sources.len() < t.need {
                unrecoverable_pgs += 1;
                lost_payload += t.payload_bytes;
                errors.push(SimError::Unrecoverable {
                    rank: t.rank,
                    have: t.sources.len(),
                    need: t.need,
                    bytes: t.payload_bytes,
                });
            }
        }
    }

    let total_payload: u64 = rank_bytes.iter().sum();
    let outcome = WriteOutcome {
        total_bytes: total_payload,
        written_bytes: total_payload - lost_payload,
        lost_bytes: lost_payload,
        complete: lost_payload == 0 && errors.is_empty(),
    };
    RedundancyReport {
        policy,
        pgs: nprocs,
        records,
        states,
        damaged_pgs,
        rebuilt_pgs,
        unrecoverable_pgs,
        bytes_stored,
        bytes_rewritten,
        bytes_reconstructed,
        bytes_read,
        write_elapsed_secs: stats.end_time.as_secs_f64(),
        rebuild_elapsed_secs,
        errors,
        outcome,
    }
}

// ---------------------------------------------------------------------------
// Real-bytes redundant objects
// ---------------------------------------------------------------------------

/// A payload materialized as shard PGs under a [`RedundancyPolicy`] —
/// the real-bytes half of the redundancy subsystem. Shards travel in
/// checksummed `PG_MAGIC2` process groups; damaged or dropped shards are
/// reconstructed byte-identically from any sufficient subset, and the
/// policy can be switched online ([`RedundantObject::switch_policy`])
/// through the same decode-and-re-encode path.
#[derive(Clone, Debug)]
pub struct RedundantObject {
    /// Source PG identity: writing rank.
    pub rank: u32,
    /// Source PG identity: output step.
    pub step: u32,
    /// The policy the shards were encoded under.
    pub policy: RedundancyPolicy,
    /// Original payload length, bytes.
    pub payload_len: usize,
    /// Shard PG bytes by shard index (`None` = lost).
    pub shard_pgs: Vec<Option<Vec<u8>>>,
}

impl RedundantObject {
    /// Encode `payload` under `policy` into framed shard PGs.
    pub fn encode(
        rank: u32,
        step: u32,
        policy: RedundancyPolicy,
        payload: &[u8],
    ) -> Result<Self, EcError> {
        policy.validate()?;
        let shards = policy.shards_of_payload(payload)?;
        let (k, m) = shard_meta_params(policy);
        let shard_pgs = shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let meta = ShardMeta {
                    index: i as u32,
                    k,
                    m,
                    shard_len: s.len() as u64,
                    payload_len: payload.len() as u64,
                };
                Some(encode_shard_pg(rank, step, meta, s))
            })
            .collect();
        Ok(RedundantObject {
            rank,
            step,
            policy,
            payload_len: payload.len(),
            shard_pgs,
        })
    }

    /// Drop shard `idx` (simulating destroyed data).
    pub fn damage(&mut self, idx: usize) {
        self.shard_pgs[idx] = None;
    }

    /// Unframe and verify every surviving shard. A shard whose PG fails
    /// checksum or framing verification counts as lost — corruption
    /// degrades into erasure, it never feeds garbage to the decoder.
    fn surviving_shards(&self) -> Vec<Option<Vec<u8>>> {
        self.shard_pgs
            .iter()
            .map(|pg| {
                let pg = pg.as_ref()?;
                let (rank, step, meta, shard) = decode_shard_pg(pg).ok()?;
                if rank != self.rank || step != self.step || meta.policy() != self.policy {
                    return None;
                }
                Some(shard)
            })
            .collect()
    }

    /// Recover the original payload from the surviving shards.
    pub fn payload(&self) -> Result<Vec<u8>, EcError> {
        self.policy
            .payload_of_shards(&self.surviving_shards(), self.payload_len)
    }

    /// Lazy rebuild: reconstruct every lost or damaged shard and re-frame
    /// it byte-identically to the original encode, reusing `scratch` for
    /// the re-encode (the PR-4 zero-alloc fast path). Returns the number
    /// of shards restored.
    pub fn rebuild(&mut self, scratch: &mut EncodeScratch) -> Result<usize, EcError> {
        let mut shards = self.surviving_shards();
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(0);
        }
        match self.policy {
            RedundancyPolicy::None | RedundancyPolicy::Replicate(_) => {
                let survivor = shards
                    .iter()
                    .flatten()
                    .next()
                    .cloned()
                    .ok_or(EcError::Unrecoverable { have: 0, need: 1 })?;
                for s in shards.iter_mut() {
                    if s.is_none() {
                        *s = Some(survivor.clone());
                    }
                }
            }
            RedundancyPolicy::Ec { k, m } => {
                bpfmt::ec::RsCode::new(k as usize, m as usize)?.reconstruct(&mut shards)?;
            }
        }
        let (k, m) = shard_meta_params(self.policy);
        for &i in &missing {
            let shard = shards[i].as_ref().expect("reconstructed");
            let meta = ShardMeta {
                index: i as u32,
                k,
                m,
                shard_len: shard.len() as u64,
                payload_len: self.payload_len as u64,
            };
            let pg = encode_shard_pg_scratch(scratch, self.rank, self.step, meta, shard);
            self.shard_pgs[i] = Some(pg.to_vec());
        }
        Ok(missing.len())
    }

    /// Online policy switch without data loss: recover the payload from
    /// the surviving shards (the rebuild path), then re-encode it under
    /// `new` — upgrading, say, `Replicate(2)` to `Ec{8,2}` in place.
    pub fn switch_policy(&mut self, new: RedundancyPolicy) -> Result<(), EcError> {
        let payload = self.payload()?;
        *self = RedundantObject::encode(self.rank, self.step, new, &payload)?;
        Ok(())
    }
}
