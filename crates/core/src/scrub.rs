//! Online scrub/repair: walk a completed output set through its index,
//! verify every block, and rewrite the damaged ones.
//!
//! Two halves mirror the repo's synthetic/real split:
//!
//! * [`run_scrub`] — the *timeline* scrub: a set of scrubber ranks read
//!   every block of a previous output on the simulated machine
//!   (verify-on-read against the fault injector's corruption oracle) and
//!   drive repairs through the same retry/backoff/condemnation policy as
//!   the hardened write protocol: a corrupt block on a healthy target is
//!   rewritten in place; when the target errors out past the retry
//!   budget, the repair is work-shifted to a spare target, exactly like a
//!   `LostWrite` in the adaptive protocol.
//! * [`repair_subfiles`] — the *real-bytes* scrub: forward-scan
//!   materialised subfile bytes PG by PG ([`bpfmt::probe_pg`]), detect
//!   checksum mismatches, and re-encode damaged PGs in place from the
//!   application's still-resident buffers (the scrub runs online, right
//!   after the output phase).

use std::rc::Rc;

use bpfmt::{probe_pg, EncodeScratch, IntegrityError, IntegrityOpts, VarBlock};
use clustersim::{Actor, Ctx, IoComplete, Rank, Simulation};
use simcore::{EventToken, SimDuration, SimTime};
use storesim::layout::{FileId, OstId, StripeSpec};
use storesim::system::CompletionKind;
use storesim::{CorruptionOracle, FailMode, FaultScript, MachineConfig};

use crate::fault::{FaultTolerance, SimError};
use crate::readback::ReadOutcome;
use crate::record::WriteRecord;

const TAG_OPEN: u32 = 1;
const TAG_CLOSE: u32 = 3;
/// First tag for block IO; each attempt gets a fresh tag so late
/// completions of timed-out attempts are recognised and dropped.
const TAG_IO_BASE: u32 = 16;

/// What the scrub concluded about one block (one write record).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockFate {
    /// Read back clean.
    Verified,
    /// Found corrupt, rewritten at its original offset.
    RepairedInPlace,
    /// Found corrupt (or its target dead), rewritten on a spare target.
    RepairedMoved,
    /// Found corrupt and every repair attempt failed.
    Unrepairable,
    /// Could not be read at all (and the oracle had nothing to repair
    /// from — counted as unread, not silently passed).
    Unreadable,
}

/// Result of one scrub pass.
#[derive(Clone, Debug)]
pub struct ScrubReport {
    /// Per-record fate, parallel to the `records` slice given to
    /// [`run_scrub`].
    pub fates: Vec<BlockFate>,
    /// The same facts as counters; partitions the records, so
    /// `outcome.total() == fates.len()`.
    pub outcome: ReadOutcome,
    /// Structured failures: stalls plus one [`SimError::DataCorrupted`]
    /// per unrepairable block.
    pub errors: Vec<SimError>,
    /// Bytes rewritten by successful repairs.
    pub repaired_bytes: u64,
    /// Simulated duration of the scrub pass, seconds.
    pub elapsed_secs: f64,
}

impl ScrubReport {
    /// True when every block ended up verified or repaired.
    pub fn fully_repaired(&self) -> bool {
        self.outcome.corrupt == 0 && self.outcome.unread == 0
    }
}

/// One block of scrub work, pre-resolved against the corruption oracle.
#[derive(Clone, Copy, Debug)]
struct ScrubBlock {
    /// Index into the original `records` slice.
    record: usize,
    file_slot: u32,
    offset: u64,
    len: u64,
    ost: OstId,
    /// The oracle says this block's stored bytes are damaged.
    corrupt: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Opening,
    Reading,
    /// Repair write outstanding; `moved` = targeting the spare file.
    Repairing { moved: bool },
}

struct ScrubActor {
    blocks: Vec<ScrubBlock>,
    files: Rc<Vec<FileId>>,
    /// Repair destination when a block's own target is condemned.
    spare: FileId,
    tol: FaultTolerance,
    me: u32,
    cur: usize,
    phase: Phase,
    attempt: u32,
    /// Targets this scrubber has given up writing to.
    condemned: Vec<usize>,
    /// Tag of the IO attempt currently in flight (stale tags ignored).
    cur_tag: u32,
    next_tag: u32,
    /// Outstanding per-attempt timeout: (timer tag, cancel token).
    timeout: Option<(u64, EventToken)>,
    /// Outstanding retry-backoff timer tag.
    retry_at: Option<u64>,
    next_timer: u64,
    pub fates: Vec<(usize, BlockFate)>,
    pub repaired_bytes: u64,
    pub closed: bool,
}

impl ScrubActor {
    fn start_block(&mut self, ctx: &mut Ctx<'_, ()>) {
        if self.cur >= self.blocks.len() {
            ctx.close(TAG_CLOSE);
            return;
        }
        self.phase = Phase::Reading;
        self.attempt = 1;
        self.issue(ctx);
    }

    /// (Re)issue the current attempt — a read in `Reading` phase, a
    /// repair write in `Repairing` phase.
    fn issue(&mut self, ctx: &mut Ctx<'_, ()>) {
        let b = self.blocks[self.cur];
        self.cur_tag = self.next_tag;
        self.next_tag += 1;
        match self.phase {
            Phase::Opening => unreachable!("issue before open"),
            Phase::Reading => {
                ctx.read_file(self.files[b.file_slot as usize], b.offset, b.len, self.cur_tag);
            }
            Phase::Repairing { moved: false } => {
                ctx.write_file(self.files[b.file_slot as usize], b.offset, b.len, self.cur_tag);
            }
            Phase::Repairing { moved: true } => {
                ctx.write_file(self.spare, b.offset, b.len, self.cur_tag);
            }
        }
        let tag = self.next_timer;
        self.next_timer += 1;
        let token = ctx.set_timer(
            SimDuration::from_secs_f64(self.tol.timeout_for(b.len)),
            tag,
        );
        self.timeout = Some((tag, token));
    }

    fn settle(&mut self, fate: BlockFate, ctx: &mut Ctx<'_, ()>) {
        let b = self.blocks[self.cur];
        if matches!(fate, BlockFate::RepairedInPlace | BlockFate::RepairedMoved) {
            self.repaired_bytes += b.len;
        }
        self.fates.push((b.record, fate));
        self.cur += 1;
        self.start_block(ctx);
    }

    /// The current attempt failed (error completion or timeout).
    fn attempt_failed(&mut self, ctx: &mut Ctx<'_, ()>) {
        if self.attempt < self.tol.max_retries {
            // Exponential backoff, then reissue the same attempt kind.
            let delay = self.tol.backoff_secs(self.attempt);
            self.attempt += 1;
            let tag = self.next_timer;
            self.next_timer += 1;
            ctx.set_timer(SimDuration::from_secs_f64(delay), tag);
            self.retry_at = Some(tag);
            return;
        }
        // Retry budget exhausted: condemn and shift, or give up.
        let b = self.blocks[self.cur];
        match self.phase {
            Phase::Opening => unreachable!(),
            Phase::Reading if b.corrupt => {
                // The stored copy is unreadable, but the oracle already
                // says it is damaged and repairs re-encode from the
                // still-resident source buffers — no read needed. The
                // target just exhausted a retry budget, so go straight
                // to the spare.
                self.condemned.push(b.ost.0);
                self.phase = Phase::Repairing { moved: true };
                self.attempt = 1;
                self.issue(ctx);
            }
            Phase::Reading => self.settle(BlockFate::Unreadable, ctx),
            Phase::Repairing { moved: false } => {
                // Work-shift the repair to the spare target, like the
                // write protocol shifts a LostWrite off a dead OST.
                self.condemned.push(b.ost.0);
                self.phase = Phase::Repairing { moved: true };
                self.attempt = 1;
                self.issue(ctx);
            }
            Phase::Repairing { moved: true } => self.settle(BlockFate::Unrepairable, ctx),
        }
    }

    fn clear_timeout(&mut self, ctx: &mut Ctx<'_, ()>) {
        if let Some((_, token)) = self.timeout.take() {
            ctx.cancel_timer(token);
        }
    }
}

impl Actor for ScrubActor {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.open(TAG_OPEN);
    }

    fn on_message(&mut self, _f: Rank, _m: (), _c: &mut Ctx<'_, ()>) {}

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, ()>) {
        if self.retry_at == Some(tag) {
            self.retry_at = None;
            self.issue(ctx);
            return;
        }
        if self.timeout.as_ref().is_some_and(|&(t, _)| t == tag) {
            // Per-attempt timeout: the in-flight IO is abandoned (its
            // eventual completion carries a stale tag and is dropped).
            self.timeout = None;
            self.attempt_failed(ctx);
        }
    }

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, ()>) {
        match (done.tag, done.kind) {
            (TAG_OPEN, CompletionKind::Open) => self.start_block(ctx),
            (TAG_CLOSE, CompletionKind::Close) => {
                self.closed = true;
                ctx.finish();
            }
            (tag, CompletionKind::Read | CompletionKind::Write) => {
                if tag != self.cur_tag {
                    return; // late completion of a timed-out attempt
                }
                self.clear_timeout(ctx);
                if done.error {
                    self.attempt_failed(ctx);
                    return;
                }
                let b = self.blocks[self.cur];
                match self.phase {
                    Phase::Opening => unreachable!(),
                    Phase::Reading => {
                        if !b.corrupt {
                            self.settle(BlockFate::Verified, ctx);
                        } else if self.condemned.contains(&b.ost.0) {
                            self.phase = Phase::Repairing { moved: true };
                            self.attempt = 1;
                            self.issue(ctx);
                        } else {
                            self.phase = Phase::Repairing { moved: false };
                            self.attempt = 1;
                            self.issue(ctx);
                        }
                    }
                    Phase::Repairing { moved } => {
                        let fate = if moved {
                            BlockFate::RepairedMoved
                        } else {
                            BlockFate::RepairedInPlace
                        };
                        self.settle(fate, ctx);
                    }
                }
            }
            other => panic!("unexpected IO completion for scrubber {}: {other:?}", self.me),
        }
    }
}

/// Scrub a previous output on the simulated timeline: `readers` scrubber
/// ranks divide `records` round-robin, read every block, and repair the
/// ones the writing run's corruption `oracle` flagged. Targets in
/// `oracle.dead` are recreated dead (error mode), so repairs targeting
/// them error out and get work-shifted to a spare target.
pub fn run_scrub(
    machine: &MachineConfig,
    records: &[WriteRecord],
    oracle: &CorruptionOracle,
    readers: usize,
    tol: FaultTolerance,
    seed: u64,
) -> ScrubReport {
    assert!(readers > 0 && !records.is_empty());
    // Dense slot mapping, as in ReadPlan::from_records.
    let mut files_osts: Vec<OstId> = Vec::new();
    let mut slot_of = std::collections::HashMap::new();
    for r in records {
        slot_of.entry(r.file).or_insert_with(|| {
            files_osts.push(r.ost);
            (files_osts.len() - 1) as u32
        });
    }
    let mut per_reader: Vec<Vec<ScrubBlock>> = vec![Vec::new(); readers];
    for (i, r) in records.iter().enumerate() {
        per_reader[i % readers].push(ScrubBlock {
            record: i,
            file_slot: slot_of[&r.file],
            offset: r.offset,
            len: r.bytes,
            ost: r.ost,
            corrupt: oracle.write_corrupted(r.ost, r.end),
        });
    }

    let mut storage = storesim::StorageSystem::new(machine.clone(), seed);
    let files: Vec<FileId> = files_osts
        .iter()
        .enumerate()
        .map(|(slot, &ost)| {
            storage
                .fs_mut()
                .create(format!("scrub-sub-{slot}.bp"), StripeSpec::Pinned(vec![ost]))
        })
        .collect();
    // Spare repair target: the first OST the oracle does not report dead.
    let spare_ost = (0..machine.ost_count)
        .map(OstId)
        .find(|&o| !oracle.is_dead(o))
        .unwrap_or(OstId(0));
    let spare = storage
        .fs_mut()
        .create("scrub-spare.bp", StripeSpec::Pinned(vec![spare_ost]));
    // Recreate dead targets dead: their reads and in-place repairs bounce
    // with errors, driving the work-shift path.
    let mut script = FaultScript::none();
    for &d in &oracle.dead {
        script = script.fail_ost(0.0, d.0, FailMode::Error, None);
    }
    if !script.is_empty() {
        storage.install_faults(&script);
    }

    let files = Rc::new(files);
    let actors: Vec<ScrubActor> = per_reader
        .into_iter()
        .enumerate()
        .map(|(i, blocks)| ScrubActor {
            blocks,
            files: Rc::clone(&files),
            spare,
            tol,
            me: i as u32,
            cur: 0,
            phase: Phase::Opening,
            attempt: 0,
            condemned: Vec::new(),
            cur_tag: 0,
            next_tag: TAG_IO_BASE,
            timeout: None,
            retry_at: None,
            next_timer: 1,
            fates: Vec::new(),
            repaired_bytes: 0,
            closed: false,
        })
        .collect();
    let n = actors.len() as u64;
    let mut sim = Simulation::with_storage(machine.clone(), actors, seed, storage);
    let stats = sim.run_until(n, SimTime::from_secs_f64(1e6));

    let mut errors = Vec::new();
    if sim.finish_count() < n {
        let pending: Vec<u32> = sim
            .actors()
            .enumerate()
            .filter(|(_, a)| !a.closed)
            .map(|(r, _)| r as u32)
            .collect();
        errors.push(SimError::Stalled {
            pending_ranks: pending,
            last_event_time: stats.end_time.as_secs_f64(),
        });
    }
    // Assemble per-record fates; blocks a stalled scrubber never reached
    // count as unreadable, never as silently fine.
    let mut fates = vec![BlockFate::Unreadable; records.len()];
    let mut repaired_bytes = 0u64;
    for a in sim.actors() {
        for &(record, fate) in &a.fates {
            fates[record] = fate;
        }
        repaired_bytes += a.repaired_bytes;
    }
    let mut outcome = ReadOutcome::default();
    for (i, fate) in fates.iter().enumerate() {
        match fate {
            BlockFate::Verified => outcome.verified += 1,
            BlockFate::RepairedInPlace | BlockFate::RepairedMoved => outcome.repaired += 1,
            BlockFate::Unrepairable => {
                outcome.corrupt += 1;
                errors.push(SimError::DataCorrupted {
                    rank: records[i].rank,
                    ost: records[i].ost.0,
                    bytes: records[i].bytes,
                });
            }
            BlockFate::Unreadable => outcome.unread += 1,
        }
    }
    debug_assert_eq!(outcome.total(), fates.len());
    ScrubReport {
        fates,
        outcome,
        errors,
        repaired_bytes,
        elapsed_secs: stats.end_time.as_secs_f64(),
    }
}

// ---------------------------------------------------------------------------
// Lazy rebuild
// ---------------------------------------------------------------------------

/// One extent of redundancy data on simulated storage: a shard's stored
/// bytes addressed by target + offset. [`run_rebuild`] re-creates one
/// pinned file per referenced target, so extents carry no [`FileId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RebuildExtent {
    /// The storage target holding (or meant to hold) the extent.
    pub ost: OstId,
    /// Byte offset within the per-target shard file.
    pub offset: u64,
    /// Extent length, bytes.
    pub len: u64,
}

/// One unit of lazy rebuild work: read any `need` of `sources`, then
/// rewrite every extent in `writes`. This is the generic shape shared by
/// every redundancy tier — `Ec{k,m}` reads `k` surviving shards and
/// rewrites only the damaged ones, `Replicate(n)` reads one survivor and
/// recopies whole extents, `None` has no sources and fails loudly.
#[derive(Clone, Debug)]
pub struct RebuildTask {
    /// The rank whose object this task repairs (error attribution).
    pub rank: u32,
    /// Payload bytes the object carries (loss accounting when the task
    /// ends unrecoverable).
    pub payload_bytes: u64,
    /// Surviving extents usable as reconstruction inputs.
    pub sources: Vec<RebuildExtent>,
    /// Source reads that must succeed before the rewrites can proceed
    /// (`k` for `Ec{k,m}`, 1 for replication).
    pub need: usize,
    /// Damaged extents to rewrite — in place when their target answers,
    /// work-shifted to the spare when it is condemned.
    pub writes: Vec<RebuildExtent>,
}

/// What became of one [`RebuildTask`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildFate {
    /// Nothing was damaged; no IO was issued.
    Clean,
    /// Every damaged extent was rewritten; `moved` counts rewrites that
    /// were work-shifted to the spare target.
    Rebuilt {
        /// Rewrites that landed on the spare instead of in place.
        moved: usize,
    },
    /// Fewer than `need` sources could be read; the object is gone.
    Unrecoverable {
        /// Sources successfully read before giving up.
        have: usize,
    },
    /// Sources were read, but a rewrite exhausted every attempt
    /// (including the spare target).
    WriteFailed,
    /// The simulation stalled before this task was attempted.
    Unreached,
}

/// Result of one [`run_rebuild`] pass.
#[derive(Clone, Debug)]
pub struct RebuildReport {
    /// Per-task fate, parallel to the `tasks` slice.
    pub fates: Vec<RebuildFate>,
    /// Bytes read from surviving shards.
    pub bytes_read: u64,
    /// Bytes rewritten to restore damaged extents.
    pub bytes_rewritten: u64,
    /// Structured failures: stalls, one [`SimError::Unrecoverable`] per
    /// dead object, one [`SimError::DataLost`] per failed rewrite.
    pub errors: Vec<SimError>,
    /// Simulated duration of the rebuild pass, seconds.
    pub elapsed_secs: f64,
}

impl RebuildReport {
    /// True when every damaged task was fully rebuilt.
    pub fn fully_rebuilt(&self) -> bool {
        self.fates
            .iter()
            .all(|f| matches!(f, RebuildFate::Clean | RebuildFate::Rebuilt { .. }))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RPhase {
    Opening,
    /// Reading survivors: `got` succeeded so far, `src` is the next
    /// source index to try.
    Reading { got: usize, src: usize },
    /// Rewriting damaged extents: `w` is the current write index,
    /// `moved` = targeting the spare.
    Writing { w: usize, moved: bool },
}

struct RebuildActor {
    tasks: Vec<RebuildTask>,
    /// Index of each local task in the caller's `tasks` slice.
    task_ids: Vec<usize>,
    files: Rc<std::collections::HashMap<usize, FileId>>,
    spare: FileId,
    tol: FaultTolerance,
    cur: usize,
    phase: RPhase,
    attempt: u32,
    /// Rewrites work-shifted to the spare within the current task.
    moved_count: usize,
    condemned: Vec<usize>,
    cur_tag: u32,
    next_tag: u32,
    timeout: Option<(u64, EventToken)>,
    retry_at: Option<u64>,
    next_timer: u64,
    fates: Vec<(usize, RebuildFate)>,
    bytes_read: u64,
    bytes_rewritten: u64,
    closed: bool,
}

impl RebuildActor {
    fn start_task(&mut self, ctx: &mut Ctx<'_, ()>) {
        loop {
            if self.cur >= self.tasks.len() {
                ctx.close(TAG_CLOSE);
                return;
            }
            let t = &self.tasks[self.cur];
            self.moved_count = 0;
            if t.writes.is_empty() {
                self.fates.push((self.task_ids[self.cur], RebuildFate::Clean));
                self.cur += 1;
                continue;
            }
            if t.need == 0 || t.sources.is_empty() && t.need > 0 {
                // No reads possible or needed: either straight to the
                // rewrites (need == 0) or immediately unrecoverable.
                if t.need == 0 {
                    self.begin_write(0, ctx);
                } else {
                    self.settle(RebuildFate::Unrecoverable { have: 0 }, ctx);
                }
                return;
            }
            self.phase = RPhase::Reading { got: 0, src: 0 };
            self.advance_read(ctx);
            return;
        }
    }

    /// In `Reading` phase: issue the next viable source read, start the
    /// rewrites once `need` reads succeeded, or give up when the sources
    /// are exhausted.
    fn advance_read(&mut self, ctx: &mut Ctx<'_, ()>) {
        let RPhase::Reading { got, mut src } = self.phase else {
            unreachable!("advance_read outside Reading");
        };
        let t = &self.tasks[self.cur];
        if got >= t.need {
            self.begin_write(0, ctx);
            return;
        }
        // Skip sources on targets this actor already condemned.
        while src < t.sources.len() && self.condemned.contains(&t.sources[src].ost.0) {
            src += 1;
        }
        if src >= t.sources.len() {
            self.settle(RebuildFate::Unrecoverable { have: got }, ctx);
            return;
        }
        self.phase = RPhase::Reading { got, src };
        self.attempt = 1;
        self.issue(ctx);
    }

    fn begin_write(&mut self, w: usize, ctx: &mut Ctx<'_, ()>) {
        let t = &self.tasks[self.cur];
        if w >= t.writes.len() {
            self.settle(
                RebuildFate::Rebuilt {
                    moved: self.moved_count,
                },
                ctx,
            );
            return;
        }
        // A condemned target gets no in-place attempt: straight to the
        // spare, as the scrub does for repairs on condemned OSTs.
        let moved = self.condemned.contains(&t.writes[w].ost.0);
        self.phase = RPhase::Writing { w, moved };
        self.attempt = 1;
        self.issue(ctx);
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, ()>) {
        let t = &self.tasks[self.cur];
        self.cur_tag = self.next_tag;
        self.next_tag += 1;
        let len = match self.phase {
            RPhase::Opening => unreachable!("issue before open"),
            RPhase::Reading { src, .. } => {
                let s = t.sources[src];
                ctx.read_file(self.files[&s.ost.0], s.offset, s.len, self.cur_tag);
                s.len
            }
            RPhase::Writing { w, moved } => {
                let e = t.writes[w];
                let file = if moved { self.spare } else { self.files[&e.ost.0] };
                ctx.write_file(file, e.offset, e.len, self.cur_tag);
                e.len
            }
        };
        let tag = self.next_timer;
        self.next_timer += 1;
        let token = ctx.set_timer(SimDuration::from_secs_f64(self.tol.timeout_for(len)), tag);
        self.timeout = Some((tag, token));
    }

    fn settle(&mut self, fate: RebuildFate, ctx: &mut Ctx<'_, ()>) {
        self.fates.push((self.task_ids[self.cur], fate));
        self.cur += 1;
        self.start_task(ctx);
    }

    fn attempt_failed(&mut self, ctx: &mut Ctx<'_, ()>) {
        if self.attempt < self.tol.max_retries {
            let delay = self.tol.backoff_secs(self.attempt);
            self.attempt += 1;
            let tag = self.next_timer;
            self.next_timer += 1;
            ctx.set_timer(SimDuration::from_secs_f64(delay), tag);
            self.retry_at = Some(tag);
            return;
        }
        let t = &self.tasks[self.cur];
        match self.phase {
            RPhase::Opening => unreachable!(),
            RPhase::Reading { got, src } => {
                // This survivor's target is gone for good: condemn it and
                // try the next surviving shard — any `need` of them do.
                self.condemned.push(t.sources[src].ost.0);
                self.phase = RPhase::Reading { got, src: src + 1 };
                self.advance_read(ctx);
            }
            RPhase::Writing { w, moved: false } => {
                // Work-shift the rewrite to the spare target.
                self.condemned.push(t.writes[w].ost.0);
                self.phase = RPhase::Writing { w, moved: true };
                self.attempt = 1;
                self.issue(ctx);
            }
            RPhase::Writing { moved: true, .. } => self.settle(RebuildFate::WriteFailed, ctx),
        }
    }

    fn clear_timeout(&mut self, ctx: &mut Ctx<'_, ()>) {
        if let Some((_, token)) = self.timeout.take() {
            ctx.cancel_timer(token);
        }
    }
}

impl Actor for RebuildActor {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.open(TAG_OPEN);
    }

    fn on_message(&mut self, _f: Rank, _m: (), _c: &mut Ctx<'_, ()>) {}

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, ()>) {
        if self.retry_at == Some(tag) {
            self.retry_at = None;
            self.issue(ctx);
            return;
        }
        if self.timeout.as_ref().is_some_and(|&(t, _)| t == tag) {
            self.timeout = None;
            self.attempt_failed(ctx);
        }
    }

    fn on_io_complete(&mut self, done: IoComplete, ctx: &mut Ctx<'_, ()>) {
        match (done.tag, done.kind) {
            (TAG_OPEN, CompletionKind::Open) => self.start_task(ctx),
            (TAG_CLOSE, CompletionKind::Close) => {
                self.closed = true;
                ctx.finish();
            }
            (tag, CompletionKind::Read | CompletionKind::Write) => {
                if tag != self.cur_tag {
                    return; // late completion of a timed-out attempt
                }
                self.clear_timeout(ctx);
                if done.error {
                    self.attempt_failed(ctx);
                    return;
                }
                let t = &self.tasks[self.cur];
                match self.phase {
                    RPhase::Opening => unreachable!(),
                    RPhase::Reading { got, src } => {
                        self.bytes_read += t.sources[src].len;
                        self.phase = RPhase::Reading {
                            got: got + 1,
                            src: src + 1,
                        };
                        self.advance_read(ctx);
                    }
                    RPhase::Writing { w, moved } => {
                        self.bytes_rewritten += t.writes[w].len;
                        if moved {
                            self.moved_count += 1;
                        }
                        self.begin_write(w + 1, ctx);
                    }
                }
            }
            other => panic!("unexpected IO completion for rebuilder: {other:?}"),
        }
    }
}

/// Execute a lazy rebuild pass on the simulated timeline: `workers`
/// rebuilder ranks divide `tasks` round-robin; each task reads any
/// `need` of its surviving shard extents and rewrites the damaged ones,
/// under the shared retry/backoff/condemnation policy. Targets in `dead`
/// are recreated dead (error mode), so reads from them are skipped the
/// hard way and in-place rewrites get work-shifted to a spare target —
/// exactly the scrub's repair discipline, generalized from
/// whole-block re-replication to per-extent reconstruction.
pub fn run_rebuild(
    machine: &MachineConfig,
    tasks: &[RebuildTask],
    dead: &[OstId],
    workers: usize,
    tol: FaultTolerance,
    seed: u64,
) -> RebuildReport {
    assert!(workers > 0);
    if tasks.is_empty() {
        return RebuildReport {
            fates: Vec::new(),
            bytes_read: 0,
            bytes_rewritten: 0,
            errors: Vec::new(),
            elapsed_secs: 0.0,
        };
    }
    let mut storage = storesim::StorageSystem::new(machine.clone(), seed);
    // One pinned file per referenced target, in ascending OST order for
    // deterministic FileIds.
    let mut osts: Vec<usize> = tasks
        .iter()
        .flat_map(|t| t.sources.iter().chain(&t.writes).map(|e| e.ost.0))
        .collect();
    osts.sort_unstable();
    osts.dedup();
    let mut files = std::collections::HashMap::new();
    for &o in &osts {
        let f = storage
            .fs_mut()
            .create(format!("rebuild-ost-{o}.bp"), StripeSpec::Pinned(vec![OstId(o)]));
        files.insert(o, f);
    }
    let spare_ost = (0..machine.ost_count)
        .map(OstId)
        .find(|o| !dead.contains(o))
        .unwrap_or(OstId(0));
    let spare = storage
        .fs_mut()
        .create("rebuild-spare.bp", StripeSpec::Pinned(vec![spare_ost]));
    let mut script = FaultScript::none();
    for &d in dead {
        script = script.fail_ost(0.0, d.0, FailMode::Error, None);
    }
    if !script.is_empty() {
        storage.install_faults(&script);
    }

    let files = Rc::new(files);
    let workers = workers.min(tasks.len());
    let mut per_worker: Vec<(Vec<RebuildTask>, Vec<usize>)> = vec![Default::default(); workers];
    for (i, t) in tasks.iter().enumerate() {
        per_worker[i % workers].0.push(t.clone());
        per_worker[i % workers].1.push(i);
    }
    let actors: Vec<RebuildActor> = per_worker
        .into_iter()
        .map(|(tasks, task_ids)| RebuildActor {
            tasks,
            task_ids,
            files: Rc::clone(&files),
            spare,
            tol,
            cur: 0,
            phase: RPhase::Opening,
            attempt: 0,
            moved_count: 0,
            condemned: Vec::new(),
            cur_tag: 0,
            next_tag: TAG_IO_BASE,
            timeout: None,
            retry_at: None,
            next_timer: 1,
            fates: Vec::new(),
            bytes_read: 0,
            bytes_rewritten: 0,
            closed: false,
        })
        .collect();
    let n = actors.len() as u64;
    let mut sim = Simulation::with_storage(machine.clone(), actors, seed, storage);
    let stats = sim.run_until(n, SimTime::from_secs_f64(1e6));

    let mut errors = Vec::new();
    if sim.finish_count() < n {
        let pending: Vec<u32> = sim
            .actors()
            .enumerate()
            .filter(|(_, a)| !a.closed)
            .map(|(r, _)| r as u32)
            .collect();
        errors.push(SimError::Stalled {
            pending_ranks: pending,
            last_event_time: stats.end_time.as_secs_f64(),
        });
    }
    let mut fates = vec![RebuildFate::Unreached; tasks.len()];
    let mut bytes_read = 0u64;
    let mut bytes_rewritten = 0u64;
    for a in sim.actors() {
        for &(id, fate) in &a.fates {
            fates[id] = fate;
        }
        bytes_read += a.bytes_read;
        bytes_rewritten += a.bytes_rewritten;
    }
    for (i, fate) in fates.iter().enumerate() {
        match *fate {
            RebuildFate::Unrecoverable { have } => errors.push(SimError::Unrecoverable {
                rank: tasks[i].rank,
                have,
                need: tasks[i].need,
                bytes: tasks[i].payload_bytes,
            }),
            RebuildFate::WriteFailed => errors.push(SimError::DataLost {
                rank: tasks[i].rank,
                ost: tasks[i].writes.first().map_or(0, |e| e.ost.0),
                bytes: tasks[i].writes.iter().map(|e| e.len).sum(),
            }),
            _ => {}
        }
    }
    RebuildReport {
        fates,
        bytes_read,
        bytes_rewritten,
        errors,
        elapsed_secs: stats.end_time.as_secs_f64(),
    }
}

/// Summary of a real-bytes repair pass over materialised subfiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// PGs examined across all subfiles.
    pub scanned: usize,
    /// PGs whose checksums failed and were re-encoded in place.
    pub repaired: usize,
    /// PGs whose checksums failed but could not be repaired (no source
    /// buffer of the right size).
    pub unrepaired: usize,
}

/// Verify and repair materialised subfile bytes in place: forward-scan
/// each file's data region PG by PG, and re-encode any PG whose checksum
/// fails from the writing rank's still-resident `blocks` (an online
/// scrub runs before the application releases its output buffers).
///
/// Only the checked layout can detect damage; legacy-layout PGs scan as
/// clean. Returns per-PG counts.
pub fn repair_subfiles(
    subfiles: &mut std::collections::HashMap<String, Vec<u8>>,
    blocks: &[Vec<VarBlock>],
    integrity: IntegrityOpts,
) -> RepairSummary {
    let mut summary = RepairSummary::default();
    // One scratch across every repair: re-encoding damaged PG after
    // damaged PG reuses the same wire buffer instead of allocating.
    let mut scratch = EncodeScratch::new();
    // Deterministic file order (HashMap iteration is not).
    let mut names: Vec<String> = subfiles.keys().cloned().collect();
    names.sort();
    for name in names {
        let bytes = subfiles.get_mut(&name).expect("key from keys()");
        let mut at = 0usize;
        while at < bytes.len() {
            // Unverified probe: find the PG's owner and extent (payload
            // damage never breaks structural decoding).
            let Ok(info) = probe_pg(bytes, at, false) else {
                break; // index region (or torn tail) reached
            };
            summary.scanned += 1;
            match probe_pg(bytes, at, true) {
                Ok(_) => {}
                Err(IntegrityError::BadBlockCrc { .. } | IntegrityError::BadPgHeader { .. }) => {
                    let rank = info.rank as usize;
                    let fresh = blocks.get(rank).map(|b| {
                        scratch.encode_pg(info.rank, info.step, b, integrity).0
                    });
                    match fresh {
                        Some(fresh) if fresh.len() as u64 == info.len => {
                            bytes[at..at + fresh.len()].copy_from_slice(fresh);
                            summary.repaired += 1;
                        }
                        _ => summary.unrepaired += 1,
                    }
                }
                Err(_) => summary.unrepaired += 1,
            }
            at += info.len as usize;
        }
    }
    summary
}
