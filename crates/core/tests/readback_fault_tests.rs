//! Restart reads and scrub passes under fault scripts: the consumer side
//! of an output set must degrade loudly, never hang and never silently
//! return damaged data.

use adios_core::{
    run, run_restart_read, run_restart_read_with, run_scrub, run_with_faults, AdaptiveOpts,
    BlockFate, DataSpec, FaultConfig, FaultTolerance, Interference, Method, ReadPlan, RunSpec,
    SimError,
};
use simcore::units::MIB;
use storesim::fault::FailMode;
use storesim::params::testbed;
use storesim::FaultScript;

fn write_spec(seed: u64) -> RunSpec {
    RunSpec {
        machine: testbed(),
        nprocs: 16,
        data: DataSpec::Uniform(8 * MIB),
        method: Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed,
    }
}

fn storage_faults(script: FaultScript) -> FaultConfig {
    FaultConfig {
        storage: script,
        ..Default::default()
    }
}

/// A brownout mid-read slows the restart but everything still arrives.
#[test]
fn brownout_mid_read_slows_but_completes() {
    let out = run(write_spec(31));
    let plan = ReadPlan::from_records(&out.result.records, 4);
    let clean = run_restart_read(&testbed(), &plan, 7);
    let browned = run_restart_read_with(
        &testbed(),
        &plan,
        7,
        &storage_faults(FaultScript::none().brownout(0.05, 0, 0.05, 30.0)),
        None,
    );
    assert!(browned.errors.is_empty(), "{:?}", browned.errors);
    assert_eq!(browned.result.total_bytes, clean.total_bytes);
    assert_eq!(browned.outcome.verified, plan.total_blocks());
    assert!(
        browned.result.aggregate_bandwidth() < clean.aggregate_bandwidth(),
        "brownout must slow the read: {} vs {}",
        clean.aggregate_bandwidth(),
        browned.result.aggregate_bandwidth()
    );
}

/// An MDS outage at open delays the whole read phase past the outage.
#[test]
fn mds_outage_at_open_delays_the_read() {
    let out = run(write_spec(33));
    let plan = ReadPlan::from_records(&out.result.records, 4);
    let clean = run_restart_read(&testbed(), &plan, 9);
    let outage_secs = 5.0;
    let delayed = run_restart_read_with(
        &testbed(),
        &plan,
        9,
        &storage_faults(FaultScript::none().mds_outage(0.0, outage_secs)),
        None,
    );
    assert!(delayed.errors.is_empty(), "{:?}", delayed.errors);
    assert_eq!(delayed.result.total_bytes, clean.total_bytes);
    let first_start = delayed
        .result
        .per_reader
        .iter()
        .map(|&(s, _, _)| s.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    assert!(
        first_start >= outage_secs,
        "opens must wait out the outage, started at {first_start}"
    );
}

/// A permanently stalled target turns the read into a structured stall
/// report instead of a hang or panic.
#[test]
fn stalled_target_reports_stall() {
    let out = run(write_spec(35));
    let plan = ReadPlan::from_records(&out.result.records, 4);
    let stalled = run_restart_read_with(
        &testbed(),
        &plan,
        11,
        &storage_faults(FaultScript::none().fail_ost(0.0, 0, FailMode::Stall, None)),
        None,
    );
    assert!(
        stalled
            .errors
            .iter()
            .any(|e| matches!(e, SimError::Stalled { .. })),
        "expected a stall report, got {:?}",
        stalled.errors
    );
    assert!(stalled.outcome.unread > 0, "stuck blocks count as unread");
    assert_eq!(stalled.outcome.total(), plan.total_blocks());
}

/// A dead (error-mode) target makes its blocks unreadable — counted,
/// never silently skipped — while the others still verify.
#[test]
fn dead_target_blocks_are_counted_unread() {
    let out = run(write_spec(37));
    let plan = ReadPlan::from_records(&out.result.records, 4);
    let degraded = run_restart_read_with(
        &testbed(),
        &plan,
        13,
        &storage_faults(FaultScript::none().fail_ost(0.0, 0, FailMode::Error, None)),
        None,
    );
    assert!(degraded.outcome.unread > 0);
    assert!(degraded.outcome.verified > 0);
    assert_eq!(degraded.outcome.total(), plan.total_blocks());
}

/// Verify-on-read against the writing run's oracle: every corrupted
/// block is flagged, every clean block verifies.
#[test]
fn verify_on_read_flags_exactly_the_oracle_blocks() {
    let out = run_with_faults(
        write_spec(39),
        storage_faults(FaultScript::none().silent_corruption(0.0, 0, None, 1.0)),
    );
    assert!(out.integrity.corrupt_records > 0, "script must bite");
    let plan = ReadPlan::from_records(&out.result.records, 4);
    let read = run_restart_read_with(&testbed(), &plan, 15, &FaultConfig::none(), Some(&out.oracle));
    assert_eq!(read.outcome.corrupt, out.integrity.corrupt_records);
    assert_eq!(
        read.outcome.verified,
        out.result.records.len() - out.integrity.corrupt_records
    );
    assert_eq!(read.outcome.unread, 0);
    // Without the oracle (no checksums) the same read sees nothing.
    let blind = run_restart_read_with(&testbed(), &plan, 15, &FaultConfig::none(), None);
    assert_eq!(blind.outcome.corrupt, 0);
}

/// Scrub repairs corrupt blocks in place when their target is healthy.
#[test]
fn scrub_repairs_in_place_on_healthy_targets() {
    let out = run_with_faults(
        write_spec(41),
        storage_faults(FaultScript::none().silent_corruption(0.0, 1, None, 1.0)),
    );
    let n_corrupt = out.integrity.corrupt_records;
    assert!(n_corrupt > 0, "script must bite");
    let report = run_scrub(
        &testbed(),
        &out.result.records,
        &out.oracle,
        4,
        FaultTolerance::enabled(),
        43,
    );
    assert!(report.fully_repaired(), "{:?}", report.errors);
    assert_eq!(report.outcome.repaired, n_corrupt);
    assert!(report
        .fates
        .iter()
        .all(|f| matches!(f, BlockFate::Verified | BlockFate::RepairedInPlace)));
    assert!(report.repaired_bytes > 0);
    assert_eq!(report.outcome.total(), out.result.records.len());
}

/// When a corrupted block's target has since died, the repair is
/// work-shifted to a spare target instead of abandoned.
#[test]
fn scrub_moves_repairs_off_dead_targets() {
    // Corrupt everything on OST 2 during the run, then model the target
    // dying between the run and the scrub: the oracle snapshot handed to
    // the scrubber reports it both corrupt and dead.
    let mut out = run_with_faults(
        write_spec(45),
        storage_faults(FaultScript::none().silent_corruption(0.0, 2, None, 1.0)),
    );
    out.oracle.dead.push(storesim::layout::OstId(2));
    assert!(out.oracle.is_dead(storesim::layout::OstId(2)));
    let flagged = out
        .result
        .records
        .iter()
        .filter(|r| out.oracle.write_corrupted(r.ost, r.end))
        .count();
    assert!(flagged > 0, "script must bite");
    let report = run_scrub(
        &testbed(),
        &out.result.records,
        &out.oracle,
        4,
        FaultTolerance::enabled(),
        47,
    );
    let moved = report
        .fates
        .iter()
        .filter(|f| **f == BlockFate::RepairedMoved)
        .count();
    assert_eq!(moved, flagged, "every dead-target repair is work-shifted");
    assert_eq!(report.outcome.repaired, moved);
    // Blocks on the dead target that were NOT corrupted read as unread
    // (their bytes are gone with the target), never as verified.
    assert!(report
        .fates
        .iter()
        .zip(&out.result.records)
        .all(|(f, r)| if r.ost.0 == 2 && !out.oracle.write_corrupted(r.ost, r.end) {
            *f == BlockFate::Unreadable
        } else {
            true
        }));
}
