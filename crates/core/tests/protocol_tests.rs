//! Protocol-level integration tests for the transport methods: write
//! completeness, offset discipline, work shifting, index correctness,
//! determinism.

use std::collections::HashMap;

use adios_core::{run, AdaptiveOpts, DataSpec, Interference, Method, RunOutput, RunSpec};
use bpfmt::VarBlock;
use simcore::units::MIB;
use storesim::params::{jaguar, testbed};

fn adaptive_spec(nprocs: usize, targets: usize, bytes: u64, seed: u64) -> RunSpec {
    RunSpec {
        machine: testbed(),
        nprocs,
        data: DataSpec::Uniform(bytes),
        method: Method::Adaptive {
            targets,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed,
    }
}

/// Every file's writes must form a gap-free, non-overlapping byte layout.
fn assert_offsets_sound(out: &RunOutput) {
    let mut by_file: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for r in &out.result.records {
        by_file.entry(r.file.0).or_default().push((r.offset, r.bytes));
    }
    for (file, mut spans) in by_file {
        spans.sort_unstable();
        let mut at = 0;
        for (offset, bytes) in spans {
            assert_eq!(offset, at, "gap or overlap in file {file} at {offset}");
            at = offset + bytes;
        }
    }
}

#[test]
fn adaptive_every_rank_writes_once() {
    let out = run(adaptive_spec(32, 8, 4 * MIB, 1));
    assert_eq!(out.result.records.len(), 32);
    assert_eq!(out.result.total_bytes, 32 * 4 * MIB);
    let mut ranks: Vec<u32> = out.result.records.iter().map(|r| r.rank).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, (0..32).collect::<Vec<_>>());
}

#[test]
fn adaptive_offsets_are_gap_free() {
    for seed in 1..6 {
        let out = run(adaptive_spec(40, 8, 3 * MIB, seed));
        assert_offsets_sound(&out);
    }
}

#[test]
fn adaptive_shifts_work_away_from_a_slow_target() {
    // Hammer OST 1 (group 1's target) with background streams; the
    // coordinator should divert group 1's waiting writers elsewhere.
    let mut spec = adaptive_spec(32, 4, 16 * MIB, 7);
    spec.interference = Interference::CompetingStreams {
        osts: 1,
        streams_per_ost: 6,
        bytes: 256 * MIB,
    };
    // Interference targets OST 0 (the runner counts targets from 0), so
    // group 0 is the slow one here.
    let out = run(spec);
    let adaptive = out.result.adaptive_writes;
    assert!(
        adaptive > 0,
        "work shifting should trigger under asymmetric load"
    );
    // Diverted writers must come from the slow group 0 and land elsewhere.
    let diverted: Vec<_> = out.result.records.iter().filter(|r| r.adaptive).collect();
    for d in &diverted {
        assert_ne!(d.ost.0, 0, "adaptive writes go to non-slowed targets");
    }
    assert_offsets_sound(&out);
}

#[test]
fn stagger_never_shifts_work() {
    let mut spec = adaptive_spec(32, 4, 8 * MIB, 3);
    spec.method = Method::Stagger { targets: 4 };
    spec.interference = Interference::CompetingStreams {
        osts: 1,
        streams_per_ost: 6,
        bytes: 256 * MIB,
    };
    let out = run(spec);
    assert_eq!(out.result.adaptive_writes, 0);
    assert_eq!(out.result.records.len(), 32);
    assert_offsets_sound(&out);
}

#[test]
fn adaptive_beats_stagger_under_asymmetric_load() {
    let interference = Interference::CompetingStreams {
        osts: 1,
        streams_per_ost: 8,
        bytes: 512 * MIB,
    };
    let mut a = adaptive_spec(32, 4, 32 * MIB, 11);
    a.interference = interference.clone();
    let mut s = adaptive_spec(32, 4, 32 * MIB, 11);
    s.method = Method::Stagger { targets: 4 };
    s.interference = interference;
    let adaptive_span = run(a).result.write_span();
    let stagger_span = run(s).result.write_span();
    assert!(
        adaptive_span < stagger_span,
        "adaptive {adaptive_span} should beat stagger {stagger_span} when one target is slow"
    );
}

#[test]
fn one_rank_per_target_degenerate_case() {
    // One rank per group. Work shifting can still fire: the metadata
    // server serialises the group-file opens, so early finishers' files
    // may legitimately absorb the writes of groups still waiting to open.
    let out = run(adaptive_spec(8, 8, 2 * MIB, 5));
    assert_eq!(out.result.records.len(), 8);
    assert_offsets_sound(&out);
}

#[test]
fn writers_per_target_extension_completes() {
    let mut spec = adaptive_spec(48, 4, 4 * MIB, 9);
    spec.method = Method::Adaptive {
        targets: 4,
        opts: AdaptiveOpts {
            writers_per_target: 3,
            ..Default::default()
        },
    };
    let out = run(spec);
    assert_eq!(out.result.records.len(), 48);
    assert_offsets_sound(&out);
}

#[test]
fn drain_first_policy_completes() {
    let mut spec = adaptive_spec(32, 4, 8 * MIB, 13);
    spec.method = Method::Adaptive {
        targets: 4,
        opts: AdaptiveOpts {
            drain_first: true,
            ..Default::default()
        },
    };
    spec.interference = Interference::CompetingStreams {
        osts: 1,
        streams_per_ost: 4,
        bytes: 128 * MIB,
    };
    let out = run(spec);
    assert_eq!(out.result.records.len(), 32);
    assert_offsets_sound(&out);
}

#[test]
fn stagger_opens_and_steal_from_head_complete() {
    let mut spec = adaptive_spec(24, 4, 4 * MIB, 15);
    spec.method = Method::Adaptive {
        targets: 4,
        opts: AdaptiveOpts {
            stagger_opens: true,
            steal_from_tail: false,
            ..Default::default()
        },
    };
    let out = run(spec);
    assert_eq!(out.result.records.len(), 24);
}

#[test]
fn adaptive_is_deterministic_per_seed() {
    // Jaguar preset: production noise enabled, so distinct seeds must
    // diverge while identical seeds reproduce exactly.
    let fingerprint = |seed: u64| {
        let mut spec = adaptive_spec(32, 8, 4 * MIB, seed);
        spec.machine = jaguar();
        let out = run(spec);
        out.result
            .records
            .iter()
            .map(|r| (r.rank, r.end.as_nanos(), r.ost.0 as u64))
            .collect::<Vec<_>>()
    };
    assert_eq!(fingerprint(21), fingerprint(21));
    assert_ne!(fingerprint(21), fingerprint(22));
}

#[test]
fn posix_mode_completes_and_spreads_targets() {
    let spec = RunSpec {
        machine: testbed(),
        nprocs: 32,
        data: DataSpec::Uniform(2 * MIB),
        method: Method::Posix { targets: 8 },
        interference: Interference::None,
        seed: 17,
    };
    let out = run(spec);
    assert_eq!(out.result.records.len(), 32);
    let mut per_ost = [0u32; 8];
    for r in &out.result.records {
        per_ost[r.ost.0] += 1;
    }
    assert!(per_ost.iter().all(|&c| c == 4), "even split: {per_ost:?}");
}

#[test]
fn mpiio_respects_the_stripe_limit() {
    // Jaguar's max stripe count is 160; ask for 512.
    let spec = RunSpec {
        machine: jaguar(),
        nprocs: 320,
        data: DataSpec::Uniform(MIB),
        method: Method::MpiIo { stripe_count: 512 },
        interference: Interference::None,
        seed: 19,
    };
    let out = run(spec);
    assert_eq!(out.result.records.len(), 320);
    let distinct: std::collections::HashSet<usize> =
        out.result.records.iter().map(|r| r.ost.0).collect();
    assert!(
        distinct.len() <= 160,
        "stripe limit must cap targets, got {}",
        distinct.len()
    );
    // 320 ranks over 160 stripes: exactly 2 ranks per target.
    assert_eq!(distinct.len(), 160);
}

#[test]
fn mpiio_heterogeneous_sizes_do_not_overlap() {
    let sizes: Vec<u64> = (0..16).map(|i| (i % 3 + 1) * MIB).collect();
    let spec = RunSpec {
        machine: testbed(),
        nprocs: 16,
        data: DataSpec::PerRank(sizes),
        method: Method::MpiIo { stripe_count: 4 },
        interference: Interference::None,
        seed: 23,
    };
    let out = run(spec);
    let mut spans: Vec<(u64, u64)> = out
        .result
        .records
        .iter()
        .map(|r| (r.offset, r.bytes))
        .collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
    }
}

#[test]
fn real_bytes_mode_roundtrips_through_the_global_index() {
    // 8 ranks each contribute a 1-D slice of a global array.
    let n = 8usize;
    let per = 64u64;
    let blocks: Vec<Vec<VarBlock>> = (0..n)
        .map(|r| {
            let vals: Vec<f64> = (0..per).map(|i| (r as u64 * per + i) as f64).collect();
            vec![VarBlock::from_f64(
                "u",
                vec![n as u64 * per],
                vec![r as u64 * per],
                vec![per],
                &vals,
            )]
        })
        .collect();
    let spec = RunSpec {
        machine: testbed(),
        nprocs: n,
        data: DataSpec::Real(blocks),
        method: Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 29,
    };
    let out = run(spec);
    let gidx = out.global_index.expect("global index built");
    let files = out.subfiles.expect("subfiles captured");
    // Every subfile must carry a parseable local index.
    for bytes in files.values() {
        bpfmt::LocalIndex::parse(bytes).expect("valid local index");
    }
    // Restart read: the full array comes back in order.
    let all = bpfmt::read_global_f64(&gidx, &files, "u", 0).expect("restart read");
    let expect: Vec<f64> = (0..n as u64 * per).map(|x| x as f64).collect();
    assert_eq!(all, expect);
    // Characteristics-driven content query: only one block may contain 100.
    let hits: Vec<_> = gidx.find_range("u", 100.0, 100.5).collect();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].1.rank, 1, "value 100 lives in rank 1's block");
}

#[test]
fn real_bytes_mode_with_interference_still_roundtrips() {
    let n = 12usize;
    let per = 32u64;
    let blocks: Vec<Vec<VarBlock>> = (0..n)
        .map(|r| {
            let vals: Vec<f64> = (0..per).map(|i| (r as u64 * per + i) as f64 * 0.5).collect();
            vec![VarBlock::from_f64(
                "v",
                vec![n as u64 * per],
                vec![r as u64 * per],
                vec![per],
                &vals,
            )]
        })
        .collect();
    let spec = RunSpec {
        machine: testbed(),
        nprocs: n,
        data: DataSpec::Real(blocks),
        method: Method::Adaptive {
            targets: 3,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::CompetingStreams {
            osts: 1,
            streams_per_ost: 4,
            bytes: 64 * MIB,
        },
        seed: 31,
    };
    let out = run(spec);
    let gidx = out.global_index.expect("global index");
    let files = out.subfiles.expect("subfiles");
    let all = bpfmt::read_global_f64(&gidx, &files, "v", 0).expect("restart read");
    let expect: Vec<f64> = (0..n as u64 * per).map(|x| x as f64 * 0.5).collect();
    assert_eq!(
        all, expect,
        "data must survive even when writes were shifted adaptively"
    );
}

#[test]
fn heterogeneous_sizes_lay_out_correctly_in_adaptive_mode() {
    let sizes: Vec<u64> = (1..=24).map(|i| (i % 4 + 1) * MIB).collect();
    let spec = RunSpec {
        machine: testbed(),
        nprocs: 24,
        data: DataSpec::PerRank(sizes.clone()),
        method: Method::Adaptive {
            targets: 6,
            opts: AdaptiveOpts::default(),
        },
        interference: Interference::None,
        seed: 37,
    };
    let out = run(spec);
    assert_eq!(out.result.total_bytes, sizes.iter().sum::<u64>());
    assert_offsets_sound(&out);
}

/// §III-B3, measured: "This adaptive mechanism scales according to the
/// number of storage targets rather than the number of writers" — the
/// coordinator's inbox must grow with the target count, not the writer
/// count, and the number of simultaneous adaptive requests is strictly
/// bounded by targets − 1.
#[test]
fn coordinator_load_scales_with_targets_not_writers() {
    let run_with = |nprocs: usize| {
        let out = run(adaptive_spec(nprocs, 8, 4 * MIB, 41));
        out.protocol.expect("adaptive runs report protocol stats")
    };
    let small = run_with(32);
    let big = run_with(128);
    // 4x the writers: the coordinator inbox may grow with adaptive
    // activity, but must stay far below per-writer proportionality.
    assert!(
        big.coordinator_inbox < small.coordinator_inbox * 4,
        "coordinator inbox {} -> {} grew like the writer count",
        small.coordinator_inbox,
        big.coordinator_inbox
    );
    assert!(small.max_outstanding_adaptive <= 7, "bound is SCcount-1");
    assert!(big.max_outstanding_adaptive <= 7, "bound is SCcount-1");
    // Total message volume is writer-proportional (each writer sends a
    // completion + an index body), but no single rank melts down: the
    // busiest inbox stays well below total.
    assert!(big.busiest_rank_inbox * 2 < big.total_messages);
}

/// Writers and the coordinator never talk directly: rank 0 (the C) only
/// receives coordinator-class traffic plus whatever it gets in its SC and
/// writer roles; plain writers receive only WriteNow assignments.
#[test]
fn plain_writers_receive_only_assignments() {
    let out = run(adaptive_spec(32, 4, 4 * MIB, 43));
    // Can't inspect actors directly through the runner, but the protocol
    // totals imply it: each of the 32 writers gets >= 1 WriteNow, each
    // write produces 1-2 WriteComplete + 1 IndexBody to SCs, SCs send a
    // bounded set to C.
    let p = out.protocol.unwrap();
    assert!(p.total_messages >= 32 * 2, "assignment + completion floor");
}

/// §V (Antypas & Uselton): "a small number of slow storage targets
/// greatly increased total IO time" — and the adaptive method routes
/// around them while stagger cannot.
#[test]
fn adaptive_routes_around_degraded_targets() {
    let degraded = Interference::DegradedOsts {
        osts: vec![0, 1],
        factor: 0.08,
    };
    let mut a = adaptive_spec(32, 4, 32 * MIB, 51);
    a.interference = degraded.clone();
    let mut s = adaptive_spec(32, 4, 32 * MIB, 51);
    s.method = Method::Stagger { targets: 4 };
    s.interference = degraded;
    let adaptive = run(a);
    let stagger = run(s);
    assert!(adaptive.result.adaptive_writes > 0, "shifting must engage");
    assert!(
        adaptive.result.write_span() < 0.7 * stagger.result.write_span(),
        "adaptive {} should strongly beat stagger {} with dying targets",
        adaptive.result.write_span(),
        stagger.result.write_span()
    );
    // Diverted writes land off the degraded targets.
    for r in adaptive.result.records.iter().filter(|r| r.adaptive) {
        assert!(r.ost.0 > 1, "adaptive write landed on a degraded target");
    }
}
