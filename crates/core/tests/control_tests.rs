//! Closed-loop straggler defense: rescue, exactly-once accounting,
//! kill-during-speculation, reaper interplay and thread determinism.
//!
//! Contracts pinned here:
//!
//! 1. A limping disk that dominates the static schedule is rescued by
//!    the control loop (flag → divert → speculative re-issue), with
//!    every byte accounted for exactly once.
//! 2. Speculative duplicates never double-count: one data record per
//!    rank, no overlapping extents, `written + lost == total` — even
//!    under a duplicating, delaying network.
//! 3. Killing the writer while its speculation is in flight degrades to
//!    a clean structured failure (the sweep reaper reclaims the member,
//!    its speculation is cancelled at the coordinator, the run ends).
//! 4. An aggressive sweep reaper does not reclaim a member whose
//!    speculative re-issue is pending (the grant refreshes the
//!    assignment clock).
//! 5. The control loop stays deterministic across sweep worker threads.

use adios_core::control::ControlOpts;
use adios_core::fault::{FaultConfig, FaultTolerance, NetFaults, SimError};
use adios_core::runner::{DataSpec, Interference, Method, RunBase, RunOutput, RunSpec};
use adios_core::{run_with_faults, AdaptiveOpts};
use simcore::units::MIB;
use storesim::params::testbed;
use storesim::FaultScript;

const NPROCS: usize = 32;
const BYTES: u64 = 64 * MIB;
const TARGETS: usize = 8;

fn opts(control: bool) -> AdaptiveOpts {
    AdaptiveOpts {
        fault: FaultTolerance::enabled(),
        control: if control {
            ControlOpts::enabled()
        } else {
            ControlOpts::default()
        },
        ..AdaptiveOpts::default()
    }
}

fn spec(method: Method, seed: u64) -> RunSpec {
    RunSpec {
        machine: testbed(),
        nprocs: NPROCS,
        data: DataSpec::Uniform(BYTES),
        method,
        interference: Interference::None,
        seed,
    }
}

fn limping(factor: f64) -> FaultConfig {
    FaultConfig {
        storage: FaultScript::none().limping(0.0, 0, factor),
        ..Default::default()
    }
}

/// Assert the exactly-once invariants on a completed run: every rank has
/// one data record, extents within a file never overlap, and the byte
/// ledger balances.
fn assert_exactly_once(out: &RunOutput, label: &str) {
    assert_eq!(
        out.outcome.written_bytes + out.outcome.lost_bytes,
        out.outcome.total_bytes,
        "{label}: byte ledger does not balance"
    );
    let mut per_rank = vec![0usize; NPROCS];
    for r in &out.result.records {
        per_rank[r.rank as usize] += 1;
    }
    for (rank, &n) in per_rank.iter().enumerate() {
        assert!(n <= 1, "{label}: rank {rank} has {n} data records");
    }
    let mut extents: Vec<(u32, u64, u64)> = out
        .result
        .records
        .iter()
        .map(|r| (r.file.0, r.offset, r.offset + r.bytes))
        .collect();
    extents.sort_unstable();
    for w in extents.windows(2) {
        let ((f0, _, end0), (f1, start1, _)) = (w[0], w[1]);
        assert!(
            f0 != f1 || end0 <= start1,
            "{label}: overlapping extents in file {f0}"
        );
    }
}

#[test]
fn closed_loop_rescues_limping_disk() {
    let faults = limping(0.05);
    let stat = run_with_faults(
        spec(Method::Adaptive { targets: TARGETS, opts: opts(false) }, 1),
        faults.clone(),
    );
    let ctl = run_with_faults(
        spec(Method::Adaptive { targets: TARGETS, opts: opts(true) }, 1),
        faults,
    );
    assert!(stat.outcome.complete && ctl.outcome.complete);
    assert_eq!(ctl.outcome.lost_bytes, 0);
    let p = ctl.protocol.as_ref().expect("adaptive run has protocol stats");
    assert!(p.spec_won >= 1, "no speculation won the race");
    assert!(p.spec_won <= p.spec_granted);
    assert!(
        ctl.result.full_span < 0.6 * stat.result.full_span,
        "closed loop {:.2}s did not decisively beat static {:.2}s",
        ctl.result.full_span,
        stat.result.full_span
    );
    assert_exactly_once(&ctl, "rescue");
    // The static run must not have speculated at all.
    assert_eq!(stat.protocol.as_ref().unwrap().spec_granted, 0);
}

#[test]
fn exactly_once_under_limping_and_lossy_network() {
    for seed in 0..8u64 {
        let faults = FaultConfig {
            storage: FaultScript::none().limping(0.0, 0, 0.04),
            network: Some(NetFaults {
                dup_p: 0.3,
                delay_p: 0.3,
                delay_mean_secs: 0.05,
            }),
            ..Default::default()
        };
        let out = run_with_faults(
            spec(Method::Adaptive { targets: TARGETS, opts: opts(true) }, seed),
            faults,
        );
        assert!(out.outcome.complete, "seed {seed}: run incomplete");
        assert_eq!(out.outcome.lost_bytes, 0, "seed {seed}: bytes lost");
        assert_exactly_once(&out, &format!("lossy seed {seed}"));
    }
}

#[test]
fn kill_during_speculation_degrades_to_structured_failure() {
    // Find the member stuck on the limped OST from a static run, then
    // kill exactly that rank in the closed-loop run while its
    // speculative re-issue is in flight (grant lands ~5 s in, the spec
    // write needs ~0.8 s).
    let faults = limping(0.005);
    let stat = run_with_faults(
        spec(Method::Adaptive { targets: TARGETS, opts: opts(false) }, 1),
        faults.clone(),
    );
    let stuck = stat
        .result
        .records
        .iter()
        .filter(|r| r.ost.0 == 0)
        .max_by(|a, b| {
            let da = a.end.as_nanos() - a.start.as_nanos();
            let db = b.end.as_nanos() - b.start.as_nanos();
            da.cmp(&db)
        })
        .expect("someone wrote to the limped OST")
        .rank;

    let killed = FaultConfig {
        kills: vec![(5.2, stuck)],
        ..faults
    };
    let out = run_with_faults(
        spec(Method::Adaptive { targets: TARGETS, opts: opts(true) }, 1),
        killed,
    );
    // The run must terminate as a structured partial failure, not a
    // hang: the sweep reaper reclaims the dead member, the coordinator
    // drops its speculation, everyone else lands.
    assert!(!out.outcome.complete);
    assert_eq!(out.outcome.lost_bytes, BYTES, "exactly the dead rank's bytes");
    assert!(
        out.errors
            .iter()
            .any(|e| matches!(e, SimError::RankFailed { rank, .. } if *rank == stuck)),
        "expected a RankFailed for the killed rank, got {:?}",
        out.errors
    );
    assert_exactly_once(&out, "kill-during-spec");
    let p = out.protocol.as_ref().unwrap();
    assert!(p.spec_granted >= 1, "the kill landed before any grant");
}

#[test]
fn aggressive_reaper_spares_speculating_members() {
    // Sweep every second with the smallest reachable reap budget; the
    // grant must keep refreshing the member's clock so the reaper never
    // reclaims a member whose speculation is pending.
    let mut o = opts(true);
    o.fault.sweep_interval_secs = 1.0;
    o.fault.write_timeout_secs = 600.0; // no retry interference
    let out = run_with_faults(
        spec(Method::Adaptive { targets: TARGETS, opts: o }, 3),
        limping(0.01),
    );
    assert!(out.outcome.complete);
    assert_eq!(out.outcome.lost_bytes, 0);
    let p = out.protocol.as_ref().unwrap();
    assert!(p.spec_won >= 1);
    assert_exactly_once(&out, "reaper");
}

#[test]
fn control_sweep_is_thread_count_invariant() {
    for (label, faults) in [
        ("clean", FaultConfig::none()),
        ("limping", limping(0.05)),
    ] {
        let base = RunBase::prepare(spec(
            Method::Adaptive { targets: TARGETS, opts: opts(true) },
            0,
        ));
        let seeds: Vec<u64> = (0..12).collect();
        let mut serial = base.sweep_sink();
        base.run_seed_sweep_into_threads(1, &seeds, &faults, &mut serial);
        let want = serial.report().to_string();
        for nt in [2usize, 8] {
            let mut sink = base.sweep_sink();
            base.run_seed_sweep_into_threads(nt, &seeds, &faults, &mut sink);
            assert_eq!(sink.report().to_string(), want, "{label} nthreads={nt}");
        }
    }
}
