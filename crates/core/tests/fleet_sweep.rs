//! Fleet sweep engine: warm-scratch equivalence and streaming sweep
//! determinism.
//!
//! Three contracts pinned here:
//!
//! 1. A [`RunScratch`] warmed by previous seeds produces outputs
//!    byte-identical to cold per-seed construction, for every transport
//!    method, faulted or not (the per-worker arena contract).
//! 2. The streaming sweep ([`RunBase::run_seed_sweep_into_threads`])
//!    yields a report byte-identical to collecting every [`RunOutput`]
//!    and folding serially.
//! 3. That report is identical at 1, 2 and 8 worker threads — faulted
//!    runs included — because the sink's accumulators are exactly
//!    order-independent.

use adios_core::fault::FaultConfig;
use adios_core::runner::{DataSpec, Interference, Method, RunBase, RunOutput, RunScratch, RunSpec};
use adios_core::AdaptiveOpts;
use simcore::units::MIB;
use storesim::fault::{FailMode, FaultScript};
use storesim::params::testbed;

fn base(method: Method, nprocs: usize, interference: Interference) -> RunBase {
    RunBase::prepare(RunSpec {
        machine: testbed(),
        nprocs,
        data: DataSpec::Uniform(4 * MIB),
        method,
        interference,
        seed: 0,
    })
}

fn methods() -> Vec<(&'static str, Method)> {
    vec![
        ("posix", Method::Posix { targets: 8 }),
        ("mpiio", Method::MpiIo { stripe_count: 4 }),
        ("stagger", Method::Stagger { targets: 4 }),
        (
            "adaptive",
            Method::Adaptive {
                targets: 4,
                opts: AdaptiveOpts::default(),
            },
        ),
    ]
}

/// Strict fingerprint of everything a sweep consumes from a run.
fn fingerprint(out: &RunOutput) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for r in &out.result.records {
        write!(
            s,
            "{}:{}:{}:{}:{}:{}:{}:{};",
            r.rank,
            r.bytes,
            r.start.as_nanos(),
            r.end.as_nanos(),
            r.ost.0,
            r.file.0,
            r.offset,
            r.adaptive
        )
        .unwrap();
    }
    write!(
        s,
        "|w{}|l{}|e{}|c{}|f{:.9}",
        out.outcome.written_bytes,
        out.outcome.lost_bytes,
        out.errors.len(),
        out.integrity.corrupt_records,
        out.result.full_span
    )
    .unwrap();
    s
}

fn storage_faults() -> FaultConfig {
    FaultConfig {
        storage: FaultScript::none()
            .brownout(0.5, 0, 0.3, 5.0)
            .fail_ost(1.0, 2, FailMode::Error, Some(10.0))
            .silent_corruption(0.0, 1, None, 0.4),
        ..Default::default()
    }
}

#[test]
fn warm_scratch_matches_cold_for_every_method() {
    for (name, method) in methods() {
        let base = base(method, 16, Interference::None);
        let mut scratch = RunScratch::new();
        // Warm the scratch on an unrelated seed first so every checked
        // seed actually exercises the reset-and-reuse path.
        base.run_seed_scratch(999, &FaultConfig::none(), &mut scratch);
        for seed in [1u64, 2, 42] {
            let warm = base.run_seed_scratch(seed, &FaultConfig::none(), &mut scratch);
            let cold = base.run_seed(seed);
            assert_eq!(
                fingerprint(&warm),
                fingerprint(&cold),
                "{name} seed {seed}: warm scratch diverged from cold run"
            );
        }
    }
}

#[test]
fn warm_scratch_matches_cold_under_faults() {
    let faults = storage_faults();
    for (name, method) in methods() {
        let base = base(method, 16, Interference::None);
        let mut scratch = RunScratch::new();
        base.run_seed_scratch(999, &faults, &mut scratch);
        for seed in [3u64, 7] {
            let warm = base.run_seed_scratch(seed, &faults, &mut scratch);
            let cold = base.run_seed_with_faults(seed, &faults);
            assert_eq!(
                fingerprint(&warm),
                fingerprint(&cold),
                "{name} seed {seed}: faulted warm scratch diverged"
            );
        }
    }
}

#[test]
fn scratch_reused_across_different_bases_rebuilds_cold() {
    // A scratch warmed on one base must not leak state into a different
    // base (different plan ⇒ cold rebuild, still correct).
    let posix = base(Method::Posix { targets: 8 }, 16, Interference::None);
    let mpiio = base(Method::MpiIo { stripe_count: 4 }, 16, Interference::None);
    let mut scratch = RunScratch::new();
    posix.run_seed_scratch(5, &FaultConfig::none(), &mut scratch);
    let crossed = mpiio.run_seed_scratch(5, &FaultConfig::none(), &mut scratch);
    let cold = mpiio.run_seed(5);
    assert_eq!(fingerprint(&crossed), fingerprint(&cold));
    // And back again.
    let returned = posix.run_seed_scratch(6, &FaultConfig::none(), &mut scratch);
    assert_eq!(fingerprint(&returned), fingerprint(&posix.run_seed(6)));
}

#[test]
fn streaming_sweep_matches_collect_and_serial_fold() {
    let base = base(
        Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts::default(),
        },
        16,
        Interference::None,
    );
    let seeds: Vec<u64> = (0..24).collect();

    // Reference: materialize every RunOutput (seed order), fold serially.
    let mut want = base.sweep_sink();
    for (out, &seed) in base.run_seed_sweep(&seeds).iter().zip(&seeds) {
        want.add_sample(&out.sweep_sample(seed));
    }

    let mut got = base.sweep_sink();
    base.run_seed_sweep_into(&seeds, &mut got);
    assert_eq!(got.report().to_string(), want.report().to_string());
    assert_eq!(got.samples(), seeds.len() as u64);
    assert_eq!(got.failed_samples(), 0);
    assert!(got.bandwidth().mean() > 0.0);
}

#[test]
fn streaming_sweep_is_thread_count_invariant() {
    let base = base(Method::Posix { targets: 8 }, 16, Interference::None);
    let seeds: Vec<u64> = (100..140).collect();
    let mut serial = base.sweep_sink();
    base.run_seed_sweep_into_threads(1, &seeds, &FaultConfig::none(), &mut serial);
    let want = serial.report().to_string();
    for nt in [2usize, 8] {
        let mut sink = base.sweep_sink();
        base.run_seed_sweep_into_threads(nt, &seeds, &FaultConfig::none(), &mut sink);
        assert_eq!(sink.report().to_string(), want, "nthreads={nt}");
    }
}

#[test]
fn streaming_sweep_is_thread_count_invariant_under_faults() {
    let faults = storage_faults();
    let base = base(
        Method::Adaptive {
            targets: 4,
            opts: AdaptiveOpts::default(),
        },
        16,
        Interference::None,
    );
    let seeds: Vec<u64> = (0..20).collect();
    let mut serial = base.sweep_sink();
    base.run_seed_sweep_into_threads(1, &seeds, &faults, &mut serial);
    let want = serial.report().to_string();
    assert!(
        serial.total_bytes() > 0,
        "faulted sweep still writes most bytes"
    );
    for nt in [2usize, 8] {
        let mut sink = base.sweep_sink();
        base.run_seed_sweep_into_threads(nt, &seeds, &faults, &mut sink);
        assert_eq!(sink.report().to_string(), want, "nthreads={nt}");
    }
}

#[test]
fn killed_runs_become_failed_samples_not_poisoned_metrics() {
    // Kill every rank at t=0: no write records at all. The sample must
    // count as failed and keep the distribution metrics clean.
    let faults = FaultConfig {
        kills: (0..16).map(|r| (0.0, r)).collect(),
        ..Default::default()
    };
    let base = base(Method::Posix { targets: 8 }, 16, Interference::None);
    let seeds: Vec<u64> = (0..4).collect();
    let mut sink = base.sweep_sink();
    base.run_seed_sweep_into_threads(2, &seeds, &faults, &mut sink);
    assert_eq!(sink.samples(), 4);
    assert_eq!(sink.failed_samples(), 4);
    assert_eq!(sink.bandwidth().n(), 0);
    assert_eq!(sink.total_bytes(), 0);
}

#[test]
fn sweep_sample_extraction_matches_run_output() {
    let base = base(Method::Posix { targets: 8 }, 16, Interference::None);
    let out = base.run_seed(11);
    let s = out.sweep_sample(11);
    assert_eq!(s.seed, 11);
    assert!(!s.failed);
    assert_eq!(s.bandwidth, out.result.aggregate_bandwidth());
    assert_eq!(s.write_span, out.result.write_span());
    assert_eq!(s.imbalance, out.result.imbalance_factor());
    let times = out.result.per_writer_times();
    let direct = iostats::Summary::of(&times).std_dev;
    assert!((s.write_time_std - direct).abs() <= 1e-12 * direct.max(1.0));
    assert_eq!(s.total_bytes, out.outcome.written_bytes);
    assert_eq!(s.ost_bytes.len(), out.result.records.len());
}
