//! Allocation regression guard for the fleet sweep's per-worker arenas.
//!
//! A counting global allocator wraps `System`. Two windows are counted:
//!
//! 1. **Storage layer, strict**: after a warmup seed has grown every slab
//!    and scratch buffer to steady-state capacity, a full
//!    reset-and-replay cycle of a [`storesim::StorageSystem`] (reset,
//!    file writes, raw OST writes, drain to quiet) must hit the allocator
//!    **zero** times. This is the contract `StorageSystem::reset` exists
//!    for.
//! 2. **Full co-simulation seed, ratio**: one warm-scratch sweep seed
//!    must allocate well under half of what a cold seed does — the
//!    protocol/actor layer still builds per-run objects, but the storage
//!    layer (the dominant cold cost: hundreds of OST engines, queues,
//!    noise processes) must be fully recycled.
//!
//! This file deliberately holds a single test: the counter is global, so
//! a concurrently running sibling test would perturb the windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adios_core::fault::FaultConfig;
use adios_core::runner::{DataSpec, Interference, Method, RunBase, RunScratch, RunSpec};
use simcore::units::MIB;
use simcore::{SimDuration, SimTime};
use storesim::layout::{FileId, OstId, StripeSpec};
use storesim::params::jaguar;
use storesim::StorageSystem;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// One storage-layer seed: reset, submit a mixed write/read load
/// (distinct sizes so completions spread in time), drain to quiet through
/// the caller-owned completion buffer.
fn storage_seed(
    sys: &mut StorageSystem,
    seed: u64,
    out: &mut Vec<storesim::system::StorageCompletion>,
) -> usize {
    sys.reset(seed);
    let file = FileId(0);
    sys.submit_open(SimTime::ZERO, 1);
    for i in 0..24u64 {
        let at = SimTime::ZERO + SimDuration::from_millis(i * 2);
        sys.submit_file_write(at, file, i * 2 * MIB, MIB + i * 8192, 100 + i);
        sys.submit_ost_write(at, OstId((i % 8) as usize), MIB + i * 4096, 200 + i);
    }
    sys.submit_file_read(SimTime::from_secs_f64(0.25), file, 0, 4 * MIB, 300);
    sys.submit_close(SimTime::from_secs_f64(0.3), 301);
    out.clear();
    sys.run_until_quiet_into(SimTime::from_secs_f64(1e6), out);
    out.len()
}

#[test]
fn steady_state_sweep_seeds_stop_allocating() {
    // ---- Window 1: the storage layer proper. ----
    let cfg = std::sync::Arc::new(jaguar());
    let mut sys = StorageSystem::new(cfg, 0);
    sys.create_file_with_stripe_size(
        "sweep.bp",
        StripeSpec::Pinned(vec![OstId(0), OstId(1), OstId(2), OstId(3)]),
        MIB,
    );
    let mut out = Vec::new();
    // Warmup: grow queue slabs, scratch buffers, map tables, completion
    // buffer to steady state (two seeds, in case first-touch growth paths
    // differ by seed).
    let want = storage_seed(&mut sys, 1, &mut out);
    storage_seed(&mut sys, 2, &mut out);
    assert!(want > 0, "warmup produced completions");

    let before = allocs();
    let mut total = 0usize;
    for seed in 3..23u64 {
        total += storage_seed(&mut sys, seed, &mut out);
    }
    let storage_allocs = allocs() - before;
    assert!(total >= 20 * want, "every seed drained fully");
    assert_eq!(
        storage_allocs, 0,
        "steady-state storage seeds allocated {storage_allocs} times over 20 seeds"
    );

    // ---- Window 2: full co-simulation seeds, warm vs cold. ----
    let base = RunBase::prepare(RunSpec {
        machine: jaguar(),
        nprocs: 32,
        data: DataSpec::Uniform(2 * MIB),
        method: Method::Posix { targets: 8 },
        interference: Interference::None,
        seed: 0,
    });
    let faults = FaultConfig::none();

    // Cold: a fresh scratch per seed — every seed rebuilds the storage
    // system from nothing.
    let before = allocs();
    for seed in 0..8u64 {
        let mut scratch = RunScratch::new();
        std::hint::black_box(base.run_seed_scratch(seed, &faults, &mut scratch));
    }
    let cold = allocs() - before;

    // Warm: one scratch across all seeds (plus a warmup seed outside the
    // window).
    let mut scratch = RunScratch::new();
    std::hint::black_box(base.run_seed_scratch(99, &faults, &mut scratch));
    let before = allocs();
    for seed in 0..8u64 {
        std::hint::black_box(base.run_seed_scratch(seed, &faults, &mut scratch));
    }
    let warm = allocs() - before;

    assert!(
        warm * 2 < cold,
        "warm sweep seeds should allocate well under half of cold ones \
         (warm {warm} vs cold {cold} over 8 seeds)"
    );
}
