//! Tiered-redundancy integration suite: the shard-write campaign, damage
//! assessment against the placement-aware oracle, the lazy rebuild pass,
//! and real-bytes online policy switching.

use adios_core::{place_shards, run_redundant, RedundancyOpts, RedundantObject, ShardState};
use bpfmt::ec::RedundancyPolicy;
use bpfmt::EncodeScratch;
use simcore::units::MIB;
use storesim::fault::FailMode;
use storesim::params::testbed;
use storesim::{FaultScript, MachineConfig};

/// Testbed with enough targets for the widest code under test
/// (`Ec{8,2}` = 10 distinct shards).
fn machine(osts: usize) -> MachineConfig {
    let mut m = testbed();
    m.ost_count = osts;
    m
}

fn payloads(nprocs: usize, bytes: u64) -> Vec<u64> {
    vec![bytes; nprocs]
}

#[test]
fn placement_spreads_shards_over_distinct_targets() {
    for pg in 0..16 {
        let p = place_shards(pg, 6, 12, &[]);
        let mut osts: Vec<usize> = p.iter().map(|o| o.0).collect();
        osts.sort_unstable();
        osts.dedup();
        assert_eq!(osts.len(), 6, "pg {pg}: all shards on distinct OSTs");
    }
    // Different groups anchor differently (load spreads).
    assert_ne!(place_shards(0, 4, 12, &[]), place_shards(1, 4, 12, &[]));
}

#[test]
fn placement_skips_flagged_targets_when_possible() {
    let avoid = vec![0, 3];
    for pg in 0..8 {
        for ost in place_shards(pg, 6, 12, &avoid) {
            assert!(!avoid.contains(&ost.0), "pg {pg} placed on flagged OST {}", ost.0);
        }
    }
    // When the healthy pool is too small, durability wins over steering:
    // the full target set is used rather than doubling up on 2 targets.
    let tight = place_shards(0, 4, 4, &[1, 2]);
    let mut osts: Vec<usize> = tight.iter().map(|o| o.0).collect();
    osts.sort_unstable();
    osts.dedup();
    assert_eq!(osts.len(), 4, "falls back to the full set, still distinct");
}

#[test]
fn clean_campaign_stores_every_shard_intact() {
    let opts = RedundancyOpts::with_policy(RedundancyPolicy::Ec { k: 4, m: 2 });
    let report = run_redundant(
        &machine(12),
        &payloads(8, 4 * MIB),
        &FaultScript::none(),
        &opts,
        7,
    );
    assert_eq!(report.records.len(), 8 * 6);
    assert!(report.states.iter().all(|s| *s == ShardState::Intact));
    assert_eq!(report.damaged_pgs, 0);
    assert_eq!(report.bytes_rewritten, 0);
    assert!(report.fully_durable());
    assert!(report.outcome.complete, "clean campaign is complete: {:?}", report.errors);
    // Systematic k+m storage overhead: 6 shards of ceil(payload/4).
    let expect = 8 * 6 * (4 * MIB).div_ceil(4);
    assert_eq!(report.bytes_stored, expect);
}

#[test]
fn campaign_is_seed_reproducible() {
    let opts = RedundancyOpts::with_policy(RedundancyPolicy::Ec { k: 4, m: 2 });
    let script = FaultScript::none().fail_ost(0.5, 2, FailMode::Error, None);
    let a = run_redundant(&machine(12), &payloads(8, 4 * MIB), &script, &opts, 42);
    let b = run_redundant(&machine(12), &payloads(8, 4 * MIB), &script, &opts, 42);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn destroyed_data_is_lazily_rebuilt() {
    // OST 2 dies (error mode, destroyed data) mid-campaign and never
    // recovers: every shard it held is lost, every in-flight write to it
    // errors and re-places. The rebuild must restore every damaged
    // extent from survivors.
    let opts = RedundancyOpts::with_policy(RedundancyPolicy::Ec { k: 4, m: 2 });
    let script = FaultScript::none().fail_ost(1.0, 2, FailMode::Error, None);
    let report = run_redundant(&machine(12), &payloads(16, 4 * MIB), &script, &opts, 11);
    let lost = report
        .states
        .iter()
        .filter(|s| **s == ShardState::Lost)
        .count();
    assert!(lost > 0, "the dead OST must have destroyed some completed shards");
    assert!(report.damaged_pgs > 0);
    assert_eq!(report.rebuilt_pgs, report.damaged_pgs, "errors: {:?}", report.errors);
    assert_eq!(report.unrecoverable_pgs, 0);
    assert!(report.fully_durable());
    // Lazy rebuild rewrites only damaged extents: strictly less traffic
    // than re-materializing the damaged groups wholesale.
    assert!(report.bytes_rewritten > 0);
    let shard_len = (4 * MIB).div_ceil(4);
    assert_eq!(report.bytes_rewritten % shard_len, 0, "rewrites are whole shards");
    assert!(report.bytes_rewritten < report.damaged_pgs as u64 * 4 * MIB);
    assert_eq!(report.bytes_reconstructed, report.bytes_rewritten);
}

#[test]
fn ec_repairs_cheaper_than_replication_at_equal_durability() {
    // Same destroyed-data schedule, same payloads: Ec{4,2} must end just
    // as durable as Replicate(2) while rewriting strictly fewer bytes —
    // the tentpole's win condition, asserted per seed.
    let script = FaultScript::none()
        .fail_ost(0.8, 1, FailMode::Error, None)
        .fail_ost(1.2, 5, FailMode::Error, Some(30.0));
    let mut ec_total = 0u64;
    let mut rep_total = 0u64;
    for seed in 0..4 {
        let ec = run_redundant(
            &machine(12),
            &payloads(16, 4 * MIB),
            &script,
            &RedundancyOpts::with_policy(RedundancyPolicy::Ec { k: 4, m: 2 }),
            seed,
        );
        let rep = run_redundant(
            &machine(12),
            &payloads(16, 4 * MIB),
            &script,
            &RedundancyOpts::with_policy(RedundancyPolicy::Replicate(2)),
            seed,
        );
        assert!(ec.fully_durable(), "seed {seed}: {:?}", ec.errors);
        assert!(rep.fully_durable(), "seed {seed}: {:?}", rep.errors);
        ec_total += ec.bytes_rewritten;
        rep_total += rep.bytes_rewritten;
    }
    assert!(rep_total > 0, "the schedule must actually destroy data");
    assert!(
        ec_total < rep_total,
        "EC repair traffic ({ec_total}) must undercut replication ({rep_total})"
    );
}

#[test]
fn correlated_loss_within_m_always_reconstructs() {
    // Two targets die at the same instant, after the write phase: every
    // group loses at most m = 2 shards (placement is distinct), so every
    // group must rebuild.
    let opts = RedundancyOpts::with_policy(RedundancyPolicy::Ec { k: 4, m: 2 });
    let script = FaultScript::none().correlated_loss(20.0, 3, 2, None);
    let report = run_redundant(&machine(12), &payloads(12, 4 * MIB), &script, &opts, 3);
    assert!(report.damaged_pgs > 0, "losses must hit some group");
    assert_eq!(report.unrecoverable_pgs, 0);
    assert!(report.fully_durable(), "errors: {:?}", report.errors);
}

#[test]
fn correlated_loss_beyond_m_is_structured_unrecoverable() {
    // Ec{2,1} tolerates one loss; a correlated triple-loss after the
    // write phase wipes a whole placement group. The campaign must
    // report a structured Unrecoverable error, never garbage or a panic.
    let opts = RedundancyOpts::with_policy(RedundancyPolicy::Ec { k: 2, m: 1 });
    let script = FaultScript::none().correlated_loss(20.0, 0, 3, None);
    let report = run_redundant(&machine(4), &payloads(4, MIB), &script, &opts, 5);
    assert!(report.unrecoverable_pgs > 0, "a wiped group must be unrecoverable");
    assert!(!report.fully_durable());
    assert!(
        report.errors.iter().any(|e| matches!(
            e,
            adios_core::SimError::Unrecoverable { need: 2, .. }
        )),
        "errors: {:?}",
        report.errors
    );
    assert_eq!(
        report.outcome.written_bytes + report.outcome.lost_bytes,
        report.outcome.total_bytes
    );
    assert!(report.outcome.lost_bytes > 0);
}

#[test]
fn replication_survives_single_loss() {
    let opts = RedundancyOpts::with_policy(RedundancyPolicy::Replicate(2));
    let script = FaultScript::none().fail_ost(1.0, 0, FailMode::Error, None);
    let report = run_redundant(&machine(8), &payloads(8, 2 * MIB), &script, &opts, 9);
    assert!(report.fully_durable(), "errors: {:?}", report.errors);
    // Replication repair recopies whole extents.
    if report.damaged_pgs > 0 {
        assert_eq!(report.bytes_rewritten % (2 * MIB), 0);
        assert_eq!(report.bytes_reconstructed, 0, "no decode math in replication");
    }
}

#[test]
fn flagged_targets_are_skipped_by_the_campaign() {
    // Flag OST 0 (as the control loop's tracker would): no initial shard
    // placement may use it.
    let mut opts = RedundancyOpts::with_policy(RedundancyPolicy::Ec { k: 4, m: 2 });
    opts.avoid_osts = vec![0];
    let report = run_redundant(&machine(12), &payloads(8, MIB), &FaultScript::none(), &opts, 2);
    assert!(report.records.iter().all(|r| r.ost.0 != 0));
    assert!(report.fully_durable());
}

#[test]
fn policy_switch_online_preserves_payload() {
    let payload: Vec<u8> = (0..400_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
    let mut obj = RedundantObject::encode(3, 1, RedundancyPolicy::Replicate(2), &payload).unwrap();
    // Degrade: lose one copy, then upgrade the live object to Ec{8,2}.
    obj.damage(0);
    obj.switch_policy(RedundancyPolicy::Ec { k: 8, m: 2 }).unwrap();
    assert_eq!(obj.policy, RedundancyPolicy::Ec { k: 8, m: 2 });
    assert_eq!(obj.shard_pgs.len(), 10);
    assert_eq!(obj.payload().unwrap(), payload);
    // The upgraded object honors its new tolerance: lose m shards, still whole.
    obj.damage(1);
    obj.damage(9);
    assert_eq!(obj.payload().unwrap(), payload);
    // And the lazy rebuild restores byte-identical shard PGs.
    let pristine = RedundantObject::encode(3, 1, RedundancyPolicy::Ec { k: 8, m: 2 }, &payload)
        .unwrap();
    let mut scratch = EncodeScratch::new();
    let restored = obj.rebuild(&mut scratch).unwrap();
    assert_eq!(restored, 2);
    assert_eq!(obj.shard_pgs, pristine.shard_pgs, "rebuild is byte-exact");
}

#[test]
fn per_variable_policy_selection() {
    let mut opts = RedundancyOpts::with_policy(RedundancyPolicy::Replicate(2));
    opts.per_var = vec![
        ("T".to_string(), RedundancyPolicy::Ec { k: 8, m: 2 }),
        ("diag".to_string(), RedundancyPolicy::None),
    ];
    assert_eq!(opts.policy_for("T"), RedundancyPolicy::Ec { k: 8, m: 2 });
    assert_eq!(opts.policy_for("diag"), RedundancyPolicy::None);
    assert_eq!(opts.policy_for("Bx"), RedundancyPolicy::Replicate(2));

    // Each variable's extent rides its own object under its own policy.
    let t_payload = vec![7u8; 64 * 1024];
    let diag_payload = vec![9u8; 1024];
    let mut t = RedundantObject::encode(0, 0, opts.policy_for("T"), &t_payload).unwrap();
    let diag = RedundantObject::encode(0, 0, opts.policy_for("diag"), &diag_payload).unwrap();
    assert_eq!(t.shard_pgs.len(), 10);
    assert_eq!(diag.shard_pgs.len(), 1);
    t.damage(0);
    t.damage(5);
    assert_eq!(t.payload().unwrap(), t_payload);
    assert_eq!(diag.payload().unwrap(), diag_payload);
}
