//! Failure-injection integration tests: the hardened adaptive protocol
//! must survive dead storage targets, stalls, lossy control traffic and
//! rank kills with full byte accounting; the baselines must fail in a
//! structured way (partial results, watchdog reports) instead of
//! panicking or hanging.

use adios_core::{
    run_with_faults, AdaptiveOpts, DataSpec, FaultConfig, FaultTolerance, Interference, Method,
    NetFaults, RunSpec, SimError,
};
use simcore::units::MIB;
use storesim::fault::FailMode;
use storesim::params::testbed;
use storesim::FaultScript;

fn spec(method: Method, nprocs: usize, bytes: u64, seed: u64) -> RunSpec {
    RunSpec {
        machine: testbed(),
        nprocs,
        data: DataSpec::Uniform(bytes),
        method,
        interference: Interference::None,
        seed,
    }
}

fn adaptive(targets: usize) -> Method {
    Method::Adaptive {
        targets,
        opts: AdaptiveOpts::default(),
    }
}

#[test]
fn adaptive_survives_dead_ost_with_work_shifting() {
    // Kill one of 8 targets (error mode, no recovery) while the first
    // wave of writes is in flight: the adaptive protocol must land every
    // byte on the surviving targets and terminate cleanly.
    let faults = FaultConfig {
        storage: FaultScript::none().fail_ost(1.0, 2, FailMode::Error, None),
        ..Default::default()
    };
    let out = run_with_faults(spec(adaptive(8), 16, 256 * MIB, 11), faults);
    assert!(out.errors.is_empty(), "unexpected errors: {:?}", out.errors);
    assert!(out.outcome.complete);
    assert_eq!(out.outcome.written_bytes, 16 * 256 * MIB);
    assert_eq!(out.outcome.lost_bytes, 0);
    assert_eq!(out.result.records.len(), 16, "every rank wrote once");
    // Nothing may remain on the condemned target.
    for r in &out.result.records {
        assert_ne!(r.ost.0, 2, "record survived on the dead target");
    }
}

#[test]
fn adaptive_rewrites_data_destroyed_after_completion() {
    // The failure lands after the first wave of writes to the target
    // completed (32 ranks over 8 targets write in four ~0.4 s waves, the
    // failure hits at 1.0 s); the completed bytes are destroyed and must
    // be rewritten elsewhere via LostWrite re-queues.
    let faults = FaultConfig {
        storage: FaultScript::none().fail_ost(1.0, 1, FailMode::Error, None),
        ..Default::default()
    };
    let out = run_with_faults(spec(adaptive(8), 32, 32 * MIB, 5), faults);
    assert!(out.errors.is_empty(), "unexpected errors: {:?}", out.errors);
    assert!(out.outcome.complete);
    assert_eq!(out.outcome.written_bytes, 32 * 32 * MIB);
    for r in &out.result.records {
        assert_ne!(r.ost.0, 1, "record survived on the dead target");
    }
}

#[test]
fn adaptive_rides_out_stall_with_recovery() {
    // A stall-mode outage with recovery: write timeouts fire, retries
    // back off, and after recovery everything completes. Data on the
    // target survives a stall, so no rewrites are required.
    let faults = FaultConfig {
        storage: FaultScript::none().fail_ost(1.0, 3, FailMode::Stall, Some(20.0)),
        ..Default::default()
    };
    let out = run_with_faults(spec(adaptive(8), 16, 64 * MIB, 7), faults);
    assert!(out.errors.is_empty(), "unexpected errors: {:?}", out.errors);
    assert!(out.outcome.complete);
    assert_eq!(out.outcome.written_bytes, 16 * 64 * MIB);
}

#[test]
fn adaptive_tolerates_duplicated_and_delayed_messages() {
    // Heavy duplication and delay on every link: the dedup guards must
    // keep the protocol exact — identical bytes, clean completion.
    let faults = FaultConfig {
        network: Some(NetFaults {
            dup_p: 0.3,
            delay_p: 0.3,
            delay_mean_secs: 0.05,
        }),
        ..Default::default()
    };
    let out = run_with_faults(spec(adaptive(8), 24, 16 * MIB, 23), faults);
    assert!(out.errors.is_empty(), "unexpected errors: {:?}", out.errors);
    assert!(out.outcome.complete);
    assert_eq!(out.outcome.written_bytes, 24 * 16 * MIB);
}

#[test]
fn adaptive_fails_over_a_killed_sub_coordinator() {
    // Kill the sub-coordinator of group 1 mid-run. The coordinator's
    // liveness pings must promote another member, surviving members
    // replay their status, and the run terminates with only the dead
    // rank's bytes lost.
    let nprocs = 16usize;
    let targets = 4usize;
    let sc_of_g1 = (nprocs / targets) as u32; // rank 4
    let faults = FaultConfig {
        kills: vec![(3.0, sc_of_g1)],
        ..Default::default()
    };
    let out = run_with_faults(spec(adaptive(targets), nprocs, 32 * MIB, 13), faults);
    let per_rank = 32 * MIB;
    assert!(
        !matches!(out.errors.first(), Some(SimError::Stalled { .. })),
        "failover should keep the run terminating: {:?}",
        out.errors
    );
    // At most the killed rank's bytes may be lost (none if its write
    // completed before the kill).
    assert!(
        out.outcome.lost_bytes <= per_rank,
        "only the killed rank may lose bytes: {:?}",
        out.outcome
    );
    assert_eq!(
        out.outcome.written_bytes + out.outcome.lost_bytes,
        out.outcome.total_bytes
    );
    for e in &out.errors {
        match e {
            SimError::RankFailed { rank, .. } => assert_eq!(*rank, sc_of_g1),
            other => panic!("unexpected error: {other:?}"),
        }
    }
}

#[test]
fn mpiio_reports_structured_partial_failure() {
    // MPI-IO has no recovery: an error-mode target failure mid-write
    // surfaces as lost bytes and per-rank errors, not a panic or hang.
    let faults = FaultConfig {
        storage: FaultScript::none().fail_ost(1.0, 0, FailMode::Error, None),
        ..Default::default()
    };
    let out = run_with_faults(
        spec(Method::MpiIo { stripe_count: 8 }, 16, 64 * MIB, 3),
        faults,
    );
    assert!(!out.outcome.complete);
    assert!(out.outcome.lost_bytes > 0);
    assert!(!out.errors.is_empty());
    assert_eq!(
        out.outcome.written_bytes + out.outcome.lost_bytes,
        out.outcome.total_bytes
    );
    for e in &out.errors {
        assert!(
            matches!(e, SimError::RankFailed { .. } | SimError::DataLost { .. }),
            "unexpected error class: {e:?}"
        );
    }
}

#[test]
fn posix_stall_surfaces_as_watchdog_report() {
    // A permanent stall-mode failure hangs POSIX writers on that target
    // forever; the runner must report Stalled with the pending ranks.
    let faults = FaultConfig {
        storage: FaultScript::none().fail_ost(0.5, 0, FailMode::Stall, None),
        ..Default::default()
    };
    let out = run_with_faults(spec(Method::Posix { targets: 8 }, 16, 64 * MIB, 9), faults);
    assert!(!out.outcome.complete);
    let stalled = out
        .errors
        .iter()
        .find_map(|e| match e {
            SimError::Stalled { pending_ranks, .. } => Some(pending_ranks.clone()),
            _ => None,
        })
        .expect("stall must be diagnosed");
    assert!(!stalled.is_empty());
    // Groups are contiguous: OST 0's writers are ranks 0 and 1 on the
    // 16-proc / 8-target layout.
    for r in &stalled {
        assert!(*r < 2, "only OST-0 writers may hang, got rank {r}");
    }
}

#[test]
fn brownouts_slow_but_never_lose_bytes() {
    // Transient slowdowns (the paper's §V scenario) must never cost data
    // under any method.
    let script = FaultScript::none()
        .brownout(0.5, 0, 0.1, 5.0)
        .brownout(1.0, 3, 0.2, 10.0)
        .mds_outage(0.2, 1.0);
    for method in [
        Method::Posix { targets: 8 },
        Method::MpiIo { stripe_count: 8 },
        adaptive(8),
    ] {
        let faults = FaultConfig {
            storage: script.clone(),
            ..Default::default()
        };
        let out = run_with_faults(spec(method.clone(), 16, 16 * MIB, 17), faults);
        assert!(
            out.errors.is_empty(),
            "{method:?} reported errors under brownout: {:?}",
            out.errors
        );
        assert!(out.outcome.complete, "{method:?} lost bytes under brownout");
    }
}

#[test]
fn explicit_fault_tolerance_without_faults_is_equivalent() {
    // The hardened protocol with zero faults must produce the same bytes
    // and layout as the default protocol (timers and guards are inert).
    let base = adios_core::run(spec(adaptive(8), 16, 16 * MIB, 29));
    let hard = adios_core::run(spec(
        Method::Adaptive {
            targets: 8,
            opts: AdaptiveOpts {
                fault: FaultTolerance::enabled(),
                ..Default::default()
            },
        },
        16,
        16 * MIB,
        29,
    ));
    assert_eq!(base.result.records.len(), hard.result.records.len());
    for (a, b) in base.result.records.iter().zip(hard.result.records.iter()) {
        assert_eq!((a.rank, a.file, a.offset, a.bytes), (b.rank, b.file, b.offset, b.bytes));
        assert_eq!(a.end, b.end, "timing must be identical for rank {}", a.rank);
    }
}
