//! Deterministic fork-join parallelism for independent replicates.
//!
//! Simulation campaigns run many `(config, seed)` replicates that share
//! no state; this module fans them out over a scoped thread pool while
//! guaranteeing the merged output is **byte-identical** to a serial run:
//! each input index owns a dedicated result slot, and the caller gets the
//! results back in input order regardless of which worker finished first.
//!
//! Thread count comes from the `MANAGED_IO_THREADS` environment variable
//! (`MANAGED_IO_THREADS=1` opts out of parallelism entirely), defaulting
//! to [`std::thread::available_parallelism`]. Only `std` threads are
//! used — no external runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable controlling the worker thread count.
pub const THREADS_ENV: &str = "MANAGED_IO_THREADS";

/// Resolve the worker thread count.
///
/// Reads [`THREADS_ENV`]; unset, empty, unparsable, or `0` falls back to
/// the machine's available parallelism (itself falling back to 1).
pub fn threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Map `f` over `items`, in parallel, preserving input order.
///
/// Equivalent to `items.into_iter().map(f).collect()` — including the
/// exact order of the results — but runs on [`threads`] workers. `f`
/// must be deterministic per item for the serial/parallel equivalence to
/// be observable downstream; the merge itself is always index-ordered.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_threads(threads(), items, f)
}

/// [`par_map`] over a shared immutable prefix: every worker invocation
/// receives `&shared` alongside its item. This is the campaign-sweep
/// shape — build the expensive seed-independent state once, fan the
/// seeds out over it — without each call site spelling out the capture.
pub fn par_map_with<S, T, U, F>(shared: &S, items: Vec<T>, f: F) -> Vec<U>
where
    S: Sync,
    T: Send,
    U: Send,
    F: Fn(&S, T) -> U + Sync,
{
    par_map(items, move |t| f(shared, t))
}

/// [`par_map`] with an explicit worker count (used by determinism tests
/// to compare a 1-thread run against an n-thread run directly).
pub fn par_map_threads<T, U, F>(nthreads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if nthreads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Each item and each result gets its own slot; workers claim indices
    // from a shared counter so the assignment of items to threads never
    // affects which slot a result lands in.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|s| {
        for _ in 0..nthreads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i].lock().unwrap().take().expect("item claimed once");
                let out = f(item);
                *outputs[i].lock().unwrap() = Some(out);
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for nt in [1, 2, 3, 8] {
            let got = par_map_threads(nt, items.clone(), |x| x * x);
            assert_eq!(got, expect, "nthreads={nt}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(4, empty, |x| x).is_empty());
        assert_eq!(par_map_threads(4, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let got = par_map_threads(16, vec![1, 2, 3], |x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn non_clone_results_move_through() {
        let got = par_map_threads(2, vec!["a", "bb", "ccc"], |s| s.to_string());
        assert_eq!(got, vec!["a".to_string(), "bb".to_string(), "ccc".to_string()]);
    }
}
