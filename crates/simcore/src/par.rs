//! Deterministic fork-join parallelism for independent replicates.
//!
//! Simulation campaigns run many `(config, seed)` replicates that share
//! no state; this module fans them out over a scoped thread pool while
//! guaranteeing the merged output is **byte-identical** to a serial run:
//! each input index owns a dedicated result slot, and the caller gets the
//! results back in input order regardless of which worker finished first.
//!
//! Two primitives are provided:
//!
//! * [`par_map`] / [`par_map_threads`] — collect all results into a
//!   `Vec<U>` in input order. Memory grows with the item count.
//! * [`par_fold`] / [`par_fold_threads`] — the fleet-sweep shape: workers
//!   claim item indices dynamically from a shared counter (so one slow
//!   item never idles a chunk's worth of workers), each worker carries a
//!   private mutable scratch state it reuses across items, and finished
//!   results stream through a **bounded reorder ring** to a single fold
//!   callback that runs on the caller thread in strict input order.
//!   Because the fold order is the input order no matter how work was
//!   scheduled, even non-associative folds (floating-point accumulation,
//!   streaming statistics) are byte-identical to a serial run and
//!   independent of the thread count — and peak memory is bounded by the
//!   ring window, not the item count.
//!
//! Thread count comes from the `MANAGED_IO_THREADS` environment variable
//! (`MANAGED_IO_THREADS=1` opts out of parallelism entirely), defaulting
//! to [`std::thread::available_parallelism`]. Invalid values (`0`, empty,
//! non-numeric) are rejected with a one-time warning and fall back to the
//! detected core count rather than silently misbehaving. Only `std`
//! threads are used — no external runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Environment variable controlling the worker thread count.
pub const THREADS_ENV: &str = "MANAGED_IO_THREADS";

/// Parse a thread-count setting as found in [`THREADS_ENV`].
///
/// Accepts a positive integer with surrounding whitespace. Rejects the
/// empty string, non-numeric input, and `0` (which would mean "no
/// workers" — an invalid request, not a real configuration) with a
/// human-readable reason.
pub fn parse_threads(raw: &str) -> Result<usize, &'static str> {
    let s = raw.trim();
    if s.is_empty() {
        return Err("is empty");
    }
    match s.parse::<usize>() {
        Ok(0) => Err("is 0, but at least one worker thread is required"),
        Ok(n) => Ok(n),
        Err(_) => Err("is not a positive integer"),
    }
}

/// Resolve the worker thread count.
///
/// Reads [`THREADS_ENV`] through [`parse_threads`]; unset means the
/// machine's available parallelism. An *invalid* value (empty, garbage,
/// or `0`) also falls back to the detected core count, but prints a
/// one-time warning to stderr naming the rejected value — a typo in the
/// env var should be visible, not silently absorbed.
pub fn threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(s) => match parse_threads(&s) {
            Ok(n) => n,
            Err(why) => {
                let fallback = default_threads();
                warn_bad_threads(&s, why, fallback);
                fallback
            }
        },
        Err(std::env::VarError::NotPresent) => default_threads(),
        Err(std::env::VarError::NotUnicode(_)) => {
            let fallback = default_threads();
            warn_bad_threads("<non-unicode>", "is not valid unicode", fallback);
            fallback
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn warn_bad_threads(raw: &str, why: &str, fallback: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: {THREADS_ENV}={raw:?} {why}; \
             falling back to detected parallelism ({fallback} thread(s))"
        );
    });
}

/// Map `f` over `items`, in parallel, preserving input order.
///
/// Equivalent to `items.into_iter().map(f).collect()` — including the
/// exact order of the results — but runs on [`threads`] workers. `f`
/// must be deterministic per item for the serial/parallel equivalence to
/// be observable downstream; the merge itself is always index-ordered.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_threads(threads(), items, f)
}

/// [`par_map`] over a shared immutable prefix: every worker invocation
/// receives `&shared` alongside its item. This is the campaign-sweep
/// shape — build the expensive seed-independent state once, fan the
/// seeds out over it — without each call site spelling out the capture.
pub fn par_map_with<S, T, U, F>(shared: &S, items: Vec<T>, f: F) -> Vec<U>
where
    S: Sync,
    T: Send,
    U: Send,
    F: Fn(&S, T) -> U + Sync,
{
    par_map(items, move |t| f(shared, t))
}

/// [`par_map`] with an explicit worker count (used by determinism tests
/// to compare a 1-thread run against an n-thread run directly).
pub fn par_map_threads<T, U, F>(nthreads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if nthreads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Each item and each result gets its own slot; workers claim indices
    // from a shared counter so the assignment of items to threads never
    // affects which slot a result lands in.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|s| {
        for _ in 0..nthreads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i].lock().unwrap().take().expect("item claimed once");
                let out = f(item);
                *outputs[i].lock().unwrap() = Some(out);
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// Streaming parallel fold with per-worker scratch state: the fleet-sweep
/// primitive, at the env-selected thread count. See [`par_fold_threads`].
pub fn par_fold<T, U, W, FW, FJ, FO>(items: Vec<T>, worker_state: FW, job: FJ, fold: FO)
where
    T: Send,
    U: Send,
    FW: Fn() -> W + Sync,
    FJ: Fn(&mut W, T) -> U + Sync,
    FO: FnMut(U),
{
    par_fold_threads(threads(), items, worker_state, job, fold)
}

/// Streaming parallel fold with an explicit worker count.
///
/// Each of the `nthreads` workers builds one private `W` via
/// `worker_state()` (on its own thread, reused across every item it
/// claims — the arena-reset pattern), then repeatedly claims the next
/// unprocessed item index from a shared atomic counter and runs
/// `job(&mut w, item)`. Results travel through a bounded reorder ring to
/// the caller thread, where `fold` consumes them in **strict input
/// order**: `fold` sees exactly the sequence a serial run would produce,
/// so arbitrary (even non-associative) accumulation is deterministic and
/// thread-count-independent by construction. Workers that run more than
/// a ring-window ahead of the fold cursor block, bounding peak memory at
/// `O(window)` results instead of `O(items)`.
///
/// With `nthreads <= 1` (or fewer than two items) this degenerates to a
/// plain serial loop over one `W` — the reference behaviour the parallel
/// path must reproduce byte-identically.
///
/// A panic in `worker_state` or `job` aborts the whole fold and
/// propagates to the caller; remaining items are not processed.
pub fn par_fold_threads<T, U, W, FW, FJ, FO>(
    nthreads: usize,
    items: Vec<T>,
    worker_state: FW,
    job: FJ,
    mut fold: FO,
) where
    T: Send,
    U: Send,
    FW: Fn() -> W + Sync,
    FJ: Fn(&mut W, T) -> U + Sync,
    FO: FnMut(U),
{
    let n = items.len();
    if nthreads <= 1 || n <= 1 {
        let mut w = worker_state();
        for t in items {
            fold(job(&mut w, t));
        }
        return;
    }

    let workers = nthreads.min(n);
    // Ring window: enough slack that workers rarely stall on the folder,
    // small enough that memory stays flat in the item count.
    let window = 2 * workers + 2;

    struct Ring<U> {
        slots: Vec<Option<U>>,
        /// Next index the folder will consume; workers may deposit
        /// indices in `[head, head + window)` only.
        head: usize,
        aborted: bool,
    }

    // Items live in per-index claim slots, as in `par_map_threads`: the
    // shared atomic counter decides who runs which index, never where the
    // result ends up.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let ring = Mutex::new(Ring::<U> {
        slots: (0..window).map(|_| None).collect(),
        head: 0,
        aborted: false,
    });
    let space = Condvar::new(); // signalled when `head` advances
    let fill = Condvar::new(); // signalled when a slot is deposited
    let next = AtomicUsize::new(0);
    let (worker_state, job) = (&worker_state, &job);
    let (inputs, ring, space, fill, next) = (&inputs, &ring, &space, &fill, &next);

    /// On panic (detected via drop-during-unwind), mark the ring aborted
    /// and wake everyone so neither side deadlocks waiting for the other.
    struct AbortGuard<'a, U> {
        ring: &'a Mutex<Ring<U>>,
        space: &'a Condvar,
        fill: &'a Condvar,
    }
    impl<U> Drop for AbortGuard<'_, U> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Ok(mut st) = self.ring.lock() {
                    st.aborted = true;
                }
                self.space.notify_all();
                self.fill.notify_all();
            }
        }
    }

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || {
                let _guard = AbortGuard { ring, space, fill };
                let mut w = worker_state();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = inputs[i].lock().unwrap().take().expect("item claimed once");
                    let u = job(&mut w, item);
                    let mut st = ring.lock().unwrap();
                    while i >= st.head + window {
                        if st.aborted {
                            return;
                        }
                        st = space.wait(st).unwrap();
                    }
                    if st.aborted {
                        return;
                    }
                    st.slots[i % window] = Some(u);
                    drop(st);
                    fill.notify_all();
                }
            });
        }

        // The caller thread is the folder: strict in-order consumption.
        let _guard = AbortGuard { ring, space, fill };
        for k in 0..n {
            let u = {
                let mut st = ring.lock().unwrap();
                loop {
                    assert!(!st.aborted, "par_fold worker panicked");
                    if let Some(u) = st.slots[k % window].take() {
                        st.head = k + 1;
                        break u;
                    }
                    st = fill.wait(st).unwrap();
                }
            };
            space.notify_all();
            fold(u);
        }
    });
}

/// Work-stealing fold into per-worker accumulators, at the env-selected
/// thread count. See [`par_fold_workers_threads`].
pub fn par_fold_workers<T, W, FW, FJ>(items: Vec<T>, worker_state: FW, job: FJ) -> Vec<W>
where
    T: Send,
    W: Send,
    FW: Fn() -> W + Sync,
    FJ: Fn(&mut W, T) + Sync,
{
    par_fold_workers_threads(threads(), items, worker_state, job)
}

/// Work-stealing fold into per-worker accumulators.
///
/// Each worker builds one private `W` via `worker_state()`, dynamically
/// claims item indices from a shared atomic counter (so a slow item never
/// idles a chunk's worth of workers), and folds every claimed item into
/// its own state with `job(&mut w, item)`. When the items are exhausted
/// the caller gets all worker states back to merge.
///
/// Unlike [`par_fold_threads`] there is no cross-thread result traffic at
/// all — no reorder ring, no per-item channel. The trade is that which
/// items land in which `W` depends on scheduling, so this shape is only
/// deterministic when the accumulator's merge is **exactly
/// order-independent** (integer counters, idempotent extrema,
/// superaccumulator sums, mergeable histograms — e.g. a sweep statistics
/// sink). Under that contract the merged result is byte-identical to a
/// serial run at any thread count.
///
/// With `nthreads <= 1` (or fewer than two items) this runs serially and
/// returns a single `W`.
pub fn par_fold_workers_threads<T, W, FW, FJ>(
    nthreads: usize,
    items: Vec<T>,
    worker_state: FW,
    job: FJ,
) -> Vec<W>
where
    T: Send,
    W: Send,
    FW: Fn() -> W + Sync,
    FJ: Fn(&mut W, T) + Sync,
{
    let n = items.len();
    if nthreads <= 1 || n <= 1 {
        let mut w = worker_state();
        for t in items {
            job(&mut w, t);
        }
        return vec![w];
    }

    let workers = nthreads.min(n);
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let states: Mutex<Vec<W>> = Mutex::new(Vec::with_capacity(workers));
    let (worker_state, job) = (&worker_state, &job);
    {
        let (inputs, next, states) = (&inputs, &next, &states);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || {
                    let mut w = worker_state();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = inputs[i].lock().unwrap().take().expect("item claimed once");
                        job(&mut w, item);
                    }
                    states.lock().unwrap().push(w);
                });
            }
        });
    }

    states.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for nt in [1, 2, 3, 8] {
            let got = par_map_threads(nt, items.clone(), |x| x * x);
            assert_eq!(got, expect, "nthreads={nt}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(4, empty, |x| x).is_empty());
        assert_eq!(par_map_threads(4, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let got = par_map_threads(16, vec![1, 2, 3], |x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn non_clone_results_move_through() {
        let got = par_map_threads(2, vec!["a", "bb", "ccc"], |s| s.to_string());
        assert_eq!(got, vec!["a".to_string(), "bb".to_string(), "ccc".to_string()]);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("8"), Ok(8));
        assert_eq!(parse_threads(" 12 "), Ok(12));
        assert_eq!(parse_threads("\t3\n"), Ok(3));
    }

    #[test]
    fn parse_threads_rejects_zero_empty_and_garbage() {
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("").is_err());
        assert!(parse_threads("   ").is_err());
        assert!(parse_threads("abc").is_err());
        assert!(parse_threads("-1").is_err());
        assert!(parse_threads("2.5").is_err());
        assert!(parse_threads("8 threads").is_err());
    }

    /// The only test in this binary that touches the env var (no
    /// cross-test race): invalid settings fall back to the detected core
    /// count instead of silently running serial or panicking.
    #[test]
    fn threads_env_fallback_on_invalid_values() {
        let fallback = super::default_threads();
        for bad in ["0", "", "garbage", "-4"] {
            std::env::set_var(THREADS_ENV, bad);
            assert_eq!(threads(), fallback, "env={bad:?}");
        }
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(threads(), 3);
        std::env::remove_var(THREADS_ENV);
        assert_eq!(threads(), fallback);
    }

    #[test]
    fn par_fold_folds_in_input_order() {
        // String concatenation is order-sensitive: any reordering or
        // dropped item changes the result.
        let items: Vec<u64> = (0..97).collect();
        let mut expect = String::new();
        for i in &items {
            expect.push_str(&format!("{i},"));
        }
        for nt in [1, 2, 3, 8, 16] {
            let mut got = String::new();
            par_fold_threads(
                nt,
                items.clone(),
                || (),
                |_, i| format!("{i},"),
                |s| got.push_str(&s),
            );
            assert_eq!(got, expect, "nthreads={nt}");
        }
    }

    #[test]
    fn par_fold_is_bit_identical_for_float_accumulation() {
        // Mixed-magnitude running sum: float addition is non-associative,
        // so this only passes if the fold order is exactly the input
        // order at every thread count.
        let items: Vec<f64> = (0..301)
            .map(|i| ((i * 2654435761u64 % 1000) as f64) * 1e-3 + 1e12 * ((i % 7) as f64))
            .collect();
        let mut serial = 0.0f64;
        for &x in &items {
            serial += x * 1.0000001;
        }
        for nt in [2, 4, 8] {
            let mut sum = 0.0f64;
            par_fold_threads(nt, items.clone(), || (), |_, x| x * 1.0000001, |y| sum += y);
            assert_eq!(sum.to_bits(), serial.to_bits(), "nthreads={nt}");
        }
    }

    #[test]
    fn par_fold_reuses_worker_state_across_items() {
        // Each worker counts the items it processed in its private state;
        // results carry the observed per-worker counter so we can verify
        // state actually persisted across claims (counter > 1 for some
        // worker when items >> workers).
        let n = 64usize;
        let mut per_item_counts = Vec::new();
        par_fold_threads(
            2,
            (0..n).collect::<Vec<_>>(),
            || 0usize,
            |count, _| {
                *count += 1;
                *count
            },
            |c| per_item_counts.push(c),
        );
        assert_eq!(per_item_counts.len(), n);
        let max = per_item_counts.iter().max().copied().unwrap();
        assert!(max >= n / 2, "worker state was not reused (max count {max})");
    }

    #[test]
    fn par_fold_handles_empty_and_single() {
        let mut seen = Vec::new();
        par_fold_threads(4, Vec::<u32>::new(), || (), |_, x| x, |x| seen.push(x));
        assert!(seen.is_empty());
        par_fold_threads(4, vec![7u32], || (), |_, x| x + 1, |x| seen.push(x));
        assert_eq!(seen, vec![8]);
    }

    #[test]
    fn par_fold_propagates_worker_panics() {
        let res = std::panic::catch_unwind(|| {
            par_fold_threads(
                4,
                (0..100u32).collect::<Vec<_>>(),
                || (),
                |_, i| {
                    if i == 37 {
                        panic!("boom");
                    }
                    i
                },
                |_| {},
            );
        });
        assert!(res.is_err(), "worker panic must reach the caller");
    }

    /// Contention stress: far more workers than items, so most workers
    /// race straight past the claim counter to the exit while a few do
    /// all the work. Every result slot must still be filled exactly
    /// once and arrive in input order — no deadlock, no drops.
    #[test]
    fn par_fold_contention_more_workers_than_items() {
        for _ in 0..50 {
            let mut got = Vec::new();
            par_fold_threads(
                24,
                (0..5u32).collect::<Vec<_>>(),
                || (),
                |_, x| x * 3,
                |x| got.push(x),
            );
            assert_eq!(got, vec![0, 3, 6, 9, 12]);
        }
        let mut got = Vec::new();
        par_fold_threads(24, vec![7u32, 8], || (), |_, x| x, |x| got.push(x));
        assert_eq!(got, vec![7, 8]);
    }

    /// Contention stress: items panic mid-claim while worker count
    /// exceeds the item count. The pool must neither deadlock (folder
    /// waiting on a slot no one will fill, workers waiting on ring
    /// space no one will free) nor lose the panic; and after the dust
    /// settles the primitives must still work for a clean follow-up
    /// run — no poisoned global state.
    #[test]
    fn par_fold_contention_panics_mid_claim_no_deadlock_no_drops() {
        for panic_at in [0u32, 1, 4] {
            let res = std::panic::catch_unwind(|| {
                par_fold_threads(
                    16,
                    (0..5u32).collect::<Vec<_>>(),
                    || (),
                    move |_, i| {
                        if i == panic_at {
                            panic!("mid-claim boom at {i}");
                        }
                        i
                    },
                    |_| {},
                );
            });
            assert!(res.is_err(), "panic at item {panic_at} must propagate");
        }
        // Clean run afterwards: every slot filled, in order.
        let mut got = Vec::new();
        par_fold_threads(
            16,
            (0..5u32).collect::<Vec<_>>(),
            || (),
            |_, x| x,
            |x| got.push(x),
        );
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    /// Same contention shape for the map primitive: a panicking item
    /// among racing surplus workers must propagate, and non-panicking
    /// runs at that worker surplus never drop a slot.
    #[test]
    fn par_map_contention_with_panics() {
        let res = std::panic::catch_unwind(|| {
            par_map_threads(16, (0..4u32).collect::<Vec<_>>(), |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            });
        });
        assert!(res.is_err());
        for _ in 0..50 {
            let got = par_map_threads(16, (0..3u32).collect::<Vec<_>>(), |i| i + 1);
            assert_eq!(got, vec![1, 2, 3]);
        }
    }

    #[test]
    fn par_fold_workers_covers_every_item_exactly_once() {
        // Sum and count are order-independent accumulators; the merged
        // totals must match serial at any thread count, and every item
        // must be consumed exactly once.
        let items: Vec<u64> = (0..513).collect();
        let want_sum: u64 = items.iter().sum();
        for nt in [1, 2, 3, 8, 32] {
            let parts = par_fold_workers_threads(
                nt,
                items.clone(),
                || (0u64, 0u64),
                |(sum, count), x| {
                    *sum += x;
                    *count += 1;
                },
            );
            assert!(parts.len() <= nt.max(1));
            let sum: u64 = parts.iter().map(|(s, _)| s).sum();
            let count: u64 = parts.iter().map(|(_, c)| c).sum();
            assert_eq!(sum, want_sum, "nthreads={nt}");
            assert_eq!(count, items.len() as u64, "nthreads={nt}");
        }
    }

    #[test]
    fn par_fold_workers_reuses_state_across_claims() {
        let parts = par_fold_workers_threads(2, (0..64u32).collect(), || 0u32, |c, _| *c += 1);
        let max = parts.iter().max().copied().unwrap();
        assert!(max >= 32, "worker state was not reused (max {max})");
    }

    #[test]
    fn par_fold_matches_serial_with_more_threads_than_items() {
        let mut got = Vec::new();
        par_fold_threads(
            32,
            vec![10u32, 20, 30],
            || (),
            |_, x| x / 10,
            |x| got.push(x),
        );
        assert_eq!(got, vec![1, 2, 3]);
    }
}
