//! FxHash — the rustc-style multiply-xor hasher, plus map/set aliases.
//!
//! The storage and cluster simulators key bookkeeping maps by small dense
//! integers (request ids, operation ids, job ids). `std`'s default
//! SipHash is DoS-resistant but costs ~10× more per lookup than needed
//! for trusted integer keys; FxHash (the hash used by rustc itself) is a
//! single multiply per word. Implemented locally — the workspace builds
//! offline with no external crates — and pinned so hash-order-independent
//! code stays bit-reproducible across toolchains.
//!
//! Iteration order of [`FxHashMap`]/[`FxHashSet`] is still arbitrary; as
//! with the std maps, simulation code must never let it influence event
//! order.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived multiplier (same constant rustc's FxHash uses).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&17), Some(&"x"));
        assert_eq!(m.remove(&17), Some("x"));
        assert_eq!(m.get(&17), None);
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            seen.insert(b.hash_one(i));
        }
        assert!(seen.len() > 9_990, "hash quality: {} distinct", seen.len());
    }

    #[test]
    fn hashing_is_deterministic() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let a: BuildHasherDefault<FxHasher> = Default::default();
        let b: BuildHasherDefault<FxHasher> = Default::default();
        assert_eq!(a.hash_one(42u64), b.hash_one(42u64));
        assert_eq!(a.hash_one("key"), b.hash_one("key"));
    }
}
