//! The event queue: a timestamped priority queue with stable ordering and
//! cancellation.
//!
//! Two properties matter for reproducibility and model correctness:
//!
//! 1. **Stable tie-breaking** — events scheduled for the same instant pop in
//!    the order they were scheduled (FIFO), so simulation results never
//!    depend on heap internals.
//! 2. **Cancellation** — processor-sharing servers must *re-plan* completion
//!    events whenever their load changes. Cancelling by [`EventToken`]
//!    invalidates the entry; stale heap entries are skipped cheaply.
//!
//! # Implementation
//!
//! The default implementation ([`slab::SlabEventQueue`]) stores events in a
//! slab of generation-stamped slots and orders them with an index-based
//! 4-ary min-heap:
//!
//! * **O(1) cancellation, zero hashing.** A token encodes `(slot index,
//!   generation)`; cancelling checks the slot directly — no `HashSet`, no
//!   SipHash. The heap entry is left behind and recognised as dead because
//!   the slot's globally-unique sequence number no longer matches.
//! * **`&self` peek.** The queue maintains the invariant that the heap top
//!   is always a *live* entry (dead tops are drained eagerly on `cancel`
//!   and `pop`), so [`SlabEventQueue::peek_time`] needs no mutation.
//! * **Bounded dead-entry bloat.** Replan-heavy workloads cancel far more
//!   events than they pop. When more than half the heap (and at least 64
//!   entries) is dead, the heap is compacted in O(n) — amortised O(1) per
//!   cancellation.
//! * **4-ary layout.** Shallower than a binary heap (half the levels), so
//!   sift-down touches fewer cache lines per pop — the classic d-ary win
//!   for queues that pop and push in waves.
//!
//! The pre-optimization implementation ([`baseline::BaselineEventQueue`],
//! `BinaryHeap<Entry> + HashSet<EventToken>` with lazy dead-entry
//! skipping) is kept compilable for differential tests and before/after
//! benchmarks; building with the `baseline-engine` feature makes it the
//! default [`EventQueue`] so whole-system speedups can be measured
//! honestly.

/// Handle identifying one scheduled event, usable to cancel it.
///
/// Tokens are opaque; internally they carry whatever the active queue
/// implementation needs to find and validate the entry in O(1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventToken(pub(crate) u64);

/// The deterministic discrete-event queue used across the simulators.
#[cfg(not(feature = "baseline-engine"))]
pub type EventQueue<E> = slab::SlabEventQueue<E>;

/// The deterministic discrete-event queue used across the simulators
/// (pinned to the baseline implementation by the `baseline-engine`
/// feature).
#[cfg(feature = "baseline-engine")]
pub type EventQueue<E> = baseline::BaselineEventQueue<E>;

pub mod slab {
    //! Slab + 4-ary-heap event queue (the optimized default).

    use super::EventToken;
    use crate::time::SimTime;

    /// One slab slot. A slot is *live* while its event is scheduled and
    /// neither fired nor cancelled; freeing bumps `gen` so outstanding
    /// tokens to the old occupant can never match again.
    struct Slot<E> {
        gen: u32,
        /// Sequence number of the occupying event (globally unique, never
        /// zero), used both for FIFO tie-breaking and to recognise stale
        /// heap entries. Zero marks a vacant slot.
        seq: u64,
        event: Option<E>,
    }

    /// Heap entries carry the full ordering key inline so sift operations
    /// never chase the slab.
    #[derive(Clone, Copy)]
    struct HeapEntry {
        time: SimTime,
        seq: u64,
        slot: u32,
    }

    impl HeapEntry {
        /// Packed ordering key: time in the high bits, sequence number in
        /// the low bits — one unsigned compare orders by (time, FIFO).
        #[inline]
        fn key(&self) -> u128 {
            (u128::from(self.time.as_nanos()) << 64) | u128::from(self.seq)
        }
    }

    /// Heap arity. 4 halves the tree depth of a binary heap; benchmarks on
    /// the replan-storm microbench favoured it over 2 and 8.
    const ARITY: usize = 4;
    /// Compact when the heap holds this many entries or more and over half
    /// are dead.
    const COMPACT_MIN: usize = 64;

    /// A deterministic discrete-event queue: slab storage, generation
    /// tokens, index-based 4-ary min-heap.
    pub struct SlabEventQueue<E> {
        slots: Vec<Slot<E>>,
        /// Indices of vacant slots, reused LIFO.
        free: Vec<u32>,
        heap: Vec<HeapEntry>,
        /// Heap entries whose slot has been cancelled (they are skipped
        /// and eventually compacted away).
        heap_dead: usize,
        /// Live (scheduled, uncancelled, unfired) event count.
        live: usize,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> Default for SlabEventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> SlabEventQueue<E> {
        /// Create an empty queue at time zero.
        pub fn new() -> Self {
            SlabEventQueue {
                slots: Vec::new(),
                free: Vec::new(),
                heap: Vec::new(),
                heap_dead: 0,
                live: 0,
                // Sequence numbers start at 1; zero is the vacant-slot
                // sentinel.
                next_seq: 1,
                now: SimTime::ZERO,
            }
        }

        /// Return the queue to its freshly-constructed state while keeping
        /// the slab, free-list and heap capacity — fleet sweeps reset one
        /// queue per seed instead of reallocating it. Behaviour after a
        /// reset is indistinguishable from a new queue; any [`EventToken`]s
        /// issued before the reset must be discarded by the owner (they may
        /// alias fresh events).
        pub fn reset(&mut self) {
            self.slots.clear();
            self.free.clear();
            self.heap.clear();
            self.heap_dead = 0;
            self.live = 0;
            self.next_seq = 1;
            self.now = SimTime::ZERO;
        }

        /// Pre-size the slab and heap for at least `n` concurrently live
        /// events, so steady-state workloads that stay under `n` never
        /// grow the queue mid-run (the fleet sweep's zero-allocation
        /// contract).
        pub fn reserve(&mut self, n: usize) {
            if let Some(extra) = n.checked_sub(self.slots.len()) {
                self.slots.reserve(extra);
                self.free.reserve(extra);
            }
            if let Some(extra) = n.checked_sub(self.heap.len()) {
                self.heap.reserve(extra);
            }
        }

        /// Current simulated time: the timestamp of the most recently
        /// popped event (or zero before the first pop).
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of live (non-cancelled) events pending.
        pub fn len(&self) -> usize {
            self.live
        }

        /// True if no live events remain.
        pub fn is_empty(&self) -> bool {
            self.live == 0
        }

        /// Schedule `event` at absolute time `time`, returning a
        /// cancellation token.
        ///
        /// Panics if `time` is in the past (before the last popped event):
        /// a DES must never schedule backwards.
        pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
            assert!(
                time >= self.now,
                "scheduled event at {time:?} before now {:?}",
                self.now
            );
            let seq = self.next_seq;
            self.next_seq += 1;
            let idx = match self.free.pop() {
                Some(idx) => {
                    let slot = &mut self.slots[idx as usize];
                    slot.seq = seq;
                    slot.event = Some(event);
                    idx
                }
                None => {
                    let idx = u32::try_from(self.slots.len()).expect("slab overflow");
                    self.slots.push(Slot {
                        gen: 0,
                        seq,
                        event: Some(event),
                    });
                    idx
                }
            };
            let gen = self.slots[idx as usize].gen;
            self.heap.push(HeapEntry { time, seq, slot: idx });
            self.sift_up(self.heap.len() - 1);
            self.live += 1;
            EventToken(u64::from(gen) << 32 | u64::from(idx))
        }

        /// Cancel a previously scheduled event. Returns `true` if the
        /// event was still pending (and is now dead), `false` if it had
        /// already fired or been cancelled.
        pub fn cancel(&mut self, token: EventToken) -> bool {
            let idx = (token.0 & 0xFFFF_FFFF) as usize;
            let gen = (token.0 >> 32) as u32;
            let Some(slot) = self.slots.get_mut(idx) else {
                return false;
            };
            // The generation bumps on every free, so a matching generation
            // proves the slot is still occupied by this token's event.
            if slot.gen != gen || slot.seq == 0 {
                return false;
            }
            slot.seq = 0;
            slot.event = None;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(idx as u32);
            self.live -= 1;
            self.heap_dead += 1;
            self.drain_dead_top();
            self.maybe_compact();
            true
        }

        /// Pop the next live event, advancing `now` to its timestamp.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            // Invariant: the heap top, when present and the queue is
            // non-empty, is always live.
            if self.live == 0 {
                return None;
            }
            let top = self.remove_top().expect("live events imply a heap top");
            let slot = &mut self.slots[top.slot as usize];
            debug_assert!(slot.seq == top.seq, "heap top must be live");
            let event = slot.event.take().expect("live slot holds an event");
            slot.seq = 0;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(top.slot);
            self.live -= 1;
            self.now = top.time;
            self.drain_dead_top();
            Some((top.time, event))
        }

        /// Peek at the timestamp of the next live event without popping
        /// it. Requires only `&self`: the heap top is kept live eagerly.
        pub fn peek_time(&self) -> Option<SimTime> {
            if self.live == 0 {
                return None;
            }
            debug_assert!(self.entry_is_live(&self.heap[0]), "heap top must be live");
            self.heap.first().map(|e| e.time)
        }

        #[inline]
        fn entry_is_live(&self, e: &HeapEntry) -> bool {
            // Sequence numbers are globally unique and never zero, so one
            // compare both validates the slot and rejects stale entries.
            self.slots[e.slot as usize].seq == e.seq
        }

        /// Remove and return the heap top, restoring heap order.
        fn remove_top(&mut self) -> Option<HeapEntry> {
            let n = self.heap.len();
            if n == 0 {
                return None;
            }
            let top = self.heap.swap_remove(0);
            if !self.heap.is_empty() {
                self.sift_down(0);
            }
            Some(top)
        }

        /// Restore the top-is-live invariant after a cancel or pop.
        fn drain_dead_top(&mut self) {
            while let Some(e) = self.heap.first() {
                if self.entry_is_live(e) {
                    break;
                }
                self.remove_top();
                self.heap_dead -= 1;
            }
        }

        /// Rebuild the heap without dead entries once they dominate.
        fn maybe_compact(&mut self) {
            if self.heap.len() < COMPACT_MIN || self.heap_dead * 2 <= self.heap.len() {
                return;
            }
            let slots = &self.slots;
            self.heap.retain(|e| slots[e.slot as usize].seq == e.seq);
            self.heap_dead = 0;
            // Floyd heapify: sift down every internal node.
            let n = self.heap.len();
            if n > 1 {
                for i in (0..=(n - 2) / ARITY).rev() {
                    self.sift_down(i);
                }
            }
        }

        /// Hole-based sift: the moved element is held in a register and
        /// written once at its final position, so each level costs one
        /// entry copy instead of a swap (two copies).
        fn sift_up(&mut self, mut i: usize) {
            let e = self.heap[i];
            let k = e.key();
            while i > 0 {
                let parent = (i - 1) / ARITY;
                let p = self.heap[parent];
                if k < p.key() {
                    self.heap[i] = p;
                    i = parent;
                } else {
                    break;
                }
            }
            self.heap[i] = e;
        }

        fn sift_down(&mut self, mut i: usize) {
            let n = self.heap.len();
            let e = self.heap[i];
            let k = e.key();
            loop {
                let first = ARITY * i + 1;
                if first >= n {
                    break;
                }
                let end = (first + ARITY).min(n);
                let mut min = first;
                let mut min_key = self.heap[first].key();
                for c in first + 1..end {
                    let ck = self.heap[c].key();
                    if ck < min_key {
                        min = c;
                        min_key = ck;
                    }
                }
                if min_key < k {
                    self.heap[i] = self.heap[min];
                    i = min;
                } else {
                    break;
                }
            }
            self.heap[i] = e;
        }
    }
}

pub mod baseline {
    //! The pre-optimization event queue: `BinaryHeap` + `HashSet`
    //! liveness, kept for differential testing and honest before/after
    //! benchmarks.

    use super::EventToken;
    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    use std::collections::HashSet;

    struct Entry<E> {
        time: SimTime,
        seq: u64,
        token: EventToken,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so earliest time (then
            // lowest seq) pops first.
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// A deterministic discrete-event queue (baseline implementation).
    pub struct BaselineEventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        /// Tokens of scheduled events that have neither fired nor been
        /// cancelled. Membership here is the single source of truth for
        /// liveness; heap entries whose token is absent are skipped.
        pending: HashSet<EventToken>,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> Default for BaselineEventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> BaselineEventQueue<E> {
        /// Create an empty queue at time zero.
        pub fn new() -> Self {
            BaselineEventQueue {
                heap: BinaryHeap::new(),
                pending: HashSet::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        /// Return the queue to its freshly-constructed state while keeping
        /// heap and set capacity. Tokens issued before the reset must be
        /// discarded by the owner (they may alias fresh events).
        pub fn reset(&mut self) {
            self.heap.clear();
            self.pending.clear();
            self.next_seq = 0;
            self.now = SimTime::ZERO;
        }

        /// Pre-size the heap for at least `n` concurrently live events
        /// (capacity parity with the slab queue's `reserve`).
        pub fn reserve(&mut self, n: usize) {
            if let Some(extra) = n.checked_sub(self.heap.len()) {
                self.heap.reserve(extra);
            }
            self.pending.reserve(n);
        }

        /// Current simulated time.
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of live (non-cancelled) events pending.
        pub fn len(&self) -> usize {
            self.pending.len()
        }

        /// True if no live events remain.
        pub fn is_empty(&self) -> bool {
            self.pending.is_empty()
        }

        /// Schedule `event` at absolute time `time`.
        pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
            assert!(
                time >= self.now,
                "scheduled event at {time:?} before now {:?}",
                self.now
            );
            let token = EventToken(self.next_seq);
            self.heap.push(Entry {
                time,
                seq: self.next_seq,
                token,
                event,
            });
            self.next_seq += 1;
            self.pending.insert(token);
            token
        }

        /// Cancel a previously scheduled event.
        pub fn cancel(&mut self, token: EventToken) -> bool {
            let removed = self.pending.remove(&token);
            if removed {
                self.drain_dead_top();
            }
            removed
        }

        /// Pop the next live event, advancing `now` to its timestamp.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(entry) = self.heap.pop() {
                if !self.pending.remove(&entry.token) {
                    continue; // cancelled event
                }
                self.now = entry.time;
                self.drain_dead_top();
                return Some((entry.time, entry.event));
            }
            None
        }

        /// Peek at the timestamp of the next live event. The heap top is
        /// kept live by draining in `cancel`/`pop`, so `&self` suffices.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        fn drain_dead_top(&mut self) {
            while let Some(e) = self.heap.peek() {
                if self.pending.contains(&e.token) {
                    break;
                }
                self.heap.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    // The shared unit suite runs against both implementations so the
    // baseline stays a valid reference model.
    macro_rules! queue_suite {
        ($modname:ident, $q:ty) => {
            mod $modname {
                use super::*;

                #[test]
                fn pops_in_time_order() {
                    let mut q = <$q>::new();
                    q.schedule(t(30), "c");
                    q.schedule(t(10), "a");
                    q.schedule(t(20), "b");
                    assert_eq!(q.pop().unwrap(), (t(10), "a"));
                    assert_eq!(q.pop().unwrap(), (t(20), "b"));
                    assert_eq!(q.pop().unwrap(), (t(30), "c"));
                    assert!(q.pop().is_none());
                }

                #[test]
                fn ties_break_fifo() {
                    let mut q = <$q>::new();
                    for i in 0..100 {
                        q.schedule(t(5), i);
                    }
                    for i in 0..100 {
                        assert_eq!(q.pop().unwrap().1, i);
                    }
                }

                #[test]
                fn now_advances_with_pops() {
                    let mut q = <$q>::new();
                    q.schedule(t(10), ());
                    q.schedule(t(20), ());
                    assert_eq!(q.now(), SimTime::ZERO);
                    q.pop();
                    assert_eq!(q.now(), t(10));
                    q.pop();
                    assert_eq!(q.now(), t(20));
                }

                #[test]
                #[should_panic(expected = "before now")]
                fn scheduling_in_the_past_panics() {
                    let mut q = <$q>::new();
                    q.schedule(t(10), ());
                    q.pop();
                    q.schedule(t(5), ());
                }

                #[test]
                fn cancellation_skips_events() {
                    let mut q = <$q>::new();
                    let a = q.schedule(t(10), "a");
                    q.schedule(t(20), "b");
                    assert!(q.cancel(a));
                    assert!(!q.cancel(a), "double-cancel returns false");
                    assert_eq!(q.pop().unwrap(), (t(20), "b"));
                    assert!(q.pop().is_none());
                }

                #[test]
                fn len_tracks_live_events() {
                    let mut q = <$q>::new();
                    let a = q.schedule(t(10), ());
                    q.schedule(t(20), ());
                    assert_eq!(q.len(), 2);
                    q.cancel(a);
                    assert_eq!(q.len(), 1);
                    q.pop();
                    assert_eq!(q.len(), 0);
                    assert!(q.is_empty());
                }

                #[test]
                fn peek_time_skips_cancelled() {
                    let mut q = <$q>::new();
                    let a = q.schedule(t(10), ());
                    q.schedule(t(20), ());
                    q.cancel(a);
                    assert_eq!(q.peek_time(), Some(t(20)));
                }

                #[test]
                fn peek_is_immutable_and_consistent() {
                    let mut q = <$q>::new();
                    q.schedule(t(10), 1u32);
                    let q_ref: &$q = &q;
                    assert_eq!(q_ref.peek_time(), Some(t(10)));
                    assert_eq!(q_ref.peek_time(), Some(t(10)));
                    assert_eq!(q.pop().unwrap(), (t(10), 1));
                    assert_eq!(q.peek_time(), None);
                }

                #[test]
                fn cancel_of_fired_event_is_false() {
                    let mut q = <$q>::new();
                    let a = q.schedule(t(10), ());
                    q.pop();
                    assert!(!q.cancel(a));
                }

                #[test]
                fn interleaved_schedule_and_pop() {
                    let mut q = <$q>::new();
                    q.schedule(t(10), 1);
                    assert_eq!(q.pop().unwrap().1, 1);
                    // Schedule relative to now.
                    let next = q.now() + SimDuration::from_nanos(5);
                    q.schedule(next, 2);
                    assert_eq!(q.pop().unwrap(), (t(15), 2));
                }

                #[test]
                fn large_volume_ordering() {
                    let mut q = <$q>::new();
                    let mut rng = crate::rng::Rng::new(99);
                    for i in 0..10_000u64 {
                        q.schedule(t(rng.below(1000)), i);
                    }
                    let mut last = SimTime::ZERO;
                    let mut n = 0;
                    while let Some((time, _)) = q.pop() {
                        assert!(time >= last);
                        last = time;
                        n += 1;
                    }
                    assert_eq!(n, 10_000);
                }

                #[test]
                fn cancel_storm_stays_consistent() {
                    // Replan-style churn: repeatedly cancel + reschedule a
                    // wake-up while other events flow.
                    let mut q = <$q>::new();
                    let mut rng = crate::rng::Rng::new(7);
                    let mut wake = q.schedule(t(50), u64::MAX);
                    for i in 0..5_000u64 {
                        let at = q.now().as_nanos() + 1 + rng.below(100);
                        q.schedule(t(at), i);
                        assert!(q.cancel(wake));
                        wake = q.schedule(t(at + rng.below(100)), u64::MAX);
                        if rng.below(4) == 0 {
                            q.pop();
                        }
                    }
                    // Drain; times must stay monotone and the wake must
                    // surface exactly once.
                    let mut wakes = 0;
                    let mut last = q.now();
                    while let Some((time, v)) = q.pop() {
                        assert!(time >= last);
                        last = time;
                        if v == u64::MAX {
                            wakes += 1;
                        }
                    }
                    assert_eq!(wakes, 1);
                    assert!(q.is_empty());
                }

                #[test]
                fn reset_restores_a_fresh_queue() {
                    let mut q = <$q>::new();
                    let a = q.schedule(t(10), 0u64);
                    q.schedule(t(20), 1);
                    q.schedule(t(30), 2);
                    q.cancel(a);
                    q.pop();
                    q.reset();
                    assert_eq!(q.now(), SimTime::ZERO);
                    assert!(q.is_empty());
                    assert_eq!(q.peek_time(), None);
                    assert!(q.pop().is_none());
                    // Scheduling before the old `now` works again, and
                    // FIFO tie-breaking restarts cleanly.
                    q.schedule(t(5), 10);
                    q.schedule(t(5), 11);
                    assert_eq!(q.pop().unwrap(), (t(5), 10));
                    assert_eq!(q.pop().unwrap(), (t(5), 11));
                }

                #[test]
                fn tokens_from_reused_slots_do_not_alias() {
                    let mut q = <$q>::new();
                    let a = q.schedule(t(10), "a");
                    assert!(q.cancel(a));
                    // Slot may be reused; the old token must stay dead.
                    let _b = q.schedule(t(20), "b");
                    assert!(!q.cancel(a), "stale token must not cancel the new event");
                    assert_eq!(q.pop().unwrap(), (t(20), "b"));
                }
            }
        };
    }

    queue_suite!(slab_suite, slab::SlabEventQueue<_>);
    queue_suite!(baseline_suite, baseline::BaselineEventQueue<_>);

    /// Differential check: the slab queue and the baseline queue agree
    /// event-for-event under random schedule/cancel/pop interleavings.
    #[test]
    fn slab_matches_baseline_under_churn() {
        let mut rng = crate::rng::Rng::new(2024);
        for round in 0..20u64 {
            let mut a = slab::SlabEventQueue::new();
            let mut b = baseline::BaselineEventQueue::new();
            let mut tokens: Vec<(EventToken, EventToken)> = Vec::new();
            let mut next_id = 0u64;
            for _ in 0..400 {
                match rng.below(10) {
                    0..=4 => {
                        let at = t(a.now().as_nanos() + rng.below(1_000));
                        let ta = a.schedule(at, next_id);
                        let tb = b.schedule(at, next_id);
                        tokens.push((ta, tb));
                        next_id += 1;
                    }
                    5..=6 if !tokens.is_empty() => {
                        let i = rng.below(tokens.len() as u64) as usize;
                        let (ta, tb) = tokens.swap_remove(i);
                        assert_eq!(a.cancel(ta), b.cancel(tb), "round {round}");
                    }
                    _ => {
                        assert_eq!(a.pop(), b.pop(), "round {round}");
                    }
                }
                assert_eq!(a.len(), b.len());
                assert_eq!(a.peek_time(), b.peek_time());
            }
            loop {
                let (pa, pb) = (a.pop(), b.pop());
                assert_eq!(pa, pb);
                if pa.is_none() {
                    break;
                }
            }
        }
    }
}
