//! The event queue: a timestamped priority queue with stable ordering and
//! cancellation.
//!
//! Two properties matter for reproducibility and model correctness:
//!
//! 1. **Stable tie-breaking** — events scheduled for the same instant pop in
//!    the order they were scheduled (FIFO), so simulation results never
//!    depend on heap internals.
//! 2. **Cancellation** — processor-sharing servers must *re-plan* completion
//!    events whenever their load changes. Cancelling by [`EventToken`]
//!    lazily marks entries dead; dead entries are skipped on pop.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Handle identifying one scheduled event, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventToken(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    token: EventToken,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Tokens of scheduled events that have neither fired nor been
    /// cancelled. Membership here is the single source of truth for
    /// liveness; heap entries whose token is absent are skipped on pop.
    pending: HashSet<EventToken>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedule `event` at absolute time `time`, returning a cancellation
    /// token.
    ///
    /// Panics if `time` is in the past (before the last popped event): a
    /// DES must never schedule backwards.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
        assert!(
            time >= self.now,
            "scheduled event at {time:?} before now {:?}",
            self.now
        );
        let token = EventToken(self.next_seq);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            token,
            event,
        });
        self.next_seq += 1;
        self.pending.insert(token);
        token
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now dead), `false` if it had already fired or
    /// been cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.pending.remove(&token)
    }

    /// Pop the next live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.token) {
                continue; // cancelled event
            }
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Peek at the timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain dead entries from the top so peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.token) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap(), (t(10), "a"));
        assert_eq!(q.pop().unwrap(), (t(20), "b"));
        assert_eq!(q.pop().unwrap(), (t(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.schedule(t(20), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(10));
        q.pop();
        assert_eq!(q.now(), t(20));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel returns false");
        assert_eq!(q.pop().unwrap(), (t(20), "b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), ());
        q.schedule(t(20), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), ());
        q.schedule(t(20), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn cancel_of_fired_event_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), ());
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        // Schedule relative to now.
        let next = q.now() + SimDuration::from_nanos(5);
        q.schedule(next, 2);
        assert_eq!(q.pop().unwrap(), (t(15), 2));
    }

    #[test]
    fn large_volume_ordering() {
        let mut q = EventQueue::new();
        let mut rng = crate::rng::Rng::new(99);
        for i in 0..10_000u64 {
            q.schedule(t(rng.below(1000)), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            n += 1;
        }
        assert_eq!(n, 10_000);
    }
}
