//! Byte-size and bandwidth units.
//!
//! The paper reports sizes in binary megabytes (MB == MiB throughout HPC
//! practice of the era) and bandwidths in MB/sec or GB/sec. We keep sizes as
//! `u64` bytes and bandwidths as a newtype over `f64` bytes/second.

use core::fmt;

use crate::time::SimDuration;

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;
/// One tebibyte (2^40 bytes).
pub const TIB: u64 = 1 << 40;

/// A data rate in bytes per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From raw bytes/second.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        debug_assert!(bps.is_finite() && bps >= 0.0, "bad bandwidth {bps}");
        Bandwidth(bps)
    }

    /// From MiB/second (the paper's MB/sec).
    #[inline]
    pub fn from_mib_per_sec(mibps: f64) -> Self {
        Self::from_bytes_per_sec(mibps * MIB as f64)
    }

    /// From GiB/second (the paper's GB/sec).
    #[inline]
    pub fn from_gib_per_sec(gibps: f64) -> Self {
        Self::from_bytes_per_sec(gibps * GIB as f64)
    }

    /// Raw bytes/second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// MiB/second.
    #[inline]
    pub fn mib_per_sec(self) -> f64 {
        self.0 / MIB as f64
    }

    /// GiB/second.
    #[inline]
    pub fn gib_per_sec(self) -> f64 {
        self.0 / GIB as f64
    }

    /// Time needed to move `bytes` at this rate.
    ///
    /// Panics if the bandwidth is zero (a model should never divide by a
    /// zero service rate; stalled transfers are represented by rescheduling,
    /// not by infinite durations).
    #[inline]
    pub fn time_for(self, bytes: u64) -> SimDuration {
        assert!(self.0 > 0.0, "time_for on zero bandwidth");
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }

    /// Scale by a dimensionless factor (e.g. an interference slowdown).
    #[inline]
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.0 * factor)
    }
}

/// Compute the achieved bandwidth of moving `bytes` in `elapsed`.
///
/// Returns zero bandwidth for a zero duration (degenerate but safe; only
/// hit by zero-size operations).
pub fn achieved(bytes: u64, elapsed: SimDuration) -> Bandwidth {
    if elapsed.is_zero() {
        return Bandwidth::ZERO;
    }
    Bandwidth::from_bytes_per_sec(bytes as f64 / elapsed.as_secs_f64())
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB as f64 {
            write!(f, "{:.2} GiB/s", self.gib_per_sec())
        } else if b >= MIB as f64 {
            write!(f, "{:.2} MiB/s", self.mib_per_sec())
        } else {
            write!(f, "{b:.0} B/s")
        }
    }
}

/// Render a byte count with a binary-unit suffix (for tables/logs).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= TIB && bytes.is_multiple_of(TIB) {
        format!("{} TiB", bytes / TIB)
    } else if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{} GiB", bytes / GIB)
    } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
        format!("{} MiB", bytes / MIB)
    } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
        format!("{} KiB", bytes / KIB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1024 * 1024);
        assert_eq!(GIB, 1024 * MIB);
        assert_eq!(TIB, 1024 * GIB);
    }

    #[test]
    fn bandwidth_conversions_roundtrip() {
        let b = Bandwidth::from_mib_per_sec(180.0);
        assert!((b.mib_per_sec() - 180.0).abs() < 1e-9);
        let g = Bandwidth::from_gib_per_sec(2.0);
        assert!((g.mib_per_sec() - 2048.0).abs() < 1e-9);
    }

    #[test]
    fn time_for_is_exact() {
        let b = Bandwidth::from_mib_per_sec(100.0);
        let d = b.time_for(200 * MIB);
        assert!((d.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn achieved_inverts_time_for() {
        let b = Bandwidth::from_mib_per_sec(180.0);
        let bytes = 128 * MIB;
        let d = b.time_for(bytes);
        let back = achieved(bytes, d);
        assert!((back.mib_per_sec() - 180.0).abs() < 1e-6);
    }

    #[test]
    fn achieved_zero_duration_is_zero() {
        assert_eq!(achieved(100, SimDuration::ZERO).bytes_per_sec(), 0.0);
    }

    #[test]
    fn scaled_applies_factor() {
        let b = Bandwidth::from_mib_per_sec(100.0).scaled(0.5);
        assert!((b.mib_per_sec() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(
            format!("{}", Bandwidth::from_gib_per_sec(1.5)),
            "1.50 GiB/s"
        );
        assert_eq!(
            format!("{}", Bandwidth::from_mib_per_sec(12.0)),
            "12.00 MiB/s"
        );
        assert_eq!(format!("{}", Bandwidth::from_bytes_per_sec(10.0)), "10 B/s");
    }

    #[test]
    fn fmt_bytes_picks_unit() {
        assert_eq!(fmt_bytes(2 * MIB), "2 MiB");
        assert_eq!(fmt_bytes(GIB), "1 GiB");
        assert_eq!(fmt_bytes(3 * TIB), "3 TiB");
        assert_eq!(fmt_bytes(1536), "1536 B");
        assert_eq!(fmt_bytes(4 * KIB), "4 KiB");
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn time_for_zero_bandwidth_panics() {
        Bandwidth::ZERO.time_for(1);
    }
}
