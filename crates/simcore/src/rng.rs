//! Deterministic random number generation and distributions.
//!
//! The simulators need many *independent, reproducible* random streams: one
//! per OST noise process, one per workload, one per interference job. We use
//! SplitMix64 to derive stream seeds from a master seed and xoshiro256** as
//! the stream generator (the same construction the `rand` ecosystem
//! recommends for simulation work; implemented locally so the exact bit
//! streams are pinned by this crate, not by an external crate version).
//!
//! Distribution sampling (exponential, normal, lognormal, bounded Pareto)
//! lives here too because every storage model parameter is expressed in
//! terms of these.

/// SplitMix64: a tiny, high-quality 64-bit PRNG used to expand one master
/// seed into arbitrarily many independent stream seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a seed-expander from a master seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive a fresh, independent [`Rng`] stream.
    pub fn stream(&mut self) -> Rng {
        Rng::from_seed([
            self.next_u64(),
            self.next_u64(),
            self.next_u64(),
            self.next_u64(),
        ])
    }
}

/// xoshiro256** — the workhorse stream generator.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; ideal for
/// simulation (not for cryptography).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Construct from a single `u64` seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        SplitMix64::new(seed).stream()
    }

    /// Construct directly from 256 bits of state.
    ///
    /// All-zero state is invalid for xoshiro; it is remapped to a fixed
    /// non-zero constant.
    pub fn from_seed(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
        }
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given mean (`mean = 1/λ`).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0): f64() < 1 so 1 - f64() > 0.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal variate (Box–Muller; one value per call for
    /// simplicity — service-time sampling is not a hot path).
    pub fn normal(&mut self) -> f64 {
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Lognormal variate parameterised by the *underlying* normal's
    /// `mu`/`sigma` (i.e. `exp(N(mu, sigma))`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Bounded Pareto variate on `[lo, hi]` with shape `alpha`.
    ///
    /// Heavy-tailed; used for interference burst depths. Inverse-CDF
    /// sampling of the truncated Pareto.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // F^{-1}(u) for truncated Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should differ almost everywhere");
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Rng::from_seed([0; 4]);
        // Must not be a constant-zero generator.
        let xs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.05 * mean, "exp mean {est} vs {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = Rng::new(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = Rng::new(19);
        for _ in 0..10_000 {
            assert!(r.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut r = Rng::new(23);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(1.5, 1.0, 100.0);
            assert!((1.0..=100.0 + 1e-9).contains(&x), "pareto out of range: {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed_but_mostly_small() {
        let mut r = Rng::new(29);
        let n = 50_000;
        let big = (0..n)
            .filter(|_| r.bounded_pareto(1.5, 1.0, 100.0) > 10.0)
            .count();
        // For alpha=1.5 on [1,100], P(X>10) ≈ 3%.
        let frac = big as f64 / n as f64;
        assert!(frac > 0.005 && frac < 0.10, "tail fraction {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(31);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Rng::new(37);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Rng::new(41);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "chance frac {frac}");
    }
}
