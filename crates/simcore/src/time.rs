//! Simulated time: nanosecond-resolution instants and durations.
//!
//! Simulated time is totally ordered and exact (integer nanoseconds), so
//! event ordering never depends on floating-point rounding. Conversions to
//! and from seconds (`f64`) exist at the model boundary only — service-time
//! *computations* happen in `f64` seconds inside the storage models, but the
//! resulting instants are snapped to integer nanoseconds before entering the
//! event queue.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from seconds, rounding to the nearest nanosecond.
    ///
    /// Panics in debug builds if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier`
    /// is actually later (which would indicate a model bug; debug-asserts).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "time ran backwards: {self:?} < {earlier:?}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add of a duration (never wraps past `SimTime::MAX`).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(7), SimDuration::from_nanos(7000));
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!((t1 - t0).as_nanos(), 50);
        assert_eq!((SimDuration::from_nanos(30) * 3).as_nanos(), 90);
        assert_eq!((SimDuration::from_nanos(90) / 3).as_nanos(), 30);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert!(SimTime::ZERO < a);
        assert!(b < SimTime::MAX);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        let t = SimTime::MAX.saturating_add(SimDuration::from_secs(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn since_is_exact() {
        let a = SimTime::from_secs_f64(10.0);
        let b = SimTime::from_secs_f64(4.0);
        assert_eq!(a.since(b), SimDuration::from_secs(6));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(0.25)), "0.250000s");
        assert_eq!(format!("{}", SimDuration::from_millis(1)), "0.001000s");
    }

    #[test]
    fn zero_checks() {
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_nanos(1).is_zero());
    }
}
