//! # simcore — deterministic discrete-event simulation engine
//!
//! Foundation for the managed-io storage/cluster simulators. Provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//! * [`EventQueue`] — a slab-backed 4-ary heap of timestamped events with
//!   stable FIFO tie-breaking and O(1) cancellation via generation-stamped
//!   [`EventToken`]s (no hashing on the hot path).
//! * [`fx`] — FxHash map/set aliases for trusted integer keys.
//! * [`par`] — deterministic fork-join `par_map` over independent
//!   replicates, honoring the `MANAGED_IO_THREADS` environment variable.
//! * [`shard`] — a persistent parked-worker pool ([`shard::ShardPool`])
//!   for the storage engine's sharded macro-steps, where regions are
//!   dispatched thousands of times per run and spawn-per-region would
//!   dominate.
//! * [`rng`] — seedable, reproducible random number generators
//!   (SplitMix64 for seeding, xoshiro256** for streams) and the
//!   distributions the storage models need (uniform, exponential, normal,
//!   lognormal, bounded Pareto).
//! * [`units`] — byte-size and bandwidth helpers (`MIB`, `GIB`,
//!   [`units::Bandwidth`]).
//!
//! Everything here is deterministic: the same seed and the same sequence of
//! `schedule` calls produce bit-identical simulations, which is what makes
//! every figure and table in the reproduction exactly re-runnable.
//!
//! ```
//! use simcore::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t, SimTime::from_nanos(1_000_000));
//! ```

#![warn(missing_docs)]

pub mod fx;
pub mod par;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod time;
pub mod units;

pub use fx::{FxHashMap, FxHashSet};
pub use queue::{EventQueue, EventToken};
pub use rng::{Rng, SplitMix64};
pub use shard::ShardPool;
pub use time::{SimDuration, SimTime};
