//! Persistent scoped worker pool for sharded in-run parallelism.
//!
//! [`crate::par`] fans independent *replicates* out by spawning scoped
//! threads per call — fine when each item is a whole simulation run, far
//! too slow for the sharded storage engine, which dispatches a parallel
//! region once per macro-step (tens of thousands of times per run, each
//! a few microseconds of work). [`ShardPool`] keeps its workers parked
//! on a condvar between regions so a dispatch is one mutex round-trip
//! plus wake-ups, not thread creation.
//!
//! The contract mirrors `par`'s determinism story: a region is a closure
//! `job(shard_index)` over disjoint shard indices `0..nshards`, workers
//! claim indices from a shared atomic counter, and the pool guarantees
//! every index runs **exactly once** before [`ShardPool::run`] returns.
//! Which thread runs which shard is unspecified — callers must make
//! shard work side-effect-independent (each shard owns disjoint state),
//! which is precisely what makes serial and parallel execution
//! byte-identical.
//!
//! A panic inside any shard job poisons the region: remaining indices
//! may be skipped, every worker returns to its parked state, and
//! `run` panics on the caller thread once the region has quiesced (so
//! the borrowed job closure is never used after `run` unwinds).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased pointer to the caller's region closure. Only dereferenced
/// between region start and quiesce, while `run`'s borrow is live.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are the
// point) and the pointer only crosses threads inside a region, during
// which `run` keeps the referent alive.
unsafe impl Send for JobPtr {}

struct State {
    /// Monotone region counter; workers park until it moves.
    epoch: u64,
    /// Current region's job, present only while a region is active.
    job: Option<JobPtr>,
    /// Shard count of the current region.
    nshards: usize,
    /// Pool workers still inside the current region (excludes caller).
    active: usize,
    /// Set when any shard job panicked in the current region.
    panicked: bool,
    /// Tells parked workers to exit (pool drop).
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new region starts or the pool shuts down.
    go: Condvar,
    /// Signalled when the last pool worker leaves a region.
    quiet: Condvar,
    /// Next unclaimed shard index of the current region.
    next: AtomicUsize,
}

/// Persistent pool of parked workers for repeated fork-join regions over
/// shard indices. Created with a total thread budget `n`: `n - 1` pool
/// workers are spawned and the **caller participates** in every region,
/// so `n = 1` means a plain serial loop with no threads at all.
pub struct ShardPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl ShardPool {
    /// Build a pool with a total budget of `threads` (caller included).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                nshards: 0,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            go: Condvar::new(),
            quiet: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let workers = (1..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ShardPool { shared, workers }
    }

    /// Total thread budget (pool workers + the participating caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Run `job(i)` exactly once for every `i in 0..nshards`, in
    /// parallel across the pool plus the calling thread. Returns once
    /// every index has run. Panics (after the region quiesces) if any
    /// shard job panicked.
    pub fn run(&self, nshards: usize, job: &(dyn Fn(usize) + Sync)) {
        self.run_with_serial(nshards, job, &mut || {});
    }

    /// [`ShardPool::run`] with a pipelined serial stage: `serial` runs on
    /// the calling thread *while* the pool workers are already claiming
    /// shards, and the caller joins the claim loop only once `serial`
    /// returns. This overlaps a serial tail of the previous region (e.g.
    /// applying its harvested completions) with the parallel body of the
    /// next one — sound only when `serial` touches state disjoint from
    /// every shard job. Falls back to `serial()` followed by an inline
    /// loop when the pool has no workers or the region is trivial, so the
    /// observable effects are identical in every mode. A panic in
    /// `serial` poisons the region exactly like a shard-job panic.
    pub fn run_with_serial(
        &self,
        nshards: usize,
        job: &(dyn Fn(usize) + Sync),
        serial: &mut dyn FnMut(),
    ) {
        if self.workers.is_empty() || nshards <= 1 {
            serial();
            for i in 0..nshards {
                job(i);
            }
            return;
        }

        // SAFETY: erase the borrow's lifetime to park it in shared
        // state. `run` does not return (or unwind) until every worker
        // has left the region, so the pointee outlives all uses.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                job as *const _,
            )
        });

        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.job.is_none(), "ShardPool::run is not reentrant");
            self.shared.next.store(0, Ordering::Relaxed);
            st.job = Some(ptr);
            st.nshards = nshards;
            st.active = self.workers.len();
            st.panicked = false;
            st.epoch += 1;
            self.shared.go.notify_all();
        }

        // The serial stage runs first on the caller (workers are already
        // claiming shards); then the caller participates in the claim
        // loop. A panic in either is recorded, not propagated mid-region
        // (the pool must quiesce first).
        let caller_result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                serial();
                claim_loop(&self.shared, nshards, job)
            }));

        let mut st = self.shared.state.lock().unwrap();
        if caller_result.is_err() {
            st.panicked = true;
            // Park the claim counter past the end so workers stop
            // starting new shards from a poisoned region.
            self.shared.next.store(nshards, Ordering::Relaxed);
        }
        while st.active > 0 {
            st = self.shared.quiet.wait(st).unwrap();
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        assert!(!panicked, "ShardPool worker panicked");
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.go.notify_all();
        }
        for w in self.workers.drain(..) {
            // A worker that panicked outside `catch_unwind` (impossible
            // today) would surface here; ignore so drop never panics.
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, nshards) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                st = shared.go.wait(st).unwrap();
            }
            seen_epoch = st.epoch;
            (st.job.expect("active region has a job"), st.nshards)
        };
        // SAFETY: the caller is blocked in `run` until `active` drops to
        // zero, keeping the closure alive for the whole region.
        let job = unsafe { &*job.0 };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            claim_loop(shared, nshards, job)
        }));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
            shared.next.store(nshards, Ordering::Relaxed);
        }
        st.active -= 1;
        if st.active == 0 {
            shared.quiet.notify_all();
        }
    }
}

fn claim_loop(shared: &Shared, nshards: usize, job: &(dyn Fn(usize) + Sync)) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= nshards {
            return;
        }
        job(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn runs_every_shard_exactly_once() {
        let pool = ShardPool::new(4);
        for nshards in [0usize, 1, 2, 3, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..nshards).map(|_| AtomicUsize::new(0)).collect();
            pool.run(nshards, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "shard {i} of {nshards}");
            }
        }
    }

    #[test]
    fn single_thread_budget_runs_inline() {
        let pool = ShardPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicU64::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn reusable_across_many_regions() {
        // The macro-step loop dispatches thousands of tiny regions on
        // one pool; totals must stay exact across all of them.
        let pool = ShardPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..2000 {
            pool.run(5, &|i| {
                total.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 2000 * 15);
    }

    #[test]
    fn more_shards_than_threads_and_vice_versa() {
        let pool = ShardPool::new(8);
        let count = AtomicUsize::new(0);
        pool.run(3, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
        pool.run(100, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 103);
    }

    #[test]
    fn shard_panic_propagates_and_pool_survives() {
        let pool = ShardPool::new(4);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 5 {
                    panic!("shard boom");
                }
            });
        }));
        assert!(res.is_err(), "shard panic must reach the caller");
        // The pool is still usable after a poisoned region.
        let count = AtomicUsize::new(0);
        pool.run(8, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn serial_stage_overlaps_but_always_completes_first_on_caller() {
        // The serial closure must run exactly once per region, finish
        // before `run_with_serial` returns, and work in every dispatch
        // mode (pooled, trivial region, workerless pool).
        for threads in [1usize, 4] {
            let pool = ShardPool::new(threads);
            for nshards in [1usize, 8] {
                let serial_runs = AtomicUsize::new(0);
                let shard_runs = AtomicUsize::new(0);
                pool.run_with_serial(
                    nshards,
                    &|_| {
                        shard_runs.fetch_add(1, Ordering::Relaxed);
                    },
                    &mut || {
                        serial_runs.fetch_add(1, Ordering::Relaxed);
                    },
                );
                assert_eq!(serial_runs.load(Ordering::Relaxed), 1);
                assert_eq!(shard_runs.load(Ordering::Relaxed), nshards);
            }
        }
    }

    #[test]
    fn serial_stage_panic_poisons_region_and_pool_survives() {
        let pool = ShardPool::new(4);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_with_serial(8, &|_| {}, &mut || panic!("serial boom"));
        }));
        assert!(res.is_err(), "serial panic must reach the caller");
        let count = AtomicUsize::new(0);
        pool.run(8, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn pool_is_send() {
        // Sweeps move pooled engines across worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<ShardPool>();
        let pool = ShardPool::new(2);
        let handle = std::thread::spawn(move || {
            let count = AtomicUsize::new(0);
            pool.run(4, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            count.load(Ordering::Relaxed)
        });
        assert_eq!(handle.join().unwrap(), 4);
    }
}
