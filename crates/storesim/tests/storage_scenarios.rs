//! Deeper storage-substrate scenarios: conservation under load mixes,
//! stripe fan-out, metadata storms, and noise/failure interplay.

use simcore::units::{GIB, MIB};
use simcore::{Rng, SimTime};
use storesim::layout::{OstId, StripeSpec};
use storesim::params::{jaguar, testbed, xtp};
use storesim::system::CompletionKind;
use storesim::StorageSystem;

fn t(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

#[test]
fn thousand_random_ops_all_complete_exactly_once() {
    let mut sys = StorageSystem::new(testbed(), 99);
    let mut rng = Rng::new(1);
    let f = sys.fs_mut().create("mixed", StripeSpec::Count(4));
    // Submissions must be time-ordered (the co-simulation driver
    // guarantees this); draw random times, then sort.
    let mut times: Vec<f64> = (0..1000).map(|_| rng.uniform(0.0, 5.0)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut expected = Vec::new();
    for (i, &secs) in (0..1000u64).zip(times.iter()) {
        let at = t(secs);
        match i % 4 {
            0 => sys.submit_ost_write(at, OstId(rng.below(8) as usize), rng.below(4 * MIB) + 1, i),
            1 => sys.submit_file_write(at, f, (i % 64) * MIB, MIB, i),
            2 => sys.submit_file_read(at, f, 0, rng.below(MIB) + 1, i),
            _ => sys.submit_open(at, i),
        }
        expected.push(i);
    }
    let done = sys.run_until_quiet(t(1e6));
    let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
    tags.sort_unstable();
    assert_eq!(tags, expected, "every op completes exactly once");
    for c in &done {
        assert!(c.finished >= c.submitted);
    }
}

#[test]
fn wide_stripe_write_touches_every_target_once() {
    let mut sys = StorageSystem::new(jaguar(), 3);
    let f = sys.fs_mut().create("wide", StripeSpec::Count(160));
    // 160 MiB over 160 one-MiB stripes: one chunk per OST.
    sys.submit_file_write(SimTime::ZERO, f, 0, 160 * MIB, 7);
    let osts = sys.fs().meta(f).osts.clone();
    assert_eq!(osts.len(), 160);
    for &o in &osts {
        assert_eq!(sys.ost_streams(o), 1, "one chunk on {o:?}");
    }
    let done = sys.run_until_quiet(t(1e6));
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].bytes, 160 * MIB);
}

#[test]
fn open_storm_is_slower_per_op_than_staggered_opens() {
    // 256 opens at once vs spaced 5 ms apart: the storm's last completion
    // is later than base service alone would predict.
    let storm_end = {
        let mut sys = StorageSystem::new(testbed(), 5);
        for i in 0..256 {
            sys.submit_open(SimTime::ZERO, i);
        }
        sys.run_until_quiet(t(1e6)).last().unwrap().finished
    };
    let base = testbed().mds.open_base;
    assert!(
        storm_end.as_secs_f64() > 256.0 * base * 1.5,
        "storm serialises superlinearly: {storm_end}"
    );
}

#[test]
fn reads_and_writes_share_the_disk_lane() {
    let cfg = testbed();
    let bytes = 64 * MIB;
    // Write alone (direct: bypass cache to hit the disk lane).
    let solo = {
        let mut sys = StorageSystem::new(cfg.clone(), 8);
        let f = sys.fs_mut().create("a", StripeSpec::Pinned(vec![OstId(0)]));
        sys.submit_file_read(SimTime::ZERO, f, 0, bytes, 0);
        let d = sys.run_until_quiet(t(1e6));
        (d[0].finished - d[0].submitted).as_secs_f64()
    };
    // Read with three competing reads on the same target.
    let shared = {
        let mut sys = StorageSystem::new(cfg, 8);
        let f = sys.fs_mut().create("a", StripeSpec::Pinned(vec![OstId(0)]));
        for i in 0..4 {
            sys.submit_file_read(SimTime::ZERO, f, 0, bytes, i);
        }
        let d = sys.run_until_quiet(t(1e6));
        d.iter()
            .map(|c| (c.finished - c.submitted).as_secs_f64())
            .fold(0.0, f64::max)
    };
    assert!(
        shared > 3.0 * solo,
        "4-way read sharing must contend: {solo} vs {shared}"
    );
}

#[test]
fn degradation_composes_with_job_noise() {
    // A degraded OST on a production machine is never faster than its
    // degradation factor allows, regardless of job noise.
    let mut sys = StorageSystem::new(jaguar(), 21);
    sys.degrade_ost(SimTime::ZERO, OstId(0), 0.2);
    assert!(
        sys.ost_noise(OstId(0)) <= 0.2 + 1e-12,
        "noise factor caps at the degradation: {}",
        sys.ost_noise(OstId(0))
    );
}

#[test]
fn xtp_is_steadier_than_jaguar_for_identical_work() {
    let run_spread = |cfg: storesim::MachineConfig| {
        let mut maxes = Vec::new();
        for seed in 0..10 {
            let mut sys = StorageSystem::new(cfg.clone(), seed);
            for i in 0..32u64 {
                sys.submit_ost_write(SimTime::ZERO, OstId((i % 32) as usize), 128 * MIB, i);
            }
            let d = sys.run_until_quiet(t(1e6));
            maxes.push(
                d.iter()
                    .map(|c| (c.finished - c.submitted).as_secs_f64())
                    .fold(0.0, f64::max),
            );
        }
        let mean = maxes.iter().sum::<f64>() / maxes.len() as f64;
        let var = maxes.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / maxes.len() as f64;
        var.sqrt() / mean
    };
    let jaguar_cv = run_spread(jaguar());
    let xtp_cv = run_spread(xtp());
    assert!(
        jaguar_cv > 2.0 * xtp_cv,
        "production Jaguar must be far noisier: jaguar {jaguar_cv}, xtp {xtp_cv}"
    );
}

#[test]
fn background_interference_is_invisible_to_completions() {
    let mut sys = StorageSystem::new(testbed(), 4);
    sys.add_background_stream(SimTime::ZERO, OstId(0), GIB);
    sys.add_bursty_stream(SimTime::ZERO, OstId(1), 64 * MIB, 0.5);
    sys.submit_ost_write(SimTime::ZERO, OstId(2), MIB, 42);
    let done = sys.run_until_quiet(t(100.0));
    assert_eq!(done.len(), 1, "only the foreground op surfaces");
    assert_eq!(done[0].tag, 42);
    assert_eq!(done[0].kind, CompletionKind::Write);
}

#[test]
fn per_seed_noise_fields_are_uncorrelated_across_osts() {
    // Micro-jitter and jobs shouldn't leave two OSTs in lockstep.
    let sys = StorageSystem::new(jaguar(), 17);
    let factors: Vec<f64> = (0..64).map(|i| sys.ost_noise(OstId(i))).collect();
    let distinct: std::collections::HashSet<u64> =
        factors.iter().map(|f| (f * 1e9) as u64).collect();
    assert!(
        distinct.len() > 8,
        "expected varied noise field, got {} distinct values",
        distinct.len()
    );
}

#[test]
fn file_sizes_track_high_water_marks() {
    let mut sys = StorageSystem::new(testbed(), 6);
    let f = sys.fs_mut().create("grow", StripeSpec::Count(2));
    sys.submit_file_write(SimTime::ZERO, f, 0, 4 * MIB, 0);
    sys.submit_file_write(SimTime::ZERO, f, 10 * MIB, 2 * MIB, 1);
    sys.run_until_quiet(t(1e6));
    assert_eq!(sys.fs().meta(f).size, 12 * MIB);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

use storesim::{FailMode, FaultScript};

/// Regression for the degrade/replan-elision interaction: a degradation
/// applied while a write is in flight must invalidate the remembered wake
/// and re-plan the completion at the new rate. Before the fix, the
/// remembered `(token, time)` could keep a stale (even past) wake alive.
#[test]
fn mid_write_degrade_replans_in_flight_write() {
    let bytes = 128 * MIB;
    // Healthy reference time.
    let mut healthy = StorageSystem::new(testbed(), 21);
    healthy.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
    let hd = healthy.run_until_quiet(t(1e6));
    let healthy_time = (hd[0].finished - hd[0].submitted).as_secs_f64();

    // Fully-degraded reference time.
    let mut slow = StorageSystem::new(testbed(), 21);
    slow.degrade_ost(SimTime::ZERO, OstId(0), 0.1);
    slow.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
    let sd = slow.run_until_quiet(t(1e6));
    let slow_time = (sd[0].finished - sd[0].submitted).as_secs_f64();

    // Degrade halfway through via the scheduled fault path.
    let run_mid = |seed: u64| {
        let mut sys = StorageSystem::new(testbed(), seed);
        sys.install_faults(&FaultScript::none().degrade(healthy_time / 2.0, 0, 0.1));
        sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let d = sys.run_until_quiet(t(1e6));
        (d[0].finished - d[0].submitted).as_secs_f64()
    };
    let mid = run_mid(21);
    // Two-phase expectation: half at full rate, the other half at 1/10.
    assert!(
        mid > 1.2 * healthy_time && mid < slow_time,
        "mid-write degrade must land between extremes: healthy {healthy_time}, mid {mid}, slow {slow_time}"
    );
    let expect = healthy_time / 2.0 + (healthy_time / 2.0) * 10.0;
    assert!(
        (mid - expect).abs() < 0.05 * expect,
        "two-phase prediction {expect}, got {mid}"
    );
    // Deterministic per seed.
    assert_eq!(run_mid(21).to_bits(), mid.to_bits());
}

/// A direct mid-flight `degrade_ost` call (not via the DES) must behave
/// like the scheduled path — the forced re-plan invalidates stale wakes.
#[test]
fn direct_mid_flight_degrade_matches_scheduled_path() {
    let bytes = 128 * MIB;
    let mut healthy = StorageSystem::new(testbed(), 22);
    healthy.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
    let hd = healthy.run_until_quiet(t(1e6));
    let healthy_time = (hd[0].finished - hd[0].submitted).as_secs_f64();

    let mut direct = StorageSystem::new(testbed(), 22);
    direct.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
    direct.degrade_ost(t(healthy_time / 2.0), OstId(0), 0.1);
    let dd = direct.run_until_quiet(t(1e6));
    let direct_time = (dd[0].finished - dd[0].submitted).as_secs_f64();

    let mut scripted = StorageSystem::new(testbed(), 22);
    scripted.install_faults(&FaultScript::none().degrade(healthy_time / 2.0, 0, 0.1));
    scripted.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
    let sd = scripted.run_until_quiet(t(1e6));
    let scripted_time = (sd[0].finished - sd[0].submitted).as_secs_f64();

    assert!(
        (direct_time - scripted_time).abs() < 1e-9,
        "direct {direct_time} vs scripted {scripted_time}"
    );
}

#[test]
fn brownout_slows_then_recovers() {
    let bytes = 256 * MIB;
    let run = |script: FaultScript| {
        let mut sys = StorageSystem::new(testbed(), 23);
        sys.install_faults(&script);
        sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
        let d = sys.run_until_quiet(t(1e6));
        (d[0].finished - d[0].submitted).as_secs_f64()
    };
    let clean = run(FaultScript::none());
    let browned = run(FaultScript::none().brownout(0.5, 0, 0.2, 2.0));
    // The brownout costs roughly its duration times the lost fraction.
    assert!(browned > clean + 2.0 * 0.5 && browned < clean + 2.5 * 4.0);
    // A brownout on a different OST costs nothing.
    let elsewhere = run(FaultScript::none().brownout(0.5, 3, 0.2, 2.0));
    assert!((elsewhere - clean).abs() < 1e-9);
}

#[test]
fn brownouts_compose_with_degradation() {
    let bytes = 64 * MIB;
    let mut sys = StorageSystem::new(testbed(), 24);
    sys.degrade_ost(SimTime::ZERO, OstId(0), 0.5);
    sys.install_faults(&FaultScript::none().brownout(0.0, 0, 0.5, 1e5));
    sys.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
    let d = sys.run_until_quiet(t(1e6));
    let both = (d[0].finished - d[0].submitted).as_secs_f64();

    let mut only = StorageSystem::new(testbed(), 24);
    only.degrade_ost(SimTime::ZERO, OstId(0), 0.25);
    only.submit_ost_write(SimTime::ZERO, OstId(0), bytes, 0);
    let d2 = only.run_until_quiet(t(1e6));
    let quarter = (d2[0].finished - d2[0].submitted).as_secs_f64();
    assert!(
        (both - quarter).abs() < 1e-6,
        "0.5 x 0.5 must equal 0.25: {both} vs {quarter}"
    );
}

#[test]
fn error_failure_aborts_in_flight_and_future_writes() {
    let mut sys = StorageSystem::new(testbed(), 25);
    sys.install_faults(&FaultScript::none().fail_ost(1.0, 0, FailMode::Error, None));
    sys.submit_ost_write(SimTime::ZERO, OstId(0), 1024 * MIB, 7); // still in flight at t=1
    let done = sys.run_until_quiet(t(1e5));
    assert_eq!(done.len(), 1);
    assert!(done[0].error, "in-flight write must error");
    assert!((done[0].finished.as_secs_f64() - 1.0).abs() < 1e-9);
    assert!(sys.ost_failed(OstId(0)));
    assert!(sys.ost_lost_data_since(OstId(0), SimTime::ZERO));

    // A later write to the dead target errors promptly.
    sys.submit_ost_write(t(2.0), OstId(0), MIB, 8);
    let done = sys.run_until_quiet(t(1e5));
    assert_eq!(done.len(), 1);
    assert!(done[0].error);
    assert!(done[0].finished.as_secs_f64() < 2.1);

    // Other targets are unaffected.
    sys.submit_ost_write(t(3.0), OstId(1), MIB, 9);
    let done = sys.run_until_quiet(t(1e5));
    assert_eq!(done.len(), 1);
    assert!(!done[0].error);
}

#[test]
fn error_failure_with_recovery_accepts_new_writes() {
    let mut sys = StorageSystem::new(testbed(), 26);
    sys.install_faults(&FaultScript::none().fail_ost(1.0, 0, FailMode::Error, Some(5.0)));
    sys.submit_ost_write(t(6.0), OstId(0), MIB, 1);
    let done = sys.run_until_quiet(t(1e5));
    assert_eq!(done.len(), 1);
    assert!(!done[0].error, "post-recovery write succeeds");
    assert!(!sys.ost_failed(OstId(0)));
    // Data written after recovery survives; data before t=1 was lost.
    assert!(!sys.ost_lost_data_since(OstId(0), t(6.0)));
    assert!(sys.ost_lost_data_since(OstId(0), t(0.5)));
}

#[test]
fn stalled_ost_holds_writes_until_recovery() {
    let mut sys = StorageSystem::new(testbed(), 27);
    sys.install_faults(&FaultScript::none().fail_ost(0.5, 0, FailMode::Stall, Some(10.0)));
    // Large enough to still be in flight when the stall begins at t=0.5.
    sys.submit_ost_write(SimTime::ZERO, OstId(0), 128 * MIB, 1);
    // Also a write submitted during the stall window.
    sys.submit_ost_write(t(1.0), OstId(0), 128 * MIB, 2);
    let done = sys.run_until_quiet(t(1e5));
    assert_eq!(done.len(), 2, "both writes complete after recovery");
    for c in &done {
        assert!(!c.error, "stall mode never errors");
        assert!(
            c.finished.as_secs_f64() > 10.0,
            "completion must wait for recovery, got {}",
            c.finished
        );
    }
    assert!(!sys.ost_failed(OstId(0)));
    // Stall mode loses no data.
    assert!(!sys.ost_lost_data_since(OstId(0), SimTime::ZERO));
}

#[test]
fn permanent_stall_leaves_op_pending_without_hanging() {
    let mut sys = StorageSystem::new(testbed(), 28);
    sys.install_faults(&FaultScript::none().fail_ost(0.5, 0, FailMode::Stall, None));
    sys.submit_ost_write(SimTime::ZERO, OstId(0), 64 * MIB, 1);
    // run_until_quiet must return (no events left), not spin forever.
    let done = sys.run_until_quiet(t(1e6));
    assert!(done.is_empty(), "stalled write never completes");
    assert!(sys.ost_failed(OstId(0)));
}

#[test]
fn mds_outage_delays_opens() {
    let mut sys = StorageSystem::new(testbed(), 29);
    sys.install_faults(&FaultScript::none().mds_outage(0.0005, 3.0));
    sys.submit_open(SimTime::ZERO, 1); // in service when the outage hits
    sys.submit_open(t(1.0), 2); // submitted during the outage
    let done = sys.run_until_quiet(t(1e5));
    assert_eq!(done.len(), 2);
    for c in &done {
        assert!(!c.error);
        assert!(
            c.finished.as_secs_f64() > 3.0,
            "opens must wait out the outage, got {}",
            c.finished
        );
    }
}

#[test]
fn striped_write_over_failed_target_errors_whole_op() {
    let mut sys = StorageSystem::new(testbed(), 30);
    sys.install_faults(&FaultScript::none().fail_ost(0.0, 1, FailMode::Error, None));
    let f = sys
        .fs_mut()
        .create("wide", StripeSpec::Pinned(vec![OstId(0), OstId(1)]));
    sys.submit_file_write(t(0.1), f, 0, 4 * MIB, 5);
    let done = sys.run_until_quiet(t(1e5));
    assert_eq!(done.len(), 1);
    assert!(done[0].error, "one dead stripe target poisons the op");
}

#[test]
fn faulted_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut sys = StorageSystem::new(jaguar(), seed);
        sys.install_faults(
            &FaultScript::none()
                .brownout(0.2, 1, 0.3, 2.0)
                .fail_ost(0.5, 2, FailMode::Error, Some(4.0))
                .fail_ost(1.0, 3, FailMode::Stall, Some(3.0))
                .mds_outage(0.1, 0.5),
        );
        for i in 0..16u64 {
            sys.submit_ost_write(SimTime::ZERO, OstId((i % 4) as usize), 32 * MIB, i);
        }
        sys.submit_open(SimTime::ZERO, 100);
        sys.run_until_quiet(t(1e6))
            .iter()
            .map(|c| (c.tag, c.finished.as_nanos(), c.error))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}

#[test]
fn background_interference_dies_with_error_failed_target() {
    let mut sys = StorageSystem::new(testbed(), 31);
    sys.add_background_stream(SimTime::ZERO, OstId(0), GIB);
    sys.install_faults(&FaultScript::none().fail_ost(0.5, 0, FailMode::Error, Some(1.0)));
    sys.submit_ost_write(t(2.0), OstId(0), 64 * MIB, 9);
    let done = sys.run_until_quiet(t(1e5));
    assert_eq!(done.len(), 1);
    assert!(!done[0].error);
    // With the interference stream gone, the post-recovery write runs at
    // full solo speed.
    let mut solo = StorageSystem::new(testbed(), 31);
    solo.submit_ost_write(t(2.0), OstId(0), 64 * MIB, 9);
    let sd = solo.run_until_quiet(t(1e5));
    let t_busy = (done[0].finished - done[0].submitted).as_secs_f64();
    let t_solo = (sd[0].finished - sd[0].submitted).as_secs_f64();
    assert!(
        (t_busy - t_solo).abs() < 0.05 * t_solo,
        "stream should have died: busy {t_busy} vs solo {t_solo}"
    );
}
