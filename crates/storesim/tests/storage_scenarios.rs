//! Deeper storage-substrate scenarios: conservation under load mixes,
//! stripe fan-out, metadata storms, and noise/failure interplay.

use simcore::units::{GIB, MIB};
use simcore::{Rng, SimTime};
use storesim::layout::{OstId, StripeSpec};
use storesim::params::{jaguar, testbed, xtp};
use storesim::system::CompletionKind;
use storesim::StorageSystem;

fn t(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

#[test]
fn thousand_random_ops_all_complete_exactly_once() {
    let mut sys = StorageSystem::new(testbed(), 99);
    let mut rng = Rng::new(1);
    let f = sys.fs_mut().create("mixed", StripeSpec::Count(4));
    // Submissions must be time-ordered (the co-simulation driver
    // guarantees this); draw random times, then sort.
    let mut times: Vec<f64> = (0..1000).map(|_| rng.uniform(0.0, 5.0)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut expected = Vec::new();
    for (i, &secs) in (0..1000u64).zip(times.iter()) {
        let at = t(secs);
        match i % 4 {
            0 => sys.submit_ost_write(at, OstId(rng.below(8) as usize), rng.below(4 * MIB) + 1, i),
            1 => sys.submit_file_write(at, f, (i % 64) * MIB, MIB, i),
            2 => sys.submit_file_read(at, f, 0, rng.below(MIB) + 1, i),
            _ => sys.submit_open(at, i),
        }
        expected.push(i);
    }
    let done = sys.run_until_quiet(t(1e6));
    let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
    tags.sort_unstable();
    assert_eq!(tags, expected, "every op completes exactly once");
    for c in &done {
        assert!(c.finished >= c.submitted);
    }
}

#[test]
fn wide_stripe_write_touches_every_target_once() {
    let mut sys = StorageSystem::new(jaguar(), 3);
    let f = sys.fs_mut().create("wide", StripeSpec::Count(160));
    // 160 MiB over 160 one-MiB stripes: one chunk per OST.
    sys.submit_file_write(SimTime::ZERO, f, 0, 160 * MIB, 7);
    let osts = sys.fs().meta(f).osts.clone();
    assert_eq!(osts.len(), 160);
    for &o in &osts {
        assert_eq!(sys.ost_streams(o), 1, "one chunk on {o:?}");
    }
    let done = sys.run_until_quiet(t(1e6));
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].bytes, 160 * MIB);
}

#[test]
fn open_storm_is_slower_per_op_than_staggered_opens() {
    // 256 opens at once vs spaced 5 ms apart: the storm's last completion
    // is later than base service alone would predict.
    let storm_end = {
        let mut sys = StorageSystem::new(testbed(), 5);
        for i in 0..256 {
            sys.submit_open(SimTime::ZERO, i);
        }
        sys.run_until_quiet(t(1e6)).last().unwrap().finished
    };
    let base = testbed().mds.open_base;
    assert!(
        storm_end.as_secs_f64() > 256.0 * base * 1.5,
        "storm serialises superlinearly: {storm_end}"
    );
}

#[test]
fn reads_and_writes_share_the_disk_lane() {
    let cfg = testbed();
    let bytes = 64 * MIB;
    // Write alone (direct: bypass cache to hit the disk lane).
    let solo = {
        let mut sys = StorageSystem::new(cfg.clone(), 8);
        let f = sys.fs_mut().create("a", StripeSpec::Pinned(vec![OstId(0)]));
        sys.submit_file_read(SimTime::ZERO, f, 0, bytes, 0);
        let d = sys.run_until_quiet(t(1e6));
        (d[0].finished - d[0].submitted).as_secs_f64()
    };
    // Read with three competing reads on the same target.
    let shared = {
        let mut sys = StorageSystem::new(cfg, 8);
        let f = sys.fs_mut().create("a", StripeSpec::Pinned(vec![OstId(0)]));
        for i in 0..4 {
            sys.submit_file_read(SimTime::ZERO, f, 0, bytes, i);
        }
        let d = sys.run_until_quiet(t(1e6));
        d.iter()
            .map(|c| (c.finished - c.submitted).as_secs_f64())
            .fold(0.0, f64::max)
    };
    assert!(
        shared > 3.0 * solo,
        "4-way read sharing must contend: {solo} vs {shared}"
    );
}

#[test]
fn degradation_composes_with_job_noise() {
    // A degraded OST on a production machine is never faster than its
    // degradation factor allows, regardless of job noise.
    let mut sys = StorageSystem::new(jaguar(), 21);
    sys.degrade_ost(SimTime::ZERO, OstId(0), 0.2);
    assert!(
        sys.ost_noise(OstId(0)) <= 0.2 + 1e-12,
        "noise factor caps at the degradation: {}",
        sys.ost_noise(OstId(0))
    );
}

#[test]
fn xtp_is_steadier_than_jaguar_for_identical_work() {
    let run_spread = |cfg: storesim::MachineConfig| {
        let mut maxes = Vec::new();
        for seed in 0..10 {
            let mut sys = StorageSystem::new(cfg.clone(), seed);
            for i in 0..32u64 {
                sys.submit_ost_write(SimTime::ZERO, OstId((i % 32) as usize), 128 * MIB, i);
            }
            let d = sys.run_until_quiet(t(1e6));
            maxes.push(
                d.iter()
                    .map(|c| (c.finished - c.submitted).as_secs_f64())
                    .fold(0.0, f64::max),
            );
        }
        let mean = maxes.iter().sum::<f64>() / maxes.len() as f64;
        let var = maxes.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / maxes.len() as f64;
        var.sqrt() / mean
    };
    let jaguar_cv = run_spread(jaguar());
    let xtp_cv = run_spread(xtp());
    assert!(
        jaguar_cv > 2.0 * xtp_cv,
        "production Jaguar must be far noisier: jaguar {jaguar_cv}, xtp {xtp_cv}"
    );
}

#[test]
fn background_interference_is_invisible_to_completions() {
    let mut sys = StorageSystem::new(testbed(), 4);
    sys.add_background_stream(SimTime::ZERO, OstId(0), GIB);
    sys.add_bursty_stream(SimTime::ZERO, OstId(1), 64 * MIB, 0.5);
    sys.submit_ost_write(SimTime::ZERO, OstId(2), MIB, 42);
    let done = sys.run_until_quiet(t(100.0));
    assert_eq!(done.len(), 1, "only the foreground op surfaces");
    assert_eq!(done[0].tag, 42);
    assert_eq!(done[0].kind, CompletionKind::Write);
}

#[test]
fn per_seed_noise_fields_are_uncorrelated_across_osts() {
    // Micro-jitter and jobs shouldn't leave two OSTs in lockstep.
    let sys = StorageSystem::new(jaguar(), 17);
    let factors: Vec<f64> = (0..64).map(|i| sys.ost_noise(OstId(i))).collect();
    let distinct: std::collections::HashSet<u64> =
        factors.iter().map(|f| (f * 1e9) as u64).collect();
    assert!(
        distinct.len() > 8,
        "expected varied noise field, got {} distinct values",
        distinct.len()
    );
}

#[test]
fn file_sizes_track_high_water_marks() {
    let mut sys = StorageSystem::new(testbed(), 6);
    let f = sys.fs_mut().create("grow", StripeSpec::Count(2));
    sys.submit_file_write(SimTime::ZERO, f, 0, 4 * MIB, 0);
    sys.submit_file_write(SimTime::ZERO, f, 10 * MIB, 2 * MIB, 1);
    sys.run_until_quiet(t(1e6));
    assert_eq!(sys.fs().meta(f).size, 12 * MIB);
}
