//! Fresh-vs-reset equivalence: a [`StorageSystem`] reset to a seed must be
//! byte-identical to one freshly constructed with that seed — completions,
//! integrity oracle, diagnostics — including under fault scripts,
//! background interference and silent corruption. This is the contract the
//! fleet sweep engine's per-worker scratch arenas rest on.

use simcore::{SimDuration, SimTime};
use storesim::fault::FaultScript;
use storesim::layout::{OstId, StripeSpec};
use storesim::params::{jaguar, testbed, MachineConfig};
use storesim::system::{StorageCompletion, StorageSystem};

const MIB: u64 = 1 << 20;

fn t(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

/// Drive one mixed workload (file + raw OST writes, reads, metadata,
/// background streams, optional faults) and fingerprint the results.
fn drive(sys: &mut StorageSystem, script: Option<&FaultScript>) -> Vec<(u64, u64, u64, u64, bool)> {
    if let Some(s) = script {
        sys.install_faults(s);
    }
    sys.add_background_stream(SimTime::ZERO, OstId(1), 64 * MIB);
    sys.add_bursty_stream(SimTime::ZERO, OstId(2), 8 * MIB, 0.5);
    let file = if sys.fs().file_count() == 0 {
        sys.create_file_with_stripe_size(
            "sweep/shared",
            StripeSpec::Pinned(vec![OstId(0), OstId(1), OstId(2), OstId(3)]),
            MIB,
        )
    } else {
        storesim::layout::FileId(0)
    };
    sys.submit_open(SimTime::ZERO, 1000);
    for i in 0..12u64 {
        let at = SimTime::ZERO + SimDuration::from_millis(i * 3);
        sys.submit_file_write(at, file, i * 2 * MIB, 2 * MIB, i);
        sys.submit_ost_write(at, OstId((i % 4) as usize), (i + 1) * MIB, 100 + i);
    }
    sys.submit_file_read(t(0.5), file, 0, 8 * MIB, 2000);
    sys.submit_close(t(0.6), 3000);
    let done = sys.run_until_quiet(t(1e6));
    fingerprint(&done)
}

fn fingerprint(done: &[StorageCompletion]) -> Vec<(u64, u64, u64, u64, bool)> {
    done.iter()
        .map(|c| {
            (
                c.tag,
                c.bytes,
                c.submitted.as_nanos(),
                c.finished.as_nanos(),
                c.error,
            )
        })
        .collect()
}

fn check_reset_matches_fresh(cfg: MachineConfig, seeds: &[u64], script: Option<FaultScript>) {
    let cfg = std::sync::Arc::new(cfg);
    // One pooled system reset across all seeds (plus a warm-up run so
    // capacity reuse paths are actually exercised), vs a fresh system per
    // seed.
    let mut pooled = StorageSystem::new(cfg.clone(), 0xDEAD_BEEF);
    drive(&mut pooled, script.as_ref());
    for &seed in seeds {
        pooled.reset(seed);
        assert_eq!(pooled.fs().file_count(), 1, "file table survives reset");
        let warm = drive(&mut pooled, script.as_ref());
        let warm_oracle = pooled.integrity_oracle();

        let mut fresh = StorageSystem::new(cfg.clone(), seed);
        let cold = drive(&mut fresh, script.as_ref());
        let cold_oracle = fresh.integrity_oracle();

        assert_eq!(warm, cold, "seed {seed}: completions must be byte-identical");
        assert_eq!(
            warm_oracle.corrupt, cold_oracle.corrupt,
            "seed {seed}: corruption log"
        );
        assert_eq!(warm_oracle.torn, cold_oracle.torn, "seed {seed}: torn log");
        assert_eq!(warm_oracle.dead, cold_oracle.dead, "seed {seed}: dead set");
        assert_eq!(
            pooled.active_job_count(),
            fresh.active_job_count(),
            "seed {seed}: job population"
        );
    }
}

#[test]
fn reset_matches_fresh_clean_runs() {
    check_reset_matches_fresh(testbed(), &[1, 2, 3, 17, 4242], None);
}

#[test]
fn reset_matches_fresh_on_production_machine() {
    check_reset_matches_fresh(jaguar(), &[7, 99], None);
}

#[test]
fn reset_matches_fresh_under_faults() {
    let script = FaultScript::none()
        .brownout(0.01, 0, 0.3, 0.2)
        .degrade(0.02, 3, 0.5)
        .fail_ost(0.05, 1, storesim::fault::FailMode::Stall, Some(0.4))
        .mds_outage(0.0, 0.05)
        .silent_corruption(0.0, 0, None, 0.5)
        .torn_write(0.3, 2);
    check_reset_matches_fresh(testbed(), &[5, 6, 21], Some(script));
}

#[test]
fn reset_matches_fresh_under_error_failures() {
    let script = FaultScript::none().fail_ost(0.02, 0, storesim::fault::FailMode::Error, Some(0.5));
    check_reset_matches_fresh(testbed(), &[8, 13], Some(script));
}

#[test]
fn reset_to_same_seed_is_idempotent() {
    let cfg = std::sync::Arc::new(testbed());
    let mut sys = StorageSystem::new(cfg, 77);
    let a = drive(&mut sys, None);
    sys.reset(77);
    let b = drive(&mut sys, None);
    sys.reset(77);
    let c = drive(&mut sys, None);
    assert_eq!(a, b);
    assert_eq!(b, c);
}
