//! Sharded-vs-serial differential suite at the storage layer.
//!
//! Drives a loaded [`StorageSystem`] through identical randomized
//! schedules at 1, 2, and 8 shard threads and demands byte-identical
//! completion streams and integrity oracles. Unlike the cluster-coupled
//! driver (which advances to the very next event, so every macro-step
//! window holds a single lane event), this harness advances in coarse
//! steps between submissions — windows span many lane events across many
//! shards, so the parallel dispatch path genuinely engages, which the
//! profiling hook asserts.

use simcore::units::MIB;
use simcore::{Rng, SimTime};
use storesim::params::{franklin, xtp, MachineConfig};
use storesim::{FailMode, FaultScript, FileId, OstId, StorageCompletion, StorageSystem, StripeSpec};

fn t(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

/// One randomized submission, generated outside the system so every
/// shard count replays the exact same driver behaviour.
struct Op {
    at: SimTime,
    kind: u32,
    a: u64,
    b: u64,
}

fn schedule(seed: u64, count: usize, horizon: f64) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    // Submissions must be time-ordered (the co-simulation driver
    // guarantees this); draw random times, then sort.
    let mut times: Vec<f64> = (0..count).map(|_| rng.uniform(0.05, horizon)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times
        .into_iter()
        .map(|secs| Op {
            at: t(secs),
            kind: rng.uniform(0.0, 6.0) as u32,
            a: rng.next_u64(),
            b: rng.next_u64(),
        })
        .collect()
}

/// Shared pre-run setup: files striped across disjoint OST ranges plus
/// background and bursty interference spread over the machine so several
/// shards carry lane-local events in every window.
fn setup(sys: &mut StorageSystem) -> Vec<FileId> {
    let n = sys.config().ost_count;
    let wide = sys.fs_mut().create(
        "diff/wide",
        StripeSpec::Pinned((0..8).map(|i| OstId(i * n / 8)).collect()),
    );
    let deep = sys.fs_mut().create("diff/deep", StripeSpec::Count(16));
    let small = sys.create_file_with_stripe_size("diff/small", StripeSpec::Count(4), 2 * MIB);
    for i in 0..10 {
        sys.add_background_stream(SimTime::ZERO, OstId((i * 7 + 1) % n), 64 * MIB);
    }
    for i in 0..6 {
        sys.add_bursty_stream(SimTime::ZERO, OstId((i * 11 + 3) % n), 16 * MIB, 0.4);
    }
    vec![wide, deep, small]
}

fn apply(sys: &mut StorageSystem, op: &Op, tag: u64, files: &[FileId]) {
    let n = sys.config().ost_count;
    match op.kind {
        0 | 1 => {
            let f = files[(op.a % files.len() as u64) as usize];
            let offset = (op.b % 64) * MIB;
            let len = (1 + op.a % 24) * MIB;
            if op.kind == 0 {
                sys.submit_file_write(op.at, f, offset, len, tag);
            } else {
                sys.submit_file_read(op.at, f, offset, len, tag);
            }
        }
        2 => {
            let ost = OstId((op.a % n as u64) as usize);
            sys.submit_ost_write(op.at, ost, (1 + op.b % 32) * MIB, tag);
        }
        3 => sys.submit_open(op.at, tag),
        4 => sys.submit_close(op.at, tag),
        _ => {
            let ost = OstId((op.a % n as u64) as usize);
            if op.b.is_multiple_of(2) {
                sys.degrade_ost(op.at, ost, 0.4);
            } else {
                sys.restore_ost(op.at, ost);
            }
        }
    }
}

/// Run the whole scenario at a given shard count; returns the completion
/// stream and the system for oracle/profile inspection. `reshard` maps an
/// op index to a new shard count applied at that decision point.
fn drive(
    cfg: MachineConfig,
    seed: u64,
    shards: usize,
    script: &FaultScript,
    ops: &[Op],
    horizon: f64,
    reshard: &[(usize, usize)],
) -> (Vec<StorageCompletion>, StorageSystem) {
    let mut sys = StorageSystem::new(cfg, seed);
    sys.set_shard_threads(shards);
    sys.enable_profiling();
    if !script.is_empty() {
        sys.install_faults(script);
    }
    let files = setup(&mut sys);
    let mut out = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(&(_, to)) = reshard.iter().find(|&&(at, _)| at == i) {
            sys.set_shard_threads(to);
        }
        sys.advance_into(op.at, &mut out);
        apply(&mut sys, op, i as u64, &files);
    }
    sys.advance_into(t(horizon + 10.0), &mut out);
    (out, sys)
}

fn assert_same(
    label: &str,
    (base_out, base_sys): &(Vec<StorageCompletion>, StorageSystem),
    (out, sys): &(Vec<StorageCompletion>, StorageSystem),
) {
    assert_eq!(
        base_out.len(),
        out.len(),
        "{label}: completion count diverged"
    );
    for (i, (a, b)) in base_out.iter().zip(out.iter()).enumerate() {
        assert_eq!(a, b, "{label}: completion {i} diverged");
    }
    assert_eq!(
        base_sys.integrity_oracle(),
        sys.integrity_oracle(),
        "{label}: integrity oracle diverged"
    );
    assert_eq!(
        base_sys.next_event_time(),
        sys.next_event_time(),
        "{label}: pending-event horizon diverged"
    );
}

#[test]
fn clean_sharded_matches_serial_and_engages_pool() {
    let ops = schedule(0xC1EA_0001, 400, 20.0);
    let script = FaultScript::none();
    let serial = drive(xtp(), 0xD1FF, 1, &script, &ops, 20.0, &[]);
    assert!(
        serial.0.len() > 200,
        "scenario too quiet: {} completions",
        serial.0.len()
    );
    for shards in [2usize, 8] {
        let run = drive(xtp(), 0xD1FF, shards, &script, &ops, 20.0, &[]);
        assert_same(&format!("clean x{shards}"), &serial, &run);
        let prof = run.1.profile().expect("profiling enabled");
        assert!(prof.shard_events > 0, "no lane events at x{shards}?");
        assert!(
            prof.parallel_windows > 0,
            "x{shards}: coarse windows never dispatched on the pool \
             ({} windows, {} shard events)",
            prof.windows,
            prof.shard_events
        );
    }
}

#[test]
fn faulted_sharded_matches_serial() {
    // Every fault family at once: slowdowns, both failure modes, MDS
    // outage, silent corruption, torn writes, a limping straggler.
    let script = FaultScript::none()
        .degrade(1.0, 7, 0.5)
        .brownout(2.0, 3, 0.3, 4.0)
        .silent_corruption(2.5, 5, Some(6.0), 0.4)
        .fail_ost(3.0, 11, FailMode::Stall, Some(8.0))
        .torn_write(4.0, 17)
        .mds_outage(5.0, 1.5)
        .limping(6.0, 23, 0.2)
        .fail_ost(7.0, 29, FailMode::Error, Some(12.0));
    let ops = schedule(0xFA17_0002, 400, 20.0);
    let serial = drive(xtp(), 0xBEEF, 1, &script, &ops, 20.0, &[]);
    for shards in [2usize, 8] {
        let run = drive(xtp(), 0xBEEF, shards, &script, &ops, 20.0, &[]);
        assert_same(&format!("faulted x{shards}"), &serial, &run);
    }
    // The corruption window must actually have bitten for this test to
    // mean anything.
    assert!(serial.1.integrity_oracle().corrupt_count() > 0);
}

#[test]
fn random_fault_scripts_match() {
    for seed in [11u64, 12, 13] {
        let script = FaultScript::random(seed, 40, 15.0, 6);
        let ops = schedule(0x5EED ^ seed, 250, 15.0);
        let serial = drive(xtp(), seed, 1, &script, &ops, 15.0, &[]);
        let sharded = drive(xtp(), seed, 8, &script, &ops, 15.0, &[]);
        assert_same(&format!("random script {seed}"), &serial, &sharded);
    }
}

#[test]
fn job_noise_globals_interleave_with_shard_windows() {
    // Franklin has job noise enabled: JobArrival/JobDeparture are global
    // events landing *inside* coarse windows, so this exercises the
    // macro-step horizon rule (drain shards to the global event, handle
    // it, re-extend) rather than pure shard-only traffic.
    let ops = schedule(0x0B5_0003, 250, 15.0);
    let script = FaultScript::none();
    let serial = drive(franklin(), 0xF4A2, 1, &script, &ops, 15.0, &[]);
    let sharded = drive(franklin(), 0xF4A2, 8, &script, &ops, 15.0, &[]);
    assert_same("franklin jobs", &serial, &sharded);
    let prof = sharded.1.profile().expect("profiling enabled");
    assert!(
        prof.global_events > 0,
        "job noise should produce global events"
    );
}

#[test]
fn mid_run_reshard_is_transparent() {
    let ops = schedule(0x4E54_0004, 300, 15.0);
    let script = FaultScript::random(77, 40, 12.0, 4);
    let serial = drive(xtp(), 0xACE, 1, &script, &ops, 15.0, &[]);
    // Reshard twice mid-campaign: serial -> wide -> narrow.
    let resharded = drive(xtp(), 0xACE, 1, &script, &ops, 15.0, &[(100, 8), (200, 2)]);
    assert_same("mid-run reshard", &serial, &resharded);
    assert_eq!(resharded.1.shard_threads(), 2);
}
