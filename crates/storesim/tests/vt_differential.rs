//! Differential property tests: the virtual-time OST engine against the
//! reference settle-loop, over randomized schedules.
//!
//! Both engines compile unconditionally (the `baseline-engine` feature
//! only picks which one the `Ost` alias names), so this harness always
//! pits `vt::VtOst` against `reference::RefOst` directly: identical
//! completion sets and ordering, completion times within 1 ns, across
//! seeded random schedules of submits (both lanes, both kinds, reads),
//! mid-flight noise changes, freeze/unfreeze and `fail_all`.

use simcore::units::MIB;
use simcore::{Rng, SimDuration, SimTime};
use storesim::ost::reference::RefOst;
use storesim::ost::vt::VtOst;
use storesim::ost::{OpKind, OstCompletion, RequestId};
use storesim::params::{jaguar, testbed};

/// The API slice both engines share, so one driver exercises either.
trait Engine: Clone {
    fn submit(&mut self, now: SimTime, id: RequestId, bytes: u64, kind: OpKind);
    fn next_completion(&self) -> Option<SimTime>;
    fn advance(&mut self, now: SimTime) -> Vec<OstCompletion>;
    fn set_noise(&mut self, now: SimTime, factor: f64);
    fn freeze(&mut self, now: SimTime);
    fn unfreeze(&mut self, now: SimTime);
    fn is_frozen(&self) -> bool;
    fn fail_all(&mut self, now: SimTime) -> Vec<RequestId>;
    fn active_streams(&self) -> usize;
}

macro_rules! impl_engine {
    ($t:ty) => {
        impl Engine for $t {
            fn submit(&mut self, now: SimTime, id: RequestId, bytes: u64, kind: OpKind) {
                <$t>::submit(self, now, id, bytes, kind)
            }
            fn next_completion(&self) -> Option<SimTime> {
                <$t>::next_completion(self)
            }
            fn advance(&mut self, now: SimTime) -> Vec<OstCompletion> {
                <$t>::advance(self, now)
            }
            fn set_noise(&mut self, now: SimTime, factor: f64) {
                <$t>::set_noise(self, now, factor)
            }
            fn freeze(&mut self, now: SimTime) {
                <$t>::freeze(self, now)
            }
            fn unfreeze(&mut self, now: SimTime) {
                <$t>::unfreeze(self, now)
            }
            fn is_frozen(&self) -> bool {
                <$t>::is_frozen(self)
            }
            fn fail_all(&mut self, now: SimTime) -> Vec<RequestId> {
                <$t>::fail_all(self, now)
            }
            fn active_streams(&self) -> usize {
                <$t>::active_streams(self)
            }
        }
    };
}

impl_engine!(RefOst);
impl_engine!(VtOst);

/// One step of a random schedule, decoded from the shared RNG stream so
/// both engines replay the identical external history.
#[derive(Clone, Debug)]
enum Step {
    Submit(Vec<(RequestId, u64, OpKind)>),
    SetNoise(f64),
    ToggleFreeze,
    FailAll,
    Idle,
}

fn random_schedule(rng: &mut Rng, steps: usize) -> Vec<(f64, Step)> {
    let mut out = Vec::with_capacity(steps);
    let mut at = 0.0;
    let mut next_id = 0u64;
    for _ in 0..steps {
        at += rng.uniform(0.0005, 0.5);
        let step = match rng.below(10) {
            // Submissions dominate: bursts of 1-8 requests, mixed sizes
            // and kinds, so both lanes and the admission boundary get hit.
            0..=4 => {
                let burst = 1 + rng.below(8);
                let mut subs = Vec::with_capacity(burst as usize);
                for _ in 0..burst {
                    let bytes = 1 + rng.below(32 * MIB);
                    let kind = match rng.below(4) {
                        0 | 1 => OpKind::Write,
                        2 => OpKind::WriteDirect,
                        _ => OpKind::Read,
                    };
                    subs.push((RequestId(next_id), bytes, kind));
                    next_id += 1;
                }
                Step::Submit(subs)
            }
            5 | 6 => Step::SetNoise(rng.uniform(0.05, 1.0)),
            7 => Step::ToggleFreeze,
            8 => Step::FailAll,
            _ => Step::Idle,
        };
        out.push((at, step));
    }
    out
}

/// Drive one engine wake-by-wake through `schedule`, recording every
/// completion `(time, id)` plus every `fail_all` abort set; finally thaw
/// and drain to a far deadline so nothing stays in flight.
fn run_schedule<E: Engine>(
    mut ost: E,
    schedule: &[(f64, Step)],
) -> (Vec<(SimTime, RequestId)>, Vec<Vec<RequestId>>) {
    let mut completions = Vec::new();
    let mut aborts = Vec::new();
    let drain_to = |ost: &mut E, deadline: SimTime, out: &mut Vec<(SimTime, RequestId)>| {
        for _ in 0..1_000_000 {
            let Some(at) = ost.next_completion() else { break };
            if at > deadline {
                break;
            }
            for c in ost.advance(at) {
                out.push((at, c.id));
            }
        }
        // Harvest anything that lands exactly at (or drifted just under)
        // the deadline itself.
        for c in ost.advance(deadline) {
            out.push((deadline, c.id));
        }
    };
    for (secs, step) in schedule {
        let now = SimTime::from_secs_f64(*secs);
        drain_to(&mut ost, now, &mut completions);
        match step {
            Step::Submit(subs) => {
                for (id, bytes, kind) in subs {
                    ost.submit(now, *id, *bytes, *kind);
                }
            }
            Step::SetNoise(f) => ost.set_noise(now, *f),
            Step::ToggleFreeze => {
                if ost.is_frozen() {
                    ost.unfreeze(now);
                } else {
                    ost.freeze(now);
                }
            }
            Step::FailAll => aborts.push(ost.fail_all(now)),
            Step::Idle => {}
        }
    }
    // Final drain: thaw, restore full rate, run far past the last event.
    let last = schedule.last().map(|(s, _)| *s).unwrap_or(0.0);
    let end = SimTime::from_secs_f64(last + 1.0);
    if ost.is_frozen() {
        ost.unfreeze(end);
    }
    ost.set_noise(end, 1.0);
    drain_to(&mut ost, SimTime::from_secs_f64(last + 1e7), &mut completions);
    assert_eq!(ost.active_streams(), 0, "schedule must fully drain");
    (completions, aborts)
}

/// The 1 ns agreement bound from the issue (|Δt| ≤ 1e-9 s): the engines
/// associate the same float products differently, and wake instants round
/// to nanosecond SimTime ticks.
fn assert_equivalent(seed: u64, reference: RefOst, vt: VtOst, schedule: &[(f64, Step)]) {
    let (ref_done, ref_aborts) = run_schedule(reference, schedule);
    let (vt_done, vt_aborts) = run_schedule(vt, schedule);
    assert_eq!(
        ref_aborts, vt_aborts,
        "seed {seed}: fail_all abort sets diverge"
    );
    assert_eq!(
        ref_done.len(),
        vt_done.len(),
        "seed {seed}: completion counts diverge ({} vs {})",
        ref_done.len(),
        vt_done.len()
    );
    for (i, ((rt, rid), (vt_t, vid))) in ref_done.iter().zip(vt_done.iter()).enumerate() {
        assert_eq!(
            rid, vid,
            "seed {seed}: completion #{i} id diverges ({rid:?} at {rt} vs {vid:?} at {vt_t})"
        );
        let dt = (rt.as_secs_f64() - vt_t.as_secs_f64()).abs();
        assert!(
            dt <= 1e-9 + 1e-15,
            "seed {seed}: completion #{i} ({rid:?}) time diverges by {dt} s ({rt} vs {vt_t})"
        );
    }
}

#[test]
fn engines_agree_on_random_schedules() {
    // ≥100 random schedules (the issue's floor), alternating between the
    // small testbed OST (tiny cache: admission boundary gets exercised)
    // and the Jaguar OST (large cache: both lanes stay busy).
    for seed in 0..120u64 {
        let mut rng = Rng::new(0x5eed_d1ff + seed);
        let steps = 30 + rng.below(31) as usize;
        let schedule = random_schedule(&mut rng, steps);
        let params = if seed % 2 == 0 { testbed().ost } else { jaguar().ost };
        assert_equivalent(
            seed,
            RefOst::new(params.clone()),
            VtOst::new(params),
            &schedule,
        );
    }
}

#[test]
fn engines_agree_on_zero_overhead_params() {
    // `request_overhead == 0` skips the pending heap entirely (tags are
    // assigned at submit); make sure that path diffs clean too.
    for seed in 200..220u64 {
        let mut rng = Rng::new(0xabcd_0001 + seed);
        let schedule = random_schedule(&mut rng, 40);
        let mut params = testbed().ost;
        params.request_overhead = 0.0;
        assert_equivalent(
            seed,
            RefOst::new(params.clone()),
            VtOst::new(params),
            &schedule,
        );
    }
}

#[test]
fn drain_256_writers_bounded_event_count() {
    // The asymptotic payoff, pinned as a regression test: a 256-writer
    // single-OST drain completes in O(W) wakes on the virtual-time engine
    // (≤ 2 per request + slack), where the reference engine needs the
    // same *count* of wakes but O(W) work per wake.
    let w: u64 = 256;
    let mut vt = VtOst::new(testbed().ost);
    let mut reference = RefOst::new(testbed().ost);
    for i in 0..w {
        // Distinct sizes: completions separate in time, worst case for
        // event count.
        let bytes = MIB + i * 8192;
        vt.submit(SimTime::ZERO, RequestId(i), bytes, OpKind::WriteDirect);
        reference.submit(SimTime::ZERO, RequestId(i), bytes, OpKind::WriteDirect);
    }
    let mut wakes = 0u64;
    let mut done = 0u64;
    while let Some(at) = vt.next_completion() {
        wakes += 1;
        assert!(
            wakes <= 2 * w + 16,
            "VT drain must stay within O(W) events, at {wakes} wakes with {done} done"
        );
        done += vt.advance(at).len() as u64;
    }
    assert_eq!(done, w);
    // And the reference engine agrees on the completion schedule.
    let mut ref_done = 0u64;
    while let Some(at) = reference.next_completion() {
        ref_done += reference.advance(at).len() as u64;
    }
    assert_eq!(ref_done, w);
}

#[test]
fn drain_through_noise_storm_agrees() {
    // A deterministic worst case on top of the random sweep: a large
    // backlog hit by a burst of severe noise flips and a mid-drain freeze.
    let params = jaguar().ost;
    let schedule: Vec<(f64, Step)> = vec![
        (
            0.001,
            Step::Submit(
                (0..64)
                    .map(|i| {
                        (
                            RequestId(i),
                            4 * MIB + i * 65536,
                            if i % 3 == 0 { OpKind::Write } else { OpKind::WriteDirect },
                        )
                    })
                    .collect(),
            ),
        ),
        (0.05, Step::SetNoise(0.07)),
        (0.06, Step::ToggleFreeze),
        (0.30, Step::ToggleFreeze),
        (0.31, Step::SetNoise(0.9)),
        (
            0.40,
            Step::Submit((64..96).map(|i| (RequestId(i), 2 * MIB, OpKind::Write)).collect()),
        ),
        (0.55, Step::SetNoise(0.2)),
        (0.70, Step::SetNoise(1.0)),
    ];
    assert_equivalent(9999, RefOst::new(params.clone()), VtOst::new(params), &schedule);
}

/// Run the subnormal-noise recovery scenario on one engine; returns the
/// completion instant.
fn recover_after_horizon<E: Engine>(mut e: E) -> SimTime {
    e.submit(SimTime::ZERO, RequestId(1), 64 * MIB, OpKind::WriteDirect);
    e.set_noise(SimTime::from_secs_f64(0.25), 1e-300);
    let horizon = e.next_completion().expect("wake predicted");
    assert!(horizon.as_secs_f64() > 1e8, "wake should clamp to the horizon");
    assert!(e.advance(horizon).is_empty(), "nothing finishes at near-zero rate");
    let recover = horizon + SimDuration::from_secs_f64(3.0);
    e.set_noise(recover, 1.0);
    for _ in 0..1000 {
        let at = e.next_completion().expect("still in flight");
        if !e.advance(at).is_empty() {
            return at;
        }
    }
    panic!("stream never completed after recovery");
}

#[test]
fn far_future_wake_still_converges_after_recovery() {
    // Satellite fix, end to end: subnormal noise clamps the wake to the
    // 1e9 s horizon; recovery must still finish the stream on both
    // engines at (nearly) the same instant.
    let params = testbed().ost;
    let ref_at = recover_after_horizon(RefOst::new(params.clone()));
    let vt_at = recover_after_horizon(VtOst::new(params));
    let dt = (ref_at.as_secs_f64() - vt_at.as_secs_f64()).abs();
    assert!(dt <= 1e-9 + 1e-15, "post-recovery divergence {dt} s");
}

#[test]
fn small_width_threshold_crossing_agrees() {
    // Satellite regression for the lane heap's small-width mode: the VT
    // engine keeps <= 16 tagged streams as an unsorted vec and switches
    // to a d-ary heap above that. Ramp one lane to ~24 concurrent
    // streams, drain below the threshold, and ramp again — with
    // completions, a noise flip and a freeze landing while the
    // population sits right at the boundary. Any representation-switch
    // bug shows up as a divergence from the reference engine.
    let params = jaguar().ost;
    let mut schedule: Vec<(f64, Step)> = Vec::new();
    let mut id = 0u64;
    let mut burst = |at: f64, n: u64, base: u64| {
        let subs = (0..n)
            .map(|i| {
                let r = RequestId(id);
                id += 1;
                (r, base + i * 192 * 1024, OpKind::WriteDirect)
            })
            .collect();
        (at, Step::Submit(subs))
    };
    // Cycle 1: 18 at once (crosses 16 immediately), then trickle 6 more
    // while the first wave drains back under the threshold.
    schedule.push(burst(0.001, 18, 2 * MIB));
    schedule.push(burst(0.10, 3, MIB));
    schedule.push(burst(0.15, 3, 3 * MIB));
    schedule.push((0.20, Step::SetNoise(0.35)));
    // Cycle 2: refill exactly to the boundary, then one past it.
    schedule.push(burst(0.60, 16, 4 * MIB));
    schedule.push(burst(0.70, 1, MIB / 2));
    schedule.push((0.75, Step::ToggleFreeze));
    schedule.push((0.95, Step::ToggleFreeze));
    schedule.push((1.00, Step::SetNoise(1.0)));
    // Cycle 3: a deep pile-up well past the threshold under low noise.
    schedule.push((1.10, Step::SetNoise(0.1)));
    schedule.push(burst(1.15, 30, MIB));
    schedule.push((1.60, Step::SetNoise(1.0)));
    assert_equivalent(4242, RefOst::new(params.clone()), VtOst::new(params), &schedule);
}
