//! Job-structured external load: the dominant source of the paper's
//! external interference.
//!
//! Per-OST i.i.d. noise cannot reproduce the paper's measurements: with
//! hundreds of independent targets, *some* target is always at the worst
//! slowdown, so every sample is equally bad and variability collapses.
//! What actually happens on a shared centre-wide scratch system is that a
//! small number of **other jobs** (checkpoints from other applications,
//! analysis readers on attached clusters) come and go, each hammering the
//! contiguous set of targets its files stripe over. Samples that overlap
//! such an episode see a localized, possibly deep slowdown (the paper's
//! imbalance factor 3.44); samples in a gap see an almost quiet system
//! (the 1.18 three minutes later).
//!
//! Model: competing jobs arrive as a Poisson process; each picks a stripe
//! width from the distribution of real stripe counts, a random contiguous
//! OST range, a depth from a bounded Pareto, and an exponential duration.
//! An OST's slowdown factor is the product of all jobs covering it
//! (floored), times the machine's micro-jitter.

use simcore::{Rng, SimDuration};

use crate::params::JobNoiseParams;

/// One active competing job.
#[derive(Clone, Debug)]
pub struct CompetingLoad {
    /// First OST covered.
    pub first_ost: usize,
    /// Number of OSTs covered (wraps around the machine).
    pub width: usize,
    /// Per-OST slowdown factor contributed by this job, in (0, 1].
    pub factor: f64,
}

impl CompetingLoad {
    /// All OST indices this job covers on a machine with `ost_count`
    /// targets.
    pub fn osts(&self, ost_count: usize) -> impl Iterator<Item = usize> + '_ {
        let first = self.first_ost;
        (0..self.width.min(ost_count)).map(move |i| (first + i) % ost_count)
    }

    /// Whether this job covers `ost` — O(1) arithmetic on the wrapped
    /// contiguous range, equivalent to scanning [`Self::osts`]. The hot
    /// path: slowdown recomputation asks this for every OST on every
    /// noise or job transition, and a linear scan over job widths made
    /// that quadratic on wide machines.
    pub fn covers(&self, ost: usize, ost_count: usize) -> bool {
        (ost + ost_count - self.first_ost % ost_count) % ost_count < self.width.min(ost_count)
    }
}

/// Generator of competing-job episodes.
#[derive(Clone, Debug)]
pub struct JobLoadModel {
    params: JobNoiseParams,
    ost_count: usize,
}

impl JobLoadModel {
    /// Build for a machine.
    pub fn new(params: JobNoiseParams, ost_count: usize) -> Self {
        JobLoadModel { params, ost_count }
    }

    /// Whether the model generates any load at all.
    pub fn enabled(&self) -> bool {
        self.params.enabled && self.params.mean_interarrival > 0.0
    }

    /// Delay until the next job arrival.
    pub fn next_arrival(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exp(self.params.mean_interarrival))
    }

    /// Sample one job plus its duration.
    pub fn spawn(&self, rng: &mut Rng) -> (CompetingLoad, SimDuration) {
        let width = (*rng.choose(&self.params.stripe_choices) as usize).min(self.ost_count);
        let first_ost = rng.below(self.ost_count as u64) as usize;
        let depth = rng.bounded_pareto(
            self.params.depth_shape,
            self.params.min_depth,
            self.params.max_depth,
        );
        let factor = (1.0 / depth).clamp(1.0 / self.params.max_depth, 1.0);
        let duration = SimDuration::from_secs_f64(rng.exp(self.params.mean_duration));
        (
            CompetingLoad {
                first_ost,
                width,
                factor,
            },
            duration,
        )
    }

    /// Expected number of concurrently active jobs (Little's law) — used
    /// by tests to sanity-check parameterisations.
    pub fn expected_active(&self) -> f64 {
        if !self.enabled() {
            return 0.0;
        }
        self.params.mean_duration / self.params.mean_interarrival
    }
}

/// Combine job factors covering one OST into its slowdown (product,
/// floored so a pile-up cannot stall the simulation).
pub fn combined_factor(job_factors: impl Iterator<Item = f64>, micro: f64) -> f64 {
    let product: f64 = job_factors.product::<f64>() * micro;
    product.clamp(0.02, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::jaguar;
    use simcore::Rng;

    fn model() -> JobLoadModel {
        JobLoadModel::new(jaguar().noise.jobs, 672)
    }

    #[test]
    fn spawned_jobs_are_well_formed() {
        let m = model();
        let mut rng = Rng::new(1);
        for _ in 0..500 {
            let (job, dur) = m.spawn(&mut rng);
            assert!(job.factor > 0.0 && job.factor <= 1.0);
            assert!(job.width >= 1 && job.width <= 672);
            assert!(job.first_ost < 672);
            assert!(dur.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn job_covers_exactly_width_osts() {
        let job = CompetingLoad {
            first_ost: 670,
            width: 5,
            factor: 0.5,
        };
        let osts: Vec<usize> = job.osts(672).collect();
        assert_eq!(osts, vec![670, 671, 0, 1, 2], "wraps around");
    }

    #[test]
    fn covers_agrees_with_the_ost_scan() {
        let mut rng = Rng::new(3);
        let m = model();
        for _ in 0..200 {
            let (job, _) = m.spawn(&mut rng);
            for count in [1usize, 2, 7, 672] {
                let job = CompetingLoad {
                    first_ost: job.first_ost % count,
                    ..job.clone()
                };
                for ost in 0..count {
                    assert_eq!(
                        job.covers(ost, count),
                        job.osts(count).any(|o| o == ost),
                        "first {} width {} ost {ost}/{count}",
                        job.first_ost,
                        job.width
                    );
                }
            }
        }
    }

    #[test]
    fn expected_active_is_moderate_for_jaguar() {
        let m = model();
        let a = m.expected_active();
        assert!(
            (0.2..4.0).contains(&a),
            "jaguar should host a few competing jobs on average, got {a}"
        );
    }

    #[test]
    fn combined_factor_multiplies_and_floors() {
        assert!((combined_factor([0.5, 0.5].into_iter(), 1.0) - 0.25).abs() < 1e-12);
        assert_eq!(combined_factor([0.01].into_iter(), 1.0), 0.02);
        assert_eq!(combined_factor(std::iter::empty(), 1.0), 1.0);
        assert!((combined_factor(std::iter::empty(), 0.9) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn depth_distribution_has_the_papers_bimodality() {
        // Most episodes are mild (factor > 0.5); a real tail is deep
        // (factor < 0.3) — the paper's 3.44 vs 1.18 pattern.
        let m = model();
        let mut rng = Rng::new(2);
        let mut mild = 0;
        let mut deep = 0;
        for _ in 0..2000 {
            let (job, _) = m.spawn(&mut rng);
            if job.factor > 0.4 {
                mild += 1;
            }
            if job.factor < 0.2 {
                deep += 1;
            }
        }
        assert!(mild > 700, "mild episodes dominate: {mild}");
        assert!(deep > 50, "deep episodes exist: {deep}");
    }
}
