//! In-memory object store for real-byte mode.
//!
//! The discrete-event experiments move only byte *counts*; format-level
//! correctness (BP indices, data characteristics, read-back) needs real
//! bytes. The object store is the "disk contents" half of the simulated
//! file system: a sparse byte array per [`FileId`], deliberately decoupled
//! from timing so it can also back plain unit tests.

use std::collections::HashMap;

use crate::layout::FileId;

/// A sparse in-memory backing store keyed by file.
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    files: HashMap<u32, Vec<u8>>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write `data` at `offset` of `file`, growing the file (zero-filled)
    /// as needed.
    pub fn put(&mut self, file: FileId, offset: u64, data: &[u8]) {
        let buf = self.files.entry(file.0).or_default();
        let end = offset as usize + data.len();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        buf[offset as usize..end].copy_from_slice(data);
    }

    /// Read `len` bytes at `offset`. Returns `None` if the range extends
    /// past the end of the file (or the file does not exist).
    pub fn get(&self, file: FileId, offset: u64, len: u64) -> Option<&[u8]> {
        let buf = self.files.get(&file.0)?;
        let start = offset as usize;
        let end = start.checked_add(len as usize)?;
        buf.get(start..end)
    }

    /// Current size of a file (0 if never written).
    pub fn size(&self, file: FileId) -> u64 {
        self.files.get(&file.0).map_or(0, |b| b.len() as u64)
    }

    /// Whether the file has ever been written.
    pub fn exists(&self, file: FileId) -> bool {
        self.files.contains_key(&file.0)
    }

    /// Total bytes held across all files (for memory accounting in tests).
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: u32) -> FileId {
        FileId(n)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = ObjectStore::new();
        s.put(f(0), 0, b"hello");
        assert_eq!(s.get(f(0), 0, 5).unwrap(), b"hello");
    }

    #[test]
    fn sparse_write_zero_fills_gap() {
        let mut s = ObjectStore::new();
        s.put(f(0), 4, b"xy");
        assert_eq!(s.size(f(0)), 6);
        assert_eq!(s.get(f(0), 0, 4).unwrap(), &[0, 0, 0, 0]);
        assert_eq!(s.get(f(0), 4, 2).unwrap(), b"xy");
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut s = ObjectStore::new();
        s.put(f(0), 0, b"aaaa");
        s.put(f(0), 1, b"bb");
        assert_eq!(s.get(f(0), 0, 4).unwrap(), b"abba");
    }

    #[test]
    fn out_of_range_read_is_none() {
        let mut s = ObjectStore::new();
        s.put(f(0), 0, b"abc");
        assert!(s.get(f(0), 1, 3).is_none());
        assert!(s.get(f(1), 0, 1).is_none());
    }

    #[test]
    fn files_are_independent() {
        let mut s = ObjectStore::new();
        s.put(f(0), 0, b"one");
        s.put(f(1), 0, b"two");
        assert_eq!(s.get(f(0), 0, 3).unwrap(), b"one");
        assert_eq!(s.get(f(1), 0, 3).unwrap(), b"two");
        assert_eq!(s.total_bytes(), 6);
    }

    #[test]
    fn exists_and_size_defaults() {
        let s = ObjectStore::new();
        assert!(!s.exists(f(9)));
        assert_eq!(s.size(f(9)), 0);
    }
}
