//! The metadata server (MDS) model.
//!
//! Lustre 1.6 has a single metadata server; file opens/creates serialise
//! through it. The paper's measurements deliberately *exclude* open/close
//! times, but the middleware still pays them, and the stagger-open
//! technique (referenced from the authors' CUG'09 work, implemented here as
//! an ablation) exists precisely because a 100k-process open storm melts
//! the MDS.
//!
//! Model: a single FIFO server. Service time of an operation admitted with
//! queue depth `d` is `base * (1 + slowdown * log2(1 + d))` — deeper queues
//! make *each* operation slower (lock contention, log pressure), which is
//! the observed superlinear open-storm behaviour, without going fully
//! quadratic.
//!
//! Like the virtual-time OST engine, completions are *finish tags* fixed
//! at admission: the service time depends only on the depth observed at
//! submit, so each op's absolute finish is chained off the queue tail the
//! moment it arrives. `advance` then pops tags in O(1) apiece with no
//! service-function re-evaluation, and `next_completion` stays a peek.
//! Only an outage recovery re-chains the queue (O(n), rare).

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};

use crate::ost::RequestId;
use crate::params::MdsParams;

/// Metadata operation kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetaOp {
    /// Open-or-create of one file.
    Open,
    /// Close (cheap, but not free).
    Close,
}

#[derive(Clone, Copy, Debug)]
struct Waiting {
    id: RequestId,
    op: MetaOp,
    /// Service duration, fixed by the depth observed at admission.
    service: SimDuration,
    /// Absolute finish tag: predecessor's finish plus `service`. Stale
    /// during an outage; re-chained at unfreeze.
    finish: SimTime,
    submitted: SimTime,
}

/// A finished metadata operation.
#[derive(Clone, Copy, Debug)]
pub struct MdsCompletion {
    /// The request that finished.
    pub id: RequestId,
    /// Admission time.
    pub submitted: SimTime,
    /// The operation performed.
    pub op: MetaOp,
}

/// The metadata server.
#[derive(Clone, Debug)]
pub struct Mds {
    params: MdsParams,
    queue: VecDeque<Waiting>,
    /// Currently served operation (its `finish` is the next completion).
    in_service: Option<Waiting>,
    /// Outage state: while `Some`, the server makes no progress; the value
    /// is the in-service operation's remaining service time at freeze.
    frozen: Option<Option<SimDuration>>,
}

impl Mds {
    /// An idle MDS.
    pub fn new(params: MdsParams) -> Self {
        Mds {
            params,
            queue: VecDeque::new(),
            in_service: None,
            frozen: None,
        }
    }

    /// Return the server to its freshly-constructed state, keeping the
    /// queue's capacity so a sweep can reuse one MDS per seed without
    /// allocating.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.in_service = None;
        self.frozen = None;
    }

    /// Begin an outage: the in-service operation is suspended with its
    /// remaining service time remembered, queued operations wait.
    pub fn freeze(&mut self, now: SimTime) {
        if self.frozen.is_some() {
            return;
        }
        let remaining = self.in_service.as_ref().map(|w| {
            if w.finish > now {
                w.finish - now
            } else {
                SimDuration::ZERO
            }
        });
        self.frozen = Some(remaining);
    }

    /// End an outage: the suspended operation resumes with its remembered
    /// remaining time, and every queued finish tag is re-chained behind it
    /// (the one O(n) path; outages are rare).
    pub fn unfreeze(&mut self, now: SimTime) {
        if let Some(remaining) = self.frozen.take() {
            match (self.in_service.as_mut(), remaining) {
                (Some(w), Some(rem)) => w.finish = now + rem,
                _ => {
                    // Nothing was in service at freeze: the head of the
                    // queue (if any) starts fresh at the recovery instant.
                    self.maybe_start(now);
                    if let Some(w) = self.in_service.as_mut() {
                        w.finish = now + w.service;
                    }
                }
            }
            let mut prev = match &self.in_service {
                Some(w) => w.finish,
                None => return,
            };
            for w in self.queue.iter_mut() {
                w.finish = prev + w.service;
                prev = w.finish;
            }
        }
    }

    /// Whether the server is currently down.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Queue depth including the in-service operation.
    pub fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    fn service_time(&self, op: MetaOp, depth_at_admit: usize) -> SimDuration {
        let base = match op {
            MetaOp::Open => self.params.open_base,
            MetaOp::Close => self.params.close_base,
        };
        let slow = self.params.open_per_queued / self.params.open_base.max(1e-12);
        let t = base * (1.0 + slow * ((1 + depth_at_admit) as f64).log2());
        SimDuration::from_secs_f64(t)
    }

    fn maybe_start(&mut self, _now: SimTime) {
        if self.frozen.is_some() {
            return;
        }
        if self.in_service.is_none() {
            // The queued op's finish tag was chained at admission.
            self.in_service = self.queue.pop_front();
        }
    }

    /// Admit a metadata operation. Its service time (set by the current
    /// depth) and absolute finish tag are fixed here: it starts when its
    /// predecessor finishes, or immediately if the server is idle.
    pub fn submit(&mut self, now: SimTime, id: RequestId, op: MetaOp) {
        let service = self.service_time(op, self.depth());
        let start = match self.queue.back() {
            Some(w) => w.finish,
            None => match &self.in_service {
                Some(w) => w.finish,
                None => now,
            },
        };
        let w = Waiting {
            id,
            op,
            service,
            finish: start + service,
            submitted: now,
        };
        self.queue.push_back(w);
        self.maybe_start(now);
    }

    /// Absolute time of the next completion, if any. O(1): the in-service
    /// finish tag.
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.frozen.is_some() {
            return None;
        }
        self.in_service.as_ref().map(|w| w.finish)
    }

    /// Complete everything finished by `now`, appending to `done` (the
    /// owner's reusable scratch buffer — the hot loop allocates nothing).
    pub fn advance_into(&mut self, now: SimTime, done: &mut Vec<MdsCompletion>) {
        if self.frozen.is_some() {
            return;
        }
        while let Some(w) = self.in_service.as_ref() {
            if w.finish > now {
                break;
            }
            done.push(MdsCompletion {
                id: w.id,
                submitted: w.submitted,
                op: w.op,
            });
            // The next op's tag already says it starts when this one
            // finished, not at `now`.
            self.in_service = self.queue.pop_front();
        }
    }

    /// Complete everything finished by `now` (allocating convenience
    /// wrapper over [`Mds::advance_into`]).
    pub fn advance(&mut self, now: SimTime) -> Vec<MdsCompletion> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::testbed;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn mds() -> Mds {
        Mds::new(testbed().mds)
    }

    #[test]
    fn single_open_takes_base_time() {
        let p = testbed().mds;
        let mut m = mds();
        m.submit(SimTime::ZERO, RequestId(1), MetaOp::Open);
        let done = m.next_completion().unwrap();
        assert!((done.as_secs_f64() - p.open_base).abs() < 1e-9);
        let c = m.advance(done);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].id, RequestId(1));
    }

    #[test]
    fn close_is_cheaper_than_open() {
        let mut m1 = mds();
        m1.submit(SimTime::ZERO, RequestId(1), MetaOp::Open);
        let open_done = m1.next_completion().unwrap();
        let mut m2 = mds();
        m2.submit(SimTime::ZERO, RequestId(1), MetaOp::Close);
        let close_done = m2.next_completion().unwrap();
        assert!(close_done < open_done);
    }

    #[test]
    fn fifo_ordering() {
        let mut m = mds();
        for i in 0..5 {
            m.submit(SimTime::ZERO, RequestId(i), MetaOp::Open);
        }
        let mut got = Vec::new();
        while let Some(done) = m.next_completion() {
            for c in m.advance(done) {
                got.push(c.id.0);
            }
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn open_storm_degrades_per_op_service() {
        let p = testbed().mds;
        // 64 simultaneous opens.
        let mut m = mds();
        for i in 0..64 {
            m.submit(SimTime::ZERO, RequestId(i), MetaOp::Open);
        }
        let mut last = SimTime::ZERO;
        while let Some(done) = m.next_completion() {
            m.advance(done);
            last = done;
        }
        let serial_floor = 64.0 * p.open_base;
        assert!(
            last.as_secs_f64() > 1.5 * serial_floor,
            "storm should be superlinear: {last} vs floor {serial_floor}"
        );
    }

    #[test]
    fn staggered_opens_beat_the_storm() {
        let p = testbed().mds;
        // Same 64 opens, but arriving spaced out (stagger-open).
        let gap = p.open_base * 1.5;
        let mut m = mds();
        let mut finish = SimTime::ZERO;
        for i in 0..64u64 {
            let at = t(i as f64 * gap);
            m.submit(at, RequestId(i), MetaOp::Open);
            while let Some(done) = m.next_completion() {
                if done > at {
                    break;
                }
                m.advance(done);
                finish = done;
            }
        }
        while let Some(done) = m.next_completion() {
            m.advance(done);
            finish = done;
        }
        // Staggered total ≈ 64*gap + base; a storm takes much longer per op.
        let mut storm = mds();
        for i in 0..64 {
            storm.submit(SimTime::ZERO, RequestId(i), MetaOp::Open);
        }
        let mut storm_finish = SimTime::ZERO;
        while let Some(done) = storm.next_completion() {
            storm.advance(done);
            storm_finish = done;
        }
        // Per-op *service* cost under stagger is lower even if wall time is
        // dominated by the deliberate gaps.
        let storm_per_op = storm_finish.as_secs_f64() / 64.0;
        assert!(storm_per_op > p.open_base * 1.5);
        assert!(finish.as_secs_f64() <= 64.0 * gap + p.open_base * 4.0);
    }

    #[test]
    fn depth_counts_in_service() {
        let mut m = mds();
        assert_eq!(m.depth(), 0);
        m.submit(SimTime::ZERO, RequestId(1), MetaOp::Open);
        assert_eq!(m.depth(), 1);
        m.submit(SimTime::ZERO, RequestId(2), MetaOp::Open);
        assert_eq!(m.depth(), 2);
        let done = m.next_completion().unwrap();
        m.advance(done);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn outage_suspends_and_resumes_service() {
        let p = testbed().mds;
        let mut m = mds();
        m.submit(SimTime::ZERO, RequestId(1), MetaOp::Open);
        m.submit(SimTime::ZERO, RequestId(2), MetaOp::Open);
        // Freeze halfway through the first op's service.
        let half = t(p.open_base / 2.0);
        m.freeze(half);
        assert!(m.is_frozen());
        assert!(m.next_completion().is_none());
        assert!(m.advance(t(100.0)).is_empty(), "no progress during outage");
        // Ops submitted during the outage just queue.
        m.submit(t(50.0), RequestId(3), MetaOp::Close);
        assert_eq!(m.depth(), 3);
        // Recovery: first op completes after its remaining half service.
        m.unfreeze(t(100.0));
        let done = m.next_completion().unwrap();
        assert!(
            (done.as_secs_f64() - (100.0 + p.open_base / 2.0)).abs() < 1e-9,
            "resumed completion at {done}"
        );
        let mut ids = Vec::new();
        while let Some(at) = m.next_completion() {
            ids.extend(m.advance(at).iter().map(|c| c.id.0));
        }
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn outage_with_idle_server_starts_queue_on_recovery() {
        // Freeze an idle MDS, submit during the outage, and make sure the
        // re-chain path handles `in_service: None` (first op starts at the
        // unfreeze instant, the rest chain behind it).
        let p = testbed().mds;
        let mut m = mds();
        m.freeze(t(1.0));
        m.submit(t(2.0), RequestId(1), MetaOp::Open);
        m.submit(t(2.0), RequestId(2), MetaOp::Open);
        assert!(m.next_completion().is_none());
        m.unfreeze(t(5.0));
        let first = m.next_completion().unwrap();
        assert!(
            (first.as_secs_f64() - (5.0 + p.open_base)).abs() < 1e-9,
            "first op starts at recovery, finished at {first}"
        );
        let mut ids = Vec::new();
        while let Some(at) = m.next_completion() {
            ids.extend(m.advance(at).iter().map(|c| c.id.0));
        }
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn advance_before_completion_returns_nothing() {
        let mut m = mds();
        m.submit(SimTime::ZERO, RequestId(1), MetaOp::Open);
        assert!(m.advance(t(1e-9)).is_empty());
        assert!(m.next_completion().is_some());
    }
}
