//! # storesim — petascale parallel-storage simulator
//!
//! The storage substrate of the managed-io reproduction of *Managing
//! Variability in the IO Performance of Petascale Storage Systems*
//! (Lofstead et al., SC 2010). The paper measured real Lustre and PanFS
//! deployments; this crate provides a deterministic, discrete-event model
//! of the same phenomena:
//!
//! * [`ost`] — storage targets as processor-sharing servers with write-back
//!   caches, per-stream caps, contention penalties (**internal
//!   interference**) and external-noise scaling (**external interference**).
//!   Two engines: the default virtual-time engine (O(log W) per event) and
//!   the original settle-loop reference behind the `baseline-engine`
//!   feature, pinned equivalent by differential tests.
//! * [`noise`] — per-OST Markov-modulated slowdown processes.
//! * [`mds`] — the metadata server (open storms, stagger-open motivation),
//!   with finish tags fixed at admission so replans peek in O(1).
//! * [`layout`] — striped files and the Lustre 160-OST single-file limit.
//! * [`system`] — the composed [`StorageSystem`](system::StorageSystem)
//!   with a co-simulation interface (submit / next_event_time / advance_to)
//!   and the paper's artificial-interference background streams.
//! * [`object`] — an in-memory object store for real-byte format tests.
//! * [`fault`] — scheduled, seed-reproducible fault injection: OST
//!   brownouts, stall/error failures with recovery, MDS outages.
//! * [`params`] — every model constant, with machine presets for Jaguar,
//!   Franklin, XTP and a small testbed.

#![warn(missing_docs)]

pub mod fault;
pub mod jobs;
pub mod layout;
pub mod mds;
pub mod noise;
pub mod object;
pub mod ost;
pub mod params;
pub mod system;

pub use fault::{CorruptionOracle, FailMode, FaultEvent, FaultScript};
pub use layout::{FileId, FileSystem, OstId, StripeSpec};
pub use object::ObjectStore;
pub use params::{JobNoiseParams, MachineConfig, MdsParams, MicroNoiseParams, NoiseParams, OstParams};
pub use system::{CompletionKind, StorageCompletion, StorageSystem};
