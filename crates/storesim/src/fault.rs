//! Deterministic, seed-reproducible fault injection for the storage
//! substrate.
//!
//! A [`FaultScript`] is a list of *timed* fault events that the owning
//! [`StorageSystem`](crate::StorageSystem) schedules through its own
//! discrete-event queue, so a faulted run is byte-identical per seed —
//! exactly like noise flips and competing-job churn. Three event families
//! model the paper's §V scenario ("a small number of slow storage targets
//! greatly increased total IO time") and its harsher cousins:
//!
//! * **Brownout** — a transient per-OST slowdown (factor + duration),
//!   composing multiplicatively with the permanent `degrade_ost` factor
//!   and the ambient noise field. A dying disk, a rebuilding RAID set, a
//!   congested OSS.
//! * **Failure** — a full OST outage from a point in time, in one of two
//!   modes ([`FailMode`]): `Stall` freezes every in-flight and future
//!   request on the target (a hung OSS: clients wait forever unless they
//!   time out), `Error` fails in-flight and future requests promptly (an
//!   EIO-returning dead target). An optional recovery time brings the
//!   target back — *empty* in `Error` mode (the disk was replaced), with
//!   its contents intact in `Stall` mode (the server rebooted).
//! * **MDS outage** — a window during which the metadata server makes no
//!   progress; opens/closes submitted during the window queue up and
//!   complete after recovery.

use simcore::{Rng, SimDuration, SimTime};

use crate::layout::OstId;

/// How a failed OST treats requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailMode {
    /// Requests hang: in-flight streams freeze, new submissions are
    /// accepted but make no progress until recovery. Data survives.
    Stall,
    /// Requests fail promptly with an error completion; data stored on
    /// the target is lost (recovery brings back an empty target).
    Error,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Transient slowdown of one OST: capability multiplied by `factor`
    /// from `at` for `duration` (`None` = permanent, equivalent to a
    /// scheduled [`StorageSystem::degrade_ost`](crate::StorageSystem::degrade_ost)).
    Brownout {
        /// When the brownout begins.
        at: SimTime,
        /// Affected target.
        ost: OstId,
        /// Remaining capability fraction in (0, 1].
        factor: f64,
        /// How long it lasts (`None` = until the end of the run).
        duration: Option<SimDuration>,
    },
    /// Full failure of one OST.
    OstFail {
        /// When the target dies.
        at: SimTime,
        /// Affected target.
        ost: OstId,
        /// Stall or error semantics.
        mode: FailMode,
        /// Optional recovery instant (absolute time).
        recover_at: Option<SimTime>,
    },
    /// Metadata-server outage window.
    MdsOutage {
        /// When the MDS stops responding.
        at: SimTime,
        /// Outage length.
        duration: SimDuration,
    },
    /// Silent corruption window on one OST: each data write completing
    /// inside the window is, with probability `rate`, recorded as corrupt
    /// in the [`CorruptionOracle`] — the write itself completes normally
    /// (no error, no timing change), exactly like a firmware bug or a
    /// bit-rotting medium. Detection is entirely the reader's problem.
    SilentCorruption {
        /// When the window opens.
        at: SimTime,
        /// Affected target.
        ost: OstId,
        /// Window length (`None` = until the end of the run).
        duration: Option<SimDuration>,
        /// Per-write corruption probability in (0, 1].
        rate: f64,
    },
    /// Torn write: at `at`, every in-flight request on `ost` is aborted
    /// with an error completion (only a prefix of each racing write
    /// persists — recorded in the oracle's torn log), but the OST itself
    /// stays healthy, so retries land normally. A momentary write-path
    /// crash, not an outage.
    TornWrite {
        /// The tearing instant.
        at: SimTime,
        /// Affected target.
        ost: OstId,
    },
}

impl FaultEvent {
    /// The instant the fault begins.
    pub fn at(&self) -> SimTime {
        match self {
            FaultEvent::Brownout { at, .. }
            | FaultEvent::OstFail { at, .. }
            | FaultEvent::MdsOutage { at, .. }
            | FaultEvent::SilentCorruption { at, .. }
            | FaultEvent::TornWrite { at, .. } => *at,
        }
    }
}

/// Ground truth about quiet damage, snapshot from a
/// [`StorageSystem`](crate::StorageSystem) after a run — the integrity
/// mirror of `ost_lost_data_since`. Writes are keyed by `(target,
/// completion instant)`, which is exactly how the protocol layer records
/// them, so a consumer can correlate each of its write records with the
/// oracle without any side channel.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CorruptionOracle {
    /// Data writes silently corrupted: `(target, completion time)`.
    pub corrupt: Vec<(OstId, SimTime)>,
    /// Torn-write abort instants: `(target, tear time)`. The aborted
    /// writes surfaced error completions; this log records that partial
    /// prefixes of them persist on the target.
    pub torn: Vec<(OstId, SimTime)>,
    /// Targets dead (failed, not recovered) at snapshot time.
    pub dead: Vec<OstId>,
    /// Destroyed-data instants: `(target, error-failure time)`. Every
    /// write that completed on the target at or before such an instant
    /// lost its stored bytes — the snapshot form of
    /// `ost_lost_data_since`, usable by placement and rebuild layers
    /// after the simulation is torn down (targets that later *recovered*
    /// still appear here; their pre-failure writes stay lost).
    pub lost: Vec<(OstId, SimTime)>,
}

impl CorruptionOracle {
    /// True when nothing was corrupted, torn, destroyed, or dead.
    pub fn is_empty(&self) -> bool {
        self.corrupt.is_empty() && self.torn.is_empty() && self.dead.is_empty() && self.lost.is_empty()
    }

    /// Did `ost` destroy data written at or before `t` (an error-mode
    /// failure at some instant `>= t`)? Mirrors
    /// `StorageSystem::ost_lost_data_since` from the snapshot.
    pub fn lost_since(&self, ost: OstId, t: SimTime) -> bool {
        self.lost.iter().any(|&(o, s)| o == ost && s >= t)
    }

    /// Was the data write that completed on `ost` at `finished` silently
    /// corrupted?
    pub fn write_corrupted(&self, ost: OstId, finished: SimTime) -> bool {
        self.corrupt.iter().any(|&(o, t)| o == ost && t == finished)
    }

    /// Is `ost` dead (failed without recovery) as of the snapshot?
    pub fn is_dead(&self, ost: OstId) -> bool {
        self.dead.contains(&ost)
    }

    /// Number of silently corrupted writes.
    pub fn corrupt_count(&self) -> usize {
        self.corrupt.len()
    }
}

/// A deterministic schedule of fault events for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultScript {
    /// The scheduled events (any order; the DES sorts by time).
    pub events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script (no faults).
    pub fn none() -> Self {
        FaultScript::default()
    }

    /// True when the script holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add a transient brownout.
    pub fn brownout(mut self, at: f64, ost: usize, factor: f64, duration_secs: f64) -> Self {
        self.events.push(FaultEvent::Brownout {
            at: SimTime::from_secs_f64(at),
            ost: OstId(ost),
            factor,
            duration: Some(SimDuration::from_secs_f64(duration_secs)),
        });
        self
    }

    /// Add a permanent degradation starting at `at` (a scheduled
    /// `degrade_ost` that goes through the DES, so it is safe mid-run).
    pub fn degrade(mut self, at: f64, ost: usize, factor: f64) -> Self {
        self.events.push(FaultEvent::Brownout {
            at: SimTime::from_secs_f64(at),
            ost: OstId(ost),
            factor,
            duration: None,
        });
        self
    }

    /// Add an OST failure; `recover_at_secs` of `None` means it never
    /// comes back.
    pub fn fail_ost(
        mut self,
        at: f64,
        ost: usize,
        mode: FailMode,
        recover_at_secs: Option<f64>,
    ) -> Self {
        self.events.push(FaultEvent::OstFail {
            at: SimTime::from_secs_f64(at),
            ost: OstId(ost),
            mode,
            recover_at: recover_at_secs.map(SimTime::from_secs_f64),
        });
        self
    }

    /// Add a correlated destroyed-data event: `count` consecutive targets
    /// starting at `first_ost` all fail in error mode at the same instant
    /// — a shared failure domain (enclosure, controller, rack) taking its
    /// whole stripe of OSTs down at once. This is the event family that
    /// probes an erasure code's failure boundary: losing `<= m` of a
    /// `k+m` placement group must reconstruct, losing `> m` must surface
    /// a structured unrecoverable error.
    pub fn correlated_loss(
        mut self,
        at: f64,
        first_ost: usize,
        count: usize,
        recover_at_secs: Option<f64>,
    ) -> Self {
        for i in 0..count {
            self = self.fail_ost(at, first_ost + i, FailMode::Error, recover_at_secs);
        }
        self
    }

    /// Add a metadata-server outage window.
    pub fn mds_outage(mut self, at: f64, duration_secs: f64) -> Self {
        self.events.push(FaultEvent::MdsOutage {
            at: SimTime::from_secs_f64(at),
            duration: SimDuration::from_secs_f64(duration_secs),
        });
        self
    }

    /// Add a silent-corruption window (`duration_secs` of `None` = open
    /// until the end of the run). Each data write completing on `ost`
    /// inside the window is corrupted with probability `rate`.
    pub fn silent_corruption(
        mut self,
        at: f64,
        ost: usize,
        duration_secs: Option<f64>,
        rate: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rate), "corruption rate in [0, 1]");
        self.events.push(FaultEvent::SilentCorruption {
            at: SimTime::from_secs_f64(at),
            ost: OstId(ost),
            duration: duration_secs.map(SimDuration::from_secs_f64),
            rate,
        });
        self
    }

    /// Add a "limping disk": a permanent, severe-but-not-dead slowdown of
    /// one OST starting at `at` — the paper's §V straggler ("a small
    /// number of slow storage targets greatly increased total IO time").
    /// The target keeps answering, just slowly; `factor` must be ≤ 0.25
    /// of nominal capability or it is merely contention, not a limp.
    pub fn limping(self, at: f64, ost: usize, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 0.25,
            "a limping disk runs at ≤ 25% of nominal"
        );
        self.degrade(at, ost, factor)
    }

    /// Add a torn-write instant on `ost`.
    pub fn torn_write(mut self, at: f64, ost: usize) -> Self {
        self.events.push(FaultEvent::TornWrite {
            at: SimTime::from_secs_f64(at),
            ost: OstId(ost),
        });
        self
    }

    /// True when every event is a [`FaultEvent::SilentCorruption`] — such
    /// a script never perturbs timing, error paths or liveness, so runs
    /// keep byte-identical timelines and real-payload data modes stay
    /// valid (corruption is applied to materialised bytes afterwards).
    pub fn is_silent_only(&self) -> bool {
        self.events
            .iter()
            .all(|e| matches!(e, FaultEvent::SilentCorruption { .. }))
    }

    /// Generate a random—but seed-reproducible—script: up to `max_events`
    /// events over `[0, horizon_secs)` on a machine with `ost_count`
    /// targets, drawn from the timing/liveness fault families (brownout,
    /// error-/stall-mode failures, MDS outage, limping disk, correlated
    /// multi-OST destroyed-data). Used by the seeded-loop property tests:
    /// any script this produces must leave the protocol terminating with
    /// full byte accounting — only reproducibility and bounds are pinned,
    /// not per-seed contents.
    pub fn random(seed: u64, ost_count: usize, horizon_secs: f64, max_events: usize) -> Self {
        let mut rng = Rng::new(seed ^ 0xFA17_5C21_9E3B_D701);
        let n = rng.below(max_events as u64 + 1) as usize;
        let mut script = FaultScript::none();
        while script.events.len() < n {
            let at = rng.uniform(0.0, horizon_secs);
            let ost = rng.below(ost_count as u64) as usize;
            match rng.below(6) {
                0 => {
                    // Brownout: factor in [0.05, 0.9], finite duration.
                    let factor = rng.uniform(0.05, 0.9);
                    let dur = rng.uniform(0.1, horizon_secs / 2.0);
                    script = script.brownout(at, ost, factor, dur);
                }
                1 => {
                    // Error-mode failure, usually with recovery.
                    let rec = if rng.chance(0.7) {
                        Some(at + rng.uniform(0.5, horizon_secs))
                    } else {
                        None
                    };
                    script = script.fail_ost(at, ost, FailMode::Error, rec);
                }
                2 => {
                    // Stall-mode failure, always recovering (a permanent
                    // stall is a guaranteed watchdog diagnostic, tested
                    // separately).
                    let rec = at + rng.uniform(0.5, horizon_secs / 2.0);
                    script = script.fail_ost(at, ost, FailMode::Stall, Some(rec));
                }
                3 => {
                    let dur = rng.uniform(0.05, horizon_secs / 4.0);
                    script = script.mds_outage(at, dur);
                }
                4 => {
                    // Correlated multi-OST destroyed-data: up to 3
                    // consecutive targets (m+1 for the default Ec{k,2}
                    // codes) die at the same instant in error mode — the
                    // event that crosses an EC placement group's failure
                    // boundary instead of nibbling one target at a time.
                    let budget = n - script.events.len();
                    let count = (1 + rng.below(3) as usize).min(ost_count).min(budget);
                    let first = rng.below((ost_count - count + 1) as u64) as usize;
                    let rec = if rng.chance(0.5) {
                        Some(at + rng.uniform(0.5, horizon_secs))
                    } else {
                        None
                    };
                    script = script.correlated_loss(at, first, count, rec);
                }
                _ => {
                    // Limping disk: permanent severe slowdown, the
                    // straggler preset the control loop defends against.
                    let factor = rng.uniform(0.02, 0.15);
                    script = script.limping(at, ost, factor);
                }
            }
        }
        script
    }

    /// Like [`FaultScript::random`], with the integrity fault families
    /// mixed in (silent-corruption windows and torn writes) — the script
    /// space for the no-silent-bad-reads property test. Kept a separate
    /// generator so integrity-unaware callers never draw corruption
    /// events.
    pub fn random_with_integrity(
        seed: u64,
        ost_count: usize,
        horizon_secs: f64,
        max_events: usize,
    ) -> Self {
        let mut rng = Rng::new(seed ^ 0x1D7E_6217_C0AA_B5E3);
        let n = rng.below(max_events as u64 + 1) as usize;
        let mut script = FaultScript::none();
        for _ in 0..n {
            let at = rng.uniform(0.0, horizon_secs);
            let ost = rng.below(ost_count as u64) as usize;
            match rng.below(6) {
                0 => {
                    let factor = rng.uniform(0.05, 0.9);
                    let dur = rng.uniform(0.1, horizon_secs / 2.0);
                    script = script.brownout(at, ost, factor, dur);
                }
                1 => {
                    let rec = if rng.chance(0.7) {
                        Some(at + rng.uniform(0.5, horizon_secs))
                    } else {
                        None
                    };
                    script = script.fail_ost(at, ost, FailMode::Error, rec);
                }
                2 => {
                    let rec = at + rng.uniform(0.5, horizon_secs / 2.0);
                    script = script.fail_ost(at, ost, FailMode::Stall, Some(rec));
                }
                3 => {
                    let dur = rng.uniform(0.05, horizon_secs / 4.0);
                    script = script.mds_outage(at, dur);
                }
                4 => {
                    // Silent corruption: often aggressive rates so the
                    // property test actually exercises repair paths.
                    let rate = rng.uniform(0.1, 1.0);
                    let dur = if rng.chance(0.6) {
                        Some(rng.uniform(0.5, horizon_secs / 2.0))
                    } else {
                        None
                    };
                    script = script.silent_corruption(at, ost, dur, rate);
                }
                _ => {
                    script = script.torn_write(at, ost);
                }
            }
        }
        script
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let s = FaultScript::none()
            .brownout(1.0, 0, 0.5, 2.0)
            .fail_ost(3.0, 1, FailMode::Error, Some(10.0))
            .mds_outage(0.5, 1.0)
            .degrade(2.0, 2, 0.3);
        assert_eq!(s.events.len(), 4);
        assert!(!s.is_empty());
        assert!(FaultScript::none().is_empty());
    }

    #[test]
    fn random_scripts_are_reproducible() {
        let a = FaultScript::random(7, 8, 100.0, 6);
        let b = FaultScript::random(7, 8, 100.0, 6);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = FaultScript::random(8, 8, 100.0, 6);
        // Different seeds almost surely differ (event count or params).
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn limping_builder_is_a_permanent_severe_degrade() {
        let s = FaultScript::none().limping(2.0, 3, 0.1);
        assert_eq!(s.events.len(), 1);
        match s.events[0] {
            FaultEvent::Brownout {
                ost,
                factor,
                duration,
                ..
            } => {
                assert_eq!(ost.0, 3);
                assert_eq!(factor, 0.1);
                assert!(duration.is_none(), "a limp does not heal on its own");
            }
            ref other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "limping disk")]
    fn limping_rejects_mild_slowdowns() {
        let _ = FaultScript::none().limping(0.0, 0, 0.5);
    }

    #[test]
    fn random_scripts_cover_limping_disks() {
        let mut saw_limp = false;
        for seed in 0..60 {
            let s = FaultScript::random(seed, 4, 50.0, 8);
            for e in &s.events {
                if let FaultEvent::Brownout {
                    factor,
                    duration: None,
                    ..
                } = e
                {
                    assert!(*factor >= 0.02 && *factor <= 0.15);
                    saw_limp = true;
                }
            }
        }
        assert!(saw_limp, "60 seeds must draw at least one limping disk");
    }

    #[test]
    fn correlated_loss_builder_fails_consecutive_targets_simultaneously() {
        let s = FaultScript::none().correlated_loss(3.0, 1, 3, Some(9.0));
        assert_eq!(s.events.len(), 3);
        for (i, e) in s.events.iter().enumerate() {
            match *e {
                FaultEvent::OstFail {
                    at,
                    ost,
                    mode,
                    recover_at,
                } => {
                    assert_eq!(at, SimTime::from_secs_f64(3.0), "same instant");
                    assert_eq!(ost.0, 1 + i, "consecutive targets");
                    assert_eq!(mode, FailMode::Error, "destroyed data, not a stall");
                    assert_eq!(recover_at, Some(SimTime::from_secs_f64(9.0)));
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn random_scripts_cover_correlated_multi_ost_losses() {
        let mut saw_correlated = false;
        for seed in 0..60 {
            let s = FaultScript::random(seed, 4, 50.0, 8);
            // A correlated loss shows up as >= 2 error-mode failures at
            // the exact same instant on distinct targets.
            for (i, a) in s.events.iter().enumerate() {
                for b in &s.events[i + 1..] {
                    if let (
                        FaultEvent::OstFail {
                            at: ta,
                            ost: oa,
                            mode: FailMode::Error,
                            ..
                        },
                        FaultEvent::OstFail {
                            at: tb,
                            ost: ob,
                            mode: FailMode::Error,
                            ..
                        },
                    ) = (a, b)
                    {
                        if ta == tb && oa != ob {
                            saw_correlated = true;
                        }
                    }
                }
            }
        }
        assert!(
            saw_correlated,
            "60 seeds must draw at least one correlated multi-OST loss"
        );
    }

    #[test]
    fn random_scripts_stay_in_bounds() {
        for seed in 0..50 {
            let s = FaultScript::random(seed, 4, 50.0, 8);
            assert!(s.events.len() <= 8);
            for e in &s.events {
                assert!(e.at().as_secs_f64() < 50.0);
                match e {
                    FaultEvent::Brownout { ost, factor, .. } => {
                        assert!(ost.0 < 4);
                        assert!(*factor > 0.0 && *factor <= 1.0);
                    }
                    FaultEvent::OstFail { ost, .. } => assert!(ost.0 < 4),
                    FaultEvent::MdsOutage { duration, .. } => {
                        assert!(duration.as_secs_f64() > 0.0)
                    }
                    FaultEvent::SilentCorruption { ost, rate, .. } => {
                        assert!(ost.0 < 4);
                        assert!(*rate > 0.0 && *rate <= 1.0);
                    }
                    FaultEvent::TornWrite { ost, .. } => assert!(ost.0 < 4),
                }
            }
        }
    }

    #[test]
    fn integrity_scripts_cover_new_families_and_reproduce() {
        let a = FaultScript::random_with_integrity(3, 8, 100.0, 10);
        let b = FaultScript::random_with_integrity(3, 8, 100.0, 10);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let mut saw_silent = false;
        let mut saw_torn = false;
        for seed in 0..60 {
            let s = FaultScript::random_with_integrity(seed, 4, 50.0, 8);
            assert!(s.events.len() <= 8);
            for e in &s.events {
                assert!(e.at().as_secs_f64() < 50.0);
                match e {
                    FaultEvent::SilentCorruption { ost, rate, .. } => {
                        saw_silent = true;
                        assert!(ost.0 < 4);
                        assert!(*rate > 0.0 && *rate <= 1.0);
                    }
                    FaultEvent::TornWrite { ost, .. } => {
                        saw_torn = true;
                        assert!(ost.0 < 4);
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_silent && saw_torn, "60 seeds must hit both families");
    }

    #[test]
    fn silent_only_classification() {
        let s = FaultScript::none()
            .silent_corruption(1.0, 0, Some(5.0), 0.5)
            .silent_corruption(2.0, 1, None, 1.0);
        assert!(s.is_silent_only());
        assert!(FaultScript::none().is_silent_only());
        assert!(!s.torn_write(3.0, 0).is_silent_only());
        assert!(!FaultScript::none().brownout(1.0, 0, 0.5, 1.0).is_silent_only());
    }

    #[test]
    fn oracle_membership_queries() {
        let t1 = SimTime::from_secs_f64(1.5);
        let t2 = SimTime::from_secs_f64(2.5);
        let oracle = CorruptionOracle {
            corrupt: vec![(OstId(0), t1), (OstId(2), t2)],
            torn: vec![(OstId(1), t2)],
            dead: vec![OstId(3)],
            lost: vec![(OstId(3), t2)],
        };
        assert!(oracle.write_corrupted(OstId(0), t1));
        assert!(!oracle.write_corrupted(OstId(0), t2));
        assert!(!oracle.write_corrupted(OstId(1), t2));
        assert!(oracle.is_dead(OstId(3)));
        assert!(!oracle.is_dead(OstId(0)));
        assert!(oracle.lost_since(OstId(3), t1), "write before the failure is lost");
        assert!(oracle.lost_since(OstId(3), t2), "write at the failure instant is lost");
        assert!(!oracle.lost_since(OstId(3), SimTime::from_secs_f64(3.0)));
        assert!(!oracle.lost_since(OstId(0), t1));
        assert_eq!(oracle.corrupt_count(), 2);
        assert!(!oracle.is_empty());
        assert!(CorruptionOracle::default().is_empty());
    }
}
