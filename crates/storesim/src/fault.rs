//! Deterministic, seed-reproducible fault injection for the storage
//! substrate.
//!
//! A [`FaultScript`] is a list of *timed* fault events that the owning
//! [`StorageSystem`](crate::StorageSystem) schedules through its own
//! discrete-event queue, so a faulted run is byte-identical per seed —
//! exactly like noise flips and competing-job churn. Three event families
//! model the paper's §V scenario ("a small number of slow storage targets
//! greatly increased total IO time") and its harsher cousins:
//!
//! * **Brownout** — a transient per-OST slowdown (factor + duration),
//!   composing multiplicatively with the permanent `degrade_ost` factor
//!   and the ambient noise field. A dying disk, a rebuilding RAID set, a
//!   congested OSS.
//! * **Failure** — a full OST outage from a point in time, in one of two
//!   modes ([`FailMode`]): `Stall` freezes every in-flight and future
//!   request on the target (a hung OSS: clients wait forever unless they
//!   time out), `Error` fails in-flight and future requests promptly (an
//!   EIO-returning dead target). An optional recovery time brings the
//!   target back — *empty* in `Error` mode (the disk was replaced), with
//!   its contents intact in `Stall` mode (the server rebooted).
//! * **MDS outage** — a window during which the metadata server makes no
//!   progress; opens/closes submitted during the window queue up and
//!   complete after recovery.

use simcore::{Rng, SimDuration, SimTime};

use crate::layout::OstId;

/// How a failed OST treats requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailMode {
    /// Requests hang: in-flight streams freeze, new submissions are
    /// accepted but make no progress until recovery. Data survives.
    Stall,
    /// Requests fail promptly with an error completion; data stored on
    /// the target is lost (recovery brings back an empty target).
    Error,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug)]
pub enum FaultEvent {
    /// Transient slowdown of one OST: capability multiplied by `factor`
    /// from `at` for `duration` (`None` = permanent, equivalent to a
    /// scheduled [`StorageSystem::degrade_ost`](crate::StorageSystem::degrade_ost)).
    Brownout {
        /// When the brownout begins.
        at: SimTime,
        /// Affected target.
        ost: OstId,
        /// Remaining capability fraction in (0, 1].
        factor: f64,
        /// How long it lasts (`None` = until the end of the run).
        duration: Option<SimDuration>,
    },
    /// Full failure of one OST.
    OstFail {
        /// When the target dies.
        at: SimTime,
        /// Affected target.
        ost: OstId,
        /// Stall or error semantics.
        mode: FailMode,
        /// Optional recovery instant (absolute time).
        recover_at: Option<SimTime>,
    },
    /// Metadata-server outage window.
    MdsOutage {
        /// When the MDS stops responding.
        at: SimTime,
        /// Outage length.
        duration: SimDuration,
    },
}

impl FaultEvent {
    /// The instant the fault begins.
    pub fn at(&self) -> SimTime {
        match self {
            FaultEvent::Brownout { at, .. }
            | FaultEvent::OstFail { at, .. }
            | FaultEvent::MdsOutage { at, .. } => *at,
        }
    }
}

/// A deterministic schedule of fault events for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultScript {
    /// The scheduled events (any order; the DES sorts by time).
    pub events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script (no faults).
    pub fn none() -> Self {
        FaultScript::default()
    }

    /// True when the script holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add a transient brownout.
    pub fn brownout(mut self, at: f64, ost: usize, factor: f64, duration_secs: f64) -> Self {
        self.events.push(FaultEvent::Brownout {
            at: SimTime::from_secs_f64(at),
            ost: OstId(ost),
            factor,
            duration: Some(SimDuration::from_secs_f64(duration_secs)),
        });
        self
    }

    /// Add a permanent degradation starting at `at` (a scheduled
    /// `degrade_ost` that goes through the DES, so it is safe mid-run).
    pub fn degrade(mut self, at: f64, ost: usize, factor: f64) -> Self {
        self.events.push(FaultEvent::Brownout {
            at: SimTime::from_secs_f64(at),
            ost: OstId(ost),
            factor,
            duration: None,
        });
        self
    }

    /// Add an OST failure; `recover_at_secs` of `None` means it never
    /// comes back.
    pub fn fail_ost(
        mut self,
        at: f64,
        ost: usize,
        mode: FailMode,
        recover_at_secs: Option<f64>,
    ) -> Self {
        self.events.push(FaultEvent::OstFail {
            at: SimTime::from_secs_f64(at),
            ost: OstId(ost),
            mode,
            recover_at: recover_at_secs.map(SimTime::from_secs_f64),
        });
        self
    }

    /// Add a metadata-server outage window.
    pub fn mds_outage(mut self, at: f64, duration_secs: f64) -> Self {
        self.events.push(FaultEvent::MdsOutage {
            at: SimTime::from_secs_f64(at),
            duration: SimDuration::from_secs_f64(duration_secs),
        });
        self
    }

    /// Generate a random—but seed-reproducible—script: up to `max_events`
    /// events over `[0, horizon_secs)` on a machine with `ost_count`
    /// targets. Used by the seeded-loop property tests: any script this
    /// produces must leave the protocol terminating with full byte
    /// accounting.
    pub fn random(seed: u64, ost_count: usize, horizon_secs: f64, max_events: usize) -> Self {
        let mut rng = Rng::new(seed ^ 0xFA17_5C21_9E3B_D701);
        let n = rng.below(max_events as u64 + 1) as usize;
        let mut script = FaultScript::none();
        for _ in 0..n {
            let at = rng.uniform(0.0, horizon_secs);
            let ost = rng.below(ost_count as u64) as usize;
            match rng.below(4) {
                0 => {
                    // Brownout: factor in [0.05, 0.9], finite duration.
                    let factor = rng.uniform(0.05, 0.9);
                    let dur = rng.uniform(0.1, horizon_secs / 2.0);
                    script = script.brownout(at, ost, factor, dur);
                }
                1 => {
                    // Error-mode failure, usually with recovery.
                    let rec = if rng.chance(0.7) {
                        Some(at + rng.uniform(0.5, horizon_secs))
                    } else {
                        None
                    };
                    script = script.fail_ost(at, ost, FailMode::Error, rec);
                }
                2 => {
                    // Stall-mode failure, always recovering (a permanent
                    // stall is a guaranteed watchdog diagnostic, tested
                    // separately).
                    let rec = at + rng.uniform(0.5, horizon_secs / 2.0);
                    script = script.fail_ost(at, ost, FailMode::Stall, Some(rec));
                }
                _ => {
                    let dur = rng.uniform(0.05, horizon_secs / 4.0);
                    script = script.mds_outage(at, dur);
                }
            }
        }
        script
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let s = FaultScript::none()
            .brownout(1.0, 0, 0.5, 2.0)
            .fail_ost(3.0, 1, FailMode::Error, Some(10.0))
            .mds_outage(0.5, 1.0)
            .degrade(2.0, 2, 0.3);
        assert_eq!(s.events.len(), 4);
        assert!(!s.is_empty());
        assert!(FaultScript::none().is_empty());
    }

    #[test]
    fn random_scripts_are_reproducible() {
        let a = FaultScript::random(7, 8, 100.0, 6);
        let b = FaultScript::random(7, 8, 100.0, 6);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = FaultScript::random(8, 8, 100.0, 6);
        // Different seeds almost surely differ (event count or params).
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn random_scripts_stay_in_bounds() {
        for seed in 0..50 {
            let s = FaultScript::random(seed, 4, 50.0, 8);
            assert!(s.events.len() <= 8);
            for e in &s.events {
                assert!(e.at().as_secs_f64() < 50.0);
                match e {
                    FaultEvent::Brownout { ost, factor, .. } => {
                        assert!(ost.0 < 4);
                        assert!(*factor > 0.0 && *factor <= 1.0);
                    }
                    FaultEvent::OstFail { ost, .. } => assert!(ost.0 < 4),
                    FaultEvent::MdsOutage { duration, .. } => {
                        assert!(duration.as_secs_f64() > 0.0)
                    }
                }
            }
        }
    }
}
